//! Workspace call graph over the lexed token stream.
//!
//! This is alint's first *cross-file* layer: every `fn` in the scanned
//! crates is indexed (name, file, token span, call sites), calls are
//! resolved by identifier with a longest-match preference — same file,
//! then same crate, then qualified workspace-wide — and interprocedural
//! reachability classifies functions as **expensive** when their call
//! closure hits one of the configured expensive identifiers (`fit`,
//! `factor`, `optimize`, `step`, `solve`, file I/O, `sleep`, …).
//!
//! L7 `lock_discipline` is the first consumer: "does this call, made
//! while a lock guard is live, reach a multi-millisecond fit?" is a
//! question about the whole workspace, not one file. The graph is
//! deliberately token-level and heuristic — no type information, no
//! trait dispatch — so resolution is documented as *preferences*, not
//! proofs:
//!
//! - Single-segment calls (`helper(x)`, `recv.method(x)`) resolve only
//!   within the same file (nearest definition wins, which also handles
//!   shadowed local `fn`s) or, failing that, the same crate. They never
//!   jump crates: a bare `.get(..)` matching some expensive `get` in an
//!   unrelated crate would drown the lint in false positives.
//! - Qualified calls (`session::step(..)`, `al_gp::fit(..)`) resolve
//!   workspace-wide, scored by how many qualifier segments match the
//!   candidate's file stem or crate name (longest match wins).
//! - A call whose identifier is itself in the expensive set is expensive
//!   by fiat, no resolution needed — that keeps `state.step(obs)` a
//!   violation even if `step` resolved nowhere.
//!
//! Known limitations, accepted for a lint: turbofish call syntax
//! (`f::<T>(..)`) and calls through function pointers/closures are not
//! seen as calls; `#[cfg(test)]` functions are indexed (their *call
//! sites* are masked by the lint layer, not here).

use crate::lexer::{Lexed, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments of the callee, e.g. `["SessionState", "start_warm"]`
    /// for `SessionState::start_warm(..)`; method calls have one segment.
    pub segments: Vec<String>,
    /// Token index of the callee's final identifier (file-local).
    pub token: usize,
    /// 1-based source line of the call.
    pub line: u32,
    /// True for method calls (`recv.name(..)`). A dotted call never
    /// resolves to the function enclosing it: `guard.len()` inside
    /// `fn len` is a call on the receiver, not recursion.
    pub dotted: bool,
}

/// One indexed function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Bare function name (the identifier after `fn`).
    pub name: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Crate root prefix of `file`, e.g. `crates/core`.
    pub crate_root: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (file-local).
    pub sig_start: usize,
    /// Inclusive token range of the body braces, `None` for bodyless
    /// trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Call sites in the body, nested `fn` bodies excluded.
    pub calls: Vec<CallSite>,
    /// `.lock()` acquisitions in the body: receiver identifier chain
    /// (e.g. `["self", "warm"]`) plus line, nested `fn` bodies excluded.
    pub direct_locks: Vec<(Vec<String>, u32)>,
}

/// Workspace-wide function index with expensive-reachability baked in.
pub struct CallGraph {
    fns: Vec<FnInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
    expensive: Vec<bool>,
    /// Terminal expensive identifier reached, for diagnostics.
    witness: Vec<Option<String>>,
}

/// Identifiers that can precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "impl", "pub", "use", "mod", "where",
    "let", "else", "in", "as", "move", "ref", "mut", "dyn", "unsafe", "box", "yield",
];

fn is_ident(token: &Token) -> bool {
    matches!(token.kind, TokenKind::Ident)
}

/// Crate root prefix of a workspace-relative path: `crates/<name>` for
/// crate members, otherwise the first path segment.
fn crate_root_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        (Some(first), _) => first.to_string(),
        (None, _) => String::new(),
    }
}

/// Name variants a qualifier segment may use to refer to a crate whose
/// directory is `crates/<dir>`: the dir itself, underscored, and the
/// workspace's `al-<dir>` package naming.
fn crate_name_variants(crate_root: &str) -> Vec<String> {
    let dir = crate_root.rsplit('/').next().unwrap_or(crate_root);
    let underscored = dir.replace('-', "_");
    vec![
        dir.to_string(),
        underscored.clone(),
        format!("al_{underscored}"),
    ]
}

/// File stem of a path (`store` for `crates/core/src/store.rs`).
fn file_stem(rel_path: &str) -> &str {
    let base = rel_path.rsplit('/').next().unwrap_or(rel_path);
    base.strip_suffix(".rs").unwrap_or(base)
}

/// Index of the delimiter closing `tokens[open_at]`, scanning forward.
fn close_of(tokens: &[Token], open_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i64;
    for (k, token) in tokens.iter().enumerate().skip(open_at) {
        if token.text == open {
            depth += 1;
        } else if token.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the delimiter opening `tokens[close_at]`, scanning backward.
fn open_of(tokens: &[Token], close_at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i64;
    for k in (0..=close_at).rev() {
        if tokens[k].text == close {
            depth += 1;
        } else if tokens[k].text == open {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Identifier chain of the receiver ending at `dot_idx` (a `.` token),
/// outermost first: `self.shard(id).lock()` yields `["self", "shard"]`.
/// Call-argument and index contents are skipped, only the chain's own
/// identifiers are collected.
pub fn receiver_idents(tokens: &[Token], dot_idx: usize) -> Vec<String> {
    receiver_chain(tokens, dot_idx).1
}

/// Like [`receiver_idents`], but also returns the token index where the
/// receiver chain starts (`self` in `self.shard(id).lock()`).
pub fn receiver_chain(tokens: &[Token], dot_idx: usize) -> (usize, Vec<String>) {
    let mut idents = Vec::new();
    let mut start = dot_idx;
    let mut k = dot_idx;
    loop {
        if k == 0 {
            break;
        }
        k -= 1;
        match tokens[k].text.as_str() {
            ")" => match open_of(tokens, k, "(", ")") {
                Some(opener) if opener > 0 => k = opener,
                _ => break,
            },
            "]" => match open_of(tokens, k, "[", "]") {
                Some(opener) if opener > 0 => k = opener,
                _ => break,
            },
            _ if is_ident(&tokens[k]) => {
                idents.push(tokens[k].text.clone());
                start = k;
                if k == 0 {
                    break;
                }
                let prev = tokens[k - 1].text.as_str();
                if prev == "." || prev == "::" {
                    // Step onto the separator; the loop header then lands
                    // on the next chain link.
                    k -= 1;
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    idents.reverse();
    (start, idents)
}

/// True when `tokens[i]` is the identifier of a `.lock()` call.
pub fn is_lock_site(tokens: &[Token], i: usize) -> bool {
    tokens[i].text == "lock"
        && is_ident(&tokens[i])
        && i > 0
        && tokens[i - 1].text == "."
        && i + 1 < tokens.len()
        && tokens[i + 1].text == "("
}

/// True when `tokens[i]` is the final identifier of a call expression
/// (`name(..)`), excluding macros, keywords, and `fn` definitions.
pub fn is_call_site(tokens: &[Token], i: usize) -> bool {
    if !is_ident(&tokens[i]) || i + 1 >= tokens.len() || tokens[i + 1].text != "(" {
        return false;
    }
    if NON_CALL_KEYWORDS.contains(&tokens[i].text.as_str()) {
        return false;
    }
    if i > 0 && tokens[i - 1].text == "fn" {
        return false;
    }
    true
}

/// Path segments of the call ending at identifier `i`, walking back over
/// `::`-joined qualifiers.
pub fn call_segments(tokens: &[Token], i: usize) -> Vec<String> {
    let mut segments = vec![tokens[i].text.clone()];
    let mut k = i;
    while k >= 2 && tokens[k - 1].text == "::" && is_ident(&tokens[k - 2]) {
        segments.push(tokens[k - 2].text.clone());
        k -= 2;
    }
    segments.reverse();
    segments
}

impl CallGraph {
    /// Index every `fn` in `files` (workspace-relative path + lexed
    /// tokens) and classify expensive reachability against
    /// `expensive_idents`.
    pub fn build(files: &[(String, &Lexed)], expensive_idents: &BTreeSet<String>) -> CallGraph {
        let mut fns = Vec::new();
        for (rel_path, lexed) in files {
            index_file(rel_path, &lexed.tokens, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let mut graph = CallGraph {
            expensive: vec![false; fns.len()],
            witness: vec![None; fns.len()],
            fns,
            by_name,
        };
        graph.classify(expensive_idents);
        graph
    }

    /// All indexed functions, in (file, definition) order.
    pub fn fns(&self) -> &[FnInfo] {
        &self.fns
    }

    /// True when the function's call closure reaches an expensive ident.
    pub fn is_expensive(&self, idx: usize) -> bool {
        self.expensive.get(idx).copied().unwrap_or(false)
    }

    /// The terminal expensive identifier the function reaches, if any.
    pub fn witness(&self, idx: usize) -> Option<&str> {
        self.witness.get(idx).and_then(|w| w.as_deref())
    }

    /// Resolve a call made at token `at_token` of `file` to an indexed
    /// function, by the preference order documented on the module.
    /// `dotted` marks method calls, which never resolve to the function
    /// whose body contains the call site (see [`CallSite::dotted`]).
    pub fn resolve(
        &self,
        file: &str,
        at_token: usize,
        segments: &[String],
        dotted: bool,
    ) -> Option<usize> {
        let name = segments.last()?;
        let quals = &segments[..segments.len() - 1];
        let local_quals = quals.is_empty()
            || quals
                .iter()
                .all(|q| q == "self" || q == "Self" || q == "crate");
        let encloses = |c: usize| {
            self.fns[c].file == file
                && self.fns[c]
                    .body
                    .is_some_and(|(open, end)| open <= at_token && at_token <= end)
        };
        let candidates: Vec<usize> = self
            .by_name
            .get(name)?
            .iter()
            .copied()
            .filter(|&c| !(dotted && encloses(c)))
            .collect();

        // Same file: nearest definition wins, which resolves shadowed
        // local `fn`s to the local definition rather than a distant
        // top-level one.
        if local_quals {
            let same_file = candidates
                .iter()
                .filter(|&&c| self.fns[c].file == file)
                .min_by_key(|&&c| {
                    let d = self.fns[c].sig_start.abs_diff(at_token);
                    (d, c)
                });
            if let Some(&c) = same_file {
                return Some(c);
            }
        }

        // Same crate, then workspace: score by qualifier matches against
        // the candidate's file stem and crate-name variants; longest
        // match (most segments matched) wins, ties break on index order.
        let caller_crate = crate_root_of(file);
        let score = |c: usize| -> usize {
            let cand = &self.fns[c];
            let stem = file_stem(&cand.file);
            let variants = crate_name_variants(&cand.crate_root);
            quals
                .iter()
                .filter(|q| q.as_str() == stem || variants.iter().any(|v| v == q.as_str()))
                .count()
        };
        let best_in = |pool: Vec<usize>, min_score: usize| -> Option<usize> {
            pool.into_iter()
                .map(|c| (score(c), c))
                .filter(|&(s, _)| s >= min_score)
                .max_by_key(|&(s, c)| (s, usize::MAX - c))
                .map(|(_, c)| c)
        };
        let same_crate: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&c| self.fns[c].crate_root == caller_crate)
            .collect();
        if let Some(c) = best_in(same_crate, 0) {
            return Some(c);
        }
        if quals.is_empty() || local_quals {
            // Unqualified calls never jump crates (see module docs).
            return None;
        }
        best_in(candidates.clone(), 1)
    }

    /// Fixpoint expensive classification: direct expensive-ident calls
    /// seed the set, then any function calling an expensive function is
    /// expensive, until nothing changes (cycles converge naturally).
    fn classify(&mut self, expensive_idents: &BTreeSet<String>) {
        for i in 0..self.fns.len() {
            for call in &self.fns[i].calls {
                if let Some(seg) = call
                    .segments
                    .iter()
                    .find(|s| expensive_idents.contains(s.as_str()))
                {
                    self.expensive[i] = true;
                    self.witness[i] = Some(seg.clone());
                    break;
                }
            }
        }
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                if self.expensive[i] {
                    continue;
                }
                let file = self.fns[i].file.clone();
                let calls = self.fns[i].calls.clone();
                for call in &calls {
                    let Some(target) = self.resolve(&file, call.token, &call.segments, call.dotted)
                    else {
                        continue;
                    };
                    if target != i && self.expensive[target] {
                        self.expensive[i] = true;
                        self.witness[i] = self.witness[target].clone();
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// Index the functions of one file into `fns`.
fn index_file(rel_path: &str, tokens: &[Token], fns: &mut Vec<FnInfo>) {
    let crate_root = crate_root_of(rel_path);
    let first = fns.len();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].text != "fn" || !is_ident(&tokens[i]) || !is_ident(&tokens[i + 1]) {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        // Walk the signature for the body's `{` (or a terminating `;` for
        // bodyless declarations), ignoring braces nested in parens or
        // brackets (closure defaults, const-generic expressions).
        let mut depth = 0i64;
        let mut body = None;
        let mut j = i + 2;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    body = close_of(tokens, j, "{", "}").map(|end| (j, end));
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        fns.push(FnInfo {
            name,
            file: rel_path.to_string(),
            crate_root: crate_root.clone(),
            line: tokens[i].line,
            sig_start: i,
            body,
            calls: Vec::new(),
            direct_locks: Vec::new(),
        });
        // Continue *inside* the signature so nested `fn`s are indexed too.
        i += 2;
    }

    // Second pass: collect calls and lock acquisitions per function,
    // attributing tokens inside a nested `fn` to the nested function only.
    let file_fns: Vec<(usize, usize, usize)> = fns[first..]
        .iter()
        .enumerate()
        .filter_map(|(off, f)| f.body.map(|(_, end)| (first + off, f.sig_start, end)))
        .collect();
    for &(idx, sig_start, end) in &file_fns {
        let Some((open, _)) = fns[idx].body else {
            continue;
        };
        let mut calls = Vec::new();
        let mut locks = Vec::new();
        let mut k = open + 1;
        while k < end {
            // Skip nested fn definitions wholesale (signature + body).
            if let Some(&(_, _, nested_end)) = file_fns
                .iter()
                .find(|&&(n, ns, ne)| n != idx && ns >= sig_start && ne <= end && ns == k)
            {
                k = nested_end + 1;
                continue;
            }
            if is_lock_site(tokens, k) {
                locks.push((receiver_idents(tokens, k - 1), tokens[k].line));
            } else if is_call_site(tokens, k) && tokens[k].text != "lock" {
                calls.push(CallSite {
                    segments: call_segments(tokens, k),
                    token: k,
                    line: tokens[k].line,
                    dotted: k > 0 && tokens[k - 1].text == ".",
                });
            }
            k += 1;
        }
        fns[idx].calls = calls;
        fns[idx].direct_locks = locks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph(files: &[(&str, &str)], expensive: &[&str]) -> (CallGraph, Vec<Lexed>) {
        let lexed: Vec<Lexed> = files.iter().map(|(_, src)| lex(src)).collect();
        let input: Vec<(String, &Lexed)> = files
            .iter()
            .zip(&lexed)
            .map(|((path, _), l)| (path.to_string(), l))
            .collect();
        let exp: BTreeSet<String> = expensive.iter().map(|s| s.to_string()).collect();
        (CallGraph::build(&input, &exp), lexed)
    }

    fn find<'g>(g: &'g CallGraph, file: &str, name: &str) -> (usize, &'g FnInfo) {
        g.fns()
            .iter()
            .enumerate()
            .find(|(_, f)| f.file == file && f.name == name)
            .unwrap_or_else(|| panic!("no fn {name} in {file}"))
    }

    #[test]
    fn indexes_names_spans_and_calls() {
        let src = "fn a(x: u32) -> u32 { b(x) + c(x) }\nfn b(x: u32) -> u32 { x }\n";
        let (g, _) = graph(&[("crates/x/src/lib.rs", src)], &[]);
        assert_eq!(g.fns().len(), 2);
        let (_, a) = find(&g, "crates/x/src/lib.rs", "a");
        assert_eq!(a.line, 1);
        let callees: Vec<&str> = a
            .calls
            .iter()
            .map(|c| c.segments.last().map(String::as_str).unwrap_or(""))
            .collect();
        assert_eq!(callees, ["b", "c"]);
        assert_eq!(find(&g, "crates/x/src/lib.rs", "b").1.line, 2);
    }

    #[test]
    fn reachability_crosses_three_hops_and_macros_are_not_calls() {
        let src = "
            fn top() { mid() }
            fn mid() { low() }
            fn low() { base() }
            fn base() { fit(3); }
            fn logs_only() { println!(\"fit\"); }
        ";
        let (g, _) = graph(&[("crates/x/src/lib.rs", src)], &["fit"]);
        for name in ["top", "mid", "low", "base"] {
            let (i, _) = find(&g, "crates/x/src/lib.rs", name);
            assert!(g.is_expensive(i), "{name} should reach fit");
            assert_eq!(g.witness(i), Some("fit"));
        }
        let (i, _) = find(&g, "crates/x/src/lib.rs", "logs_only");
        assert!(!g.is_expensive(i), "macro invocation is not a call");
    }

    #[test]
    fn cycles_converge_without_divergence() {
        let cyclic = "
            fn ping() { pong() }
            fn pong() { ping() }
            fn spin() { spin() }
            fn churn() { whirl() }
            fn whirl() { churn(); solve(1); }
        ";
        let (g, _) = graph(&[("crates/x/src/lib.rs", cyclic)], &["solve"]);
        for name in ["ping", "pong", "spin"] {
            let (i, _) = find(&g, "crates/x/src/lib.rs", name);
            assert!(!g.is_expensive(i), "{name} is a benign cycle");
        }
        for name in ["churn", "whirl"] {
            let (i, _) = find(&g, "crates/x/src/lib.rs", name);
            assert!(g.is_expensive(i), "{name} cycles through solve");
        }
    }

    #[test]
    fn same_name_across_crates_resolves_by_longest_match() {
        let xs = "pub fn run() { fit(1); }";
        let ys = "pub fn run() { let _ = 1; }";
        let caller = "
            fn qualified_x() { al_x::run(); }
            fn qualified_y() { al_y::run(); }
            fn bare() { run(); }
        ";
        let (g, _) = graph(
            &[
                ("crates/x/src/lib.rs", xs),
                ("crates/y/src/lib.rs", ys),
                ("crates/z/src/lib.rs", caller),
            ],
            &["fit"],
        );
        let (qx, _) = find(&g, "crates/z/src/lib.rs", "qualified_x");
        let (qy, _) = find(&g, "crates/z/src/lib.rs", "qualified_y");
        let (bare, _) = find(&g, "crates/z/src/lib.rs", "bare");
        assert!(g.is_expensive(qx), "al_x::run reaches fit");
        assert!(!g.is_expensive(qy), "al_y::run is cheap");
        // Unqualified calls never jump crates.
        assert!(!g.is_expensive(bare));
    }

    #[test]
    fn same_file_beats_same_crate_and_module_qualifiers_pick_the_stem() {
        let store = "pub fn get(x: u32) -> u32 { x }";
        let heavy = "pub fn get(x: u32) -> u32 { optimize(x) }";
        let caller = "
            fn local() -> u32 { get(1) }
            fn get(x: u32) -> u32 { x + 1 }
            fn via_module() -> u32 { heavy::get(2) }
        ";
        let (g, _) = graph(
            &[
                ("crates/c/src/store.rs", store),
                ("crates/c/src/heavy.rs", heavy),
                ("crates/c/src/lib.rs", caller),
            ],
            &["optimize"],
        );
        let (local, _) = find(&g, "crates/c/src/lib.rs", "local");
        assert!(!g.is_expensive(local), "same-file get wins");
        let (via, _) = find(&g, "crates/c/src/lib.rs", "via_module");
        assert!(g.is_expensive(via), "heavy::get matches the file stem");
    }

    #[test]
    fn shadowed_local_fn_wins_over_distant_top_level() {
        let src = "
            fn outer() -> u32 {
                fn helper(x: u32) -> u32 { x }
                helper(1)
            }
            fn far_outer() -> u32 { helper(2) }
        ";
        let far = "\n".repeat(60) + "fn helper(x: u32) -> u32 { sleep(x); x }\n";
        let combined = format!("{src}{far}");
        let (g, _) = graph(&[("crates/x/src/lib.rs", combined.as_str())], &["sleep"]);
        let (outer, info) = find(&g, "crates/x/src/lib.rs", "outer");
        // The nested helper's body is not attributed to outer…
        assert!(info.calls.iter().all(|c| c.segments != ["sleep"]));
        // …and outer's call resolves to the nearby cheap helper.
        assert!(!g.is_expensive(outer));
        let (far_outer, _) = find(&g, "crates/x/src/lib.rs", "far_outer");
        assert!(
            g.is_expensive(far_outer),
            "far_outer's nearest helper is the expensive one"
        );
    }

    #[test]
    fn dotted_calls_do_not_resolve_to_their_enclosing_fn() {
        // `guard.len()` inside `fn len` is a call on the receiver, not
        // recursion — it must not pick up the enclosing fn's locks.
        let src = "
            impl Store {
                fn len(&self) -> usize {
                    self.shards.iter().map(|shard| shard.lock().len()).sum()
                }
                fn spin(&self) -> usize { self.spin() }
            }
        ";
        let (g, _) = graph(&[("crates/c/src/store.rs", src)], &[]);
        let (len_idx, info) = find(&g, "crates/c/src/store.rs", "len");
        let len_call = info
            .calls
            .iter()
            .find(|c| c.segments == ["len"])
            .expect("inner .len() call indexed");
        assert!(len_call.dotted);
        assert_ne!(
            g.resolve(
                "crates/c/src/store.rs",
                len_call.token,
                &len_call.segments,
                true
            ),
            Some(len_idx),
            "dotted call must not resolve to the fn enclosing it"
        );
        // Plain self-recursion still resolves (dotted here, but the
        // nearest non-enclosing candidate is a different fn entirely).
        let (spin_idx, spin) = find(&g, "crates/c/src/store.rs", "spin");
        let rec = spin
            .calls
            .iter()
            .find(|c| c.segments == ["spin"])
            .expect("call");
        assert_ne!(
            g.resolve(
                "crates/c/src/store.rs",
                rec.token,
                &rec.segments,
                rec.dotted
            ),
            Some(spin_idx)
        );
    }

    #[test]
    fn direct_locks_record_receiver_chains() {
        let src = "
            impl Store {
                fn relock(&self) { let g = self.warm.lock(); drop(g); }
                fn chained(&self, id: u64) -> usize { self.shard(id).lock().len() }
            }
        ";
        let (g, _) = graph(&[("crates/c/src/store.rs", src)], &[]);
        let (_, relock) = find(&g, "crates/c/src/store.rs", "relock");
        assert_eq!(relock.direct_locks.len(), 1);
        assert_eq!(relock.direct_locks[0].0, ["self", "warm"]);
        let (_, chained) = find(&g, "crates/c/src/store.rs", "chained");
        assert_eq!(chained.direct_locks[0].0, ["self", "shard"]);
    }

    #[test]
    fn bodyless_trait_methods_index_without_calls() {
        let src =
            "trait T { fn go(&self) -> u32; }\nimpl T for U { fn go(&self) -> u32 { fit(1) } }";
        let (g, _) = graph(&[("crates/x/src/lib.rs", src)], &["fit"]);
        let bodied: Vec<bool> = g
            .fns()
            .iter()
            .filter(|f| f.name == "go")
            .map(|f| f.body.is_some())
            .collect();
        assert_eq!(bodied, [false, true]);
    }
}
