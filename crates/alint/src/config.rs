//! `alint.toml`: lint scopes and the grandfathered-violation allowlist.
//!
//! The allowlist is a *ratchet*: each entry budgets a number of existing
//! violations of one lint in one file. New violations push a file over its
//! budget and fail the check; paying debt down below the budget produces a
//! nagging note until the entry is tightened. This keeps the list honest in
//! both directions without storing brittle line numbers.
//!
//! The parser below handles exactly the TOML subset the config uses —
//! `[table]` headers, `[[array-of-table]]` headers, `key = "string"`,
//! `key = integer`, and `key = ["a", "b"]` single-line string arrays —
//! because no TOML crate is available offline.

use std::collections::BTreeMap;
use std::path::Path;

/// One grandfathered budget: up to `count` diagnostics of `lint` in `path`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowance {
    pub path: String,
    pub lint: String,
    pub count: usize,
    pub reason: String,
}

/// Parsed configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate roots whose `src/` trees L1 (panic-freedom) applies to.
    pub lib_crates: Vec<String>,
    /// Crate roots whose public `Result` functions L3 (typed errors) covers.
    pub typed_error_crates: Vec<String>,
    /// Files L4 (lossy casts) covers.
    pub hot_paths: Vec<String>,
    /// Files exempt from L2 (bare float comparison).
    pub float_cmp_approved: Vec<String>,
    /// Directories (workspace-relative) scanned for sources.
    pub scan_roots: Vec<String>,
    /// L5 (unit safety): identifier suffix → unit, written `"_us:microseconds"`.
    pub unit_suffixes: Vec<(String, String)>,
    /// L5: quantity type name → unit, written `"Micros:microseconds"`.
    pub unit_types: Vec<(String, String)>,
    /// L5: identifiers that convert between units; their presence next to a
    /// mixed-unit operator marks the expression as an intentional conversion.
    pub unit_conversions: Vec<String>,
    /// L6 (determinism safety): crate roots whose `src/` trees are bound by
    /// the bitwise-reproducibility contract. An empty list disables L6.
    pub determinism_crates: Vec<String>,
    /// L6: files (or path prefixes) whose thread fan-out is blessed — the
    /// audited pool modules with ordered reductions.
    pub spawn_approved: Vec<String>,
    /// L6: files or path prefixes allowed to read host wall-clock
    /// (bench/runner diagnostics that never feed priced results).
    pub wall_clock_approved: Vec<String>,
    /// L6: identifiers (ordered container types, sort methods) whose
    /// presence near a hash-container iteration marks the path as
    /// order-stable and suppresses the finding.
    pub ordered_containers: Vec<String>,
    /// L7 (lock discipline): lock receiver identifier → lock class,
    /// written `"warm:warm"`. Every `.lock()` receiver in scanned code
    /// must map to a class here.
    pub lock_classes: Vec<(String, String)>,
    /// L7: total acquisition order over lock classes, lowest first —
    /// acquiring a lower class while a higher one is held is an
    /// inversion. An empty list leaves every class unordered, which is
    /// itself a violation at each acquisition site (the probe: deleting
    /// the order table must surface raw findings, not silence).
    pub lock_order: Vec<String>,
    /// L7: identifiers whose calls are expensive by fiat (`fit`, `solve`,
    /// file I/O, `sleep`, …). The call-graph layer propagates these:
    /// any function whose call closure reaches one is expensive, and
    /// calling it under a live lock guard is a violation. Emptying both
    /// this and `lock_classes`/`lock_order` disables L7.
    pub expensive_idents: Vec<String>,
    pub allowances: Vec<Allowance>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            lib_crates: [
                "crates/linalg",
                "crates/gp",
                "crates/amr",
                "crates/dataset",
                "crates/core",
                "crates/parallel",
                "crates/alint",
            ]
            .map(String::from)
            .to_vec(),
            typed_error_crates: [
                "crates/linalg",
                "crates/gp",
                "crates/amr",
                "crates/dataset",
                "crates/core",
                "crates/alint",
            ]
            .map(String::from)
            .to_vec(),
            hot_paths: [
                "crates/linalg/src/cholesky.rs",
                "crates/gp/src/gp.rs",
                "crates/amr/src/tree.rs",
                "crates/bench/src/perf.rs",
            ]
            .map(String::from)
            .to_vec(),
            float_cmp_approved: Vec::new(),
            scan_roots: ["crates", "src"].map(String::from).to_vec(),
            unit_suffixes: [
                ("_seconds", "seconds"),
                ("_us", "microseconds"),
                ("_ns", "nanoseconds"),
                ("_node_hours", "node_hours"),
                ("_mb", "megabytes"),
                ("_bytes", "bytes"),
                ("_cells", "cells"),
            ]
            .map(|(s, u)| (s.to_string(), u.to_string()))
            .to_vec(),
            unit_types: [
                ("Seconds", "seconds"),
                ("Micros", "microseconds"),
                ("Nanos", "nanoseconds"),
                ("NodeHours", "node_hours"),
                ("Megabytes", "megabytes"),
                ("Bytes", "bytes"),
                ("CellUpdates", "cells"),
                ("LogMegabytes", "log_megabytes"),
            ]
            .map(|(s, u)| (s.to_string(), u.to_string()))
            .to_vec(),
            // `.value()` is deliberately absent: unwrapping to raw f64 is
            // not a unit conversion, and comparisons between mismatched
            // `.value()` results are exactly the bug class L5 targets.
            unit_conversions: [
                "to_seconds",
                "to_micros",
                "to_megabytes",
                "to_bytes",
                "node_hours",
                "log10",
                "log10_response",
                "unlog10_response",
            ]
            .map(String::from)
            .to_vec(),
            determinism_crates: [
                "crates/linalg",
                "crates/gp",
                "crates/amr",
                "crates/dataset",
                "crates/core",
                "crates/units",
                "crates/bench",
                "crates/parallel",
            ]
            .map(String::from)
            .to_vec(),
            // Each blessed module owns a fan-out with an audited ordered
            // reduction (index-addressed result slots folded in input
            // order); see DESIGN §7/§9 and §13.
            spawn_approved: [
                "crates/parallel/src/pool.rs",
                "crates/core/src/batch.rs",
                "crates/dataset/src/generate.rs",
            ]
            .map(String::from)
            .to_vec(),
            // Bench binaries time the *host* run for BENCH notes; that
            // wall-clock never feeds priced results (machine.rs contract).
            wall_clock_approved: ["crates/bench"].map(String::from).to_vec(),
            ordered_containers: [
                "BTreeMap",
                "BTreeSet",
                "sort",
                "sort_by",
                "sort_by_key",
                "sort_unstable",
                "sort_unstable_by",
                "sort_unstable_by_key",
                "sorted",
            ]
            .map(String::from)
            .to_vec(),
            // The store's documented contract (core/store.rs): the warm
            // cache is below the shards, batch-result slots never nest
            // with either.
            lock_classes: [
                ("warm", "warm"),
                ("shard", "shard"),
                ("results", "batch_results"),
            ]
            .map(|(r, c)| (r.to_string(), c.to_string()))
            .to_vec(),
            lock_order: ["warm", "shard", "batch_results"]
                .map(String::from)
                .to_vec(),
            // The paper's hot verbs plus file I/O and sleeping: anything
            // here is multi-millisecond work that must never run under a
            // shard lock (tail-latency contract, DESIGN §14).
            expensive_idents: [
                "fit",
                "fit_optimized",
                "initial_fit",
                "refit",
                "factor",
                "optimize",
                "step",
                "solve",
                "solve_upper",
                "solve_lower",
                "run_trajectory",
                "sleep",
                "read_to_string",
                "write_all",
                "flush",
                "open",
                "create_dir_all",
                "read_dir",
                "remove_file",
            ]
            .map(String::from)
            .to_vec(),
            allowances: Vec::new(),
        }
    }
}

/// A config-file problem with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "alint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// `key = value` pairs of one table, each with its source line.
type KeyedValues = BTreeMap<String, (Value, usize)>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Str(String),
    Int(usize),
    StrArray(Vec<String>),
}

fn parse_value(raw: &str, line: usize) -> Result<Value, ConfigError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(end) = rest.find('"') else {
            return Err(ConfigError {
                line,
                message: "unterminated string".into(),
            });
        };
        return Ok(Value::Str(rest[..end].to_string()));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err(ConfigError {
                line,
                message: "arrays must be closed on the same line".into(),
            });
        };
        let mut items = Vec::new();
        for piece in inner.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match parse_value(piece, line)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(ConfigError {
                        line,
                        message: "only string arrays are supported".into(),
                    })
                }
            }
        }
        return Ok(Value::StrArray(items));
    }
    raw.parse::<usize>()
        .map(Value::Int)
        .map_err(|_| ConfigError {
            line,
            message: format!("expected string, integer, or string array, got `{raw}`"),
        })
}

/// Parse the TOML subset described in the module docs.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    // Tables other than [[allow]] collect into one namespace; the file's
    // section headers are organizational.
    let mut scalar_keys: KeyedValues = BTreeMap::new();
    let mut current_allow: Option<KeyedValues> = None;
    let mut finished_allows: Vec<(KeyedValues, usize)> = Vec::new();
    let mut allow_start = 0usize;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(done) = current_allow.take() {
                finished_allows.push((done, allow_start));
            }
            current_allow = Some(BTreeMap::new());
            allow_start = line_no;
            continue;
        }
        if line.starts_with("[[") {
            return Err(ConfigError {
                line: line_no,
                message: format!("unknown array-of-tables `{line}`"),
            });
        }
        if line.starts_with('[') {
            // Section header: close any open [[allow]] entry.
            if let Some(done) = current_allow.take() {
                finished_allows.push((done, allow_start));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ConfigError {
                line: line_no,
                message: format!("expected `key = value`, got `{line}`"),
            });
        };
        let key = key.trim().to_string();
        let value = parse_value(value, line_no)?;
        match &mut current_allow {
            Some(entry) => {
                entry.insert(key, (value, line_no));
            }
            None => {
                scalar_keys.insert(key, (value, line_no));
            }
        }
    }
    if let Some(done) = current_allow.take() {
        finished_allows.push((done, allow_start));
    }

    let mut take_list = |name: &str, target: &mut Vec<String>| -> Result<(), ConfigError> {
        if let Some((value, line)) = scalar_keys.remove(name) {
            match value {
                Value::StrArray(items) => *target = items,
                _ => {
                    return Err(ConfigError {
                        line,
                        message: format!("`{name}` must be a string array"),
                    })
                }
            }
        }
        Ok(())
    };
    take_list("lib_crates", &mut config.lib_crates)?;
    take_list("typed_error_crates", &mut config.typed_error_crates)?;
    take_list("hot_paths", &mut config.hot_paths)?;
    take_list("float_cmp_approved", &mut config.float_cmp_approved)?;
    take_list("scan_roots", &mut config.scan_roots)?;
    take_list("unit_conversions", &mut config.unit_conversions)?;
    take_list("determinism_crates", &mut config.determinism_crates)?;
    take_list("spawn_approved", &mut config.spawn_approved)?;
    take_list("wall_clock_approved", &mut config.wall_clock_approved)?;
    take_list("ordered_containers", &mut config.ordered_containers)?;
    take_list("lock_order", &mut config.lock_order)?;
    take_list("expensive_idents", &mut config.expensive_idents)?;
    let mut take_pair_list =
        |name: &str, target: &mut Vec<(String, String)>| -> Result<(), ConfigError> {
            if let Some((value, line)) = scalar_keys.remove(name) {
                let Value::StrArray(items) = value else {
                    return Err(ConfigError {
                        line,
                        message: format!("`{name}` must be a string array"),
                    });
                };
                let mut pairs = Vec::new();
                for item in items {
                    let Some((key, unit)) = item.split_once(':') else {
                        return Err(ConfigError {
                            line,
                            message: format!(
                                "`{name}` entries must look like \"name:unit\", got `{item}`"
                            ),
                        });
                    };
                    pairs.push((key.trim().to_string(), unit.trim().to_string()));
                }
                *target = pairs;
            }
            Ok(())
        };
    take_pair_list("unit_suffixes", &mut config.unit_suffixes)?;
    take_pair_list("unit_types", &mut config.unit_types)?;
    take_pair_list("lock_classes", &mut config.lock_classes)?;
    if let Some((key, (_, line))) = scalar_keys.into_iter().next() {
        return Err(ConfigError {
            line,
            message: format!("unknown key `{key}`"),
        });
    }

    for (entry, start_line) in finished_allows {
        let mut path = None;
        let mut lint = None;
        let mut count = None;
        let mut reason = String::new();
        for (key, (value, line)) in entry {
            match (key.as_str(), value) {
                ("path", Value::Str(s)) => path = Some(s),
                ("lint", Value::Str(s)) => lint = Some(s),
                ("count", Value::Int(n)) => count = Some(n),
                ("reason", Value::Str(s)) => reason = s,
                (other, _) => {
                    return Err(ConfigError {
                        line,
                        message: format!("unknown or mistyped [[allow]] key `{other}`"),
                    })
                }
            }
        }
        let missing = |what: &str| ConfigError {
            line: start_line,
            message: format!("[[allow]] entry is missing `{what}`"),
        };
        config.allowances.push(Allowance {
            path: path.ok_or_else(|| missing("path"))?,
            lint: lint.ok_or_else(|| missing("lint"))?,
            count: count.ok_or_else(|| missing("count"))?,
            reason,
        });
    }

    Ok(config)
}

/// Strip a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Why `alint.toml` could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// The file exists but could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// Underlying I/O error.
        error: std::io::Error,
    },
    /// The file was read but did not parse.
    Parse(ConfigError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io { path, error } => write!(f, "reading {path}: {error}"),
            LoadError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io { error, .. } => Some(error),
            LoadError::Parse(e) => Some(e),
        }
    }
}

impl From<ConfigError> for LoadError {
    fn from(e: ConfigError) -> Self {
        LoadError::Parse(e)
    }
}

/// Load `alint.toml` from `root`, or defaults when the file is absent.
pub fn load(root: &Path) -> Result<Config, LoadError> {
    let path = root.join("alint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => Ok(parse(&text)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
        Err(e) => Err(LoadError::Io {
            path: path.display().to_string(),
            error: e,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scopes_and_allowances() {
        let cfg = parse(
            r#"
# comment
[scope]
lib_crates = ["crates/a", "crates/b"]
hot_paths = ["crates/a/src/hot.rs"]

[[allow]]
path = "crates/a/src/x.rs"   # trailing comment
lint = "L1"
count = 3
reason = "grandfathered"

[[allow]]
path = "crates/b/src/y.rs"
lint = "L4"
count = 1
"#,
        )
        .expect("parse");
        assert_eq!(cfg.lib_crates, vec!["crates/a", "crates/b"]);
        assert_eq!(cfg.hot_paths, vec!["crates/a/src/hot.rs"]);
        assert_eq!(cfg.allowances.len(), 2);
        assert_eq!(cfg.allowances[0].count, 3);
        assert_eq!(cfg.allowances[0].reason, "grandfathered");
        assert_eq!(cfg.allowances[1].lint, "L4");
    }

    #[test]
    fn missing_allow_fields_are_errors() {
        let err = parse("[[allow]]\npath = \"x\"\nlint = \"L1\"\n").unwrap_err();
        assert!(err.message.contains("count"), "{err}");
    }

    #[test]
    fn unknown_keys_are_errors() {
        assert!(parse("wibble = 3\n").is_err());
        assert!(parse("[[allow]]\nwibble = \"x\"\n").is_err());
    }

    #[test]
    fn defaults_cover_the_lib_crates() {
        let cfg = Config::default();
        assert_eq!(cfg.lib_crates.len(), 7);
        assert!(cfg.lib_crates.contains(&"crates/parallel".to_string()));
        // alint lints itself: panic-freedom and typed errors apply to the
        // linter's own library sources.
        assert!(cfg.lib_crates.contains(&"crates/alint".to_string()));
        assert!(cfg.typed_error_crates.contains(&"crates/alint".to_string()));
        assert!(cfg.typed_error_crates.contains(&"crates/gp".to_string()));
        assert!(cfg
            .hot_paths
            .contains(&"crates/bench/src/perf.rs".to_string()));
    }

    #[test]
    fn lock_tables_parse_and_have_defaults() {
        let cfg = parse(
            "[locks]\nlock_classes = [\"cache:cache\", \"slab:slab\"]\n\
             lock_order = [\"cache\", \"slab\"]\nexpensive_idents = [\"churn\"]\n",
        )
        .expect("parse");
        assert_eq!(
            cfg.lock_classes,
            vec![
                ("cache".to_string(), "cache".to_string()),
                ("slab".to_string(), "slab".to_string())
            ]
        );
        assert_eq!(cfg.lock_order, vec!["cache", "slab"]);
        assert_eq!(cfg.expensive_idents, vec!["churn"]);
        // Defaults encode the store's documented contract: warm below
        // shard, and the paper's hot verbs in the expensive set.
        let d = Config::default();
        assert_eq!(d.lock_order, vec!["warm", "shard", "batch_results"]);
        assert!(d
            .lock_classes
            .iter()
            .any(|(r, c)| r == "shard" && c == "shard"));
        for ident in ["fit", "step", "solve", "sleep", "read_to_string"] {
            assert!(d.expensive_idents.contains(&ident.to_string()), "{ident}");
        }
    }

    #[test]
    fn emptied_lock_order_parses_to_empty() {
        // The probe from the acceptance criteria: an explicitly emptied
        // order table must override the default, not fall back to it.
        let cfg = parse("[locks]\nlock_order = []\n").expect("parse");
        assert!(cfg.lock_order.is_empty());
        assert!(!cfg.lock_classes.is_empty(), "classes keep their default");
    }

    #[test]
    fn unit_tables_parse_and_have_defaults() {
        let cfg = parse(
            "[units]\nunit_suffixes = [\"_ticks:ticks\"]\nunit_types = [\"Ticks:ticks\"]\n\
             unit_conversions = [\"to_ticks\"]\n",
        )
        .expect("parse");
        assert_eq!(
            cfg.unit_suffixes,
            vec![("_ticks".to_string(), "ticks".to_string())]
        );
        assert_eq!(
            cfg.unit_types,
            vec![("Ticks".to_string(), "ticks".to_string())]
        );
        assert_eq!(cfg.unit_conversions, vec!["to_ticks"]);
        // Defaults ship the repo's quantity tables; `value` (the raw-f64
        // escape hatch) must never count as a conversion.
        let d = Config::default();
        assert!(d
            .unit_suffixes
            .iter()
            .any(|(s, u)| s == "_us" && u == "microseconds"));
        assert!(d.unit_types.iter().any(|(t, _)| t == "LogMegabytes"));
        assert!(!d.unit_conversions.contains(&"value".to_string()));
    }

    #[test]
    fn determinism_tables_parse_and_have_defaults() {
        let cfg = parse(
            "[determinism]\ndeterminism_crates = [\"crates/x\"]\n\
             spawn_approved = [\"crates/x/src/pool.rs\"]\n\
             wall_clock_approved = [\"crates/y\"]\n\
             ordered_containers = [\"IndexMap\"]\n",
        )
        .expect("parse");
        assert_eq!(cfg.determinism_crates, vec!["crates/x"]);
        assert_eq!(cfg.spawn_approved, vec!["crates/x/src/pool.rs"]);
        assert_eq!(cfg.wall_clock_approved, vec!["crates/y"]);
        assert_eq!(cfg.ordered_containers, vec!["IndexMap"]);
        // Defaults: the blessed pool modules are exactly the audited
        // fan-outs, and bench may read wall-clock for BENCH notes.
        let d = Config::default();
        assert!(d
            .spawn_approved
            .contains(&"crates/parallel/src/pool.rs".to_string()));
        assert!(d
            .spawn_approved
            .contains(&"crates/core/src/batch.rs".to_string()));
        assert!(d.wall_clock_approved.contains(&"crates/bench".to_string()));
        assert!(d.determinism_crates.contains(&"crates/amr".to_string()));
        assert!(d
            .determinism_crates
            .contains(&"crates/parallel".to_string()));
        assert!(d.ordered_containers.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn malformed_unit_pairs_are_errors() {
        let err = parse("unit_suffixes = [\"_us\"]\n").unwrap_err();
        assert!(err.message.contains("name:unit"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse("[[allow]]\npath = \"a#b.rs\"\nlint = \"L1\"\ncount = 1\n").expect("ok");
        assert_eq!(cfg.allowances[0].path, "a#b.rs");
    }
}
