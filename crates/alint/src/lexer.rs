//! A small lossless-enough Rust lexer.
//!
//! `syn` is not available in this offline workspace, so the lint passes run
//! on a token stream produced here. The lexer understands everything that
//! can *hide* lint-relevant tokens — line/block comments (nested), string /
//! raw-string / byte-string / char literals, lifetimes — and classifies
//! numeric literals as integer or float, which the float-compare and
//! lossy-cast lints depend on.
//!
//! Comments are not discarded: `// alint: allow(...)` markers are collected
//! per line so lints can honour inline suppressions.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `as`, `fn`, `pub`, ...).
    Ident,
    /// Lifetime such as `'a` (the tick is included in the text).
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`, `3.`).
    Float,
    /// String, raw-string, byte-string, or C-string literal.
    Str,
    /// Char or byte literal.
    Char,
    /// Punctuation. Multi-character operators that matter to the lints
    /// (`==`, `!=`, `->`, `::`, `=>`, `<=`, `>=`, `&&`, `||`, `..`, `..=`)
    /// are single tokens; shift operators are deliberately left split so
    /// `Vec<Vec<T>>` closes two angle brackets.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

/// Lexer output: tokens plus the text of every comment, keyed by line.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// `(line, comment-text-without-delimiters)` in source order. A block
    /// comment contributes one entry at its starting line.
    pub comments: Vec<(u32, String)>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn peek_at(&self, offset: usize) -> u8 {
        self.src.get(self.pos + offset).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lex `src`. Unterminated literals are tolerated (consumed to EOF) so a
/// half-edited file still yields diagnostics for its intact prefix.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while !cur.eof() {
        let c = cur.peek();

        // Whitespace.
        if c.is_ascii_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == b'/' && cur.peek_at(1) == b'/' {
            let line = cur.line;
            let start = cur.pos + 2;
            while !cur.eof() && cur.peek() != b'\n' {
                cur.bump();
            }
            out.comments
                .push((line, src[start..cur.pos].trim().to_string()));
            continue;
        }
        if c == b'/' && cur.peek_at(1) == b'*' {
            let line = cur.line;
            let start = cur.pos + 2;
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            let mut end = cur.pos;
            while !cur.eof() && depth > 0 {
                if cur.peek() == b'/' && cur.peek_at(1) == b'*' {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.peek() == b'*' && cur.peek_at(1) == b'/' {
                    end = cur.pos;
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else {
                    cur.bump();
                }
            }
            if depth > 0 {
                end = cur.pos;
            }
            out.comments
                .push((line, src[start..end].trim().to_string()));
            continue;
        }

        // Raw strings / raw byte strings / raw identifiers.
        if c == b'r' || c == b'b' || c == b'c' {
            if let Some(token) = try_lex_prefixed(&mut cur, src) {
                out.tokens.push(token);
                continue;
            }
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let line = cur.line;
            let start = cur.pos;
            while is_ident_continue(cur.peek()) {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: src[start..cur.pos].to_string(),
                line,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            out.tokens.push(lex_number(&mut cur, src));
            continue;
        }

        // Lifetimes and char literals.
        if c == b'\'' {
            out.tokens.push(lex_tick(&mut cur, src));
            continue;
        }

        // Strings.
        if c == b'"' {
            out.tokens.push(lex_string(&mut cur, src));
            continue;
        }

        // Punctuation (with the multi-char set the lints care about).
        let line = cur.line;
        let start = cur.pos;
        let two = [c, cur.peek_at(1)];
        let three = [c, cur.peek_at(1), cur.peek_at(2)];
        let len = if &three == b"..=" {
            3
        } else if matches!(
            &two,
            b"==" | b"!=" | b"->" | b"::" | b"=>" | b"<=" | b">=" | b"&&" | b"||" | b".."
        ) {
            2
        } else {
            1
        };
        for _ in 0..len {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: src[start..cur.pos].to_string(),
            line,
        });
    }

    out
}

/// `r".."`, `r#".."#`, `br".."`, `b".."`, `b'.'`, `c".."`, `r#ident`.
/// Returns `None` when the cursor is not actually at one of those (plain
/// identifier starting with r/b/c), leaving the cursor untouched.
fn try_lex_prefixed(cur: &mut Cursor<'_>, src: &str) -> Option<Token> {
    let line = cur.line;
    let start = cur.pos;
    let c0 = cur.peek();

    // Longest prefix of [rbc] then # / " / '.
    let mut offset = 1;
    if (c0 == b'b' && (cur.peek_at(1) == b'r' || cur.peek_at(1) == b'c'))
        || (c0 == b'c' && cur.peek_at(1) == b'r')
    {
        offset = 2;
    }
    let after = cur.peek_at(offset);

    // Raw identifier r#foo (not r#" which is a raw string).
    if c0 == b'r' && after == b'#' && is_ident_start(cur.peek_at(2)) {
        cur.bump();
        cur.bump();
        while is_ident_continue(cur.peek()) {
            cur.bump();
        }
        return Some(Token {
            kind: TokenKind::Ident,
            text: src[start..cur.pos].to_string(),
            line,
        });
    }

    let raw = src[start..start + offset].contains('r');
    if raw && (after == b'#' || after == b'"') {
        for _ in 0..offset {
            cur.bump();
        }
        let mut hashes = 0usize;
        while cur.peek() == b'#' {
            hashes += 1;
            cur.bump();
        }
        if cur.peek() != b'"' {
            // `r#foo` handled above; anything else isn't a raw literal.
            cur.pos = start;
            return None;
        }
        cur.bump();
        // Scan for `"` followed by `hashes` hashes.
        'scan: while !cur.eof() {
            if cur.bump() == b'"' {
                for k in 0..hashes {
                    if cur.peek_at(k) != b'#' {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
        return Some(Token {
            kind: TokenKind::Str,
            text: src[start..cur.pos].to_string(),
            line,
        });
    }

    if !raw && after == b'"' {
        for _ in 0..offset {
            cur.bump();
        }
        let mut token = lex_string(cur, src);
        token.line = line;
        token.text = src[start..cur.pos].to_string();
        return Some(token);
    }

    if c0 == b'b' && cur.peek_at(1) == b'\'' {
        cur.bump();
        let mut token = lex_tick(cur, src);
        token.line = line;
        token.kind = TokenKind::Char;
        token.text = src[start..cur.pos].to_string();
        return Some(token);
    }

    None
}

fn lex_string(cur: &mut Cursor<'_>, src: &str) -> Token {
    let line = cur.line;
    let start = cur.pos;
    cur.bump(); // opening quote
    while !cur.eof() {
        match cur.bump() {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
    Token {
        kind: TokenKind::Str,
        text: src[start..cur.pos].to_string(),
        line,
    }
}

/// Lex at a `'`: lifetime (`'a`), loop label (`'outer:`) or char literal.
fn lex_tick(cur: &mut Cursor<'_>, src: &str) -> Token {
    let line = cur.line;
    let start = cur.pos;
    cur.bump(); // '
    if cur.peek() == b'\\' {
        // Escaped char literal.
        cur.bump();
        cur.bump();
        while !cur.eof() && cur.peek() != b'\'' {
            cur.bump(); // \u{...}
        }
        cur.bump();
        return Token {
            kind: TokenKind::Char,
            text: src[start..cur.pos].to_string(),
            line,
        };
    }
    if is_ident_start(cur.peek()) {
        // Could be 'a' (char) or 'a / 'abc (lifetime).
        let mut len = 0usize;
        while is_ident_continue(cur.peek_at(len)) {
            len += 1;
        }
        if cur.peek_at(len) == b'\'' {
            for _ in 0..=len {
                cur.bump();
            }
            return Token {
                kind: TokenKind::Char,
                text: src[start..cur.pos].to_string(),
                line,
            };
        }
        for _ in 0..len {
            cur.bump();
        }
        return Token {
            kind: TokenKind::Lifetime,
            text: src[start..cur.pos].to_string(),
            line,
        };
    }
    // `'(' )` or similar single char literal.
    cur.bump();
    if cur.peek() == b'\'' {
        cur.bump();
    }
    Token {
        kind: TokenKind::Char,
        text: src[start..cur.pos].to_string(),
        line,
    }
}

fn lex_number(cur: &mut Cursor<'_>, src: &str) -> Token {
    let line = cur.line;
    let start = cur.pos;
    let mut is_float = false;

    if cur.peek() == b'0' && matches!(cur.peek_at(1), b'x' | b'o' | b'b') {
        cur.bump();
        cur.bump();
        while cur.peek().is_ascii_alphanumeric() || cur.peek() == b'_' {
            cur.bump();
        }
        return Token {
            kind: TokenKind::Int,
            text: src[start..cur.pos].to_string(),
            line,
        };
    }

    while cur.peek().is_ascii_digit() || cur.peek() == b'_' {
        cur.bump();
    }
    // Fractional part: a `.` NOT followed by another `.` (range) or an
    // identifier start (method call like `1.max(2)`).
    if cur.peek() == b'.' && cur.peek_at(1) != b'.' && !is_ident_start(cur.peek_at(1)) {
        is_float = true;
        cur.bump();
        while cur.peek().is_ascii_digit() || cur.peek() == b'_' {
            cur.bump();
        }
    }
    // Exponent.
    if matches!(cur.peek(), b'e' | b'E') {
        let mut k = 1;
        if matches!(cur.peek_at(1), b'+' | b'-') {
            k = 2;
        }
        if cur.peek_at(k).is_ascii_digit() {
            is_float = true;
            for _ in 0..=k {
                cur.bump();
            }
            while cur.peek().is_ascii_digit() || cur.peek() == b'_' {
                cur.bump();
            }
        }
    }
    // Suffix (u32, f64, ...): a float suffix forces Float kind.
    if is_ident_start(cur.peek()) {
        let suffix_start = cur.pos;
        while is_ident_continue(cur.peek()) {
            cur.bump();
        }
        let suffix = &src[suffix_start..cur.pos];
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
    }

    Token {
        kind: if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        text: src[start..cur.pos].to_string(),
        line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = kinds("pub fn f(x: f64) -> u32 { x as u32 }");
        assert!(toks.contains(&(TokenKind::Ident, "as".into())));
        assert!(toks.contains(&(TokenKind::Punct, "->".into())));
    }

    #[test]
    fn float_vs_int_literals() {
        assert_eq!(kinds("1.0")[0].0, TokenKind::Float);
        assert_eq!(kinds("1.")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("1f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("42")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xFF")[0].0, TokenKind::Int);
        assert_eq!(kinds("1_000u64")[0].0, TokenKind::Int);
    }

    #[test]
    fn ranges_do_not_eat_floats() {
        let toks = kinds("0.05f64..5.0");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Float, "0.05f64".into()),
                (TokenKind::Punct, "..".into()),
                (TokenKind::Float, "5.0".into()),
            ]
        );
        let toks = kinds("0..n");
        assert_eq!(toks[0], (TokenKind::Int, "0".into()));
        assert_eq!(toks[1], (TokenKind::Punct, "..".into()));
    }

    #[test]
    fn method_on_literal_is_not_a_float() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokenKind::Int, "1".into()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "a.unwrap() == 1.0";"#);
        assert!(!toks.iter().any(|t| t.1 == "unwrap"));
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r###"let x = r#"panic!("no")"#; let r#type = 1;"###);
        assert!(!toks.iter().any(|t| t.1 == "panic"));
        assert!(toks.iter().any(|t| t.1 == "r#type"));
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let lexed = lex("let a = 1; // alint: allow(L4)\n/* unwrap() */ let b = 2;");
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0], (1, "alint: allow(L4)".to_string()));
        assert_eq!(lexed.comments[1], (2, "unwrap()".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(lexed.tokens[0].text, "fn");
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 2);
    }

    #[test]
    fn eq_operators_are_single_tokens() {
        let toks = kinds("a == b != c <= d >= e -> f => g");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Punct)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", ">=", "->", "=>"]);
    }

    #[test]
    fn shifts_stay_split_for_angle_matching() {
        let toks = kinds("Result<Vec<T>>");
        let gt = toks.iter().filter(|t| t.1 == ">").count();
        assert_eq!(gt, 2);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn byte_strings_and_chars() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'x';"#);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|t| t.0 == TokenKind::Char).count(), 1);
    }
}
