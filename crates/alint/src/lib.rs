//! alint — workspace static analysis for numerical-robustness invariants.
//!
//! The seven lints (L1 panic_site, L2 float_cmp, L3 typed_error, L4
//! lossy_cast, L5 unit_safety, L6 determinism_safety, L7 lock_discipline)
//! encode repo-specific rules that clippy cannot express because they
//! depend on which crate, module, or file the code lives in — or, for
//! L5/L6/L7, on the repo's own unit vocabulary, reproducibility contract,
//! and locking contract. L7 is the first *cross-file* pass: it runs on a
//! workspace call graph (`callgraph`) built from every scanned file
//! before any file is linted.
//! See `lints` for the rules, `config` for `alint.toml`, and `DESIGN.md`
//! ("Static analysis & invariants") for the policy.
//!
//! Run with `cargo run -p alint -- check` from the workspace root.

// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod lints;
pub mod workspace;

use config::Config;
use lints::Diagnostic;
use std::collections::BTreeMap;
use std::path::Path;

/// Outcome of a full workspace check, with the allowlist applied.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics not covered by any allowance — these fail the check.
    pub violations: Vec<Diagnostic>,
    /// Grandfathered diagnostics absorbed by `[[allow]]` budgets.
    pub grandfathered: Vec<Diagnostic>,
    /// Budgets larger than the current violation count: `(path, lint,
    /// budget, actual)`. The ratchet should be tightened.
    pub slack: Vec<(String, String, usize, usize)>,
    /// Allowances whose file has no diagnostics at all. Stale entries are
    /// *errors*, not notes: a forgotten entry would silently re-admit the
    /// very debt the ratchet paid down.
    pub unused: Vec<(String, String)>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Clean means no violations *and* no stale allowlist entries.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.unused.is_empty()
    }
}

/// Lint every source file under `root` and apply `config`'s allowlist.
pub fn check_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    check_workspace_lint(root, config, None)
}

/// Like [`check_workspace`], restricted to one lint ID when `lint` is
/// `Some("L2")` etc. — the single-pass iteration mode behind
/// `check --lint`. Allowances for *other* lints are dropped rather than
/// reported stale: the filter narrows the question, it must not invent
/// failures about lints it excluded.
pub fn check_workspace_lint(
    root: &Path,
    config: &Config,
    lint: Option<&str>,
) -> std::io::Result<Report> {
    let (mut raw, files) = raw_diagnostics(root, config)?;
    if let Some(id) = lint {
        raw.retain(|d| d.lint == id);
        let mut narrowed = config.clone();
        narrowed.allowances.retain(|a| a.lint == id);
        return Ok(apply_allowlist(raw, &narrowed, files));
    }
    Ok(apply_allowlist(raw, config, files))
}

/// All diagnostics before allowlist filtering, plus the file count.
///
/// This is a two-phase run: every file is lexed first so the workspace
/// [`callgraph::CallGraph`] (L7's cross-file context) can be built over
/// all of them, then each file is linted with the shared graph.
pub fn raw_diagnostics(root: &Path, config: &Config) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let files = workspace::scan(root, config)?;
    let units = lints::UnitTables::from_config(config);
    let det = lints::DeterminismTables::from_config(config);
    let locks = lints::LockTables::from_config(config);
    let n = files.len();
    let mut lexed_files = Vec::with_capacity(n);
    for file in &files {
        let src = std::fs::read_to_string(&file.abs_path)?;
        lexed_files.push(lexer::lex(&src));
    }
    let graph_input: Vec<(String, &lexer::Lexed)> = files
        .iter()
        .zip(&lexed_files)
        .map(|(file, lexed)| (file.rel_path.clone(), lexed))
        .collect();
    let graph = callgraph::CallGraph::build(&graph_input, &locks.expensive);
    let mut all = Vec::new();
    for (file, lexed) in files.iter().zip(&lexed_files) {
        all.extend(lints::lint_file(
            &file.rel_path,
            lexed,
            file.scope,
            &units,
            &det,
            &locks,
            &graph,
        ));
    }
    all.sort();
    Ok((all, n))
}

/// Every lint ID, in order.
pub const LINT_IDS: [&str; 7] = ["L1", "L2", "L3", "L4", "L5", "L6", "L7"];

/// Normalize a user-supplied lint selector (`L6`, `l6`, or
/// `determinism_safety`) to its canonical ID, or `None` when unknown.
pub fn normalize_lint_id(arg: &str) -> Option<&'static str> {
    LINT_IDS
        .into_iter()
        .find(|id| id.eq_ignore_ascii_case(arg) || lints::lint_name(id).eq_ignore_ascii_case(arg))
}

/// Split raw diagnostics into violations and grandfathered findings using
/// the ratchet budgets. Within one (path, lint) bucket the *first* `count`
/// diagnostics (in line order) are absorbed; anything beyond the budget is
/// a new violation.
pub fn apply_allowlist(
    diagnostics: Vec<Diagnostic>,
    config: &Config,
    files_scanned: usize,
) -> Report {
    let mut budgets: BTreeMap<(String, String), usize> = BTreeMap::new();
    for a in &config.allowances {
        *budgets.entry((a.path.clone(), a.lint.clone())).or_insert(0) += a.count;
    }

    let mut report = Report {
        files_scanned,
        ..Report::default()
    };
    let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in diagnostics {
        let key = (d.path.clone(), d.lint.to_string());
        let budget = budgets.get(&key).copied().unwrap_or(0);
        let u = used.entry(key).or_insert(0);
        if *u < budget {
            *u += 1;
            report.grandfathered.push(d);
        } else {
            report.violations.push(d);
        }
    }
    for ((path, lint), budget) in &budgets {
        let actual = used
            .get(&(path.clone(), lint.clone()))
            .copied()
            .unwrap_or(0);
        if actual == 0 {
            report.unused.push((path.clone(), lint.clone()));
        } else if actual < *budget {
            report
                .slack
                .push((path.clone(), lint.clone(), *budget, actual));
        }
    }
    report
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a report as one JSON object with a stable shape for CI tooling:
///
/// ```json
/// {"clean": false, "files_scanned": 2,
///  "violations": [{"path": "...", "line": 3, "lint": "L1",
///                  "name": "panic_site", "message": "..."}],
///  "grandfathered": 0,
///  "slack": [{"path": "...", "lint": "L1", "budget": 5, "actual": 1}],
///  "stale_allowances": [{"path": "...", "lint": "L4"}]}
/// ```
pub fn render_json(report: &Report) -> String {
    let violations: Vec<String> = report
        .violations
        .iter()
        .map(|d| {
            format!(
                "{{\"path\": \"{}\", \"line\": {}, \"lint\": \"{}\", \
                 \"name\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&d.path),
                d.line,
                d.lint,
                lints::lint_name(d.lint),
                json_escape(&d.message)
            )
        })
        .collect();
    let slack: Vec<String> = report
        .slack
        .iter()
        .map(|(path, lint, budget, actual)| {
            format!(
                "{{\"path\": \"{}\", \"lint\": \"{}\", \"budget\": {budget}, \
                 \"actual\": {actual}}}",
                json_escape(path),
                json_escape(lint)
            )
        })
        .collect();
    let stale: Vec<String> = report
        .unused
        .iter()
        .map(|(path, lint)| {
            format!(
                "{{\"path\": \"{}\", \"lint\": \"{}\"}}",
                json_escape(path),
                json_escape(lint)
            )
        })
        .collect();
    format!(
        "{{\"clean\": {}, \"files_scanned\": {}, \"violations\": [{}], \
         \"grandfathered\": {}, \"slack\": [{}], \"stale_allowances\": [{}]}}",
        report.is_clean(),
        report.files_scanned,
        violations.join(", "),
        report.grandfathered.len(),
        slack.join(", "),
        stale.join(", ")
    )
}

/// Render GitHub Actions workflow commands so a failing CI check annotates
/// the offending lines in the PR diff: one `::error` per violation and per
/// stale allowlist entry, one `::warning` per slack budget.
pub fn render_github(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.violations {
        out.push_str(&format!(
            "::error file={},line={},title=alint {}({})::{}\n",
            d.path,
            d.line,
            d.lint,
            lints::lint_name(d.lint),
            d.message
        ));
    }
    for (path, lint) in &report.unused {
        out.push_str(&format!(
            "::error file=alint.toml,title=alint stale allowance::unused [[allow]] entry \
             for {lint} in {path} — remove it\n"
        ));
    }
    for (path, lint, budget, actual) in &report.slack {
        out.push_str(&format!(
            "::warning file=alint.toml,title=alint ratchet slack::{path}: {lint} budget \
             is {budget} but only {actual} remain — tighten the [[allow]] entry\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::Allowance;

    fn diag(path: &str, line: u32, lint: &'static str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            lint,
            message: String::new(),
        }
    }

    fn config_with(allowances: Vec<Allowance>) -> Config {
        Config {
            allowances,
            ..Config::default()
        }
    }

    #[test]
    fn allowlist_absorbs_up_to_budget() {
        let cfg = config_with(vec![Allowance {
            path: "a.rs".into(),
            lint: "L1".into(),
            count: 2,
            reason: String::new(),
        }]);
        let diags = vec![
            diag("a.rs", 1, "L1"),
            diag("a.rs", 2, "L1"),
            diag("a.rs", 3, "L1"),
        ];
        let report = apply_allowlist(diags, &cfg, 1);
        assert_eq!(report.grandfathered.len(), 2);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].line, 3, "excess is the later site");
        assert!(report.slack.is_empty() && report.unused.is_empty());
    }

    #[test]
    fn slack_budgets_are_notes_but_stale_entries_fail() {
        let slack_only = config_with(vec![Allowance {
            path: "a.rs".into(),
            lint: "L1".into(),
            count: 5,
            reason: String::new(),
        }]);
        let report = apply_allowlist(vec![diag("a.rs", 1, "L1")], &slack_only, 1);
        assert!(report.is_clean(), "slack alone must not fail the check");
        assert_eq!(report.slack, vec![("a.rs".into(), "L1".into(), 5, 1)]);

        let with_stale = config_with(vec![Allowance {
            path: "gone.rs".into(),
            lint: "L4".into(),
            count: 1,
            reason: String::new(),
        }]);
        let report = apply_allowlist(Vec::new(), &with_stale, 1);
        assert!(report.violations.is_empty());
        assert_eq!(report.unused, vec![("gone.rs".into(), "L4".into())]);
        assert!(!report.is_clean(), "a stale allowance is an error");
    }

    #[test]
    fn json_rendering_has_a_stable_shape() {
        let cfg = config_with(vec![Allowance {
            path: "gone.rs".into(),
            lint: "L4".into(),
            count: 2,
            reason: String::new(),
        }]);
        let mut d = diag("crates/a/src/x.rs", 3, "L1");
        d.message = "say \"no\"".into();
        let report = apply_allowlist(vec![d], &cfg, 7);
        assert_eq!(
            render_json(&report),
            "{\"clean\": false, \"files_scanned\": 7, \"violations\": \
             [{\"path\": \"crates/a/src/x.rs\", \"line\": 3, \"lint\": \"L1\", \
             \"name\": \"panic_site\", \"message\": \"say \\\"no\\\"\"}], \
             \"grandfathered\": 0, \"slack\": [], \"stale_allowances\": \
             [{\"path\": \"gone.rs\", \"lint\": \"L4\"}]}"
        );
    }

    #[test]
    fn json_rendering_of_a_clean_report_is_empty_lists() {
        let report = apply_allowlist(Vec::new(), &config_with(Vec::new()), 4);
        assert_eq!(
            render_json(&report),
            "{\"clean\": true, \"files_scanned\": 4, \"violations\": [], \
             \"grandfathered\": 0, \"slack\": [], \"stale_allowances\": []}"
        );
    }

    #[test]
    fn github_rendering_annotates_violations_and_stale_entries() {
        let cfg = config_with(vec![Allowance {
            path: "gone.rs".into(),
            lint: "L4".into(),
            count: 2,
            reason: String::new(),
        }]);
        let mut d = diag("crates/a/src/x.rs", 3, "L5");
        d.message = "`+` mixes seconds and megabytes".into();
        let report = apply_allowlist(vec![d], &cfg, 7);
        let out = render_github(&report);
        assert!(
            out.contains(
                "::error file=crates/a/src/x.rs,line=3,title=alint L5(unit_safety)::\
                 `+` mixes seconds and megabytes"
            ),
            "{out}"
        );
        assert!(
            out.contains("::error file=alint.toml,title=alint stale allowance::"),
            "{out}"
        );
    }

    #[test]
    fn lint_selectors_normalize_ids_and_names() {
        assert_eq!(normalize_lint_id("L6"), Some("L6"));
        assert_eq!(normalize_lint_id("l2"), Some("L2"));
        assert_eq!(normalize_lint_id("determinism_safety"), Some("L6"));
        assert_eq!(normalize_lint_id("unit_safety"), Some("L5"));
        assert_eq!(normalize_lint_id("L7"), Some("L7"));
        assert_eq!(normalize_lint_id("lock_discipline"), Some("L7"));
        assert_eq!(normalize_lint_id("wibble"), None);
    }

    #[test]
    fn allowance_for_one_lint_does_not_cover_another() {
        let cfg = config_with(vec![Allowance {
            path: "a.rs".into(),
            lint: "L1".into(),
            count: 9,
            reason: String::new(),
        }]);
        let report = apply_allowlist(vec![diag("a.rs", 1, "L2")], &cfg, 1);
        assert_eq!(report.violations.len(), 1);
    }
}
