//! alint — workspace static analysis for numerical-robustness invariants.
//!
//! The four lints (L1 panic_site, L2 float_cmp, L3 typed_error, L4
//! lossy_cast) encode repo-specific rules that clippy cannot express
//! because they depend on which crate, module, or file the code lives in.
//! See `lints` for the rules, `config` for `alint.toml`, and `DESIGN.md`
//! ("Static analysis & invariants") for the policy.
//!
//! Run with `cargo run -p alint -- check` from the workspace root.

// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]

pub mod config;
pub mod lexer;
pub mod lints;
pub mod workspace;

use config::Config;
use lints::Diagnostic;
use std::collections::BTreeMap;
use std::path::Path;

/// Outcome of a full workspace check, with the allowlist applied.
#[derive(Debug, Default)]
pub struct Report {
    /// Diagnostics not covered by any allowance — these fail the check.
    pub violations: Vec<Diagnostic>,
    /// Grandfathered diagnostics absorbed by `[[allow]]` budgets.
    pub grandfathered: Vec<Diagnostic>,
    /// Budgets larger than the current violation count: `(path, lint,
    /// budget, actual)`. The ratchet should be tightened.
    pub slack: Vec<(String, String, usize, usize)>,
    /// Allowances whose file has no diagnostics at all (stale entries).
    pub unused: Vec<(String, String)>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lint every source file under `root` and apply `config`'s allowlist.
pub fn check_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let raw = raw_diagnostics(root, config)?;
    Ok(apply_allowlist(raw.0, config, raw.1))
}

/// All diagnostics before allowlist filtering, plus the file count.
pub fn raw_diagnostics(root: &Path, config: &Config) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let files = workspace::scan(root, config)?;
    let n = files.len();
    let mut all = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(&file.abs_path)?;
        let lexed = lexer::lex(&src);
        all.extend(lints::lint_file(&file.rel_path, &lexed, file.scope));
    }
    all.sort();
    Ok((all, n))
}

/// Split raw diagnostics into violations and grandfathered findings using
/// the ratchet budgets. Within one (path, lint) bucket the *first* `count`
/// diagnostics (in line order) are absorbed; anything beyond the budget is
/// a new violation.
pub fn apply_allowlist(
    diagnostics: Vec<Diagnostic>,
    config: &Config,
    files_scanned: usize,
) -> Report {
    let mut budgets: BTreeMap<(String, String), usize> = BTreeMap::new();
    for a in &config.allowances {
        *budgets.entry((a.path.clone(), a.lint.clone())).or_insert(0) += a.count;
    }

    let mut report = Report {
        files_scanned,
        ..Report::default()
    };
    let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in diagnostics {
        let key = (d.path.clone(), d.lint.to_string());
        let budget = budgets.get(&key).copied().unwrap_or(0);
        let u = used.entry(key).or_insert(0);
        if *u < budget {
            *u += 1;
            report.grandfathered.push(d);
        } else {
            report.violations.push(d);
        }
    }
    for ((path, lint), budget) in &budgets {
        let actual = used
            .get(&(path.clone(), lint.clone()))
            .copied()
            .unwrap_or(0);
        if actual == 0 {
            report.unused.push((path.clone(), lint.clone()));
        } else if actual < *budget {
            report
                .slack
                .push((path.clone(), lint.clone(), *budget, actual));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::Allowance;

    fn diag(path: &str, line: u32, lint: &'static str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line,
            lint,
            message: String::new(),
        }
    }

    fn config_with(allowances: Vec<Allowance>) -> Config {
        Config {
            allowances,
            ..Config::default()
        }
    }

    #[test]
    fn allowlist_absorbs_up_to_budget() {
        let cfg = config_with(vec![Allowance {
            path: "a.rs".into(),
            lint: "L1".into(),
            count: 2,
            reason: String::new(),
        }]);
        let diags = vec![
            diag("a.rs", 1, "L1"),
            diag("a.rs", 2, "L1"),
            diag("a.rs", 3, "L1"),
        ];
        let report = apply_allowlist(diags, &cfg, 1);
        assert_eq!(report.grandfathered.len(), 2);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].line, 3, "excess is the later site");
        assert!(report.slack.is_empty() && report.unused.is_empty());
    }

    #[test]
    fn slack_and_unused_budgets_are_reported() {
        let cfg = config_with(vec![
            Allowance {
                path: "a.rs".into(),
                lint: "L1".into(),
                count: 5,
                reason: String::new(),
            },
            Allowance {
                path: "gone.rs".into(),
                lint: "L4".into(),
                count: 1,
                reason: String::new(),
            },
        ]);
        let report = apply_allowlist(vec![diag("a.rs", 1, "L1")], &cfg, 1);
        assert!(report.is_clean());
        assert_eq!(report.slack, vec![("a.rs".into(), "L1".into(), 5, 1)]);
        assert_eq!(report.unused, vec![("gone.rs".into(), "L4".into())]);
    }

    #[test]
    fn allowance_for_one_lint_does_not_cover_another() {
        let cfg = config_with(vec![Allowance {
            path: "a.rs".into(),
            lint: "L1".into(),
            count: 9,
            reason: String::new(),
        }]);
        let report = apply_allowlist(vec![diag("a.rs", 1, "L2")], &cfg, 1);
        assert_eq!(report.violations.len(), 1);
    }
}
