//! The seven lint passes.
//!
//! | ID | name         | invariant                                                            |
//! |----|--------------|----------------------------------------------------------------------|
//! | L1 | `panic_site` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in lib crates |
//! | L2 | `float_cmp`  | no bare `==`/`!=` against floating-point expressions                 |
//! | L3 | `typed_error`| public `Result` fns in typed-error crates use a typed error          |
//! | L4 | `lossy_cast` | no unmarked float→int `as` casts in hot-path modules                 |
//! | L5 | `unit_safety`| no `+`/`-`/comparison between operands of different inferred units   |
//! | L6 | `determinism_safety` | no hash-order iteration into reductions/output, ad-hoc      |
//! |    |              | thread fan-out, or wall-clock/entropy in determinism-scoped crates   |
//! | L7 | `lock_discipline` | no expensive calls, order inversions, double-acquires, or       |
//! |    |              | `.await` inside lock-guard windows (call-graph backed)               |
//!
//! All passes skip `#[cfg(test)]` items and honour inline suppression
//! markers of the form `// alint: allow(L4)` or `// alint: allow(lossy_cast)`
//! on the same or the immediately preceding line.
//!
//! The passes run on the token stream from [`crate::lexer`]; where real type
//! information would be needed (L2, L4, L6) the heuristics are deliberately
//! conservative and documented on each pass. L7 is the first pass with
//! *cross-file* context: it consumes the workspace [`CallGraph`] built in
//! [`crate::callgraph`].

use crate::callgraph::{self, CallGraph};
use crate::config::Config;
use crate::lexer::{Lexed, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One finding, pointing at a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    /// Lint ID: `L1`..`L6`.
    pub lint: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}({}): {}",
            self.path,
            self.line,
            self.lint,
            lint_name(self.lint),
            self.message
        )
    }
}

/// Human-readable name for a lint ID.
pub fn lint_name(id: &str) -> &'static str {
    match id {
        "L1" => "panic_site",
        "L2" => "float_cmp",
        "L3" => "typed_error",
        "L4" => "lossy_cast",
        "L5" => "unit_safety",
        "L6" => "determinism_safety",
        "L7" => "lock_discipline",
        _ => "unknown",
    }
}

/// One-line description of what a lint enforces (shown by `alint lints`).
pub fn lint_description(id: &str) -> &'static str {
    match id {
        "L1" => "no unwrap()/expect()/panic!/todo!/unimplemented! in library crates",
        "L2" => "no bare ==/!= against floating-point expressions",
        "L3" => "public Result functions in typed-error crates return typed errors",
        "L4" => "float\u{2192}int `as` casts in hot-path modules carry an intent marker",
        "L5" => "no arithmetic/comparison between operands of different inferred units",
        "L6" => "no hash-order iteration, ad-hoc spawns, or wall-clock in deterministic code",
        "L7" => "no expensive calls, order inversions, re-locks, or .await under lock guards",
        _ => "unknown lint",
    }
}

/// Which passes apply to the file being linted (decided by scope config).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileScope {
    /// L1: the file belongs to a library crate's `src/` tree.
    pub lib_crate: bool,
    /// L2: the file is *not* in the approved-modules list.
    pub float_cmp: bool,
    /// L3: the file belongs to a typed-error crate's `src/` tree.
    pub typed_error: bool,
    /// L4: the file is a hot-path module.
    pub hot_path: bool,
    /// L5: unit-safety dataflow over suffix- and ascription-inferred units.
    pub unit_safety: bool,
    /// L6: the file sits in a determinism-scoped crate (bitwise
    /// reproducibility contract applies).
    pub determinism: bool,
    /// L6(b) exemption: the file is a blessed spawn/pool module whose
    /// fan-out has an audited ordered reduction.
    pub spawn_blessed: bool,
    /// L6(c) exemption: the file may read host wall-clock (bench/runner
    /// diagnostics that never feed priced results).
    pub wall_clock_approved: bool,
    /// L7: lock-guard windows are checked for expensive calls, order
    /// inversions, double-acquires, and `.await` (applies to every
    /// scanned file; the pass only fires near `.lock()`).
    pub lock_discipline: bool,
}

/// Unit-inference tables for L5, derived from the `[units]` section of
/// `alint.toml` (see [`Config`]): identifier-suffix → unit, quantity type
/// name → unit, and the allowlist of conversion identifiers whose presence
/// marks a mixed-unit expression as an intentional conversion.
#[derive(Debug, Clone, Default)]
pub struct UnitTables {
    /// `(suffix, unit)` sorted longest-suffix-first so `_node_hours` wins
    /// over any shorter overlapping suffix.
    suffixes: Vec<(String, String)>,
    types: BTreeMap<String, String>,
    conversions: BTreeSet<String>,
}

impl UnitTables {
    /// Build the lookup tables from a parsed configuration.
    pub fn from_config(config: &Config) -> Self {
        let mut suffixes = config.unit_suffixes.clone();
        suffixes.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
        UnitTables {
            suffixes,
            types: config.unit_types.iter().cloned().collect(),
            conversions: config.unit_conversions.iter().cloned().collect(),
        }
    }

    /// Unit inferred from an identifier's suffix, matched case-insensitively
    /// (`MEM_LIMIT_MB` and `base_mem_mb` both read as megabytes). The
    /// identifier must be strictly longer than the suffix.
    fn suffix_unit(&self, ident: &str) -> Option<&str> {
        let lower = ident.to_ascii_lowercase();
        self.suffixes
            .iter()
            .find(|(suffix, _)| lower.len() > suffix.len() && lower.ends_with(suffix.as_str()))
            .map(|(_, unit)| unit.as_str())
    }

    fn is_empty(&self) -> bool {
        self.suffixes.is_empty() && self.types.is_empty()
    }
}

/// Lookup tables for L6, derived from the `[determinism]` section of
/// `alint.toml`: the identifiers (container types and sort methods) whose
/// presence marks an iteration as order-stable.
#[derive(Debug, Clone, Default)]
pub struct DeterminismTables {
    ordered: BTreeSet<String>,
}

impl DeterminismTables {
    /// Build the ordered-identifier set from a parsed configuration.
    pub fn from_config(config: &Config) -> Self {
        DeterminismTables {
            ordered: config.ordered_containers.iter().cloned().collect(),
        }
    }
}

/// Lookup tables for L7, derived from the `[locks]` section of
/// `alint.toml`: receiver identifier → lock class, the total acquisition
/// order over classes (lowest first), and the expensive-identifier set
/// fed to the call graph.
#[derive(Debug, Clone, Default)]
pub struct LockTables {
    classes: BTreeMap<String, String>,
    order: Vec<String>,
    /// Identifiers that make a call expensive by fiat; public so the
    /// call-graph build can consume the same set.
    pub expensive: BTreeSet<String>,
}

impl LockTables {
    /// Build the lock tables from a parsed configuration.
    pub fn from_config(config: &Config) -> Self {
        LockTables {
            classes: config.lock_classes.iter().cloned().collect(),
            order: config.lock_order.clone(),
            expensive: config.expensive_idents.iter().cloned().collect(),
        }
    }

    /// L7 is disabled when every table is emptied (mirrors L5's
    /// empty-unit-tables switch). An empty *order* alone does not
    /// disable the pass — it makes every acquisition unordered, which
    /// is a violation at each site (the probe discipline).
    fn is_empty(&self) -> bool {
        self.classes.is_empty() && self.order.is_empty()
    }

    /// Rank of a class in the acquisition order (0 = lowest).
    fn rank(&self, class: &str) -> Option<usize> {
        self.order.iter().position(|c| c == class)
    }

    /// Lock class of a receiver chain: the innermost receiver identifier
    /// with a declared class wins (`self.warm` → `warm`). Returns the
    /// class and whether it was declared; undeclared receivers fall back
    /// to their own identifier so nesting checks still have a name.
    fn class_of(&self, receiver: &[String]) -> (String, bool) {
        for ident in receiver.iter().rev() {
            if let Some(class) = self.classes.get(ident) {
                return (class.clone(), true);
            }
        }
        let fallback = receiver
            .iter()
            .rev()
            .find(|i| *i != "self" && *i != "Self")
            .or_else(|| receiver.last())
            .map(String::as_str)
            .unwrap_or("<expr>");
        (fallback.to_string(), false)
    }
}

/// Run every applicable pass over one lexed file.
pub fn lint_file(
    path: &str,
    lexed: &Lexed,
    scope: FileScope,
    units: &UnitTables,
    det: &DeterminismTables,
    locks: &LockTables,
    graph: &CallGraph,
) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let in_test = test_region_mask(tokens);
    let suppressed = suppression_markers(lexed);
    let mut diagnostics = Vec::new();

    let mut push = |lint: &'static str, line: u32, message: String| {
        let by_id = suppressed
            .get(&line)
            .or_else(|| suppressed.get(&(line.saturating_sub(1))));
        if let Some(ids) = by_id {
            if ids.contains(lint) || ids.contains(lint_name(lint)) {
                return;
            }
        }
        diagnostics.push(Diagnostic {
            path: path.to_string(),
            line,
            lint,
            message,
        });
    };

    if scope.lib_crate {
        l1_panic_sites(tokens, &in_test, &mut push);
    }
    if scope.float_cmp {
        l2_float_cmp(tokens, &in_test, &mut push);
    }
    if scope.typed_error {
        l3_typed_errors(tokens, &in_test, &mut push);
    }
    if scope.hot_path {
        l4_lossy_casts(tokens, &in_test, &mut push);
    }
    if scope.unit_safety {
        l5_unit_safety(tokens, &in_test, units, &mut push);
    }
    if scope.determinism {
        l6_determinism(tokens, &in_test, det, scope, &mut push);
    }
    if scope.lock_discipline {
        l7_lock_discipline(path, tokens, &in_test, locks, graph, &mut push);
    }

    diagnostics.sort();
    diagnostics
}

/// Lines carrying `alint: allow(...)` markers, with the lint IDs/names they
/// suppress. A marker suppresses findings on its own line and the next one.
fn suppression_markers(lexed: &Lexed) -> BTreeMap<u32, BTreeSet<String>> {
    let mut map: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for (line, text) in &lexed.comments {
        let Some(rest) = text.strip_prefix("alint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            continue;
        };
        let entry = map.entry(*line).or_default();
        for id in args.split(',') {
            entry.insert(id.trim().to_string());
        }
    }
    // A marker on line N also covers line N+1 (comment-above style).
    let extended: Vec<(u32, BTreeSet<String>)> = map
        .iter()
        .map(|(line, ids)| (*line + 1, ids.clone()))
        .collect();
    for (line, ids) in extended {
        map.entry(line).or_default().extend(ids);
    }
    map
}

/// Boolean mask over tokens: `true` when the token is inside a
/// `#[cfg(test)]`-gated item (attribute plus the item it decorates).
fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].text == "#" && i + 1 < tokens.len() && tokens[i + 1].text == "[") {
            i += 1;
            continue;
        }
        // Parse the attribute token range.
        let attr_start = i;
        let Some(attr_end) = matching_delim(tokens, i + 1, "[", "]") else {
            break;
        };
        let is_cfg_test = tokens[attr_start..=attr_end]
            .windows(3)
            .any(|w| w[0].text == "cfg" && w[1].text == "(" && w[2].text == "test");
        if !is_cfg_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then consume the decorated item:
        // everything up to and including its body `{..}` or terminating `;`.
        let mut j = attr_end + 1;
        while j + 1 < tokens.len() && tokens[j].text == "#" && tokens[j + 1].text == "[" {
            match matching_delim(tokens, j + 1, "[", "]") {
                Some(end) => j = end + 1,
                None => break,
            }
        }
        let mut depth = 0i64;
        let mut item_end = tokens.len() - 1;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        item_end = k;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    item_end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for slot in mask.iter_mut().take(item_end + 1).skip(attr_start) {
            *slot = true;
        }
        i = item_end + 1;
    }
    mask
}

/// Index of the delimiter closing `tokens[open_at]` (which must equal
/// `open`), or `None` when unbalanced.
fn matching_delim(tokens: &[Token], open_at: usize, open: &str, close: &str) -> Option<usize> {
    debug_assert_eq!(tokens[open_at].text, open);
    let mut depth = 0i64;
    for (k, token) in tokens.iter().enumerate().skip(open_at) {
        if token.text == open {
            depth += 1;
        } else if token.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

const INT_TYPES: [&str; 12] = [
    "usize", "u64", "u32", "u16", "u8", "u128", "isize", "i64", "i32", "i16", "i8", "i128",
];

/// Float-returning method names used to classify a cast operand as floating
/// point without type information. Ambiguous names that exist on both int
/// and float types (`abs`, `min`, `max`, `pow*` on ints) are excluded.
const FLOAT_METHODS: [&str; 20] = [
    "sqrt",
    "ln",
    "log10",
    "log2",
    "exp",
    "exp2",
    "exp_m1",
    "ln_1p",
    "floor",
    "ceil",
    "round",
    "trunc",
    "powf",
    "sin",
    "cos",
    "tan",
    "hypot",
    "to_degrees",
    "to_radians",
    "mul_add",
];

/// L1: panic-capable constructs in library code.
fn l1_panic_sites(
    tokens: &[Token],
    in_test: &[bool],
    push: &mut impl FnMut(&'static str, u32, String),
) {
    for (i, token) in tokens.iter().enumerate() {
        if in_test[i] || token.kind != TokenKind::Ident {
            continue;
        }
        let next = tokens.get(i + 1).map(|t| t.text.as_str());
        match token.text.as_str() {
            // `.unwrap()` / `.expect(` method calls. Requiring the leading
            // dot keeps locally defined fns named `unwrap` out of scope.
            "unwrap" | "expect" if next == Some("(") && i > 0 && tokens[i - 1].text == "." => {
                push(
                    "L1",
                    token.line,
                    format!(
                        ".{}() can panic mid-run; propagate a typed error instead",
                        token.text
                    ),
                );
            }
            "panic" | "todo" | "unimplemented" if next == Some("!") => {
                push(
                    "L1",
                    token.line,
                    format!(
                        "{}! aborts the whole sweep; return the crate's error type",
                        token.text
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Variables bound with an explicit float type ascription —
/// `let [mut] name: [&[mut]] (f64 | f32) = …` — outside test regions.
/// Names that also carry a *non-float* ascription anywhere in the file
/// (shadowing, reuse across functions) are dropped: without real scopes
/// the pass cannot tell which binding a later use refers to, and a false
/// positive on an integer comparison would be worse than staying quiet.
/// Unascribed `let name = …` bindings are not tracked at all — they carry
/// no type evidence either way.
fn float_ascribed_vars(tokens: &[Token], in_test: &[bool]) -> BTreeSet<String> {
    let mut float_names = BTreeSet::new();
    let mut nonfloat_names = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if in_test[i] || tokens[i].kind != TokenKind::Ident || tokens[i].text != "let" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        // Only simple `IDENT :` bindings — destructuring patterns bind
        // through the *inner* types and are left to clippy.
        let Some(name) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            i = j;
            continue;
        };
        if tokens.get(j + 1).map(|t| t.text.as_str()) != Some(":") {
            i = j + 1;
            continue;
        }
        // The ascribed type: tokens up to the initializer `=` or the `;`
        // of an uninitialized binding, nesting-aware so `Vec<f64>` or
        // tuple types never read as a bare scalar.
        let mut k = j + 2;
        let mut depth = 0i64;
        let mut ty: Vec<&Token> = Vec::new();
        while let Some(token) = tokens.get(k) {
            match token.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                "=" | ";" if depth <= 0 => break,
                _ => {}
            }
            ty.push(token);
            k += 1;
        }
        // Strip reference layers; what remains must be exactly the scalar.
        let scalar: Vec<&str> = ty
            .iter()
            .filter(|t| !(t.text == "&" || t.text == "mut" || t.kind == TokenKind::Lifetime))
            .map(|t| t.text.as_str())
            .collect();
        if scalar == ["f64"] || scalar == ["f32"] {
            float_names.insert(name.text.clone());
        } else {
            nonfloat_names.insert(name.text.clone());
        }
        i = k;
    }
    for name in &nonfloat_names {
        float_names.remove(name);
    }
    float_names
}

/// L2: `==` / `!=` with a floating-point side.
///
/// Without type inference the pass flags comparisons where either operand's
/// adjacent token chain is *manifestly* float: a float literal, an `f64`/
/// `f32` path, `NAN`/`INFINITY`/`EPSILON` consts, a call to a
/// float-returning method, or a variable the file ascribes a float type
/// via `let` (see [`float_ascribed_vars`]). Opaque `a == b` on fn
/// parameters is still not flagged — clippy's `float_cmp` covers the
/// remaining typed cases.
fn l2_float_cmp(
    tokens: &[Token],
    in_test: &[bool],
    push: &mut impl FnMut(&'static str, u32, String),
) {
    let ascribed = float_ascribed_vars(tokens, in_test);
    let is_floaty_at = |idx: usize| -> bool {
        let Some(token) = tokens.get(idx) else {
            return false;
        };
        match token.kind {
            TokenKind::Float => true,
            TokenKind::Ident => {
                matches!(
                    token.text.as_str(),
                    "f64" | "f32" | "NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON"
                ) || FLOAT_METHODS.contains(&token.text.as_str())
                    || (ascribed.contains(&token.text)
                        // A following `(` means a call, not the variable.
                        && tokens.get(idx + 1).map(|t| t.text.as_str()) != Some("("))
            }
            _ => false,
        }
    };
    for (i, token) in tokens.iter().enumerate() {
        if in_test[i] || token.kind != TokenKind::Punct {
            continue;
        }
        if token.text != "==" && token.text != "!=" {
            continue;
        }
        // Look a few tokens in both directions: enough to see through
        // `x.method() == 0.0` and `f64::NAN != y` without crossing `;`.
        let window = 5usize;
        let before = (i.saturating_sub(window)..i)
            .rev()
            .take_while(|&k| !matches!(tokens[k].text.as_str(), ";" | "{" | "}" | ","));
        let after = (i + 1..tokens.len().min(i + 1 + window))
            .take_while(|&k| !matches!(tokens[k].text.as_str(), ";" | "{" | "}" | ","));
        let floaty = before.clone().any(is_floaty_at) || after.clone().any(is_floaty_at);
        if floaty {
            push(
                "L2",
                token.line,
                format!(
                    "bare `{}` on a floating-point value; compare with an \
                     epsilon or use total_cmp",
                    token.text
                ),
            );
        }
    }
}

/// L3: public functions returning `Result` must carry the crate's typed
/// error — `Box<dyn Error>`, `String`, `&str`, and `()` error slots are
/// rejected. A one-argument `Result<T>` is the crate's alias and passes.
fn l3_typed_errors(
    tokens: &[Token],
    in_test: &[bool],
    push: &mut impl FnMut(&'static str, u32, String),
) {
    let mut i = 0usize;
    while i < tokens.len() {
        // Match `pub fn name` — `pub(crate)` and friends are not public API.
        if tokens[i].text != "pub" || in_test[i] {
            i += 1;
            continue;
        }
        if tokens.get(i + 1).is_some_and(|t| t.text == "(") {
            i += 1;
            continue;
        }
        let Some(fn_idx) = tokens
            .get(i + 1)
            .filter(|t| t.text == "fn")
            .map(|_| i + 1)
            .or_else(|| {
                // `pub const fn` / `pub unsafe fn` / `pub async fn`.
                tokens
                    .get(i + 2)
                    .filter(|t| t.text == "fn")
                    .map(|_| i + 2)
                    .filter(|_| matches!(tokens[i + 1].text.as_str(), "const" | "unsafe" | "async"))
            })
        else {
            i += 1;
            continue;
        };
        let fn_line = tokens[fn_idx].line;
        // Find the `->` of this signature, tracking nesting so closures or
        // nested parens inside default bounds don't confuse the scan; stop
        // at the body `{` or a trait-decl `;`.
        let mut j = fn_idx + 1;
        let mut depth = 0i64;
        let mut arrow = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "->" if depth == 0 => {
                    arrow = Some(j);
                    break;
                }
                "{" | ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else {
            i = j + 1;
            continue;
        };
        // Return type: tokens from arrow+1 to the body `{`, a `;`, or a
        // top-level `where`.
        let mut k = arrow + 1;
        let mut angle = 0i64;
        let mut ret_end = None;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | ";" if angle <= 0 => {
                    ret_end = Some(k);
                    break;
                }
                "where" if angle <= 0 => {
                    ret_end = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(ret_end) = ret_end else {
            i = k;
            continue;
        };
        let ret = &tokens[arrow + 1..ret_end];
        if let Some(message) = untyped_result_error(ret) {
            push("L3", fn_line, message);
        }
        i = ret_end + 1;
    }
}

/// Inspect a return-type token slice for a `Result` whose error argument is
/// stringly or type-erased. Returns the diagnostic message when violated.
fn untyped_result_error(ret: &[Token]) -> Option<String> {
    let result_idx = ret
        .iter()
        .position(|t| t.text == "Result" || t.text == "AlResult")?;
    let open = result_idx + 1;
    if ret.get(open).map(|t| t.text.as_str()) != Some("<") {
        return None;
    }
    // Split the generic arguments at depth-1 commas.
    let mut depth = 0i64;
    let mut args: Vec<Vec<&Token>> = vec![Vec::new()];
    let mut closed = false;
    for token in &ret[open..] {
        match token.text.as_str() {
            "<" => {
                depth += 1;
                if depth == 1 {
                    continue;
                }
            }
            ">" => {
                depth -= 1;
                if depth == 0 {
                    closed = true;
                    break;
                }
            }
            "," if depth == 1 => {
                args.push(Vec::new());
                continue;
            }
            _ => {}
        }
        args.last_mut()?.push(token);
    }
    if !closed || args.len() < 2 {
        // `Result<T>`: the crate's typed alias.
        return None;
    }
    let err_arg = &args[1];
    let texts: Vec<&str> = err_arg.iter().map(|t| t.text.as_str()).collect();
    if texts.windows(2).any(|w| w == ["Box", "<"]) && err_arg.iter().any(|t| t.text == "dyn") {
        return Some(
            "public Result uses Box<dyn Error>; thread the crate's typed error".to_string(),
        );
    }
    if texts == ["String"] || texts.contains(&"str") {
        return Some(
            "public Result uses a stringly error; thread the crate's typed error".to_string(),
        );
    }
    if texts.is_empty() || texts == ["(", ")"] {
        return Some(
            "public Result uses `()` as the error; thread the crate's typed error".to_string(),
        );
    }
    None
}

/// L4: `expr as {int}` where the operand is manifestly floating-point.
///
/// The operand is recovered by walking the postfix-expression chain
/// backwards from `as` (matched `()`/`[]` groups, `.` chains, `::` paths);
/// it is "manifestly float" under the same evidence L2 uses. Intentional
/// truncations carry an `// alint: allow(lossy_cast)` marker.
fn l4_lossy_casts(
    tokens: &[Token],
    in_test: &[bool],
    push: &mut impl FnMut(&'static str, u32, String),
) {
    for i in 0..tokens.len() {
        if in_test[i] || tokens[i].text != "as" || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        if !INT_TYPES.contains(&target.text.as_str()) {
            continue;
        }
        let start = cast_operand_start(tokens, i);
        let operand = &tokens[start..i];
        let floaty = operand.iter().enumerate().any(|(k, t)| match t.kind {
            TokenKind::Float => true,
            TokenKind::Ident => {
                t.text == "f64"
                    || t.text == "f32"
                    || (FLOAT_METHODS.contains(&t.text.as_str())
                        && operand.get(k + 1).is_some_and(|n| n.text == "("))
            }
            _ => false,
        });
        if floaty {
            push(
                "L4",
                tokens[i].line,
                format!(
                    "float → {} cast truncates; mark intent with \
                     `// alint: allow(lossy_cast)` or round explicitly",
                    target.text
                ),
            );
        }
    }
}

/// First token index of the cast operand preceding `tokens[as_idx]`.
fn cast_operand_start(tokens: &[Token], as_idx: usize) -> usize {
    let mut j = as_idx;
    loop {
        if j == 0 {
            return 0;
        }
        let prev = &tokens[j - 1];
        match prev.text.as_str() {
            ")" | "]" => {
                let close_text = prev.text.clone();
                let open_text = if close_text == ")" { "(" } else { "[" };
                // Walk back to the matching opener.
                let mut depth = 0i64;
                let mut k = j - 1;
                loop {
                    if tokens[k].text == close_text {
                        depth += 1;
                    } else if tokens[k].text == open_text {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        return 0;
                    }
                    k -= 1;
                }
                j = k;
            }
            "." | "::" => {
                if j - 1 == 0 {
                    return 0;
                }
                j -= 1;
            }
            _ => match prev.kind {
                TokenKind::Ident | TokenKind::Int | TokenKind::Float => {
                    // Part of the operand if connected via `.`/`::` or it is
                    // the operand head; decide by looking one further back.
                    let head = j - 1;
                    let connector = head
                        .checked_sub(1)
                        .map(|k| tokens[k].text == "." || tokens[k].text == "::")
                        .unwrap_or(false);
                    if connector {
                        j = head;
                    } else {
                        return head;
                    }
                }
                _ => return j,
            },
        }
    }
}

/// Variables bound with an explicit quantity-type ascription —
/// `let [mut] name: [&[mut]] Seconds = …` — outside test regions, mapped to
/// the unit the type table assigns. As with [`float_ascribed_vars`], names
/// the file later ascribes a *different* unit type (shadowing, reuse across
/// functions) are dropped: without real scopes the pass cannot tell which
/// binding a use refers to. Non-quantity ascriptions (`f64`, `usize`, …)
/// contribute nothing either way — the identifier's suffix remains the
/// evidence for those bindings.
fn unit_ascribed_vars(
    tokens: &[Token],
    in_test: &[bool],
    units: &UnitTables,
) -> BTreeMap<String, String> {
    let mut unit_names: BTreeMap<String, String> = BTreeMap::new();
    let mut conflicted: BTreeSet<String> = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if in_test[i] || tokens[i].kind != TokenKind::Ident || tokens[i].text != "let" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name) = tokens.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            i = j;
            continue;
        };
        if tokens.get(j + 1).map(|t| t.text.as_str()) != Some(":") {
            i = j + 1;
            continue;
        }
        let mut k = j + 2;
        let mut depth = 0i64;
        let mut ty: Vec<&Token> = Vec::new();
        while let Some(token) = tokens.get(k) {
            match token.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                "=" | ";" if depth <= 0 => break,
                _ => {}
            }
            ty.push(token);
            k += 1;
        }
        let scalar: Vec<&str> = ty
            .iter()
            .filter(|t| !(t.text == "&" || t.text == "mut" || t.kind == TokenKind::Lifetime))
            .map(|t| t.text.as_str())
            .collect();
        if let [single] = scalar.as_slice() {
            if let Some(unit) = units.types.get(*single) {
                match unit_names.get(name.text.as_str()) {
                    Some(existing) if existing != unit => {
                        conflicted.insert(name.text.clone());
                    }
                    _ => {
                        unit_names.insert(name.text.clone(), unit.clone());
                    }
                }
            }
        }
        i = k;
    }
    for name in &conflicted {
        unit_names.remove(name);
    }
    unit_names
}

/// L5: `+`/`-` (including `+=`/`-=`) and comparisons between operands whose
/// inferred units differ.
///
/// A unit is inferred for an identifier from, in order: a `let` ascription
/// to a quantity type (see [`unit_ascribed_vars`]), the quantity type table
/// itself (`Seconds::new(…)` carries seconds), and the longest matching
/// identifier suffix (`_us`, `_mb`, …; case-insensitive). Each operand side
/// is a short token window around the operator, stopping at expression
/// boundaries; the *nearest* unit-bearing identifier on each side decides
/// that side's unit. An operator is flagged only when **both** sides carry
/// units and they disagree — one-sided evidence never flags — and any
/// conversion-allowlist identifier (`to_seconds`, `log10`, …) in either
/// window marks the expression as an intentional conversion and suppresses
/// the finding. `.value()` escapes to raw `f64` are deliberately *not* on
/// the allowlist: `a_us.value() < b_seconds.value()` is exactly the bug
/// class this pass exists to catch.
fn l5_unit_safety(
    tokens: &[Token],
    in_test: &[bool],
    units: &UnitTables,
    push: &mut impl FnMut(&'static str, u32, String),
) {
    if units.is_empty() {
        return;
    }
    let ascribed = unit_ascribed_vars(tokens, in_test, units);
    let unit_at = |idx: usize| -> Option<&str> {
        let token = tokens.get(idx)?;
        if token.kind != TokenKind::Ident {
            return None;
        }
        if let Some(unit) = ascribed.get(&token.text) {
            return Some(unit);
        }
        if let Some(unit) = units.types.get(&token.text) {
            return Some(unit);
        }
        units.suffix_unit(&token.text)
    };
    let converts_at = |idx: usize| -> bool {
        tokens
            .get(idx)
            .is_some_and(|t| t.kind == TokenKind::Ident && units.conversions.contains(&t.text))
    };
    // Expression boundaries: statement/block punctuation, short-circuit
    // operators, assignment, ascription/arrow (type positions), and the
    // statement keywords. Parentheses are transparent on purpose so units
    // are seen through call layers like `f(a_us) + g(b_us)`.
    let stops = |k: usize| {
        matches!(
            tokens[k].text.as_str(),
            ";" | "{"
                | "}"
                | ","
                | "&&"
                | "||"
                | "="
                | "=>"
                | ":"
                | "->"
                | "return"
                | "let"
                | "if"
                | "else"
                | "while"
                | "for"
                | "match"
                | "in"
        )
    };
    for (i, token) in tokens.iter().enumerate() {
        if in_test[i] || token.kind != TokenKind::Punct {
            continue;
        }
        let op = token.text.as_str();
        let arithmetic = matches!(op, "+" | "-");
        if !arithmetic && !matches!(op, "<" | "<=" | ">" | ">=" | "==" | "!=") {
            continue;
        }
        // `+=`/`-=` lex as two tokens; the right operand starts past the `=`
        // and the display operator is reassembled for the message.
        let mut right_from = i + 1;
        let mut shown = op.to_string();
        if arithmetic && tokens.get(i + 1).is_some_and(|t| t.text == "=") {
            right_from = i + 2;
            shown.push('=');
        }
        let window = 6usize;
        let left: Vec<usize> = (0..i)
            .rev()
            .take_while(|&k| !stops(k))
            .take(window)
            .collect();
        let right: Vec<usize> = (right_from..tokens.len())
            .take_while(|&k| !stops(k))
            .take(window)
            .collect();
        if left.iter().chain(right.iter()).any(|&k| converts_at(k)) {
            continue;
        }
        let left_unit = left.iter().find_map(|&k| unit_at(k));
        let right_unit = right.iter().find_map(|&k| unit_at(k));
        if let (Some(lhs), Some(rhs)) = (left_unit, right_unit) {
            if lhs != rhs {
                push(
                    "L5",
                    token.line,
                    format!("`{shown}` mixes {lhs} and {rhs}; convert explicitly before combining"),
                );
            }
        }
    }
}

/// Methods that iterate a hash container in `RandomState` (arrival) order.
const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Identifiers that make iteration order *observable*: float reductions,
/// output/aggregation order, and the solver's work accounting. Compound
/// `+=` accumulation is detected separately (it lexes as `+` `=`).
const ORDER_SINKS: [&str; 16] = [
    "sum",
    "fold",
    "product",
    "collect",
    "extend",
    "push",
    "push_str",
    "write",
    "writeln",
    "print",
    "println",
    "eprint",
    "eprintln",
    "format",
    "join",
    "WorkStats",
];

/// Rayon-style parallel-iterator entry points (the crate is not a
/// dependency today; the lint keeps it that way in deterministic code).
const PAR_ITER_METHODS: [&str; 6] = [
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_bridge",
    "par_chunks",
    "par_extend",
];

/// Variables bound or ascribed to `HashMap`/`HashSet` — fn parameters
/// (`m: &HashMap<..>`), `let` ascriptions, struct fields, and
/// `let m = HashMap::new()` initializers — outside test regions. As with
/// the L2/L5 trackers the token stream has no scopes, so this
/// over-approximates: a name is hash-typed for the whole file.
fn hash_bound_vars(tokens: &[Token], in_test: &[bool]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, token) in tokens.iter().enumerate() {
        if in_test[i] || token.kind != TokenKind::Ident {
            continue;
        }
        if token.text != "HashMap" && token.text != "HashSet" {
            continue;
        }
        // Skip a leading path (`std :: collections ::`).
        let mut p = i;
        while p >= 2 && tokens[p - 1].text == "::" && tokens[p - 2].kind == TokenKind::Ident {
            p -= 2;
        }
        // Strip reference layers of a type position.
        let mut q = p;
        while q >= 1
            && (tokens[q - 1].text == "&"
                || tokens[q - 1].text == "mut"
                || tokens[q - 1].kind == TokenKind::Lifetime)
        {
            q -= 1;
        }
        if q >= 2
            && (tokens[q - 1].text == ":" || tokens[q - 1].text == "=")
            && tokens[q - 2].kind == TokenKind::Ident
        {
            names.insert(tokens[q - 2].text.clone());
        }
    }
    names
}

/// L6: nondeterminism sources inside determinism-scoped crates.
///
/// Three sub-rules, all heuristic and deliberately conservative:
///
/// (a) **hash-order iteration** — an iteration over a `HashMap`/`HashSet`
/// (tracked via [`hash_bound_vars`], or the type name itself) whose
/// following stop-bounded window contains an order-observable sink: a
/// float reduction (`sum`/`fold`/`product`, compound `+=`), output or
/// aggregation ordering (`push`/`collect`/`extend`/`write…`), or
/// `WorkStats`. Iteration with no sink in the window is silent (a pure
/// membership sweep is order-free), and any ordered-path identifier from
/// the `[determinism]` `ordered_containers` table (`BTreeMap`, `sort`, …)
/// near the site suppresses the finding.
///
/// (b) **ad-hoc thread fan-out** — `.spawn(`/`::spawn(` calls and
/// rayon-style parallel iterators outside the blessed pool modules
/// (`scope.spawn_blessed`). The blessed modules own the workspace's
/// ordered-reduction machinery; everything else must route through them.
///
/// (c) **wall-clock and entropy** — `Instant::now`/`SystemTime::now`,
/// `from_entropy`, `thread_rng`, `OsRng`, and `rand::random` outside the
/// wall-clock-approved modules (`scope.wall_clock_approved`). Priced and
/// model code must stay counted-work-only (see the contract note in
/// `crates/amr/src/machine.rs`) and derive randomness from explicit seeds.
fn l6_determinism(
    tokens: &[Token],
    in_test: &[bool],
    det: &DeterminismTables,
    scope: FileScope,
    push: &mut impl FnMut(&'static str, u32, String),
) {
    let hash_names = hash_bound_vars(tokens, in_test);
    let is_hash_at = |k: usize| -> bool {
        tokens.get(k).is_some_and(|t| {
            t.kind == TokenKind::Ident
                && (t.text == "HashMap" || t.text == "HashSet" || hash_names.contains(&t.text))
        })
    };
    let ordered_at = |k: usize| -> bool {
        tokens
            .get(k)
            .is_some_and(|t| t.kind == TokenKind::Ident && det.ordered.contains(&t.text))
    };
    // The sink window: `cap` tokens starting at `from`, never crossing into
    // the next item (`fn`) and optionally stopping at statement ends.
    let sink_in = |from: usize, cap: usize, stop_at_stmt: bool| -> Option<String> {
        let mut k = from;
        let end = tokens.len().min(from + cap);
        while k < end {
            let text = tokens[k].text.as_str();
            if text == "fn" || (stop_at_stmt && matches!(text, ";" | "{")) {
                return None;
            }
            if tokens[k].kind == TokenKind::Ident && ORDER_SINKS.contains(&text) {
                return Some(text.to_string());
            }
            if text == "+" && tokens.get(k + 1).is_some_and(|t| t.text == "=") {
                return Some("+=".to_string());
            }
            k += 1;
        }
        None
    };
    let ordered_near = |site: usize, from: usize, cap: usize| -> bool {
        // Ordered evidence counts both shortly before the iteration (an
        // ascription like `let v: BTreeMap<_, _> = m.iter().collect()`)
        // and anywhere in the sink window (`v.sort()` after a `collect`).
        (site.saturating_sub(8)..site).any(&ordered_at)
            || (from..tokens.len().min(from + cap)).any(&ordered_at)
    };

    // (a) hash-order iteration into an order-observable sink.
    let mut flagged_iteration: BTreeSet<u32> = BTreeSet::new();
    let mut flag_iteration =
        |line: u32, method: &str, sink: &str, push: &mut dyn FnMut(&'static str, u32, String)| {
            if flagged_iteration.insert(line) {
                push(
                    "L6",
                    line,
                    format!(
                        "`{method}` over a hash container feeds `{sink}` in arrival order; \
                     use BTreeMap/sorted iteration or mark `// alint: allow(L6)`"
                    ),
                );
            }
        };
    for i in 0..tokens.len() {
        if in_test[i] {
            continue;
        }
        // Method-chain form: `m.values().sum()`, `m.iter().collect()`.
        if is_hash_at(i)
            && tokens.get(i + 1).is_some_and(|t| t.text == ".")
            && tokens
                .get(i + 2)
                .is_some_and(|t| HASH_ITER_METHODS.contains(&t.text.as_str()))
        {
            let window_from = i + 3;
            if !ordered_near(i, window_from, 40) {
                if let Some(sink) = sink_in(window_from, 40, true) {
                    flag_iteration(tokens[i].line, &tokens[i + 2].text, &sink, &mut *push);
                }
            }
        }
        // For-loop form: `for (k, v) in &m { … }` — the sink window is the
        // loop body (the chain form above already covers `m.iter()` heads
        // whose sink sits in the same expression).
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "for" {
            let Some(in_idx) = (i + 1..tokens.len().min(i + 14))
                .find(|&k| tokens[k].kind == TokenKind::Ident && tokens[k].text == "in")
            else {
                continue;
            };
            let Some(body) =
                (in_idx + 1..tokens.len().min(in_idx + 16)).find(|&k| tokens[k].text == "{")
            else {
                continue;
            };
            if !(in_idx + 1..body).any(&is_hash_at) {
                continue;
            }
            if ordered_near(in_idx, body + 1, 40) {
                continue;
            }
            if let Some(sink) = sink_in(body + 1, 40, false) {
                flag_iteration(tokens[i].line, "for … in", &sink, &mut *push);
            }
        }
    }

    // (b) thread fan-out outside the blessed pool modules.
    if !scope.spawn_blessed {
        for (i, token) in tokens.iter().enumerate() {
            if in_test[i] || token.kind != TokenKind::Ident {
                continue;
            }
            let next = tokens.get(i + 1).map(|t| t.text.as_str());
            let prev = i.checked_sub(1).map(|k| tokens[k].text.as_str());
            let what = match token.text.as_str() {
                "spawn" if next == Some("(") && matches!(prev, Some(".") | Some("::")) => "spawn",
                "rayon" if next == Some("::") => "rayon",
                t if PAR_ITER_METHODS.contains(&t) => t,
                _ => continue,
            };
            push(
                "L6",
                token.line,
                format!(
                    "`{what}` fans out threads outside the blessed pool modules; route \
                     parallelism through an approved deterministic pool \
                     (spawn_approved in alint.toml)"
                ),
            );
        }
    }

    // (c) wall-clock and entropy in priced/model code.
    if !scope.wall_clock_approved {
        for (i, token) in tokens.iter().enumerate() {
            if in_test[i] || token.kind != TokenKind::Ident {
                continue;
            }
            let next = tokens.get(i + 1).map(|t| t.text.as_str());
            let next2 = tokens.get(i + 2).map(|t| t.text.as_str());
            let prev = i.checked_sub(1).map(|k| tokens[k].text.as_str());
            let prev2 = i.checked_sub(2).map(|k| tokens[k].text.as_str());
            let what = match token.text.as_str() {
                "Instant" if next == Some("::") && next2 == Some("now") => "Instant::now",
                "SystemTime" if next == Some("::") && next2 == Some("now") => "SystemTime::now",
                "from_entropy" if matches!(prev, Some(".") | Some("::")) => "from_entropy",
                "thread_rng" if next == Some("(") => "thread_rng",
                "OsRng" => "OsRng",
                "random" if prev == Some("::") && prev2 == Some("rand") => "rand::random",
                _ => continue,
            };
            push(
                "L6",
                token.line,
                format!(
                    "`{what}` reads wall-clock/entropy in a deterministic path; priced \
                     code is counted-work-only (machine.rs contract) and RNGs must be \
                     seeded explicitly"
                ),
            );
        }
    }
}

/// One live lock-guard window for L7.
struct LockWindow {
    /// Token index of the `lock` identifier that opened the window.
    site: usize,
    /// Lock class of the acquisition (declared or fallback).
    class: String,
    /// Rank of the class in `[locks] lock_order`, if declared there.
    rank: Option<usize>,
    /// Token range the guard is live over, end exclusive.
    span: (usize, usize),
}

/// L7 `lock_discipline`: statically enforce the SessionStore locking
/// contract inside lock-guard windows (the first call-graph-backed pass).
///
/// A window opens at each `.lock()` call and is tracked like L5's
/// dataflow windows:
///
/// - `let g = recv.lock();` — a *named* guard: the window runs to the
///   end of the enclosing brace block, or to the first `drop(g)`.
/// - any other `.lock()` use — a *temporary* guard: the window runs to
///   the end of the statement (`;`), the enclosing match-arm `,`, or the
///   enclosing close delimiter, whichever comes first. (Rust extends
///   some temporaries to the whole statement; stopping at the arm comma
///   under-approximates, trading missed exotica for no false positives.)
///
/// Inside a window of class `C` the rules are:
///
/// (a) **expensive-call-under-lock** — a call whose identifier is in
///     `[locks] expensive_idents` (expensive by fiat, `state.step(obs)`
///     needs no resolution), or whose call-graph closure reaches one;
/// (b) **lock-order inversion** — acquiring a class ranked below `C` in
///     `[locks] lock_order`, directly or one call level deep (a resolved
///     callee that itself locks);
/// (c) **double-acquire / guard-across-await** — acquiring `C` again
///     (directly or one call deep; parking_lot mutexes are not
///     reentrant), or any `.await` while the guard is live (guards must
///     not be held across suspension points — the async serving layer
///     lands on this contract).
///
/// Independent of windows, every `.lock()` receiver must map to a class
/// in `[locks] lock_classes` and every class must appear in
/// `lock_order`: deleting the order table surfaces every acquisition
/// site as a finding rather than silencing the pass.
fn l7_lock_discipline(
    path: &str,
    tokens: &[Token],
    in_test: &[bool],
    locks: &LockTables,
    graph: &CallGraph,
    push: &mut impl FnMut(&'static str, u32, String),
) {
    if locks.is_empty() {
        return;
    }
    let order_str = || locks.order.join(" < ");
    let mut windows: Vec<LockWindow> = Vec::new();

    for i in 0..tokens.len() {
        if !callgraph::is_lock_site(tokens, i) || in_test[i] {
            continue;
        }
        let (recv_start, receiver) = callgraph::receiver_chain(tokens, i - 1);
        let (class, declared) = locks.class_of(&receiver);
        let rank = locks.rank(&class);
        if !declared {
            push(
                "L7",
                tokens[i].line,
                format!(
                    "`{class}.lock()` has no declared lock class; map the receiver in \
                     [locks] lock_classes (alint.toml)"
                ),
            );
        } else if rank.is_none() {
            push(
                "L7",
                tokens[i].line,
                format!(
                    "lock class `{class}` is missing from [locks] lock_order; \
                     the acquisition order is undeclared"
                ),
            );
        }
        let Some(close) = matching_delim(tokens, i + 1, "(", ")") else {
            continue;
        };
        // Named guard: `let [mut] NAME = recv.lock();` — nothing chained
        // after the call, so the binding *is* the guard.
        let named = if close + 1 < tokens.len()
            && tokens[close + 1].text == ";"
            && recv_start >= 3
            && tokens[recv_start - 1].text == "="
            && matches!(tokens[recv_start - 2].kind, TokenKind::Ident)
            && (tokens[recv_start - 3].text == "let"
                || (tokens[recv_start - 3].text == "mut"
                    && recv_start >= 4
                    && tokens[recv_start - 4].text == "let"))
        {
            Some(tokens[recv_start - 2].text.clone())
        } else {
            None
        };
        let mut depth = 0i64;
        let mut end = tokens.len();
        let scan_from = match &named {
            Some(_) => close + 2,
            None => close + 1,
        };
        for (k, token) in tokens.iter().enumerate().skip(scan_from) {
            match token.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        end = k;
                        break;
                    }
                }
                ";" | "," if named.is_none() && depth == 0 => {
                    end = k;
                    break;
                }
                "drop"
                    if named.as_deref().is_some_and(|name| {
                        k + 3 < tokens.len()
                            && tokens[k + 1].text == "("
                            && tokens[k + 2].text == name
                            && tokens[k + 3].text == ")"
                    }) =>
                {
                    end = k;
                    break;
                }
                _ => {}
            }
        }
        windows.push(LockWindow {
            site: i,
            class,
            rank,
            span: (close + 1, end),
        });
    }

    // Overlapping windows can surface the same defect twice; report each
    // distinct (line, message) once.
    let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
    for w in &windows {
        let mut emit = |line: u32, message: String| {
            if seen.insert((line, message.clone())) {
                push("L7", line, message);
            }
        };
        let class = &w.class;
        for j in w.span.0..w.span.1.min(tokens.len()) {
            if in_test[j] {
                continue;
            }
            let line = tokens[j].line;
            if tokens[j].text == "await"
                && matches!(tokens[j].kind, TokenKind::Ident)
                && j > 0
                && tokens[j - 1].text == "."
            {
                emit(
                    line,
                    format!(
                        "`{class}` guard is held across `.await`; a future can park or \
                         migrate threads with the lock held — drop the guard first"
                    ),
                );
                continue;
            }
            if callgraph::is_lock_site(tokens, j) {
                if j == w.site {
                    continue;
                }
                let inner = callgraph::receiver_idents(tokens, j - 1);
                let (inner_class, inner_declared) = locks.class_of(&inner);
                if inner_class == *class {
                    emit(
                        line,
                        format!(
                            "`{class}` lock acquired again while a `{class}` guard is \
                             live (double-acquire; parking_lot mutexes are not reentrant)"
                        ),
                    );
                } else if inner_declared {
                    if let (Some(outer), Some(nested)) = (w.rank, locks.rank(&inner_class)) {
                        if nested < outer {
                            emit(
                                line,
                                format!(
                                    "lock-order inversion: acquiring `{inner_class}` while \
                                     `{class}` is held (declared order: {})",
                                    order_str()
                                ),
                            );
                        }
                    }
                }
                continue;
            }
            if !callgraph::is_call_site(tokens, j) || tokens[j].text == "drop" {
                continue;
            }
            let segments = callgraph::call_segments(tokens, j);
            let callee = segments.join("::");
            if let Some(seg) = segments
                .iter()
                .find(|s| locks.expensive.contains(s.as_str()))
            {
                emit(
                    line,
                    format!(
                        "expensive call `{callee}` under the `{class}` lock: `{seg}` is in \
                         [locks] expensive_idents — run it before locking or after \
                         dropping the guard"
                    ),
                );
                continue;
            }
            let dotted = j > 0 && tokens[j - 1].text == ".";
            let Some(target) = graph.resolve(path, j, &segments, dotted) else {
                continue;
            };
            if graph.is_expensive(target) {
                let witness = graph.witness(target).unwrap_or("an expensive ident");
                emit(
                    line,
                    format!(
                        "call to `{callee}` under the `{class}` lock reaches expensive \
                         `{witness}` through the call graph — hoist the work out of \
                         the guard window"
                    ),
                );
            }
            for (chain, _) in &graph.fns()[target].direct_locks {
                let (nested_class, nested_declared) = locks.class_of(chain);
                if !nested_declared {
                    continue;
                }
                if nested_class == *class {
                    emit(
                        line,
                        format!(
                            "call to `{callee}` re-acquires `{class}` one call deep while \
                             a `{class}` guard is live (double-acquire)"
                        ),
                    );
                } else if let (Some(outer), Some(nested)) = (w.rank, locks.rank(&nested_class)) {
                    if nested < outer {
                        emit(
                            line,
                            format!(
                                "lock-order inversion via `{callee}`: it acquires \
                                 `{nested_class}` while `{class}` is held (declared \
                                 order: {})",
                                order_str()
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, scope: FileScope) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let locks = LockTables::from_config(&Config::default());
        let graph = CallGraph::build(&[("test.rs".to_string(), &lexed)], &locks.expensive);
        lint_file(
            "test.rs",
            &lexed,
            scope,
            &UnitTables::from_config(&Config::default()),
            &DeterminismTables::from_config(&Config::default()),
            &locks,
            &graph,
        )
    }

    fn all_scopes() -> FileScope {
        FileScope {
            lib_crate: true,
            float_cmp: true,
            typed_error: true,
            hot_path: true,
            unit_safety: true,
            determinism: true,
            spawn_blessed: false,
            wall_clock_approved: false,
            lock_discipline: true,
        }
    }

    #[test]
    fn l1_flags_unwrap_expect_panic_todo() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("msg");
                if a == 0 { panic!("boom"); }
                if b == 0 { todo!(); }
                a + b
            }
        "#;
        let diags = run(src, all_scopes());
        let l1: Vec<_> = diags.iter().filter(|d| d.lint == "L1").collect();
        assert_eq!(l1.len(), 4, "{l1:?}");
    }

    #[test]
    fn l1_ignores_unwrap_or_variants_and_test_mods() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 { x.unwrap_or(3).min(x.unwrap_or_default()) }
            #[cfg(test)]
            mod tests {
                fn g(x: Option<u32>) -> u32 { x.unwrap() }
            }
            #[cfg(test)]
            fn h(x: Option<u32>) -> u32 { x.expect("test only") }
        "#;
        assert!(run(src, all_scopes()).iter().all(|d| d.lint != "L1"));
    }

    #[test]
    fn l1_marker_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // alint: allow(L1)\n";
        assert!(run(src, all_scopes()).is_empty());
        let above = "// alint: allow(panic_site)\nfn g() { panic!(\"x\") }\n";
        assert!(run(above, all_scopes()).is_empty());
    }

    #[test]
    fn l2_flags_float_literal_comparison() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }";
        let diags = run(src, all_scopes());
        assert_eq!(diags.iter().filter(|d| d.lint == "L2").count(), 1);
        let src = "fn f(x: f64) -> bool { x.sqrt() != 1.0e3 }";
        assert_eq!(
            run(src, all_scopes())
                .iter()
                .filter(|d| d.lint == "L2")
                .count(),
            1
        );
    }

    #[test]
    fn l2_ignores_integer_and_opaque_comparisons() {
        let src = "fn f(n: usize, m: usize) -> bool { n == m && n == 3 }";
        assert!(run(src, all_scopes()).is_empty());
        // Opaque floats are clippy's job (it has types); we stay quiet.
        let src = "fn f(a: f64, b: f64) -> bool { a == b }";
        assert!(run(src, all_scopes()).iter().all(|d| d.lint != "L2"));
    }

    #[test]
    fn l2_tracks_let_float_ascriptions() {
        let src = r#"
            fn f(a: f64, b: f64) -> bool {
                let t: f64 = a * b;
                let r: &f64 = &t;
                t == 1.0e0 || t != b || r == &a
            }
        "#;
        // `t == 1.0e0` is manifest; `t != b` and `r == &a` are caught only
        // via the ascriptions.
        let diags = run(src, all_scopes());
        assert_eq!(
            diags.iter().filter(|d| d.lint == "L2").count(),
            3,
            "{diags:?}"
        );
    }

    #[test]
    fn l2_ascription_tracking_skips_shadowed_and_nonscalar_types() {
        let src = r#"
            fn f(xs: Vec<f64>, n: usize) -> bool {
                let count: usize = xs.len();
                let v: Vec<f64> = xs;
                count == n && v.len() == n
            }
            fn g() -> bool {
                let k: f64 = 1.5;
                true
            }
            fn h(k: usize, n: usize) -> bool {
                let k: usize = k + 1;
                k == n
            }
        "#;
        // `k` holds a float in g() but a usize in h(): the ambiguous name
        // is dropped, and `Vec<f64>`/`usize` ascriptions never register.
        let diags = run(src, all_scopes());
        assert!(diags.iter().all(|d| d.lint != "L2"), "{diags:?}");
    }

    #[test]
    fn l2_ascriptions_inside_test_items_do_not_leak() {
        let src = r#"
            #[cfg(test)]
            fn t() { let q: f64 = 0.5; }
            fn f(q: usize, n: usize) -> bool { q == n }
        "#;
        let diags = run(src, all_scopes());
        assert!(diags.iter().all(|d| d.lint != "L2"), "{diags:?}");
    }

    #[test]
    fn l2_sees_nan_consts() {
        let src = "fn f(x: f64) -> bool { x == f64::NAN }";
        assert_eq!(
            run(src, all_scopes())
                .iter()
                .filter(|d| d.lint == "L2")
                .count(),
            1
        );
    }

    #[test]
    fn l3_flags_box_dyn_and_string_errors() {
        let src = r#"
            pub fn a() -> Result<u32, Box<dyn std::error::Error>> { Ok(1) }
            pub fn b() -> Result<u32, String> { Ok(1) }
            pub fn c() -> Result<Vec<u8>, &'static str> { Ok(vec![]) }
        "#;
        let diags = run(src, all_scopes());
        assert_eq!(
            diags.iter().filter(|d| d.lint == "L3").count(),
            3,
            "{diags:?}"
        );
    }

    #[test]
    fn l3_accepts_typed_and_aliased_results() {
        let src = r#"
            pub fn a() -> Result<u32, LinalgError> { Ok(1) }
            pub fn b() -> Result<Vec<Matrix>> { Ok(vec![]) }
            pub fn c() -> Result<(), std::io::Error> { Ok(()) }
            pub fn d<E: std::error::Error>() -> Result<u32, E> { todo!() }
            fn private() -> Result<u32, String> { Ok(1) }
            pub(crate) fn semi() -> Result<u32, String> { Ok(1) }
        "#;
        let diags = run(src, all_scopes());
        assert!(diags.iter().all(|d| d.lint != "L3"), "{diags:?}");
    }

    #[test]
    fn l3_handles_nested_generics_in_ok_slot() {
        let src =
            "pub fn a() -> Result<Vec<Result<u8, Inner>>, Box<dyn Error>> { unimplemented!() }";
        let diags = run(src, all_scopes());
        assert_eq!(diags.iter().filter(|d| d.lint == "L3").count(), 1);
    }

    #[test]
    fn l4_flags_manifest_float_to_int_casts() {
        let src = r#"
            fn f(x: f64) -> usize {
                let a = (x * 2.0) as usize;
                let b = x.floor() as u64;
                let c = 3.7 as i32;
                a + b as usize + c as usize
            }
        "#;
        let diags = run(src, all_scopes());
        assert_eq!(
            diags.iter().filter(|d| d.lint == "L4").count(),
            3,
            "{diags:?}"
        );
    }

    #[test]
    fn l4_ignores_int_casts_and_markers() {
        let src = r#"
            fn f(n: usize) -> f64 {
                let a = n as u32;
                let b = n as f64;
                let c = (n * 2) as u64;
                // alint: allow(lossy_cast)
                let d = (b * 0.5) as usize;
                a as f64 + b + c as f64 + d as f64
            }
        "#;
        let diags = run(src, all_scopes());
        assert!(diags.iter().all(|d| d.lint != "L4"), "{diags:?}");
    }

    #[test]
    fn scopes_gate_the_passes() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert!(run(src, FileScope::default()).is_empty());
        let only_l1 = FileScope {
            lib_crate: true,
            ..FileScope::default()
        };
        assert_eq!(run(src, only_l1).len(), 1);
    }

    #[test]
    fn diagnostics_carry_file_line_and_id() {
        let src = "\n\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let d = &run(src, all_scopes())[0];
        assert_eq!(d.path, "test.rs");
        assert_eq!(d.line, 3);
        assert_eq!(d.lint, "L1");
        assert!(d.to_string().contains("test.rs:3: L1(panic_site)"));
    }

    fn l5_only() -> FileScope {
        FileScope {
            unit_safety: true,
            ..FileScope::default()
        }
    }

    #[test]
    fn l5_flags_mixed_suffix_arithmetic_and_comparison() {
        let src = "fn f(a_us: f64, b_seconds: f64) -> f64 { a_us + b_seconds }";
        let diags = run(src, l5_only());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, "L5");
        assert!(diags[0].message.contains("microseconds"), "{diags:?}");
        assert!(diags[0].message.contains("seconds"), "{diags:?}");

        let src = "fn g(total_mb: f64, used_bytes: f64) -> bool { total_mb < used_bytes }";
        assert_eq!(run(src, l5_only()).len(), 1);
    }

    #[test]
    fn l5_same_unit_and_one_sided_are_silent() {
        let src = "fn f(a_us: f64, b_us: f64, k: f64) -> f64 { (a_us - b_us) + k }";
        assert!(run(src, l5_only()).is_empty());
        let src = "fn g(wall_seconds: f64, scale: f64) -> bool { wall_seconds < scale }";
        assert!(run(src, l5_only()).is_empty());
    }

    #[test]
    fn l5_conversion_idents_suppress() {
        let src = "fn f(a_us: f64, b_seconds: f64) -> f64 { to_seconds(a_us) + b_seconds }";
        assert!(run(src, l5_only()).is_empty());
        let src =
            "fn g(m: Micros, wall_seconds: Seconds) -> Seconds { wall_seconds + m.to_seconds() }";
        assert!(run(src, l5_only()).is_empty());
    }

    #[test]
    fn l5_detects_compound_assignment() {
        // `+=` lexes as `+` then `=`; the right window must start past the
        // `=`, not stop at it.
        let src =
            "fn f(extra_seconds: f64) { let mut total_us: f64 = 0.0; total_us += extra_seconds; }";
        let diags = run(src, l5_only());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`+=`"), "{diags:?}");
    }

    #[test]
    fn l5_uses_quantity_type_ascriptions() {
        let src = r#"
            fn f(budget: Seconds, spent_us: f64) -> bool {
                let wall: Seconds = budget;
                wall != spent_us
            }
        "#;
        let diags = run(src, l5_only());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn l5_conflicting_unit_ascriptions_drop_the_name() {
        let src = r#"
            fn f(x: Seconds) -> bool {
                let t: Seconds = x;
                let q_us = report(t);
                t < q_us
            }
            fn g(y: Micros) {
                let t: Micros = y;
                consume(t);
            }
        "#;
        // `t` is seconds in f() but micros in g(): ambiguous, so only the
        // suffix evidence on `q_us` remains and the comparison is one-sided.
        let diags = run(src, l5_only());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn l5_type_names_carry_units_in_expressions() {
        let src = "fn f(raw_mb: f64) -> bool { Seconds::new(1.0) < raw_mb }";
        let diags = run(src, l5_only());
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn l5_signatures_and_generics_do_not_flag() {
        // `Option<Megabytes>` and `-> NodeHours` put two quantity types near
        // `<`/`>` tokens; the `:`/`->`/`,` stops must keep them one-sided.
        let src = "pub fn record(cost_node_hours: f64, limit: Option<Megabytes>) -> NodeHours { NodeHours::new(cost_node_hours) }";
        let diags = run(src, l5_only());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn l5_markers_suppress() {
        let src = "fn f(a_us: f64, b_seconds: f64) -> f64 { a_us + b_seconds } // alint: allow(L5)";
        assert!(run(src, l5_only()).is_empty());
        let src =
            "// alint: allow(unit_safety)\nfn f(a_us: f64, b_mb: f64) -> bool { a_us < b_mb }";
        assert!(run(src, l5_only()).is_empty());
    }

    #[test]
    fn l5_is_silent_inside_test_regions() {
        let src = r#"
            #[cfg(test)]
            fn t(a_us: f64, b_seconds: f64) -> f64 { a_us + b_seconds }
        "#;
        assert!(run(src, l5_only()).is_empty());
    }

    #[test]
    fn l5_empty_tables_disable_the_pass() {
        let cfg = Config {
            unit_suffixes: Vec::new(),
            unit_types: Vec::new(),
            unit_conversions: Vec::new(),
            ..Config::default()
        };
        let src = "fn f(a_us: f64, b_seconds: f64) -> f64 { a_us + b_seconds }";
        let lexed = lex(src);
        let locks = LockTables::from_config(&cfg);
        let graph = CallGraph::build(&[("t.rs".to_string(), &lexed)], &locks.expensive);
        let diags = lint_file(
            "t.rs",
            &lexed,
            l5_only(),
            &UnitTables::from_config(&cfg),
            &DeterminismTables::from_config(&cfg),
            &locks,
            &graph,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    fn l6_only() -> FileScope {
        FileScope {
            determinism: true,
            ..FileScope::default()
        }
    }

    #[test]
    fn l6_flags_hash_iteration_into_reductions_and_output() {
        let src = r#"
            use std::collections::HashMap;
            pub fn total(costs: &HashMap<String, f64>) -> f64 {
                costs.values().sum()
            }
            pub fn rows(map: &HashMap<u32, String>, out: &mut Vec<String>) {
                for (_, row) in map.iter() {
                    out.push(row.clone());
                }
            }
        "#;
        let diags = run(src, l6_only());
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.lint == "L6"), "{diags:?}");
        assert!(diags[0].message.contains("`sum`"), "{diags:?}");
        assert!(diags[1].message.contains("`push`"), "{diags:?}");
    }

    #[test]
    fn l6_hash_iteration_without_a_sink_is_silent() {
        // A membership sweep observes no order; only sinks make hash order
        // leak into results.
        let src = r#"
            use std::collections::HashSet;
            pub fn all_valid(seen: &HashSet<u64>) -> bool {
                seen.iter().all(|v| *v < 10)
            }
        "#;
        assert!(run(src, l6_only()).is_empty());
    }

    #[test]
    fn l6_ordered_paths_suppress_hash_iteration() {
        let src = r#"
            use std::collections::{BTreeMap, HashMap};
            pub fn stable(m: &HashMap<String, f64>) -> f64 {
                let ordered: BTreeMap<_, _> = m.iter().collect();
                ordered.values().copied().sum()
            }
            pub fn sorted_keys(m: &HashMap<u32, f64>) -> Vec<u32> {
                let mut keys: Vec<u32> = m.keys().copied().collect();
                keys.sort_unstable();
                keys
            }
        "#;
        let diags = run(src, l6_only());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn l6_compound_accumulation_is_a_sink() {
        let src = r#"
            use std::collections::HashMap;
            pub fn acc(m: &HashMap<u32, f64>) -> f64 {
                let mut total = 0.0;
                for v in m.values() {
                    total += v;
                }
                total
            }
        "#;
        let diags = run(src, l6_only());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`+=`"), "{diags:?}");
    }

    #[test]
    fn l6_flags_spawn_and_rayon_outside_blessed_modules() {
        let src = r#"
            pub fn fan_out() {
                std::thread::spawn(|| {});
            }
            pub fn scoped(s: &Scope) {
                s.spawn(|| {});
            }
        "#;
        let diags = run(src, l6_only());
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(
            diags.iter().all(|d| d.message.contains("spawn")),
            "{diags:?}"
        );
    }

    #[test]
    fn l6_blessed_spawn_modules_are_exempt() {
        let src = "pub fn pool() { std::thread::spawn(|| {}); }";
        let scope = FileScope {
            determinism: true,
            spawn_blessed: true,
            ..FileScope::default()
        };
        assert!(run(src, scope).is_empty());
    }

    #[test]
    fn l6_flags_wall_clock_and_entropy() {
        let src = r#"
            pub fn stamp() -> Instant {
                std::time::Instant::now()
            }
            pub fn rng() -> StdRng {
                StdRng::from_entropy()
            }
        "#;
        let diags = run(src, l6_only());
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].message.contains("Instant::now"), "{diags:?}");
        assert!(diags[1].message.contains("from_entropy"), "{diags:?}");
    }

    #[test]
    fn l6_wall_clock_approved_modules_are_exempt() {
        let src = "pub fn stamp() { let t = std::time::Instant::now(); report(t); }";
        let scope = FileScope {
            determinism: true,
            wall_clock_approved: true,
            ..FileScope::default()
        };
        assert!(run(src, scope).is_empty());
    }

    #[test]
    fn l6_seeded_rngs_and_counted_work_are_silent() {
        let src = r#"
            pub fn rng(seed: u64) -> StdRng {
                StdRng::seed_from_u64(seed)
            }
        "#;
        assert!(run(src, l6_only()).is_empty());
    }

    #[test]
    fn l6_markers_suppress() {
        let src = "pub fn t() -> Instant { std::time::Instant::now() } // alint: allow(L6)";
        assert!(run(src, l6_only()).is_empty());
        let above =
            "// alint: allow(determinism_safety)\npub fn f() { std::thread::spawn(|| {}); }";
        assert!(run(above, l6_only()).is_empty());
    }

    #[test]
    fn l6_is_silent_inside_test_regions() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn t() { let _ = std::time::Instant::now(); }
            }
        "#;
        assert!(run(src, l6_only()).is_empty());
    }

    fn l7_only() -> FileScope {
        FileScope {
            lock_discipline: true,
            ..FileScope::default()
        }
    }

    fn l7(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.lint == "L7").collect()
    }

    #[test]
    fn l7_flags_direct_expensive_call_under_named_guard() {
        let src = r#"
            impl Store {
                pub fn observe(&self, id: u64) -> u32 {
                    let mut shard = self.shard(id).lock();
                    shard.step(3)
                }
            }
        "#;
        let diags = run(src, l7_only());
        let v = l7(&diags);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
        assert!(v[0].message.contains("expensive call"), "{}", v[0].message);
    }

    #[test]
    fn l7_temporary_guard_window_ends_at_the_statement() {
        let src = r#"
            impl Store {
                pub fn create(&self) -> u32 {
                    let warm = self.warm.lock().peek();
                    fit(warm)
                }
            }
        "#;
        assert!(
            l7(&run(src, l7_only())).is_empty(),
            "fit runs after the statement"
        );
    }

    #[test]
    fn l7_drop_ends_a_named_window() {
        let src = r#"
            pub fn f(m: &Mutex<u32>) -> u32 {
                let shard = m.shard.lock();
                let x = *shard;
                drop(shard);
                fit(x)
            }
        "#;
        assert!(
            l7(&run(src, l7_only())).is_empty(),
            "guard dropped before fit"
        );
    }

    #[test]
    fn l7_flags_inversion_double_acquire_and_await() {
        let src = r#"
            impl Store {
                pub fn inverted(&self) -> u32 {
                    let shard = self.shard.lock();
                    let warm = self.warm.lock();
                    *shard + *warm
                }
                pub fn doubled(&self) -> u32 {
                    let a = self.shard.lock();
                    let b = self.shard.lock();
                    *a + *b
                }
                pub async fn parked(&self) -> u32 {
                    let g = self.warm.lock();
                    tick().await;
                    *g
                }
            }
        "#;
        let diags = run(src, l7_only());
        let v = l7(&diags);
        let lines: Vec<u32> = v.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![5, 10, 15], "{v:?}");
        assert!(v[0].message.contains("inversion"), "{}", v[0].message);
        assert!(v[1].message.contains("double-acquire"), "{}", v[1].message);
        assert!(v[2].message.contains(".await"), "{}", v[2].message);
    }

    #[test]
    fn l7_ascending_order_is_clean() {
        let src = r#"
            impl Store {
                pub fn ordered(&self) -> u32 {
                    let warm = self.warm.lock();
                    let shard = self.shard.lock();
                    *warm + *shard
                }
            }
        "#;
        assert!(l7(&run(src, l7_only())).is_empty());
    }

    #[test]
    fn l7_undeclared_receiver_and_missing_order_are_findings() {
        let src = "pub fn f(m: &M) -> u32 { *m.mystery.lock() }";
        let diags = run(src, l7_only());
        let v = l7(&diags);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("no declared lock class"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn l7_call_graph_reachability_and_one_call_deep_locks() {
        let src = r#"
            impl Store {
                pub fn reaches(&self) -> u32 {
                    let shard = self.shard.lock();
                    helper(*shard)
                }
                pub fn nested_inversion(&self) -> u32 {
                    let shard = self.shard.lock();
                    lock_warm(self) + *shard
                }
            }
            fn helper(x: u32) -> u32 { slow(x) }
            fn slow(x: u32) -> u32 { fit(x) }
            fn fit(x: u32) -> u32 { x + 1 }
            fn lock_warm(s: &Store) -> u32 { *s.warm.lock() }
        "#;
        let diags = run(src, l7_only());
        let v = l7(&diags);
        let lines: Vec<u32> = v.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![5, 9], "{v:?}");
        assert!(
            v[0].message.contains("reaches expensive"),
            "{}",
            v[0].message
        );
        assert!(v[1].message.contains("inversion via"), "{}", v[1].message);
    }

    #[test]
    fn l7_markers_suppress_and_test_regions_are_silent() {
        let src =
            "pub fn f(&self) -> u32 { let g = self.shard.lock(); g.step(1) } // alint: allow(L7)";
        assert!(l7(&run(src, l7_only())).is_empty());
        let test_mod = r#"
            #[cfg(test)]
            mod tests {
                fn t(s: &Store) { let g = s.shard.lock(); g.step(1); }
            }
        "#;
        assert!(l7(&run(test_mod, l7_only())).is_empty());
    }

    #[test]
    fn l7_disabled_when_all_lock_tables_are_empty() {
        let lexed = lex("pub fn f(&self) { let g = self.mystery.lock(); g.step(1); }");
        let empty = LockTables::default();
        let graph = CallGraph::build(&[("test.rs".to_string(), &lexed)], &empty.expensive);
        let diags = lint_file(
            "test.rs",
            &lexed,
            l7_only(),
            &UnitTables::from_config(&Config::default()),
            &DeterminismTables::from_config(&Config::default()),
            &empty,
            &graph,
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn l7_emptied_order_surfaces_every_declared_acquisition() {
        // The probe: classes stay declared, the order table is emptied —
        // every acquisition site must surface, not silence.
        let lexed = lex("pub fn f(&self) -> usize { self.shard.lock().len() }");
        let mut cfg = Config::default();
        cfg.lock_order.clear();
        let locks = LockTables::from_config(&cfg);
        let graph = CallGraph::build(&[("test.rs".to_string(), &lexed)], &locks.expensive);
        let diags = lint_file(
            "test.rs",
            &lexed,
            l7_only(),
            &UnitTables::from_config(&Config::default()),
            &DeterminismTables::from_config(&Config::default()),
            &locks,
            &graph,
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("missing from [locks] lock_order"),
            "{}",
            diags[0].message
        );
    }
}
