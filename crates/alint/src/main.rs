//! CLI entry point: `cargo run -p alint -- <check|dump|ratchet|lints>`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config/IO error.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Output style for `check`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = "check";
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut lint: Option<&'static str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" | "dump" | "ratchet" | "lints" => {
                command = match arg.as_str() {
                    "dump" => "dump",
                    "ratchet" => "ratchet",
                    "lints" => "lints",
                    _ => "check",
                }
            }
            "--root" => match iter.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("alint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--lint" => match iter.next().map(|s| alint::normalize_lint_id(s)) {
                Some(Some(id)) => lint = Some(id),
                Some(None) => {
                    eprintln!(
                        "alint: --lint requires a lint ID (L1..L7) or name \
                         (panic_site, …, lock_discipline)"
                    );
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("alint: --lint requires a lint ID");
                    return ExitCode::from(2);
                }
            },
            "--format" => match iter.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!(
                        "alint: --format requires one of text|json|github, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("alint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    if !root.is_dir() {
        // A typo'd --root would otherwise scan zero files and report clean,
        // turning a misconfigured CI job into a silent pass.
        eprintln!("alint: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }

    let config = match alint::config::load(&root) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("alint: {e}");
            return ExitCode::from(2);
        }
    };

    match command {
        "dump" => dump(&root, &config, lint),
        "ratchet" => ratchet(&root, &config),
        "lints" => lints(&config),
        _ => check(&root, &config, format, lint),
    }
}

const USAGE: &str = "\
usage: cargo run -p alint -- [check|dump|ratchet|lints] [--root <dir>]
                             [--format <fmt>] [--lint <ID>]

  check     lint the workspace, applying the alint.toml allowlist (default)
  dump      print every raw diagnostic, ignoring the allowlist
  ratchet   print [[allow]] entries matching the current violation counts
  lints     list every lint with its name, description, and whether the
            loaded alint.toml enables it

  --format  check output style: text (default), json (one machine-readable
            object), or github (::error workflow-command annotations)
  --lint    restrict check/dump to one lint, by ID (L1..L7) or name
            (panic_site, …, lock_discipline) — fast single-pass
            iteration while developing a lint
";

/// Locate the workspace root: the manifest dir's grandparent when built in
/// place (crates/alint → repo root), else the current directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .filter(|p| p.join("Cargo.toml").is_file())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn check(
    root: &std::path::Path,
    config: &alint::config::Config,
    format: Format,
    lint: Option<&'static str>,
) -> ExitCode {
    let report = match alint::check_workspace_lint(root, config, lint) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("alint: {e}");
            return ExitCode::from(2);
        }
    };
    let exit = if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    };
    match format {
        Format::Json => {
            println!("{}", alint::render_json(&report));
            return exit;
        }
        Format::Github => {
            print!("{}", alint::render_github(&report));
        }
        Format::Text => {
            for d in &report.violations {
                println!("{d}");
            }
            for (path, lint, budget, actual) in &report.slack {
                println!(
                    "note: {path}: {lint} budget is {budget} but only {actual} remain — \
                     tighten the [[allow]] entry in alint.toml"
                );
            }
            for (path, lint) in &report.unused {
                println!(
                    "error: stale [[allow]] entry for {lint} in {path} — the file has no \
                     {lint} findings; remove it from alint.toml"
                );
            }
        }
    }
    let grandfathered = report.grandfathered.len();
    if report.is_clean() {
        println!(
            "alint: clean — {} files scanned, {} grandfathered site{} within budget",
            report.files_scanned,
            grandfathered,
            if grandfathered == 1 { "" } else { "s" },
        );
    } else {
        println!(
            "alint: {} violation{} and {} stale allowance{} in {} files scanned ({} grandfathered)",
            report.violations.len(),
            if report.violations.len() == 1 {
                ""
            } else {
                "s"
            },
            report.unused.len(),
            if report.unused.len() == 1 { "" } else { "s" },
            report.files_scanned,
            grandfathered,
        );
    }
    exit
}

fn dump(
    root: &std::path::Path,
    config: &alint::config::Config,
    lint: Option<&'static str>,
) -> ExitCode {
    match alint::raw_diagnostics(root, config) {
        Ok((diags, files)) => {
            let diags: Vec<_> = diags
                .into_iter()
                .filter(|d| lint.is_none_or(|l| d.lint == l))
                .collect();
            for d in &diags {
                println!("{d}");
            }
            println!("alint: {} raw diagnostics in {files} files", diags.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("alint: {e}");
            ExitCode::from(2)
        }
    }
}

/// List every lint with its name, one-line description, and whether the
/// loaded configuration enables it (a lint is "off" when the tables that
/// scope it are empty, mirroring how the passes themselves gate).
fn lints(config: &alint::config::Config) -> ExitCode {
    for id in alint::LINT_IDS {
        let enabled = match id {
            "L1" => !config.lib_crates.is_empty(),
            "L2" => true,
            "L3" => !config.typed_error_crates.is_empty(),
            "L4" => !config.hot_paths.is_empty(),
            "L5" => {
                !(config.unit_suffixes.is_empty()
                    && config.unit_types.is_empty()
                    && config.unit_conversions.is_empty())
            }
            "L6" => !config.determinism_crates.is_empty(),
            _ => !(config.lock_classes.is_empty() && config.lock_order.is_empty()),
        };
        println!(
            "{id}  {:<19} {:<8} {}",
            alint::lints::lint_name(id),
            if enabled { "on" } else { "off" },
            alint::lints::lint_description(id),
        );
    }
    ExitCode::SUCCESS
}

/// Emit `[[allow]]` entries for the current state, for seeding or
/// re-tightening the ratchet after paying down debt.
fn ratchet(root: &std::path::Path, config: &alint::config::Config) -> ExitCode {
    match alint::raw_diagnostics(root, config) {
        Ok((diags, _)) => {
            let mut counts: BTreeMap<(String, &'static str), usize> = BTreeMap::new();
            for d in diags {
                *counts.entry((d.path, d.lint)).or_insert(0) += 1;
            }
            for ((path, lint), count) in counts {
                println!("[[allow]]");
                println!("path = \"{path}\"");
                println!("lint = \"{lint}\"");
                println!("count = {count}");
                println!("reason = \"grandfathered pending conversion\"");
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("alint: {e}");
            ExitCode::from(2)
        }
    }
}
