//! Workspace traversal: find the Rust sources to lint and decide which
//! passes apply to each file.

use crate::config::Config;
use crate::lints::FileScope;
use std::io;
use std::path::{Path, PathBuf};

/// One source file queued for linting, with its workspace-relative path
/// (forward slashes, so diagnostics and `alint.toml` entries are portable).
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub rel_path: String,
    pub abs_path: PathBuf,
    pub scope: FileScope,
}

/// Directory names never descended into: generated output, vendored stubs,
/// test suites, benches, and lint fixtures (which contain violations on
/// purpose).
const SKIP_DIRS: [&str; 7] = [
    "target", "vendor", "tests", "benches", "fixtures", "examples", ".git",
];

/// Collect every `.rs` file under the configured scan roots, sorted by
/// relative path for deterministic output.
pub fn scan(root: &Path, config: &Config) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for scan_root in &config.scan_roots {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, root, config, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn walk(dir: &Path, root: &Path, config: &Config, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, root, config, out)?;
        } else if name.ends_with(".rs") {
            let rel_path = rel_string(&path, root);
            let scope = scope_for(&rel_path, config);
            out.push(SourceFile {
                rel_path,
                abs_path: path,
                scope,
            });
        }
    }
    Ok(())
}

fn rel_string(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Map a workspace-relative path onto the passes that cover it.
///
/// - L1 runs on `src/` files of the configured library crates — binaries
///   (`main.rs`, `bin/`) may still panic at the top level.
/// - L2 runs on everything scanned except the approved modules.
/// - L3 runs on `src/` files of the typed-error crates.
/// - L4 runs only on the listed hot-path files.
/// - L5 runs on everything scanned (disabling it means emptying the unit
///   tables in `alint.toml`, not a per-file carve-out).
/// - L6 runs on every `src/` file of the determinism crates — *including*
///   binaries and `main.rs`, because a bin that prints results in hash
///   order corrupts regenerated datasets just as surely as a lib would.
///   `spawn_approved` exempts the audited pool modules from the fan-out
///   rule and `wall_clock_approved` (file or path prefix) exempts
///   diagnostics-only timing from the wall-clock rule.
/// - L7 runs on everything scanned, like L5: the pass only fires near
///   `.lock()` sites, and a lock in a bin deadlocks just as hard as one
///   in a lib (disabling it means emptying the `[locks]` tables).
pub fn scope_for(rel_path: &str, config: &Config) -> FileScope {
    let in_crate_src = |crate_root: &str| {
        rel_path.starts_with(&format!("{crate_root}/src/"))
            && !rel_path.contains("/bin/")
            && !rel_path.ends_with("/main.rs")
    };
    let prefix_match =
        |entry: &str| rel_path == entry || rel_path.starts_with(&format!("{entry}/"));
    FileScope {
        lib_crate: config.lib_crates.iter().any(|c| in_crate_src(c)),
        float_cmp: !config.float_cmp_approved.iter().any(|p| p == rel_path),
        typed_error: config.typed_error_crates.iter().any(|c| in_crate_src(c)),
        hot_path: config.hot_paths.iter().any(|p| p == rel_path),
        unit_safety: true,
        determinism: config
            .determinism_crates
            .iter()
            .any(|c| rel_path.starts_with(&format!("{c}/src/"))),
        spawn_blessed: config.spawn_approved.iter().any(|p| prefix_match(p)),
        wall_clock_approved: config.wall_clock_approved.iter().any(|p| prefix_match(p)),
        lock_discipline: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_assignment_follows_config() {
        let config = Config::default();
        let s = scope_for("crates/linalg/src/cholesky.rs", &config);
        assert!(s.lib_crate && s.typed_error && s.hot_path && s.float_cmp && s.unit_safety);
        assert!(s.determinism && !s.spawn_blessed && !s.wall_clock_approved);

        let s = scope_for("crates/core/src/procedure.rs", &config);
        assert!(s.lib_crate && !s.hot_path && s.unit_safety && s.determinism);

        // The linter lints itself: L1 and L3 cover its own src/ files.
        let s = scope_for("crates/alint/src/lints.rs", &config);
        assert!(s.lib_crate && s.typed_error && !s.hot_path && s.float_cmp);
        assert!(!s.determinism, "the lint runner is not determinism-scoped");
        assert!(s.lock_discipline, "L7 covers everything scanned");

        // The bench scenario registry is a listed hot path for L4.
        let s = scope_for("crates/bench/src/perf.rs", &config);
        assert!(s.hot_path && s.lock_discipline);

        // Binaries are exempt from the library-only passes but NOT from L6:
        // hash-order output from a bin corrupts regenerated datasets too.
        let s = scope_for("crates/core/src/main.rs", &config);
        assert!(!s.lib_crate && s.determinism);
        let s = scope_for("src/main.rs", &config);
        assert!(!s.lib_crate && s.float_cmp);
    }

    #[test]
    fn determinism_exemptions_follow_config() {
        let config = Config::default();
        let s = scope_for("crates/parallel/src/pool.rs", &config);
        assert!(s.determinism && s.spawn_blessed && !s.wall_clock_approved);
        // The old amr pool delegates to al-parallel now — no longer blessed.
        let s = scope_for("crates/amr/src/pool.rs", &config);
        assert!(s.determinism && !s.spawn_blessed);
        let s = scope_for("crates/core/src/batch.rs", &config);
        assert!(s.determinism && s.spawn_blessed);
        let s = scope_for("crates/dataset/src/generate.rs", &config);
        assert!(s.determinism && s.spawn_blessed);
        // Wall-clock approval is a path prefix: the whole bench crate may
        // time the host run, including its bin/ targets.
        let s = scope_for("crates/bench/src/data.rs", &config);
        assert!(s.determinism && s.wall_clock_approved && !s.spawn_blessed);
        let s = scope_for("crates/bench/src/bin/sweep.rs", &config);
        assert!(s.determinism && s.wall_clock_approved);
        // The solver core is neither blessed nor approved.
        let s = scope_for("crates/amr/src/solver.rs", &config);
        assert!(s.determinism && !s.spawn_blessed && !s.wall_clock_approved);
    }

    #[test]
    fn approved_modules_drop_float_cmp() {
        let mut config = Config::default();
        config
            .float_cmp_approved
            .push("crates/linalg/src/stats.rs".to_string());
        assert!(!scope_for("crates/linalg/src/stats.rs", &config).float_cmp);
        assert!(scope_for("crates/linalg/src/matrix.rs", &config).float_cmp);
    }

    #[test]
    fn scan_skips_vendored_and_test_trees() {
        // Run against the real workspace when invoked from the repo.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_default();
        if !root.join("Cargo.toml").is_file() {
            return;
        }
        let files = scan(&root, &Config::default()).expect("scan");
        assert!(!files.is_empty());
        for f in &files {
            assert!(
                !f.rel_path.contains("vendor/")
                    && !f.rel_path.contains("/tests/")
                    && !f.rel_path.contains("/fixtures/")
                    && !f.rel_path.contains("target/"),
                "{} should have been skipped",
                f.rel_path
            );
        }
        // Sorted and deduplicated by construction.
        let mut sorted = files.iter().map(|f| f.rel_path.clone()).collect::<Vec<_>>();
        sorted.dedup();
        assert_eq!(sorted.len(), files.len());
    }
}
