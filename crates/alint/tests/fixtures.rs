//! Fixture-driven integration tests: each lint runs over a known-bad and a
//! known-clean source under `tests/fixtures/` and must report the exact
//! expected diagnostics, and the CLI must exit nonzero on a violation.

// Integration-test helpers run outside #[cfg(test)], so the in-tests
// carve-outs from clippy.toml don't reach them.
#![allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]

use alint::callgraph::CallGraph;
use alint::config::{Allowance, Config};
use alint::lexer::lex;
use alint::lints::{lint_file, DeterminismTables, Diagnostic, FileScope, LockTables, UnitTables};
use std::path::{Path, PathBuf};

fn lint_fixture(name: &str, scope: FileScope) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    let lexed = lex(&src);
    let locks = LockTables::from_config(&Config::default());
    // Fixtures are single files, so the call graph sees exactly one file —
    // cross-file resolution is covered by the callgraph unit tests and the
    // workspace probe below.
    let graph = CallGraph::build(&[(name.to_string(), &lexed)], &locks.expensive);
    lint_file(
        name,
        &lexed,
        scope,
        &UnitTables::from_config(&Config::default()),
        &DeterminismTables::from_config(&Config::default()),
        &locks,
        &graph,
    )
}

fn all_scopes() -> FileScope {
    FileScope {
        lib_crate: true,
        float_cmp: true,
        typed_error: true,
        hot_path: true,
        unit_safety: true,
        determinism: true,
        spawn_blessed: false,
        wall_clock_approved: false,
        lock_discipline: true,
    }
}

fn only(select: impl Fn(&mut FileScope)) -> FileScope {
    let mut scope = FileScope::default();
    select(&mut scope);
    scope
}

#[test]
fn l1_flags_every_panic_site_outside_tests() {
    let diags = lint_fixture("l1_violations.rs", only(|s| s.lib_crate = true));
    assert_eq!(diags.len(), 5, "{diags:#?}");
    assert!(diags.iter().all(|d| d.lint == "L1"), "{diags:#?}");
    // One diagnostic per construct: unwrap, expect, todo!, unimplemented!,
    // panic! — and nothing from the #[cfg(test)] module.
    let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![7, 11, 17, 18, 19], "{diags:#?}");
}

#[test]
fn l1_clean_fixture_is_silent_under_every_lint() {
    let diags = lint_fixture("l1_clean.rs", all_scopes());
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn l2_flags_each_kind_of_float_evidence() {
    let diags = lint_fixture("l2_violations.rs", only(|s| s.float_cmp = true));
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.lint == "L2"), "{diags:#?}");
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![6, 9, 12],
        "{diags:#?}"
    );
}

#[test]
fn l2_clean_fixture_is_silent_under_every_lint() {
    let diags = lint_fixture("l2_clean.rs", all_scopes());
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn l2_flags_ascribed_float_variables() {
    let diags = lint_fixture("l2_ascription_violations.rs", only(|s| s.float_cmp = true));
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.lint == "L2"), "{diags:#?}");
    // `t == b`, `lo != hi`, `r == &a`: every comparison is opaque to the
    // manifest-evidence window and only the `let` ascriptions reveal it.
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![10, 13, 17],
        "{diags:#?}"
    );
}

#[test]
fn l2_ascription_clean_fixture_is_silent_under_every_lint() {
    let diags = lint_fixture("l2_ascription_clean.rs", all_scopes());
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn l2_markers_suppress_by_id_and_by_name() {
    let diags = lint_fixture("l2_suppressed.rs", only(|s| s.float_cmp = true));
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert_eq!(diags[0].line, 16, "only the unmarked comparison remains");
}

#[test]
fn l3_flags_untyped_error_slots() {
    let diags = lint_fixture("l3_violations.rs", only(|s| s.typed_error = true));
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.lint == "L3"), "{diags:#?}");
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![4, 8, 12],
        "{diags:#?}"
    );
}

#[test]
fn l3_clean_fixture_is_silent_under_every_lint() {
    let diags = lint_fixture("l3_clean.rs", all_scopes());
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn l4_flags_unmarked_float_to_int_casts() {
    let diags = lint_fixture("l4_violations.rs", only(|s| s.hot_path = true));
    assert_eq!(diags.len(), 2, "{diags:#?}");
    assert!(diags.iter().all(|d| d.lint == "L4"), "{diags:#?}");
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![4, 8],
        "{diags:#?}"
    );
}

#[test]
fn l4_clean_fixture_is_silent_under_every_lint() {
    let diags = lint_fixture("l4_clean.rs", all_scopes());
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn l5_flags_each_kind_of_unit_mixing() {
    let diags = lint_fixture("l5_violations.rs", only(|s| s.unit_safety = true));
    assert_eq!(diags.len(), 5, "{diags:#?}");
    assert!(diags.iter().all(|d| d.lint == "L5"), "{diags:#?}");
    // Suffix arithmetic, suffix comparison, compound assignment, quantity
    // ascription, and a quantity type name used in an expression.
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![5, 9, 15, 21, 25],
        "{diags:#?}"
    );
}

#[test]
fn l5_clean_fixture_is_silent_under_every_lint() {
    let diags = lint_fixture("l5_clean.rs", all_scopes());
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn l6_flags_each_kind_of_determinism_hazard() {
    let diags = lint_fixture("l6_violations.rs", only(|s| s.determinism = true));
    assert_eq!(diags.len(), 6, "{diags:#?}");
    assert!(diags.iter().all(|d| d.lint == "L6"), "{diags:#?}");
    // Hash iteration into `sum`, a for-loop body feeding `push_str`, a
    // `collect` in arrival order, an ad-hoc `thread::spawn`, `Instant::now`,
    // and an unseeded `from_entropy` — all three sub-rules represented.
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![8, 13, 20, 24, 28, 33],
        "{diags:#?}"
    );
}

#[test]
fn l6_blessed_scopes_drop_the_spawn_and_wall_clock_rules() {
    let diags = lint_fixture(
        "l6_violations.rs",
        only(|s| {
            s.determinism = true;
            s.spawn_blessed = true;
            s.wall_clock_approved = true;
        }),
    );
    // Only the three hash-order iteration findings remain.
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![8, 13, 20],
        "{diags:#?}"
    );
}

#[test]
fn l6_clean_fixture_is_silent_under_every_lint() {
    let diags = lint_fixture("l6_clean.rs", all_scopes());
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn l7_flags_each_locking_rule() {
    let diags = lint_fixture("l7_violations.rs", only(|s| s.lock_discipline = true));
    assert!(diags.iter().all(|d| d.lint == "L7"), "{diags:#?}");
    // Direct expensive call under a guard, a lock-order inversion, a
    // double-acquire, a guard held across `.await`, a call reaching an
    // expensive ident through the call graph, an inversion one call deep,
    // and an undeclared receiver class.
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![11, 16, 22, 28, 34, 39, 47],
        "{diags:#?}"
    );
    let expect = |line: u32, needle: &str| {
        let d = diags
            .iter()
            .find(|d| d.line == line)
            .unwrap_or_else(|| panic!("no diagnostic at line {line}"));
        assert!(d.message.contains(needle), "{line}: {}", d.message);
    };
    expect(11, "expensive call `fit`");
    expect(16, "lock-order inversion");
    expect(22, "double-acquire");
    expect(28, "held across `.await`");
    expect(34, "reaches expensive `solve` through the call graph");
    expect(39, "lock-order inversion via `warm_taker`");
    expect(47, "no declared lock class");
}

#[test]
fn l7_clean_fixture_is_silent_under_every_lint() {
    let diags = lint_fixture("l7_clean.rs", all_scopes());
    assert!(diags.is_empty(), "{diags:#?}");
}

/// The ratchet probe: the defaults keep the real workspace clean, and
/// explicitly emptying `lock_order` must *surface* raw L7 findings at every
/// declared acquisition in `crates/core/src/store.rs` — deleting the order
/// table can never silence the lint.
#[test]
fn l7_emptied_order_probes_the_real_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_default();
    if !root.join("Cargo.toml").is_file() {
        return;
    }
    let mut config = Config::default();
    config.lock_order.clear();
    let (diags, _) = alint::raw_diagnostics(&root, &config).expect("scan workspace");
    let store_findings: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.lint == "L7" && d.path == "crates/core/src/store.rs")
        .collect();
    assert!(
        store_findings.len() >= 5,
        "emptying lock_order should surface every store acquisition: {store_findings:#?}"
    );
    for class in ["warm", "shard"] {
        assert!(
            store_findings
                .iter()
                .any(|d| d.message.contains(&format!("`{class}`"))),
            "no {class} finding: {store_findings:#?}"
        );
    }
    assert!(
        store_findings
            .iter()
            .all(|d| d.message.contains("missing from [locks] lock_order")),
        "{store_findings:#?}"
    );
}

#[test]
fn allowlist_budget_absorbs_fixture_violations_exactly() {
    let diags = lint_fixture("l1_violations.rs", only(|s| s.lib_crate = true));
    let allow = |count| Config {
        allowances: vec![Allowance {
            path: "l1_violations.rs".into(),
            lint: "L1".into(),
            count,
            reason: "fixture".into(),
        }],
        ..Config::default()
    };

    let report = alint::apply_allowlist(diags.clone(), &allow(5), 1);
    assert!(report.is_clean(), "{:#?}", report.violations);
    assert_eq!(report.grandfathered.len(), 5);

    // One site fewer in the budget: exactly one (the last) escapes.
    let report = alint::apply_allowlist(diags, &allow(4), 1);
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    assert_eq!(report.grandfathered.len(), 4);
}

/// End-to-end CLI checks against a scratch workspace: a violation makes
/// `alint check` exit 1, an allowlist entry brings it back to 0.
#[test]
fn cli_exits_nonzero_on_violation_and_zero_when_allowlisted() {
    let root = scratch_workspace("cli_exit");
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn boom(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    )
    .expect("write fixture source");
    let scope = "lib_crates = [\"crates/demo\"]\nscan_roots = [\"crates\"]\n";
    std::fs::write(root.join("alint.toml"), scope).expect("write config");

    let run = |root: &Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_alint"))
            .args(["check", "--root"])
            .arg(root)
            .output()
            .expect("run alint")
    };

    let out = run(&root);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/demo/src/lib.rs:2: L1(panic_site)"),
        "{stdout}"
    );

    let allow = format!(
        "{scope}\n[[allow]]\npath = \"crates/demo/src/lib.rs\"\nlint = \"L1\"\n\
         count = 1\nreason = \"fixture\"\n"
    );
    std::fs::write(root.join("alint.toml"), allow).expect("rewrite config");
    let out = run(&root);
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    std::fs::remove_dir_all(&root).ok();
}

/// A stale `[[allow]]` entry (its file has no findings at all) must fail
/// the check rather than linger as a silent re-admission channel.
#[test]
fn cli_fails_on_stale_allowlist_entries() {
    let root = scratch_workspace("stale_allow");
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(src_dir.join("lib.rs"), "pub fn ok() -> u8 {\n    1\n}\n")
        .expect("write fixture source");
    std::fs::write(
        root.join("alint.toml"),
        "lib_crates = [\"crates/demo\"]\nscan_roots = [\"crates\"]\n\
         [[allow]]\npath = \"crates/demo/src/lib.rs\"\nlint = \"L1\"\n\
         count = 1\nreason = \"paid down\"\n",
    )
    .expect("write config");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_alint"))
        .args(["check", "--root"])
        .arg(&root)
        .output()
        .expect("run alint");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stale [[allow]] entry for L1"), "{stdout}");

    std::fs::remove_dir_all(&root).ok();
}

/// `--format json` emits one machine-readable object carrying the same
/// verdict as the exit code; `--format github` emits `::error` annotations.
#[test]
fn cli_formats_json_and_github_output() {
    let root = scratch_workspace("formats");
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn boom(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    )
    .expect("write fixture source");
    std::fs::write(
        root.join("alint.toml"),
        "lib_crates = [\"crates/demo\"]\nscan_roots = [\"crates\"]\n",
    )
    .expect("write config");

    let run = |fmt: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_alint"))
            .args(["check", "--format", fmt, "--root"])
            .arg(&root)
            .output()
            .expect("run alint")
    };

    let out = run("json");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("{\"clean\": false, "), "{stdout}");
    assert!(
        stdout.contains(
            "\"path\": \"crates/demo/src/lib.rs\", \"line\": 2, \
             \"lint\": \"L1\", \"name\": \"panic_site\""
        ),
        "{stdout}"
    );

    let out = run("github");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("::error file=crates/demo/src/lib.rs,line=2,title=alint L1(panic_site)::"),
        "{stdout}"
    );

    std::fs::remove_dir_all(&root).ok();
}

/// `--lint <ID>` restricts check to one pass: the other lints' findings
/// disappear, their allowlist entries are not reported stale, and an
/// unknown selector is a usage error.
#[test]
fn cli_lint_flag_filters_check_to_one_pass() {
    let root = scratch_workspace("lint_flag");
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    // One L1 finding (unwrap) and one L6 finding (thread::spawn) in a file
    // scoped to both passes.
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn go(v: Option<u8>) -> u8 {\n    std::thread::spawn(|| 1);\n    v.unwrap()\n}\n",
    )
    .expect("write fixture source");
    std::fs::write(
        root.join("alint.toml"),
        "lib_crates = [\"crates/demo\"]\nscan_roots = [\"crates\"]\n\
         [determinism]\ndeterminism_crates = [\"crates/demo\"]\n\
         [[allow]]\npath = \"crates/demo/src/lib.rs\"\nlint = \"L1\"\n\
         count = 1\nreason = \"fixture\"\n",
    )
    .expect("write config");

    let run = |lint: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_alint"))
            .args(["check", "--lint", lint, "--root"])
            .arg(&root)
            .output()
            .expect("run alint")
    };

    // L6 alone: the spawn finding fires; the L1 allowance for the same file
    // must NOT be reported stale just because L1 was filtered out.
    let out = run("L6");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/demo/src/lib.rs:2: L6(determinism_safety)"),
        "{stdout}"
    );
    assert!(!stdout.contains("L1"), "{stdout}");
    assert!(!stdout.contains("stale [[allow]]"), "{stdout}");

    // L1 alone (by name, mixed case): the unwrap is absorbed by its
    // allowance, so the filtered check is clean.
    let out = run("Panic_Site");
    assert_eq!(out.status.code(), Some(0), "{out:?}");

    // Unknown selector: usage error, exit 2.
    let out = run("L9");
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    std::fs::remove_dir_all(&root).ok();
}

/// Golden round-trip for `ratchet`: its stdout must parse as `[[allow]]`
/// entries that exactly absorb the current violations — appending it to the
/// config turns a failing check into a clean one with zero slack and zero
/// stale entries.
#[test]
fn cli_ratchet_output_round_trips_through_the_allowlist() {
    let root = scratch_workspace("ratchet_golden");
    let src_dir = root.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn a(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n\
         pub fn b(v: Option<u8>) -> u8 {\n    v.expect(\"b\")\n}\n",
    )
    .expect("write fixture source");
    std::fs::write(
        src_dir.join("extra.rs"),
        "pub fn c() {\n    std::thread::spawn(|| 1);\n}\n",
    )
    .expect("write fixture source");
    // Two L7 findings: an undeclared receiver class and an expensive call
    // under the guard (the default [locks] tables apply to the scratch
    // workspace too).
    std::fs::write(
        src_dir.join("locked.rs"),
        "pub fn hold(m: &Mutex<u32>) -> u32 {\n    let g = m.lock();\n    fit(*g)\n}\n",
    )
    .expect("write fixture source");
    let scope = "lib_crates = [\"crates/demo\"]\nscan_roots = [\"crates\"]\n\
                 [determinism]\ndeterminism_crates = [\"crates/demo\"]\n";
    std::fs::write(root.join("alint.toml"), scope).expect("write config");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_alint"))
        .args(["ratchet", "--root"])
        .arg(&root)
        .output()
        .expect("run alint ratchet");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let printed = String::from_utf8_lossy(&out.stdout).to_string();

    // The printed entries parse with the workspace config parser and carry
    // exactly the per-(file, lint) violation counts.
    let parsed = alint::config::parse(&format!("{scope}{printed}")).expect("parse ratchet output");
    let entry = |path: &str, lint: &str| {
        parsed
            .allowances
            .iter()
            .find(|a| a.path == path && a.lint == lint)
            .unwrap_or_else(|| panic!("missing [[allow]] for {path} {lint}\n{printed}"))
    };
    assert_eq!(entry("crates/demo/src/lib.rs", "L1").count, 2, "{printed}");
    assert_eq!(
        entry("crates/demo/src/extra.rs", "L6").count,
        1,
        "{printed}"
    );
    assert_eq!(
        entry("crates/demo/src/locked.rs", "L7").count,
        2,
        "{printed}"
    );
    assert_eq!(parsed.allowances.len(), 3, "{printed}");

    // Adopting the printed allowlist makes the check clean — and since the
    // counts are exact, no slack notes and no stale-entry errors appear.
    std::fs::write(root.join("alint.toml"), format!("{scope}{printed}")).expect("rewrite config");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_alint"))
        .args(["check", "--root"])
        .arg(&root)
        .output()
        .expect("run alint check");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("stale"), "{stdout}");
    assert!(!stdout.contains("tighten"), "{stdout}");
    assert!(stdout.contains("5 grandfathered sites"), "{stdout}");

    std::fs::remove_dir_all(&root).ok();
}

/// `lints` lists every pass with its name, description, and enabled-status
/// derived from the loaded configuration.
#[test]
fn cli_lints_subcommand_lists_passes_with_enabled_status() {
    let root = scratch_workspace("lints_list");
    std::fs::create_dir_all(root.join("crates")).expect("mkdir");
    // hot_paths emptied → L4 off; everything else inherits the defaults.
    std::fs::write(
        root.join("alint.toml"),
        "scan_roots = [\"crates\"]\nhot_paths = []\n",
    )
    .expect("write config");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_alint"))
        .args(["lints", "--root"])
        .arg(&root)
        .output()
        .expect("run alint lints");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 7, "{stdout}");
    for (i, id) in ["L1", "L2", "L3", "L4", "L5", "L6", "L7"]
        .iter()
        .enumerate()
    {
        assert!(lines[i].starts_with(id), "{stdout}");
    }
    let row = |id: &str| {
        lines
            .iter()
            .find(|l| l.starts_with(id))
            .unwrap_or_else(|| panic!("no {id} row\n{stdout}"))
            .to_string()
    };
    assert!(
        row("L4").contains("lossy_cast") && row("L4").contains("off"),
        "{stdout}"
    );
    assert!(
        row("L1").contains("panic_site") && row("L1").contains("on"),
        "{stdout}"
    );
    assert!(
        row("L7").contains("lock_discipline") && row("L7").contains("on"),
        "{stdout}"
    );
    assert!(row("L7").contains("under lock guards"), "{stdout}");

    std::fs::remove_dir_all(&root).ok();
}

/// Unique-per-test scratch directory under the target temp dir.
fn scratch_workspace(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("alint-fixture-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).expect("mkdir scratch root");
    root
}
