//! Fixture: the panic-free counterpart of `l1_violations.rs` — every
//! failure propagates through a typed Result.

use std::collections::BTreeMap;

#[derive(Debug)]
pub enum FixtureError {
    Missing,
    BadKind(u8),
}

pub fn config_value(map: &BTreeMap<String, f64>) -> Result<f64, FixtureError> {
    map.get("key").copied().ok_or(FixtureError::Missing)
}

pub fn read_entry(opt: Option<f64>) -> Result<f64, FixtureError> {
    opt.ok_or(FixtureError::Missing)
}

pub fn reject(kind: u8) -> Result<f64, FixtureError> {
    match kind {
        0 => Ok(0.0),
        other => Err(FixtureError::BadKind(other)),
    }
}
