//! Fixture: five L1 panic sites in library code, plus a test module whose
//! unwraps must NOT be reported.

use std::collections::BTreeMap;

pub fn config_value(map: &BTreeMap<String, f64>) -> f64 {
    *map.get("key").unwrap()
}

pub fn read_entry(opt: Option<f64>) -> f64 {
    opt.expect("entry must exist")
}

pub fn reject(kind: u8) -> f64 {
    match kind {
        0 => 0.0,
        1 => todo!(),
        2 => unimplemented!(),
        _ => panic!("bad kind {kind}"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_exempt() {
        let v: Option<u8> = Some(3);
        v.unwrap();
        v.expect("fine here");
        if v.is_none() {
            panic!("also fine");
        }
    }
}
