//! Fixture: `let` ascriptions that must NOT trigger L2 — integer
//! ascriptions, non-scalar float containers, names with conflicting
//! (shadowed) ascriptions, and float variables used without comparison.

pub fn checks(xs: Vec<f64>, n: usize) -> usize {
    let count: usize = xs.len();
    let data: Vec<f64> = xs;
    let total: f64 = data.iter().sum();
    let scaled = total * 2.0;
    if count == n && data.len() == n {
        count
    } else {
        scaled.to_bits() as usize
    }
}

pub fn first(k: f64) -> f64 {
    let k: f64 = k + 1.0;
    k
}

pub fn second(k: usize, n: usize) -> bool {
    // Same name as the float in `first`: the ambiguous ascription is
    // dropped, so this integer comparison stays silent.
    let k: usize = k + 1;
    k == n
}
