//! Fixture: float comparisons visible only through `let` type
//! ascriptions — no manifestly-float token sits in the comparison window.

pub fn checks(a: f64, b: f64) -> u32 {
    let t: f64 = a * b;
    let mut lo: f32 = (a - b) as f32;
    let hi: f32 = lo + 1.5;
    lo += hi;
    let mut hits = 0;
    if t == b {
        hits += 1;
    }
    if lo != hi {
        hits += 1;
    }
    let r: &f64 = &t;
    if r == &a {
        hits += 1;
    }
    hits
}
