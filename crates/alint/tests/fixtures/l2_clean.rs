//! Fixture: the same logic as `l2_violations.rs` written with epsilon
//! comparisons and total ordering — nothing to report.

pub fn checks(x: f64, y: f64) -> u32 {
    let mut hits = 0;
    if (x - 0.0).abs() < 1e-12 {
        hits += 1;
    }
    if y.is_finite() {
        hits += 1;
    }
    if x.total_cmp(&y) == std::cmp::Ordering::Equal {
        hits += 1;
    }
    hits
}
