//! Fixture: suppression markers. The first two comparisons carry
//! `alint: allow` markers (by ID on the line above, by name on the same
//! line); only the third is reported.

pub fn is_zero(a: f64) -> bool {
    // Exact zero is the sparsity sentinel here.
    // alint: allow(L2)
    a == 0.0
}

pub fn is_one(a: f64) -> bool {
    a == 1.0 // alint: allow(float_cmp)
}

pub fn is_two(a: f64) -> bool {
    a == 2.0
}
