//! Fixture: three bare float comparisons, each flagged by different
//! "manifestly float" evidence (literal, f64 path, float method).

pub fn checks(x: f64, y: f64) -> u32 {
    let mut hits = 0;
    if x == 0.0 {
        hits += 1;
    }
    if y != f64::INFINITY {
        hits += 1;
    }
    if x.sqrt() == y {
        hits += 1;
    }
    hits
}
