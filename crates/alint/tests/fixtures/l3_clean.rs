//! Fixture: typed-error counterpart — the crate error type, the crate's
//! single-argument Result alias, and non-public functions are all fine.

#[derive(Debug)]
pub enum FixtureError {
    Bad,
}

pub type Result<T, E = FixtureError> = std::result::Result<T, E>;

pub fn load() -> Result<f64, FixtureError> {
    Ok(1.0)
}

pub fn alias() -> Result<u32> {
    Ok(3)
}

pub(crate) fn internal() -> std::result::Result<u32, String> {
    Ok(3)
}

fn private() -> std::result::Result<u32, String> {
    Ok(3)
}
