//! Fixture: three public Result signatures with untyped error slots
//! (type-erased box, String, &str).

pub fn load() -> Result<f64, Box<dyn std::error::Error>> {
    Ok(1.0)
}

pub fn parse_header(s: &str) -> Result<u32, String> {
    Err(s.to_string())
}

pub const fn flag() -> Result<(), &'static str> {
    Err("nope")
}
