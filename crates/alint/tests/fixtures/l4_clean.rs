//! Fixture: casts that are fine in a hot path — int→int, float→float,
//! and an intentional truncation carrying the marker.

pub fn widen(n: u32) -> usize {
    n as usize
}

pub fn promote(x: f32) -> f64 {
    x as f64
}

pub fn cell_index(x: f64) -> usize {
    // alint: allow(L4)
    x.trunc() as usize
}
