//! Fixture: two unmarked float→int casts in a hot-path module.

pub fn bucket(x: f64) -> usize {
    (x * 8.0).floor() as usize
}

pub fn quantize(x: f64) -> i64 {
    x.round() as i64
}
