//! L5 clean fixtures: same-unit arithmetic, one-sided evidence, explicit
//! conversions, and marker suppression must all stay silent.

pub fn same_unit(start_us: f64, end_us: f64) -> f64 {
    end_us - start_us
}

pub fn converted(wall_seconds: Seconds, step_us: Micros) -> Seconds {
    wall_seconds + step_us.to_seconds()
}

pub fn converted_free_fn(a_us: f64, b_seconds: f64) -> f64 {
    to_seconds(a_us) + b_seconds
}

pub fn one_sided(wall_seconds: f64, scale: f64) -> bool {
    wall_seconds * scale < threshold(scale)
}

fn threshold(x: f64) -> f64 {
    x
}

pub fn marked(total_mb: f64, used_bytes: f64) -> bool {
    // alint: allow(L5)
    total_mb < used_bytes
}

pub fn signature_types(limit: Option<Megabytes>, cost_node_hours: f64) -> NodeHours {
    let _ = limit;
    NodeHours::new(cost_node_hours)
}
