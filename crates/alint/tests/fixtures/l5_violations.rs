//! L5 fixtures: arithmetic and comparisons that mix inferred units.
//! Expected diagnostics: lines 5, 9, 15, 21, 25.

pub fn mixed_arithmetic(cell_update_us: f64, wall_seconds: f64) -> f64 {
    cell_update_us + wall_seconds
}

pub fn mixed_comparison(base_mem_mb: f64, payload_bytes: f64) -> bool {
    base_mem_mb < payload_bytes
}

pub fn mixed_compound_assign(total: f64, extra_seconds: f64) -> f64 {
    let mut total_us: f64 = total;
    // `+=` lexes as `+` then `=`; L5 must still see both operands.
    total_us += extra_seconds;
    total_us
}

pub fn mixed_ascription(budget: Seconds, spent_us: f64) -> bool {
    let wall: Seconds = budget;
    wall != spent_us
}

pub fn mixed_type_name(raw_mb: f64) -> bool {
    Seconds::new(1.0) < raw_mb
}
