//! L6 clean fixture: the deterministic counterpart of every hazard the
//! pass flags — ordered iteration, explicit seeds, audited opt-outs — and
//! silent under every other lint as well.

use std::collections::{BTreeMap, HashMap, HashSet};

/// Sorting the key snapshot before the reduction makes the visit order
/// bitwise-stable regardless of hasher state.
pub fn sorted_total(m: &HashMap<u32, f64>) -> f64 {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys.iter().map(|k| m[k]).sum()
}

/// Re-keying into a `BTreeMap` is the other blessed escape hatch.
pub fn rekeyed(m: &HashMap<u32, f64>) -> BTreeMap<u32, f64> {
    let ordered: BTreeMap<u32, f64> = m.iter().map(|(k, v)| (*k, *v)).collect();
    ordered
}

/// A pure membership sweep observes no ordering: no sink, no finding.
pub fn contains_target(ids: &HashSet<u32>, target: u32) -> bool {
    for id in ids {
        if *id == target {
            return true;
        }
    }
    false
}

/// An audited site may opt out explicitly.
pub fn audited(ids: &HashSet<u32>) -> Vec<u32> {
    ids.iter().copied().collect() // alint: allow(L6)
}

/// Randomness is fine when the seed is explicit.
pub fn seeded_draw(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}
