//! L6 fixture: one finding per determinism hazard — hash-order iteration
//! into order-observable sinks, ad-hoc thread fan-out, and wall-clock or
//! entropy reads in priced code.

use std::collections::{HashMap, HashSet};

pub fn total_cost(costs: &HashMap<String, f64>) -> f64 {
    costs.values().sum()
}

pub fn render_ids(ids: &HashSet<u32>) -> String {
    let mut out = String::new();
    for id in ids {
        out.push_str(&format!("{id} "));
    }
    out
}

pub fn keys_in_arrival_order(m: &HashMap<u32, f64>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn offload(xs: Vec<f64>) -> std::thread::JoinHandle<f64> {
    std::thread::spawn(move || xs.iter().sum())
}

pub fn elapsed_cost() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos()
}

pub fn unseeded() -> u64 {
    let mut rng = SmallRng::from_entropy();
    rng.next_u64()
}
