//! L7 fixture: disciplined locking — silent under every lint.

pub struct Store {
    warm: Mutex<u32>,
    shard: Mutex<u32>,
}

impl Store {
    pub fn ascending_order(&self) -> u32 {
        let w = self.warm.lock();
        let s = self.shard.lock();
        *w + *s
    }

    pub fn drop_ends_the_window(&self) -> u32 {
        let g = self.shard.lock();
        let v = *g;
        drop(g);
        fit(v)
    }

    pub fn temp_guard_window_ends_at_the_statement(&self) -> u32 {
        let v = *self.shard.lock();
        fit(v)
    }

    pub fn cheap_call_under_guard(&self) -> u32 {
        let g = self.warm.lock();
        double(*g)
    }

    pub fn marked(&self) -> u32 {
        let g = self.shard.lock();
        // Fixture: an intentionally marked expensive call.
        // alint: allow(L7)
        fit(*g)
    }
}

fn double(x: u32) -> u32 {
    x + x
}
