//! L7 fixture: each locking rule fires at a pinned line.

pub struct Store {
    warm: Mutex<u32>,
    shard: Mutex<u32>,
}

impl Store {
    pub fn expensive_under_guard(&self) -> u32 {
        let g = self.shard.lock();
        fit(*g)
    }

    pub fn inversion(&self) -> u32 {
        let s = self.shard.lock();
        let w = self.warm.lock();
        *s + *w
    }

    pub fn double_acquire(&self) -> u32 {
        let a = self.shard.lock();
        let b = self.shard.lock();
        *a + *b
    }

    pub async fn held_across_await(&self) {
        let g = self.warm.lock();
        pause().await;
        drop(g);
    }

    pub fn through_the_graph(&self) -> u32 {
        let g = self.warm.lock();
        helper(*g)
    }

    pub fn inversion_via_call(&self) -> u32 {
        let g = self.shard.lock();
        self.warm_taker() + *g
    }

    fn warm_taker(&self) -> u32 {
        *self.warm.lock()
    }

    pub fn undeclared(&self, extra: &Mutex<u32>) -> u32 {
        *extra.lock()
    }
}

fn helper(x: u32) -> u32 {
    deeper(x)
}

fn deeper(x: u32) -> u32 {
    solve(x)
}
