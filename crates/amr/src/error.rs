//! Error type for the AMR forest and solver.

use crate::tree::PatchKey;
use std::fmt;

/// Broken structural invariants surfaced by forest operations.
///
/// These conditions mean the 2:1-balanced quadtree has lost a leaf or a
/// flux register it was guaranteed to have — a logic error in regridding
/// or balance enforcement. They are reported as typed errors rather than
/// panics so a long parameter sweep can record the failed configuration
/// and continue with the remaining jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmrError {
    /// A leaf patch expected at `key` was absent from the forest.
    MissingLeaf(PatchKey),
    /// A fine-level flux register expected at `key` was absent during
    /// refluxing, violating the 2:1 balance guarantee.
    MissingFluxRegister(PatchKey),
}

impl fmt::Display for AmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmrError::MissingLeaf((l, i, j)) => {
                write!(
                    f,
                    "forest invariant broken: no leaf at level {l}, patch ({i}, {j})"
                )
            }
            AmrError::MissingFluxRegister((l, i, j)) => write!(
                f,
                "reflux invariant broken: no flux register at level {l}, patch ({i}, {j})"
            ),
        }
    }
}

impl std::error::Error for AmrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_patch() {
        let e = AmrError::MissingLeaf((2, 3, 4));
        assert!(e.to_string().contains("level 2"));
        assert!(e.to_string().contains("(3, 4)"));
        let e = AmrError::MissingFluxRegister((1, 0, 0));
        assert!(e.to_string().contains("flux register"));
    }
}
