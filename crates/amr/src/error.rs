//! Error type for the AMR forest and solver.

use crate::solver::TruncationReason;
use crate::tree::PatchKey;
use std::fmt;

/// Failures surfaced by forest operations and simulation runs.
///
/// The structural variants mean the 2:1-balanced quadtree has lost a leaf
/// or a flux register it was guaranteed to have — a logic error in
/// regridding or balance enforcement. [`AmrError::Truncated`] means a run
/// stopped meaningfully short of its configured end time, so its work
/// counters describe a partial burst. All are reported as typed errors
/// rather than panics so a long parameter sweep can record the failed
/// configuration and continue with the remaining jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmrError {
    /// A leaf patch expected at `key` was absent from the forest.
    MissingLeaf(PatchKey),
    /// A fine-level flux register expected at `key` was absent during
    /// refluxing, violating the 2:1 balance guarantee.
    MissingFluxRegister(PatchKey),
    /// The run stopped before `t_final`; recording its counters as a
    /// completed job would corrupt the dataset's cost surface.
    Truncated {
        /// Why the run stopped early.
        reason: TruncationReason,
        /// Coarse steps completed before stopping.
        steps: u64,
    },
}

impl fmt::Display for AmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmrError::MissingLeaf((l, i, j)) => {
                write!(
                    f,
                    "forest invariant broken: no leaf at level {l}, patch ({i}, {j})"
                )
            }
            AmrError::MissingFluxRegister((l, i, j)) => write!(
                f,
                "reflux invariant broken: no flux register at level {l}, patch ({i}, {j})"
            ),
            AmrError::Truncated { reason, steps } => write!(
                f,
                "simulation truncated before t_final after {steps} steps: {reason}"
            ),
        }
    }
}

impl std::error::Error for AmrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_patch() {
        let e = AmrError::MissingLeaf((2, 3, 4));
        assert!(e.to_string().contains("level 2"));
        assert!(e.to_string().contains("(3, 4)"));
        let e = AmrError::MissingFluxRegister((1, 0, 0));
        assert!(e.to_string().contains("flux register"));
    }

    #[test]
    fn truncation_display_names_reason_and_steps() {
        let e = AmrError::Truncated {
            reason: TruncationReason::MaxSteps,
            steps: 200_000,
        };
        let msg = e.to_string();
        assert!(msg.contains("truncated"), "{msg}");
        assert!(msg.contains("200000"), "{msg}");
        assert!(msg.contains("step cap"), "{msg}");
    }
}
