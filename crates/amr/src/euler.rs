//! 2D compressible Euler equations: state algebra, HLLC approximate Riemann
//! solver and MUSCL slope limiting.
//!
//! Conservative variables `q = (ρ, ρu, ρv, E)` with the ideal-gas closure
//! `p = (γ−1)(E − ½ρ(u²+v²))`, `γ = 1.4`. The solver below is the
//! building block FORESTCLAW's Clawpack patches provide in the paper's
//! setup: a high-resolution finite-volume update based on Riemann solutions
//! at cell interfaces.

/// Ratio of specific heats for a diatomic ideal gas.
pub const GAMMA: f64 = 1.4;

/// Number of conserved variables.
pub const NVAR: usize = 4;

/// Conservative state vector `(ρ, ρu, ρv, E)`.
pub type State = [f64; NVAR];

/// Construct a conservative state from primitive variables
/// `(ρ, u, v, p)`.
pub fn conservative(rho: f64, u: f64, v: f64, p: f64) -> State {
    debug_assert!(rho > 0.0 && p > 0.0);
    let e = p / (GAMMA - 1.0) + 0.5 * rho * (u * u + v * v);
    [rho, rho * u, rho * v, e]
}

/// Pressure from a conservative state.
#[inline]
pub fn pressure(q: &State) -> f64 {
    let rho = q[0];
    let ke = 0.5 * (q[1] * q[1] + q[2] * q[2]) / rho;
    (GAMMA - 1.0) * (q[3] - ke)
}

/// Speed of sound `√(γp/ρ)`; clamps non-physical states to a tiny positive
/// pressure so a failing cell slows the CFL step instead of producing NaNs.
#[inline]
pub fn sound_speed(q: &State) -> f64 {
    let p = pressure(q).max(1e-12);
    (GAMMA * p / q[0].max(1e-12)).sqrt()
}

/// Largest characteristic speed `|u| + c` over both directions — the CFL
/// signal speed of a cell.
#[inline]
pub fn max_wave_speed(q: &State) -> f64 {
    let rho = q[0].max(1e-12);
    let u = (q[1] / rho).abs();
    let v = (q[2] / rho).abs();
    u.max(v) + sound_speed(q)
}

/// Physical flux in the x-direction.
#[inline]
pub fn flux_x(q: &State) -> State {
    let rho = q[0].max(1e-12);
    let u = q[1] / rho;
    let p = pressure(q);
    [q[1], q[1] * u + p, q[2] * u, (q[3] + p) * u]
}

/// Swap the roles of x and y momentum, turning a y-sweep into an x-sweep.
#[inline]
pub fn transpose_state(q: &State) -> State {
    [q[0], q[2], q[1], q[3]]
}

/// HLLC approximate Riemann flux in the x-direction between left state `ql`
/// and right state `qr`.
///
/// Wave-speed estimates follow Batten et al. (Roe-averaged bounds); the
/// contact restoration makes HLLC resolve the material interface of the
/// bubble far better than plain HLL, which matters because refinement tags
/// track exactly that interface.
pub fn hllc_flux(ql: &State, qr: &State) -> State {
    let rl = ql[0].max(1e-12);
    let rr = qr[0].max(1e-12);
    let ul = ql[1] / rl;
    let ur = qr[1] / rr;
    let pl = pressure(ql).max(1e-12);
    let pr = pressure(qr).max(1e-12);
    let cl = (GAMMA * pl / rl).sqrt();
    let cr = (GAMMA * pr / rr).sqrt();

    // Roe-averaged velocity / sound speed for robust wave-speed bounds.
    let srl = rl.sqrt();
    let srr = rr.sqrt();
    let u_roe = (srl * ul + srr * ur) / (srl + srr);
    let hl = (ql[3] + pl) / rl;
    let hr = (qr[3] + pr) / rr;
    let h_roe = (srl * hl + srr * hr) / (srl + srr);
    let vl = ql[2] / rl;
    let vr = qr[2] / rr;
    let v_roe = (srl * vl + srr * vr) / (srl + srr);
    let c_roe2 = (GAMMA - 1.0) * (h_roe - 0.5 * (u_roe * u_roe + v_roe * v_roe));
    let c_roe = c_roe2.max(1e-12).sqrt();

    let sl = (ul - cl).min(u_roe - c_roe);
    let sr = (ur + cr).max(u_roe + c_roe);

    if sl >= 0.0 {
        return flux_x(ql);
    }
    if sr <= 0.0 {
        return flux_x(qr);
    }

    // Contact (middle) wave speed.
    let sm =
        (pr - pl + rl * ul * (sl - ul) - rr * ur * (sr - ur)) / (rl * (sl - ul) - rr * (sr - ur));

    let star = |q: &State, s: f64, u: f64, p: f64| -> State {
        let r = q[0];
        let factor = r * (s - u) / (s - sm);
        let e_star = q[3] / r + (sm - u) * (sm + p / (r * (s - u)));
        [factor, factor * sm, factor * (q[2] / r), factor * e_star]
    };

    if sm >= 0.0 {
        let f = flux_x(ql);
        let qs = star(ql, sl, ul, pl);
        [
            f[0] + sl * (qs[0] - ql[0]),
            f[1] + sl * (qs[1] - ql[1]),
            f[2] + sl * (qs[2] - ql[2]),
            f[3] + sl * (qs[3] - ql[3]),
        ]
    } else {
        let f = flux_x(qr);
        let qs = star(qr, sr, ur, pr);
        [
            f[0] + sr * (qs[0] - qr[0]),
            f[1] + sr * (qs[1] - qr[1]),
            f[2] + sr * (qs[2] - qr[2]),
            f[3] + sr * (qs[3] - qr[3]),
        ]
    }
}

/// Minmod slope limiter: the classic TVD choice for MUSCL reconstruction.
#[inline]
pub fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn conservative_primitive_roundtrip() {
        let q = conservative(1.4, 3.0, -1.0, 2.5);
        assert!(approx(q[0], 1.4, 1e-14));
        assert!(approx(pressure(&q), 2.5, 1e-12));
        assert!(approx(q[1] / q[0], 3.0, 1e-14));
        assert!(approx(q[2] / q[0], -1.0, 1e-14));
    }

    #[test]
    fn sound_speed_of_standard_air() {
        let q = conservative(1.0, 0.0, 0.0, 1.0);
        assert!(approx(sound_speed(&q), GAMMA.sqrt(), 1e-12));
    }

    #[test]
    fn max_wave_speed_includes_advection() {
        let q = conservative(1.0, 2.0, 0.5, 1.0);
        assert!(approx(max_wave_speed(&q), 2.0 + GAMMA.sqrt(), 1e-12));
    }

    #[test]
    fn flux_of_uniform_rest_state_is_pressure_only() {
        let q = conservative(1.0, 0.0, 0.0, 1.0);
        let f = flux_x(&q);
        assert_eq!(f[0], 0.0);
        assert!(approx(f[1], 1.0, 1e-12)); // momentum flux = p
        assert_eq!(f[2], 0.0);
        assert_eq!(f[3], 0.0);
    }

    #[test]
    fn hllc_is_consistent_with_the_physical_flux() {
        // Identical left/right states ⇒ the numerical flux equals F(q).
        let q = conservative(1.3, 0.7, -0.2, 2.0);
        let f = hllc_flux(&q, &q);
        let fx = flux_x(&q);
        for k in 0..NVAR {
            assert!(approx(f[k], fx[k], 1e-10), "component {k}");
        }
    }

    #[test]
    fn hllc_upwinds_supersonic_flow() {
        // Supersonic rightward flow: flux must be the left flux exactly.
        let ql = conservative(1.0, 5.0, 0.0, 1.0);
        let qr = conservative(0.5, 5.0, 0.0, 0.8);
        let f = hllc_flux(&ql, &qr);
        let fl = flux_x(&ql);
        for k in 0..NVAR {
            assert!(approx(f[k], fl[k], 1e-12), "component {k}");
        }
        // Supersonic leftward flow: flux must be the right flux.
        let ql = conservative(1.0, -5.0, 0.0, 1.0);
        let qr = conservative(0.5, -5.0, 0.0, 0.8);
        let f = hllc_flux(&ql, &qr);
        let fr = flux_x(&qr);
        for k in 0..NVAR {
            assert!(approx(f[k], fr[k], 1e-12), "component {k}");
        }
    }

    #[test]
    fn hllc_sod_interface_flux_is_reasonable() {
        // Sod shock tube initial states: flux at the interface should move
        // mass rightward (positive density flux).
        let ql = conservative(1.0, 0.0, 0.0, 1.0);
        let qr = conservative(0.125, 0.0, 0.0, 0.1);
        let f = hllc_flux(&ql, &qr);
        assert!(f[0] > 0.0, "mass flux {}", f[0]);
        assert!(f[1] > 0.0, "momentum flux {}", f[1]);
    }

    #[test]
    fn hllc_preserves_contact_discontinuity() {
        // Stationary contact: equal pressure & velocity, different density.
        // HLLC (unlike HLL) gives exactly zero mass flux.
        let ql = conservative(1.0, 0.0, 0.0, 1.0);
        let qr = conservative(0.1, 0.0, 0.0, 1.0);
        let f = hllc_flux(&ql, &qr);
        assert!(f[0].abs() < 1e-12, "mass flux {}", f[0]);
        assert!(approx(f[1], 1.0, 1e-12), "momentum flux {}", f[1]);
        assert!(f[3].abs() < 1e-12, "energy flux {}", f[3]);
    }

    #[test]
    fn transpose_swaps_momenta() {
        let q = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(transpose_state(&q), [1.0, 3.0, 2.0, 4.0]);
        assert_eq!(transpose_state(&transpose_state(&q)), q);
    }

    #[test]
    fn minmod_limits() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(-2.0, -1.0), -1.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }
}
