//! Exact solution of the 1D Euler Riemann problem (Toro's method).
//!
//! Used to validate the HLLC/MUSCL scheme against analytic shock-tube
//! solutions: the star-region pressure is found by Newton–Raphson on the
//! pressure function, and the self-similar solution `w(x/t)` is sampled
//! wave by wave. Not used in the production solver path — this is the
//! ground truth the tests compare against.

use crate::euler::GAMMA;

/// Primitive state `(ρ, u, p)` of a 1D section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitive1d {
    /// Density.
    pub rho: f64,
    /// Normal velocity.
    pub u: f64,
    /// Pressure.
    pub p: f64,
}

impl Primitive1d {
    /// Construct, validating positivity.
    pub fn new(rho: f64, u: f64, p: f64) -> Self {
        assert!(rho > 0.0 && p > 0.0, "non-physical state");
        Primitive1d { rho, u, p }
    }

    /// Sound speed.
    pub fn sound_speed(&self) -> f64 {
        (GAMMA * self.p / self.rho).sqrt()
    }
}

/// The solved Riemann problem: star-region values plus the input states.
#[derive(Debug, Clone, Copy)]
pub struct ExactRiemann {
    left: Primitive1d,
    right: Primitive1d,
    /// Pressure in the star region.
    pub p_star: f64,
    /// Velocity of the contact wave.
    pub u_star: f64,
}

/// The `f_K(p)` function of Toro (Eq. 4.6/4.7): pressure jump relation
/// across the left or right wave, and its derivative.
fn pressure_function(p: f64, state: &Primitive1d) -> (f64, f64) {
    let (rho_k, p_k) = (state.rho, state.p);
    let c_k = state.sound_speed();
    if p > p_k {
        // Shock branch.
        let a_k = 2.0 / ((GAMMA + 1.0) * rho_k);
        let b_k = (GAMMA - 1.0) / (GAMMA + 1.0) * p_k;
        let root = (a_k / (p + b_k)).sqrt();
        let f = (p - p_k) * root;
        let df = root * (1.0 - 0.5 * (p - p_k) / (p + b_k));
        (f, df)
    } else {
        // Rarefaction branch:
        // f = 2c_k/(γ−1) ((p/p_k)^((γ−1)/2γ) − 1),
        // f' = (p/p_k)^(−(γ+1)/2γ) / (ρ_k c_k).
        let exponent = (GAMMA - 1.0) / (2.0 * GAMMA);
        let f = 2.0 * c_k / (GAMMA - 1.0) * ((p / p_k).powf(exponent) - 1.0);
        let df = (p / p_k).powf(-(GAMMA + 1.0) / (2.0 * GAMMA)) / (rho_k * c_k);
        (f, df)
    }
}

impl ExactRiemann {
    /// Solve the Riemann problem between `left` and `right` states.
    ///
    /// Panics if the states generate vacuum (`Δu` too large for the
    /// pressures to connect) — shock-tube test cases never do.
    pub fn solve(left: Primitive1d, right: Primitive1d) -> Self {
        let du = right.u - left.u;
        // Vacuum check (Toro Eq. 4.40).
        let critical = 2.0 * (left.sound_speed() + right.sound_speed()) / (GAMMA - 1.0);
        assert!(du < critical, "initial states generate vacuum");

        // Initial guess: two-rarefaction approximation (robust everywhere).
        let cl = left.sound_speed();
        let cr = right.sound_speed();
        let z = (GAMMA - 1.0) / (2.0 * GAMMA);
        let p0 = ((cl + cr - 0.5 * (GAMMA - 1.0) * du)
            / (cl / left.p.powf(z) + cr / right.p.powf(z)))
        .powf(1.0 / z);
        let mut p = p0.max(1e-10);

        // Newton–Raphson on f(p) = f_L + f_R + Δu.
        for _ in 0..60 {
            let (fl, dfl) = pressure_function(p, &left);
            let (fr, dfr) = pressure_function(p, &right);
            let f = fl + fr + du;
            let df = dfl + dfr;
            let step = f / df;
            let p_new = (p - step).max(1e-12);
            if (p_new - p).abs() / (0.5 * (p_new + p)) < 1e-12 {
                p = p_new;
                break;
            }
            p = p_new;
        }
        let (fl, _) = pressure_function(p, &left);
        let (fr, _) = pressure_function(p, &right);
        let u_star = 0.5 * (left.u + right.u) + 0.5 * (fr - fl);

        ExactRiemann {
            left,
            right,
            p_star: p,
            u_star,
        }
    }

    /// Sample the self-similar solution at `xi = x/t` (Toro §4.5).
    pub fn sample(&self, xi: f64) -> Primitive1d {
        if xi <= self.u_star {
            self.sample_left(xi)
        } else {
            self.sample_right(xi)
        }
    }

    fn sample_left(&self, xi: f64) -> Primitive1d {
        let l = self.left;
        let cl = l.sound_speed();
        if self.p_star > l.p {
            // Left shock.
            let ratio = self.p_star / l.p;
            let g = (GAMMA - 1.0) / (GAMMA + 1.0);
            let s = l.u
                - cl * ((GAMMA + 1.0) / (2.0 * GAMMA) * ratio + (GAMMA - 1.0) / (2.0 * GAMMA))
                    .sqrt();
            if xi < s {
                l
            } else {
                Primitive1d {
                    rho: l.rho * (ratio + g) / (g * ratio + 1.0),
                    u: self.u_star,
                    p: self.p_star,
                }
            }
        } else {
            // Left rarefaction.
            let rho_star = l.rho * (self.p_star / l.p).powf(1.0 / GAMMA);
            let c_star = cl * (self.p_star / l.p).powf((GAMMA - 1.0) / (2.0 * GAMMA));
            let head = l.u - cl;
            let tail = self.u_star - c_star;
            if xi < head {
                l
            } else if xi > tail {
                Primitive1d {
                    rho: rho_star,
                    u: self.u_star,
                    p: self.p_star,
                }
            } else {
                // Inside the fan.
                let g = 2.0 / (GAMMA + 1.0);
                let c = g * (cl + 0.5 * (GAMMA - 1.0) * (l.u - xi));
                let u = g * (cl + 0.5 * (GAMMA - 1.0) * l.u + xi);
                Primitive1d {
                    rho: l.rho * (c / cl).powf(2.0 / (GAMMA - 1.0)),
                    u,
                    p: l.p * (c / cl).powf(2.0 * GAMMA / (GAMMA - 1.0)),
                }
            }
        }
    }

    fn sample_right(&self, xi: f64) -> Primitive1d {
        let r = self.right;
        let cr = r.sound_speed();
        if self.p_star > r.p {
            // Right shock.
            let ratio = self.p_star / r.p;
            let g = (GAMMA - 1.0) / (GAMMA + 1.0);
            let s = r.u
                + cr * ((GAMMA + 1.0) / (2.0 * GAMMA) * ratio + (GAMMA - 1.0) / (2.0 * GAMMA))
                    .sqrt();
            if xi > s {
                r
            } else {
                Primitive1d {
                    rho: r.rho * (ratio + g) / (g * ratio + 1.0),
                    u: self.u_star,
                    p: self.p_star,
                }
            }
        } else {
            // Right rarefaction.
            let rho_star = r.rho * (self.p_star / r.p).powf(1.0 / GAMMA);
            let c_star = cr * (self.p_star / r.p).powf((GAMMA - 1.0) / (2.0 * GAMMA));
            let head = r.u + cr;
            let tail = self.u_star + c_star;
            if xi > head {
                r
            } else if xi < tail {
                Primitive1d {
                    rho: rho_star,
                    u: self.u_star,
                    p: self.p_star,
                }
            } else {
                let g = 2.0 / (GAMMA + 1.0);
                let c = g * (cr - 0.5 * (GAMMA - 1.0) * (r.u - xi));
                let u = g * (-cr + 0.5 * (GAMMA - 1.0) * r.u + xi);
                Primitive1d {
                    rho: r.rho * (c / cr).powf(2.0 / (GAMMA - 1.0)),
                    u,
                    p: r.p * (c / cr).powf(2.0 * GAMMA / (GAMMA - 1.0)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sod() -> ExactRiemann {
        ExactRiemann::solve(
            Primitive1d::new(1.0, 0.0, 1.0),
            Primitive1d::new(0.125, 0.0, 0.1),
        )
    }

    #[test]
    fn sod_star_values_match_toro_table() {
        // Toro, Table 4.2 (test 1): p* = 0.30313, u* = 0.92745.
        let sol = sod();
        assert!((sol.p_star - 0.30313).abs() < 1e-4, "p* = {}", sol.p_star);
        assert!((sol.u_star - 0.92745).abs() < 1e-4, "u* = {}", sol.u_star);
    }

    #[test]
    fn sod_sampling_recovers_plateaus() {
        let sol = sod();
        // Far left: undisturbed left state.
        let w = sol.sample(-2.0);
        assert_eq!(w, Primitive1d::new(1.0, 0.0, 1.0));
        // Far right: undisturbed right state.
        let w = sol.sample(2.0);
        assert_eq!(w, Primitive1d::new(0.125, 0.0, 0.1));
        // Between contact and shock: ρ*R = 0.26557 (Toro).
        let w = sol.sample(1.2);
        assert!((w.rho - 0.26557).abs() < 1e-4, "rho*R = {}", w.rho);
        assert!((w.u - sol.u_star).abs() < 1e-12);
        // Between rarefaction tail and contact: ρ*L = 0.42632 (Toro).
        let w = sol.sample(0.5);
        assert!((w.rho - 0.42632).abs() < 1e-4, "rho*L = {}", w.rho);
    }

    #[test]
    fn symmetric_collision_has_zero_contact_speed() {
        // Two identical streams colliding head-on: u* = 0 by symmetry,
        // p* > p (double shock).
        let sol = ExactRiemann::solve(
            Primitive1d::new(1.0, 1.0, 1.0),
            Primitive1d::new(1.0, -1.0, 1.0),
        );
        assert!(sol.u_star.abs() < 1e-10, "u* = {}", sol.u_star);
        assert!(sol.p_star > 1.0);
    }

    #[test]
    fn expansion_lowers_star_pressure() {
        // Streams separating: double rarefaction, p* < p.
        let sol = ExactRiemann::solve(
            Primitive1d::new(1.0, -0.5, 1.0),
            Primitive1d::new(1.0, 0.5, 1.0),
        );
        assert!(sol.p_star < 1.0, "p* = {}", sol.p_star);
        assert!(sol.u_star.abs() < 1e-10);
    }

    #[test]
    fn trivial_problem_returns_the_state() {
        let s = Primitive1d::new(1.3, 0.4, 2.0);
        let sol = ExactRiemann::solve(s, s);
        assert!((sol.p_star - 2.0).abs() < 1e-9);
        assert!((sol.u_star - 0.4).abs() < 1e-9);
        let w = sol.sample(0.4);
        assert!((w.rho - 1.3).abs() < 1e-6);
    }

    #[test]
    fn solution_is_continuous_across_the_contact() {
        let sol = sod();
        let eps = 1e-9;
        let wl = sol.sample(sol.u_star - eps);
        let wr = sol.sample(sol.u_star + eps);
        // Pressure and velocity continuous; density jumps.
        assert!((wl.p - wr.p).abs() < 1e-6);
        assert!((wl.u - wr.u).abs() < 1e-6);
        assert!((wl.rho - wr.rho).abs() > 0.1);
    }

    #[test]
    #[should_panic(expected = "vacuum")]
    fn vacuum_generating_states_are_rejected() {
        ExactRiemann::solve(
            Primitive1d::new(1.0, -10.0, 1.0),
            Primitive1d::new(1.0, 10.0, 1.0),
        );
    }

    #[test]
    #[should_panic(expected = "non-physical")]
    fn negative_density_rejected() {
        Primitive1d::new(-1.0, 0.0, 1.0);
    }
}
