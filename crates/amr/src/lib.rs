// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
#![warn(missing_docs)]

//! Block-structured adaptive mesh refinement (AMR) substrate.
//!
//! A compact, from-scratch stand-in for the FORESTCLAW/p4est/Clawpack stack
//! the paper ran on NERSC Edison: a quadtree forest of logically Cartesian
//! `mx × mx` patches solving the 2D compressible Euler equations with a
//! MUSCL/HLLC finite-volume scheme, refined around solution features of a
//! shock–bubble interaction, plus an analytic **machine model** that maps
//! counted work (cell updates, ghost exchange, peak resident cells) and a
//! node count `p` into Edison-like wall-clock time, node-hour cost and
//! per-process MaxRSS with run-to-run variability.
//!
//! The paper's 5-feature input space maps onto [`SimulationConfig`]:
//! `p` (nodes), `mx` (box size), `maxlevel` (max refinement level),
//! `r0` (bubble size) and `rhoin` (bubble density).
//!
//! See `DESIGN.md` §1 for why this substitution preserves the behaviour the
//! active-learning layer depends on.

pub mod error;
pub mod euler;
pub mod exact_riemann;
pub mod machine;
pub mod patch;
pub mod pool;
pub mod problem;
pub mod refine;
pub mod runner;
pub mod shockbubble;
pub mod solver;
pub mod tree;
pub mod viz;

pub use error::AmrError;
pub use machine::{MachineModel, MachineOutcome};
pub use pool::{chunk_ranges, SweepOutcome, SweepPool};
pub use runner::{run_simulation, SimulationOutcome};
pub use shockbubble::SimulationConfig;
pub use solver::{AmrSolver, SolverProfile, TimeStepping, TruncationReason, WorkStats};
