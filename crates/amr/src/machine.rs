//! Analytic machine model: converts counted simulation work into
//! Edison-like wall-clock time, node-hour cost and per-process MaxRSS.
//!
//! The paper's responses came from SLURM accounting on NERSC Edison
//! (2×12-core Ivy Bridge nodes, Aries interconnect). We regenerate
//! equivalent responses by running the AMR solver locally and mapping its
//! [`WorkStats`] through this model:
//!
//! - **wall clock** — Amdahl-style strong scaling of the cell-update work
//!   across `p` nodes plus a per-step latency term growing with `log p`
//!   and a bandwidth term for ghost-exchange volume;
//! - **cost** — `wall · p / 3600` node-hours, exactly the paper's formula;
//! - **memory** — peak resident cells × bytes/cell × metadata overhead,
//!   divided across `p` nodes, plus a base footprint (a MaxRSS proxy).
//!
//! Run-to-run variability is multiplicative log-normal noise, reproducing
//! the paper's repeated measurements "capturing the machine performance
//! variability". Constants are calibrated so the 600-sample sweep matches
//! Table I's ranges in order of magnitude (cost ratio max/min ≳ 10³,
//! memory ∈ [~0.02, ~33] MB); a unit test pins the calibration.
//!
//! **Counted work vs. host wall-clock.** The model prices the *simulated*
//! machine: its parallelism is the `p` Edison nodes in the input
//! configuration, and its inputs are the order-invariant counters in
//! [`WorkStats`]. The host-side sweep-pool threading
//! ([`SolverProfile::n_threads`](crate::solver::SolverProfile)) only
//! shortens how long we wait for those counters to be produced — it must
//! never appear in them, and the parallel-sweeps determinism suite pins
//! exactly that. A host run on 8 threads therefore predicts the same
//! Edison wall-clock, cost and MaxRSS as the same run on 1 thread.
//! alint L6 (`determinism_safety`, DESIGN §9) enforces the same
//! contract statically: `Instant::now`/`SystemTime::now` and unseeded
//! RNG construction are lint violations everywhere outside the
//! wall-clock-approved bench crate.

use crate::solver::WorkStats;
use al_linalg::rng::noise_factor;
use al_units::{Bytes, CellUpdates, Megabytes, Micros, Nanos, NodeHours, Seconds};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic cost/memory mapping with tunable constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Cores per node (Edison: 24).
    pub cores_per_node: f64,
    /// Time per directional cell update on one core.
    pub cell_update_us: Micros,
    /// Scale factor mapping our shortened simulation burst to a full
    /// production run. The paper's jobs simulated the complete shock–bubble
    /// evolution (late-time shredded interfaces refine far more area than
    /// our early-time burst), so total work exceeds our measured burst by
    /// roughly two orders of magnitude; this factor multiplies all
    /// time-like work terms. Recalibrated from 800 to 1200 when the
    /// default profiles moved to Berger–Oliger subcycling: the subcycled
    /// stepper counts ~1/3 fewer directional updates for the same
    /// physics, so the burst-to-production mapping grows to keep the
    /// response surface in Table I's ranges.
    pub full_sim_scale: f64,
    /// Fraction of compute that does not parallelize (regridding,
    /// partition bookkeeping).
    pub serial_fraction: f64,
    /// Per-step communication latency, scaled by `ln(p+1)`.
    pub step_latency_us: Micros,
    /// Time per ghost cell exchanged (bandwidth term).
    pub ghost_cell_ns: Nanos,
    /// Storage per cell (4 conserved variables × f64).
    pub bytes_per_cell: Bytes,
    /// Multiplier for metadata, buffers and solver workspace.
    pub mem_overhead: f64,
    /// Baseline MaxRSS per process.
    pub base_mem_mb: Megabytes,
    /// Log-normal sigma of wall-clock noise.
    pub wall_noise_sigma: f64,
    /// Log-normal sigma of memory noise.
    pub mem_noise_sigma: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel {
            cores_per_node: 24.0,
            cell_update_us: Micros::new(3.0),
            full_sim_scale: 1200.0,
            serial_fraction: 0.02,
            step_latency_us: Micros::new(450.0),
            ghost_cell_ns: Nanos::new(60.0),
            bytes_per_cell: Bytes::new(32.0),
            mem_overhead: 2.0,
            base_mem_mb: Megabytes::new(0.01),
            wall_noise_sigma: 0.08,
            mem_noise_sigma: 0.02,
        }
    }
}

/// The three responses of the paper's dataset, each in its own unit type
/// so wall-clock, cost and memory can never be swapped or mixed silently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineOutcome {
    /// Wall-clock time.
    pub wall_seconds: Seconds,
    /// Job cost (`wall · p / 3600` node-hours).
    pub cost_node_hours: NodeHours,
    /// Peak resident set size per process.
    pub memory_mb: Megabytes,
}

impl MachineModel {
    /// Noise-free evaluation of the model for work `stats` on `p` nodes.
    pub fn evaluate_exact(&self, stats: &WorkStats, p: u32) -> MachineOutcome {
        assert!(p >= 1);
        let p_f = p as f64;

        // Compute time on a single node, then Amdahl scaling across nodes.
        let node_seconds: Seconds = (self.cell_update_us * CellUpdates::new(stats.cell_updates))
            .to_seconds()
            * self.full_sim_scale
            / self.cores_per_node;
        let compute: Seconds =
            node_seconds * ((1.0 - self.serial_fraction) / p_f + self.serial_fraction);

        // Communication: per-round latency grows logarithmically with the
        // node count (tree reductions for dt and regrid consensus). Under
        // subcycling each per-level advance is a synchronization round, so
        // `level_steps` drives this term; `max(steps)` keeps hand-built
        // stats that only fill `steps` behaving as before.
        let sync_rounds = stats.level_steps.max(stats.steps);
        let latency: Seconds = self.step_latency_us.to_seconds()
            * (sync_rounds as f64 * self.full_sim_scale)
            * (p_f + 1.0).ln();
        let bandwidth: Seconds = (self.ghost_cell_ns * CellUpdates::new(stats.ghost_cells))
            .to_seconds()
            * self.full_sim_scale
            / p_f;

        let wall: Seconds = compute + latency + bandwidth;

        let total: Megabytes = (self.bytes_per_cell * CellUpdates::new(stats.peak_storage_cells))
            .to_megabytes()
            * self.mem_overhead;
        let memory: Megabytes = total / p_f + self.base_mem_mb;

        MachineOutcome {
            wall_seconds: wall,
            cost_node_hours: wall.node_hours(p_f),
            memory_mb: memory,
        }
    }

    /// Evaluate with multiplicative log-normal run-to-run noise; `seed`
    /// should combine the configuration hash with the repeat index so
    /// repeated measurements differ but the dataset is reproducible.
    pub fn evaluate(&self, stats: &WorkStats, p: u32, seed: u64) -> MachineOutcome {
        let exact = self.evaluate_exact(stats, p);
        let mut rng = StdRng::seed_from_u64(seed);
        let wall: Seconds = exact.wall_seconds * noise_factor(&mut rng, self.wall_noise_sigma);
        let memory: Megabytes = exact.memory_mb * noise_factor(&mut rng, self.mem_noise_sigma);
        MachineOutcome {
            wall_seconds: wall,
            cost_node_hours: wall.node_hours(p as f64),
            memory_mb: memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(cell_updates: u64, steps: u64, peak_cells: u64) -> WorkStats {
        WorkStats {
            steps,
            level_steps: steps,
            cell_updates,
            ghost_cells: cell_updates / 10,
            peak_storage_cells: peak_cells,
            ..WorkStats::default()
        }
    }

    #[test]
    fn cost_is_wall_times_nodes() {
        let m = MachineModel::default();
        let o = m.evaluate_exact(&work(1_000_000, 100, 100_000), 8);
        assert!(
            (o.cost_node_hours - o.wall_seconds.node_hours(8.0))
                .value()
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn more_work_costs_more() {
        let m = MachineModel::default();
        let small = m.evaluate_exact(&work(1_000_000, 100, 100_000), 8);
        let large = m.evaluate_exact(&work(100_000_000, 1000, 100_000), 8);
        assert!(large.wall_seconds > small.wall_seconds * 10.0);
    }

    #[test]
    fn strong_scaling_reduces_wall_but_raises_cost() {
        let m = MachineModel::default();
        let w = work(500_000_000, 500, 1_000_000);
        let few = m.evaluate_exact(&w, 4);
        let many = m.evaluate_exact(&w, 32);
        assert!(many.wall_seconds < few.wall_seconds, "wall shrinks with p");
        assert!(
            many.cost_node_hours > few.cost_node_hours,
            "node-hours grow with p: {} vs {}",
            many.cost_node_hours,
            few.cost_node_hours
        );
    }

    #[test]
    fn memory_divides_across_nodes() {
        let m = MachineModel::default();
        let w = work(1_000_000, 100, 2_000_000);
        let few = m.evaluate_exact(&w, 4);
        let many = m.evaluate_exact(&w, 32);
        assert!(few.memory_mb > many.memory_mb);
        // Up to the base footprint, memory scales like 1/p.
        let ratio = (few.memory_mb - m.base_mem_mb) / (many.memory_mb - m.base_mem_mb);
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_brackets_table_one_ranges() {
        let m = MachineModel::default();
        // Work shaped like the cheapest config of the sweep
        // (maxlevel 3, mx 8): ~5e4 directional updates, tiny footprint.
        let cheap = m.evaluate_exact(&work(54_000, 14, 4_500), 4);
        // Work shaped like the most expensive config
        // (maxlevel 6, mx 32): ~1.3e9 updates, ~1.9M resident cells.
        let dear = m.evaluate_exact(&work(1_300_000_000, 440, 1_900_000), 32);
        assert!(
            dear.cost_node_hours / cheap.cost_node_hours > 1e3,
            "cost dynamic range {} / {}",
            dear.cost_node_hours,
            cheap.cost_node_hours
        );
        assert!(
            cheap.cost_node_hours.value() < 0.05,
            "{}",
            cheap.cost_node_hours
        );
        assert!(
            dear.cost_node_hours.value() > 2.0,
            "{}",
            dear.cost_node_hours
        );
        // Memory brackets: cheap config on many nodes ~0.02 MB, expensive
        // config on few nodes tens of MB.
        let cheap_mem = m.evaluate_exact(&work(54_000, 14, 4_500), 32);
        assert!(cheap_mem.memory_mb.value() < 0.1, "{}", cheap_mem.memory_mb);
        let dear_mem = m.evaluate_exact(&work(1_300_000_000, 440, 1_900_000), 4);
        assert!(
            dear_mem.memory_mb.value() > 10.0 && dear_mem.memory_mb.value() < 100.0,
            "{}",
            dear_mem.memory_mb
        );
    }

    #[test]
    fn subcycled_sync_rounds_drive_latency() {
        let m = MachineModel::default();
        let sync = work(1_000_000, 100, 100_000);
        // Same physics work but counted under subcycling: more per-level
        // synchronization rounds for the same number of coarse steps.
        let sub = WorkStats {
            level_steps: 700,
            ..sync
        };
        let a = m.evaluate_exact(&sync, 8);
        let b = m.evaluate_exact(&sub, 8);
        assert!(
            b.wall_seconds > a.wall_seconds,
            "more sync rounds must cost latency: {} vs {}",
            b.wall_seconds,
            a.wall_seconds
        );
    }

    #[test]
    fn noise_is_reproducible_and_small() {
        let m = MachineModel::default();
        let w = work(1_000_000, 100, 100_000);
        let a = m.evaluate(&w, 8, 42);
        let b = m.evaluate(&w, 8, 42);
        assert_eq!(a, b, "same seed, same outcome");
        let c = m.evaluate(&w, 8, 43);
        assert_ne!(a.wall_seconds, c.wall_seconds);
        // Noise stays within a plausible band.
        let exact = m.evaluate_exact(&w, 8);
        assert!((a.wall_seconds / exact.wall_seconds - 1.0).abs() < 0.5);
        // Cost/wall consistency holds for noisy outcomes too.
        assert!(
            (a.cost_node_hours - a.wall_seconds.node_hours(8.0))
                .value()
                .abs()
                < 1e-12
        );
    }

    #[test]
    #[should_panic]
    fn zero_nodes_is_rejected() {
        MachineModel::default().evaluate_exact(&WorkStats::default(), 0);
    }
}
