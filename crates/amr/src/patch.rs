//! A logically Cartesian `mx × mx` patch with ghost cells — the unit of
//! storage and computation of the forest (mirroring FORESTCLAW, where every
//! quadtree leaf carries an `mx × mx` Clawpack grid).

use crate::euler::{self, State, NVAR};

/// Ghost-cell layers on every side. Two layers support the MUSCL
/// reconstruction stencil (slope at the first interior cell needs two
/// upwind neighbours).
pub const NG: usize = 2;

/// Extent of the square computational domain `[0, DOMAIN)²`.
pub const DOMAIN: f64 = 1.0;

/// Square grid patch at a quadtree position `(level, i, j)`.
///
/// The patch covers `[i·S, (i+1)·S) × [j·S, (j+1)·S)` with `S = DOMAIN/2^level`,
/// holding `mx × mx` interior cells of width `h = S/mx` plus [`NG`] ghost
/// layers on each side.
#[derive(Debug, Clone)]
pub struct Patch {
    level: u8,
    i: u32,
    j: u32,
    mx: usize,
    h: f64,
    /// `(mx+2·NG)²` states, row-major with `iy` as the slow index.
    q: Vec<State>,
}

/// Reusable scratch buffers for directional sweeps, sized for one line of
/// cells. Shared across patches by the solver to avoid per-patch allocation.
#[derive(Debug, Default, Clone)]
pub struct SweepScratch {
    line: Vec<State>,
    slope: Vec<State>,
    flux: Vec<State>,
}

/// The interface fluxes a sweep computed at the patch's two boundary faces
/// in the sweep direction, one entry per transverse cell row/column.
///
/// `lo` is the west (x-sweep) or south (y-sweep) face, `hi` the east or
/// north face. Y-sweep fluxes are stored in the **original** variable
/// ordering (momenta un-transposed). The flux registers feed
/// [`crate::tree::Forest::reflux`]: at a coarse–fine interface the coarse
/// side's flux is replaced by the area-weighted sum of the fine fluxes,
/// restoring discrete conservation.
#[derive(Debug, Clone)]
pub struct BoundaryFluxes {
    /// Flux through the low face (west/south) per transverse index.
    pub lo: Vec<State>,
    /// Flux through the high face (east/north) per transverse index.
    pub hi: Vec<State>,
}

impl BoundaryFluxes {
    /// Zeroed registers for `mx` transverse faces — the accumulator the
    /// subcycled stepper folds per-substep fluxes into.
    pub fn zeros(mx: usize) -> Self {
        BoundaryFluxes {
            lo: vec![[0.0; NVAR]; mx],
            hi: vec![[0.0; NVAR]; mx],
        }
    }

    /// Accumulate `weight · other` face-wise. With weight `dt_sub / dt`
    /// per substep this builds the time-averaged flux a coarse step must
    /// be corrected against (two halved substeps ⇒ weight ½ each).
    pub fn add_scaled(&mut self, other: &BoundaryFluxes, weight: f64) {
        debug_assert_eq!(self.lo.len(), other.lo.len());
        for (dst, src) in self.lo.iter_mut().zip(&other.lo) {
            for k in 0..NVAR {
                dst[k] += weight * src[k];
            }
        }
        for (dst, src) in self.hi.iter_mut().zip(&other.hi) {
            for k in 0..NVAR {
                dst[k] += weight * src[k];
            }
        }
    }
}

impl Patch {
    /// Create a zero-initialized patch at quadtree position `(level, i, j)`.
    ///
    /// Panics if `(i, j)` lies outside the `2^level × 2^level` patch grid.
    pub fn new(level: u8, i: u32, j: u32, mx: usize) -> Self {
        let n_side = 1u32 << level;
        assert!(
            i < n_side && j < n_side,
            "patch ({i},{j}) outside level {level}"
        );
        assert!(mx >= 4, "mx must be at least 4 for the MUSCL stencil");
        let h = DOMAIN / (n_side as f64 * mx as f64);
        Patch {
            level,
            i,
            j,
            mx,
            h,
            q: vec![[0.0; NVAR]; (mx + 2 * NG) * (mx + 2 * NG)],
        }
    }

    /// Refinement level.
    #[inline]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Patch coordinates `(i, j)` within its level.
    #[inline]
    pub fn coords(&self) -> (u32, u32) {
        (self.i, self.j)
    }

    /// Interior cells per side.
    #[inline]
    pub fn mx(&self) -> usize {
        self.mx
    }

    /// Cell width.
    #[inline]
    pub fn h(&self) -> f64 {
        self.h
    }

    /// Lower-left corner of the patch in physical coordinates.
    pub fn origin(&self) -> (f64, f64) {
        let s = DOMAIN / (1u32 << self.level) as f64;
        (self.i as f64 * s, self.j as f64 * s)
    }

    /// Total stored states including ghosts (for memory accounting).
    pub fn storage_cells(&self) -> usize {
        (self.mx + 2 * NG) * (self.mx + 2 * NG)
    }

    /// Interior cells of this patch — the directional-sweep work unit the
    /// machine model prices. Counted per patch so the parallel sweep pool
    /// can tally work exactly as the serial loop did (threading changes
    /// wall-clock, never counted work).
    #[inline]
    pub fn interior_cell_count(&self) -> u64 {
        (self.mx * self.mx) as u64
    }

    #[inline]
    fn stride(&self) -> usize {
        self.mx + 2 * NG
    }

    /// Raw index of cell `(ix, iy)` where both range over `0..mx+2·NG`
    /// (ghosts included; interior starts at [`NG`]).
    #[inline]
    pub fn idx(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.stride() && iy < self.stride());
        iy * self.stride() + ix
    }

    /// State of cell `(ix, iy)` (ghost coordinates allowed).
    #[inline]
    pub fn get(&self, ix: usize, iy: usize) -> &State {
        &self.q[self.idx(ix, iy)]
    }

    /// Mutable state of cell `(ix, iy)`.
    #[inline]
    pub fn get_mut(&mut self, ix: usize, iy: usize) -> &mut State {
        let idx = self.idx(ix, iy);
        &mut self.q[idx]
    }

    /// Interior cell state by interior coordinates `(cx, cy) ∈ [0, mx)²`.
    #[inline]
    pub fn interior(&self, cx: usize, cy: usize) -> &State {
        debug_assert!(cx < self.mx && cy < self.mx);
        self.get(cx + NG, cy + NG)
    }

    /// Mutable interior cell state by interior coordinates.
    #[inline]
    pub fn interior_mut(&mut self, cx: usize, cy: usize) -> &mut State {
        debug_assert!(cx < self.mx && cy < self.mx);
        self.get_mut(cx + NG, cy + NG)
    }

    /// Physical center of interior cell `(cx, cy)`.
    pub fn cell_center(&self, cx: usize, cy: usize) -> (f64, f64) {
        let (x0, y0) = self.origin();
        (
            x0 + (cx as f64 + 0.5) * self.h,
            y0 + (cy as f64 + 0.5) * self.h,
        )
    }

    /// Initialize every interior cell from a pointwise function of the cell
    /// center, sub-sampled 2×2 for a better cell average at interfaces.
    pub fn fill_with(&mut self, f: &dyn Fn(f64, f64) -> State) {
        for cy in 0..self.mx {
            for cx in 0..self.mx {
                let (x, y) = self.cell_center(cx, cy);
                let quarter = 0.25 * self.h;
                let mut acc = [0.0; NVAR];
                for (dx, dy) in [
                    (-quarter, -quarter),
                    (quarter, -quarter),
                    (-quarter, quarter),
                    (quarter, quarter),
                ] {
                    let s = f(x + dx, y + dy);
                    for k in 0..NVAR {
                        acc[k] += 0.25 * s[k];
                    }
                }
                *self.interior_mut(cx, cy) = acc;
            }
        }
    }

    /// Largest characteristic speed over the interior (CFL signal).
    pub fn max_wave_speed(&self) -> f64 {
        let mut s = 0.0f64;
        for cy in 0..self.mx {
            for cx in 0..self.mx {
                s = s.max(euler::max_wave_speed(self.interior(cx, cy)));
            }
        }
        s
    }

    /// Total mass (integral of density) over the interior.
    pub fn total_mass(&self) -> f64 {
        let cell_area = self.h * self.h;
        let mut m = 0.0;
        for cy in 0..self.mx {
            for cx in 0..self.mx {
                m += self.interior(cx, cy)[0];
            }
        }
        m * cell_area
    }

    /// Refinement indicator: the largest relative density **or pressure**
    /// jump between adjacent interior cells. Density tracks material
    /// interfaces (the bubble); pressure catches shocks even where density
    /// is still uniform (e.g. a freshly ignited blast).
    pub fn refinement_indicator(&self) -> f64 {
        let rel_jump = |a: f64, b: f64| (b - a).abs() / a.min(b).max(1e-12);
        let mut worst = 0.0f64;
        for cy in 0..self.mx {
            for cx in 0..self.mx {
                let c = self.interior(cx, cy);
                let pc = euler::pressure(c).max(1e-12);
                if cx + 1 < self.mx {
                    let r = self.interior(cx + 1, cy);
                    worst = worst.max(rel_jump(c[0], r[0]));
                    worst = worst.max(rel_jump(pc, euler::pressure(r).max(1e-12)));
                }
                if cy + 1 < self.mx {
                    let u = self.interior(cx, cy + 1);
                    worst = worst.max(rel_jump(c[0], u[0]));
                    worst = worst.max(rel_jump(pc, euler::pressure(u).max(1e-12)));
                }
            }
        }
        worst
    }

    /// One MUSCL/HLLC sweep in the x-direction with time step `dt`.
    /// Requires valid ghost cells in the x-direction. Returns the boundary
    /// flux registers for refluxing.
    pub fn sweep_x(&mut self, dt: f64, scratch: &mut SweepScratch) -> BoundaryFluxes {
        let n = self.stride();
        scratch.resize(n);
        let lambda = dt / self.h;
        let mut registers = BoundaryFluxes {
            lo: Vec::with_capacity(self.mx),
            hi: Vec::with_capacity(self.mx),
        };
        for iy in NG..NG + self.mx {
            // Copy the row (including ghosts) into the scratch line.
            for ix in 0..n {
                scratch.line[ix] = *self.get(ix, iy);
            }
            Self::sweep_line(
                &mut scratch.line,
                &mut scratch.slope,
                &mut scratch.flux,
                lambda,
                self.mx,
            );
            for cx in 0..self.mx {
                *self.get_mut(NG + cx, iy) = scratch.line[NG + cx];
            }
            registers.lo.push(scratch.flux[0]);
            registers.hi.push(scratch.flux[self.mx]);
        }
        registers
    }

    /// One MUSCL/HLLC sweep in the y-direction with time step `dt`.
    /// Requires valid ghost cells in the y-direction. Returns the boundary
    /// flux registers (south/north) in original variable ordering.
    pub fn sweep_y(&mut self, dt: f64, scratch: &mut SweepScratch) -> BoundaryFluxes {
        let n = self.stride();
        scratch.resize(n);
        let lambda = dt / self.h;
        let mut registers = BoundaryFluxes {
            lo: Vec::with_capacity(self.mx),
            hi: Vec::with_capacity(self.mx),
        };
        for ix in NG..NG + self.mx {
            // Copy the column, transposing momenta so the x-sweep kernel
            // applies verbatim.
            for iy in 0..n {
                scratch.line[iy] = euler::transpose_state(self.get(ix, iy));
            }
            Self::sweep_line(
                &mut scratch.line,
                &mut scratch.slope,
                &mut scratch.flux,
                lambda,
                self.mx,
            );
            for cy in 0..self.mx {
                *self.get_mut(ix, NG + cy) = euler::transpose_state(&scratch.line[NG + cy]);
            }
            // Un-transpose the recorded fluxes back to (ρ, ρu, ρv, E).
            registers.lo.push(euler::transpose_state(&scratch.flux[0]));
            registers
                .hi
                .push(euler::transpose_state(&scratch.flux[self.mx]));
        }
        registers
    }

    /// Apply a flux-register correction to one boundary cell: replace the
    /// face flux the sweep used (`used`) by the conservative one (`correct`)
    /// for interior cell `(cx, cy)` on the given side.
    pub fn apply_flux_correction(
        &mut self,
        side: Side,
        cx: usize,
        cy: usize,
        used: &State,
        correct: &State,
        dt: f64,
    ) {
        let lambda = dt / self.h;
        // The update was q -= λ(F_hi − F_lo). Replacing a hi-face flux F by
        // F' shifts q by +λ(F − F'); a lo-face flux by −λ(F − F').
        let sign = match side {
            Side::East | Side::North => 1.0,
            Side::West | Side::South => -1.0,
        };
        let q = self.interior_mut(cx, cy);
        for k in 0..NVAR {
            q[k] += sign * lambda * (used[k] - correct[k]);
        }
    }

    /// Godunov update of one line of cells: MUSCL-minmod reconstruction,
    /// HLLC interface fluxes, conservative flux differencing.
    fn sweep_line(
        line: &mut [State],
        slope: &mut [State],
        flux: &mut [State],
        lambda: f64,
        mx: usize,
    ) {
        let n = line.len();
        // Limited slopes for cells 1..n-1 (cells 0 and n-1 get zero slope;
        // they are outer ghosts whose faces are never used).
        slope[0] = [0.0; NVAR];
        slope[n - 1] = [0.0; NVAR];
        for i in 1..n - 1 {
            for k in 0..NVAR {
                slope[i][k] =
                    euler::minmod(line[i][k] - line[i - 1][k], line[i + 1][k] - line[i][k]);
            }
        }
        // Interface fluxes: face f sits between cells NG-1+f and NG+f for
        // f in 0..=mx.
        for (f, face) in flux.iter_mut().enumerate().take(mx + 1) {
            let li = NG - 1 + f;
            let ri = NG + f;
            let mut ql = [0.0; NVAR];
            let mut qr = [0.0; NVAR];
            for k in 0..NVAR {
                ql[k] = line[li][k] + 0.5 * slope[li][k];
                qr[k] = line[ri][k] - 0.5 * slope[ri][k];
            }
            *face = euler::hllc_flux(&ql, &qr);
        }
        // Conservative update of the interior cells.
        for c in 0..mx {
            for k in 0..NVAR {
                line[NG + c][k] -= lambda * (flux[c + 1][k] - flux[c][k]);
            }
        }
    }

    /// Zero-order extrapolation into a ghost band when the patch touches
    /// the domain boundary on the given side (outflow boundary condition).
    pub fn extrapolate_boundary(&mut self, side: Side) {
        let n = self.stride();
        match side {
            Side::West => {
                for iy in 0..n {
                    let src = *self.get(NG, iy);
                    for ix in 0..NG {
                        *self.get_mut(ix, iy) = src;
                    }
                }
            }
            Side::East => {
                for iy in 0..n {
                    let src = *self.get(NG + self.mx - 1, iy);
                    for ix in NG + self.mx..n {
                        *self.get_mut(ix, iy) = src;
                    }
                }
            }
            Side::South => {
                for ix in 0..n {
                    let src = *self.get(ix, NG);
                    for iy in 0..NG {
                        *self.get_mut(ix, iy) = src;
                    }
                }
            }
            Side::North => {
                for ix in 0..n {
                    let src = *self.get(ix, NG + self.mx - 1);
                    for iy in NG + self.mx..n {
                        *self.get_mut(ix, iy) = src;
                    }
                }
            }
        }
    }

    /// Overwrite a ghost band with a fixed state (inflow boundary).
    pub fn set_boundary(&mut self, side: Side, state: State) {
        let n = self.stride();
        match side {
            Side::West => {
                for iy in 0..n {
                    for ix in 0..NG {
                        *self.get_mut(ix, iy) = state;
                    }
                }
            }
            Side::East => {
                for iy in 0..n {
                    for ix in NG + self.mx..n {
                        *self.get_mut(ix, iy) = state;
                    }
                }
            }
            Side::South => {
                for ix in 0..n {
                    for iy in 0..NG {
                        *self.get_mut(ix, iy) = state;
                    }
                }
            }
            Side::North => {
                for ix in 0..n {
                    for iy in NG + self.mx..n {
                        *self.get_mut(ix, iy) = state;
                    }
                }
            }
        }
    }
}

impl SweepScratch {
    fn resize(&mut self, n: usize) {
        if self.line.len() != n {
            self.line.resize(n, [0.0; NVAR]);
            self.slope.resize(n, [0.0; NVAR]);
            self.flux.resize(n, [0.0; NVAR]);
        }
    }
}

/// Patch face identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// `-x` face.
    West,
    /// `+x` face.
    East,
    /// `-y` face.
    South,
    /// `+y` face.
    North,
}

impl Side {
    /// All four sides, in a fixed order.
    pub const ALL: [Side; 4] = [Side::West, Side::East, Side::South, Side::North];

    /// Unit offset `(di, dj)` towards the neighbouring patch.
    pub fn offset(self) -> (i64, i64) {
        match self {
            Side::West => (-1, 0),
            Side::East => (1, 0),
            Side::South => (0, -1),
            Side::North => (0, 1),
        }
    }

    /// The side seen from the neighbour's perspective.
    pub fn opposite(self) -> Side {
        match self {
            Side::West => Side::East,
            Side::East => Side::West,
            Side::South => Side::North,
            Side::North => Side::South,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::conservative;

    fn uniform_patch(level: u8, mx: usize) -> Patch {
        let mut p = Patch::new(level, 0, 0, mx);
        p.fill_with(&|_x, _y| conservative(1.0, 0.0, 0.0, 1.0));
        p
    }

    #[test]
    fn geometry_is_consistent() {
        let p = Patch::new(1, 1, 0, 8);
        assert_eq!(p.origin(), (0.5, 0.0));
        assert!((p.h() - 0.5 / 8.0).abs() < 1e-15);
        let (x, y) = p.cell_center(0, 0);
        assert!((x - (0.5 + 0.5 * p.h())).abs() < 1e-15);
        assert!((y - 0.5 * p.h()).abs() < 1e-15);
        assert_eq!(p.storage_cells(), (8 + 2 * NG) * (8 + 2 * NG));
    }

    #[test]
    #[should_panic(expected = "outside level")]
    fn rejects_out_of_range_coords() {
        Patch::new(1, 2, 0, 8);
    }

    #[test]
    fn fill_with_averages_subcells() {
        let mut p = Patch::new(0, 0, 0, 4);
        // Density linear in x: sub-sampling must reproduce the cell-center
        // value exactly for a linear field.
        p.fill_with(&|x, _y| conservative(1.0 + x, 0.0, 0.0, 1.0));
        let (x, _) = p.cell_center(2, 1);
        assert!((p.interior(2, 1)[0] - (1.0 + x)).abs() < 1e-12);
    }

    #[test]
    fn uniform_state_is_a_fixed_point_of_sweeps() {
        let mut p = uniform_patch(0, 8);
        // Valid ghosts: extrapolation reproduces the uniform state.
        for side in Side::ALL {
            p.extrapolate_boundary(side);
        }
        let before = p.clone();
        let mut scratch = SweepScratch::default();
        p.sweep_x(1e-3, &mut scratch);
        p.sweep_y(1e-3, &mut scratch);
        for cy in 0..8 {
            for cx in 0..8 {
                for k in 0..NVAR {
                    assert!(
                        (p.interior(cx, cy)[k] - before.interior(cx, cy)[k]).abs() < 1e-13,
                        "cell ({cx},{cy}) var {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_conserves_mass_with_closed_line() {
        // A compact density bump away from the boundary: total interior
        // mass is conserved because boundary fluxes are equal (uniform
        // state at both ends).
        let mut p = Patch::new(0, 0, 0, 16);
        p.fill_with(&|x, y| {
            let bump = if (x - 0.5).abs() < 0.15 && (y - 0.5).abs() < 0.15 {
                0.5
            } else {
                0.0
            };
            conservative(1.0 + bump, 0.0, 0.0, 1.0)
        });
        for side in Side::ALL {
            p.extrapolate_boundary(side);
        }
        let m0 = p.total_mass();
        let mut scratch = SweepScratch::default();
        let dt = 0.2 * p.h() / p.max_wave_speed();
        p.sweep_x(dt, &mut scratch);
        for side in Side::ALL {
            p.extrapolate_boundary(side);
        }
        p.sweep_y(dt, &mut scratch);
        assert!((p.total_mass() - m0).abs() < 1e-12, "mass drift");
    }

    #[test]
    fn refinement_indicator_flags_density_jump() {
        let mut smooth = uniform_patch(0, 8);
        smooth.fill_with(&|_x, _y| conservative(1.0, 0.0, 0.0, 1.0));
        assert!(smooth.refinement_indicator() < 1e-12);

        let mut jumpy = Patch::new(0, 0, 0, 8);
        jumpy.fill_with(&|x, _y| conservative(if x < 0.5 { 1.0 } else { 2.0 }, 0.0, 0.0, 1.0));
        assert!(jumpy.refinement_indicator() > 0.5);
    }

    #[test]
    fn boundary_fills_cover_ghost_bands() {
        let mut p = uniform_patch(0, 4);
        let marker = conservative(9.0, 0.0, 0.0, 9.0);
        p.set_boundary(Side::West, marker);
        assert_eq!(p.get(0, 3)[0], 9.0);
        assert_eq!(p.get(NG - 1, 0)[0], 9.0);
        assert_ne!(p.get(NG, 3)[0], 9.0);

        p.extrapolate_boundary(Side::East);
        let inner = *p.get(NG + 3, NG);
        assert_eq!(*p.get(NG + 4, NG), inner);
        assert_eq!(*p.get(NG + 5, NG), inner);
    }

    #[test]
    fn max_wave_speed_positive_for_physical_state() {
        let p = uniform_patch(0, 4);
        assert!(p.max_wave_speed() > 1.0);
    }

    #[test]
    fn side_offsets_and_opposites() {
        assert_eq!(Side::West.offset(), (-1, 0));
        assert_eq!(Side::North.offset(), (0, 1));
        for side in Side::ALL {
            assert_eq!(side.opposite().opposite(), side);
        }
    }

    #[test]
    fn total_mass_scales_with_area() {
        // Same uniform density on patches at different levels: mass is
        // proportional to covered area (level 1 patch covers 1/4 the area).
        let p0 = uniform_patch(0, 8);
        let mut p1 = Patch::new(1, 0, 0, 8);
        p1.fill_with(&|_x, _y| conservative(1.0, 0.0, 0.0, 1.0));
        assert!((p0.total_mass() - 1.0).abs() < 1e-12);
        assert!((p1.total_mass() - 0.25).abs() < 1e-12);
    }
}
