//! Within-level parallel sweep engine.
//!
//! The patches of one refinement level are embarrassingly parallel during a
//! directional sweep: each [`Patch::sweep_x`]/[`Patch::sweep_y`] reads only
//! its own cells (ghost bands were filled *before* the sweep) and writes
//! only its own interior. What is **not** order-free is everything that
//! aggregates across patches — flux registers fed to refluxing and the
//! work counters the machine model prices. [`SweepPool`] therefore splits
//! the work like FLASH/FORESTCLAW split a level across MPI ranks, but with
//! one extra guarantee the paper's reproducibility study leans on:
//!
//! **Ordered reduction.** Every worker writes each patch's
//! [`BoundaryFluxes`] and cell-update count into an index-addressed slot of
//! a results buffer; the coordinating thread then folds the buffer in
//! ascending patch order. Because no floating-point value ever crosses a
//! thread boundary in a schedule-dependent order, the final state, the flux
//! registers and the [`WorkStats`](crate::solver::WorkStats) are **bitwise
//! identical for any thread count, including 1** — `data/dataset.csv` can
//! never silently change because a run used more cores.
//!
//! The pool itself is a small persistent object: it owns an
//! [`al_parallel::WorkerPool`] (resolved worker count) and one
//! [`SweepScratch`] per worker (reused across every sweep of the run);
//! the borrowing workers themselves are spawned by `al-parallel`, the
//! workspace's single audited fan-out point (alint L6 `spawn_approved`,
//! DESIGN §9/§13) — no channels, no locks, no new dependencies. With one
//! worker (or a level too small to be worth splitting) the sweep runs
//! inline on the coordinating thread, which is exactly the pre-pool
//! serial loop.

use crate::patch::{BoundaryFluxes, Patch, SweepScratch};
use crate::tree::{Axis, PatchKey};
use al_parallel::WorkerPool;

pub use al_parallel::chunk_ranges;

/// Minimum patches per worker chunk. Spawning a thread costs tens of
/// microseconds — about the price of sweeping a handful of small patches —
/// so levels with fewer patches than this per worker engage fewer workers.
/// The value only shapes the schedule, never the results (ordered
/// reduction makes every schedule produce identical bits).
pub const MIN_CHUNK: usize = 4;

/// What one pooled sweep produced, already reduced in patch order.
#[derive(Debug)]
pub struct SweepOutcome {
    /// `(key, boundary fluxes)` per swept patch, in ascending key order —
    /// the reflux registers of this sweep.
    pub registers: Vec<(PatchKey, BoundaryFluxes)>,
    /// Directional cell updates performed (one per interior cell per
    /// patch) — identical to the serial count, threading is not work.
    pub cells_updated: u64,
}

/// Persistent worker pool advancing the patches of a level in parallel.
///
/// See the module docs for the determinism contract. The pool resolves its
/// thread count once at construction (`0` = all cores reported by
/// [`std::thread::available_parallelism`]) and keeps one scratch buffer per
/// worker alive across sweeps.
#[derive(Debug, Clone)]
pub struct SweepPool {
    pool: WorkerPool,
    scratch: Vec<SweepScratch>,
}

impl SweepPool {
    /// Build a pool with `n_threads` workers; `0` resolves to all
    /// available cores (falling back to 1 if the platform cannot say).
    pub fn new(n_threads: usize) -> Self {
        let pool = WorkerPool::new(n_threads);
        let scratch = vec![SweepScratch::default(); pool.n_workers()];
        SweepPool { pool, scratch }
    }

    /// Resolved worker count (never 0).
    pub fn n_workers(&self) -> usize {
        self.pool.n_workers()
    }

    /// Sweep every patch of `patches` in direction `axis` with time step
    /// `dt`, in parallel chunks, and reduce the per-patch results in patch
    /// order. `patches` must already be in the deterministic (ascending
    /// key) order [`Forest::patches_mut`](crate::tree::Forest::patches_mut)
    /// produces; the returned registers preserve that order.
    pub fn sweep(
        &mut self,
        axis: Axis,
        dt: f64,
        patches: &mut [(PatchKey, &mut Patch)],
    ) -> SweepOutcome {
        let n = patches.len();
        let ranges = chunk_ranges(n, self.pool.n_workers(), MIN_CHUNK);

        if ranges.len() <= 1 {
            // Inline serial path: byte-for-byte the pre-pool solver loop —
            // ascending key order, one scratch buffer reused across
            // patches. `n_threads = 1` always lands here.
            let scratch = self.scratch.first_mut();
            let mut registers = Vec::with_capacity(n);
            let mut cells_updated = 0u64;
            if let Some(scratch) = scratch {
                for (key, patch) in patches.iter_mut() {
                    registers.push((*key, sweep_one(patch, axis, dt, scratch)));
                    cells_updated += patch.interior_cell_count();
                }
            }
            return SweepOutcome {
                registers,
                cells_updated,
            };
        }

        // Index-addressed results buffer: worker w fills exactly the slots
        // of its chunk, so slot i always holds patch i's fluxes no matter
        // which worker ran it or when it finished.
        let mut results: Vec<Option<BoundaryFluxes>> = Vec::new();
        results.resize_with(n, || None);
        if self.scratch.len() < ranges.len() {
            self.scratch.resize(ranges.len(), SweepScratch::default());
        }

        // One borrowing job per chunk; `WorkerPool::run` executes job 0 on
        // the coordinating thread and the rest on scoped workers.
        let mut jobs = Vec::with_capacity(ranges.len());
        {
            let mut patch_tail: &mut [(PatchKey, &mut Patch)] = patches;
            let mut result_tail: &mut [Option<BoundaryFluxes>] = &mut results;
            let mut scratches = self.scratch.iter_mut();
            for range in &ranges {
                let len = range.len();
                let (chunk, rest) = std::mem::take(&mut patch_tail).split_at_mut(len);
                patch_tail = rest;
                let (out, rest) = std::mem::take(&mut result_tail).split_at_mut(len);
                result_tail = rest;
                let Some(scratch) = scratches.next() else {
                    // Unreachable: scratch was resized to ranges.len().
                    break;
                };
                jobs.push(move || sweep_chunk(chunk, out, axis, dt, scratch));
            }
        }
        self.pool.run(jobs);

        // Ordered reduction on the coordinating thread: fold the buffer in
        // ascending patch order, the only step that crosses chunks.
        let mut registers = Vec::with_capacity(n);
        let mut cells_updated = 0u64;
        for ((key, patch), slot) in patches.iter().zip(results) {
            debug_assert!(slot.is_some(), "sweep chunk skipped patch {key:?}");
            if let Some(fluxes) = slot {
                registers.push((*key, fluxes));
                cells_updated += patch.interior_cell_count();
            }
        }
        SweepOutcome {
            registers,
            cells_updated,
        }
    }
}

/// One worker's share: sweep each patch of the chunk, writing the fluxes
/// into the chunk's slots of the results buffer.
fn sweep_chunk(
    chunk: &mut [(PatchKey, &mut Patch)],
    out: &mut [Option<BoundaryFluxes>],
    axis: Axis,
    dt: f64,
    scratch: &mut SweepScratch,
) {
    for ((_, patch), slot) in chunk.iter_mut().zip(out.iter_mut()) {
        *slot = Some(sweep_one(patch, axis, dt, scratch));
    }
}

fn sweep_one(patch: &mut Patch, axis: Axis, dt: f64, scratch: &mut SweepScratch) -> BoundaryFluxes {
    match axis {
        Axis::X => patch.sweep_x(dt, scratch),
        Axis::Y => patch.sweep_y(dt, scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::{conservative, NVAR};
    use crate::tree::Forest;
    use std::ops::Range;

    #[test]
    fn chunk_ranges_split_evenly() {
        assert_eq!(chunk_ranges(10, 2, 1), vec![0..5, 5..10]);
        assert_eq!(chunk_ranges(7, 3, 1), vec![0..3, 3..5, 5..7]);
        assert_eq!(chunk_ranges(0, 4, 1), Vec::<Range<usize>>::new());
        // More workers than items: one chunk per item at most.
        assert_eq!(chunk_ranges(2, 8, 1), vec![0..1, 1..2]);
    }

    #[test]
    fn chunk_ranges_honour_min_per_chunk() {
        // 10 items, min 4: only 2 chunks fit a 4-item floor.
        let ranges = chunk_ranges(10, 8, 4);
        assert_eq!(ranges, vec![0..5, 5..10]);
        // Fewer items than the minimum: one undersized chunk.
        assert_eq!(chunk_ranges(3, 8, 4), vec![0..3]);
        // Degenerate hints are clamped, not rejected.
        assert_eq!(chunk_ranges(5, 0, 0), vec![0..5]);
    }

    #[test]
    fn pool_resolves_zero_to_at_least_one_worker() {
        assert!(SweepPool::new(0).n_workers() >= 1);
        assert_eq!(SweepPool::new(3).n_workers(), 3);
    }

    /// A refined forest with non-trivial dynamics for sweep comparisons.
    fn bump_forest() -> Forest {
        let mut f = Forest::uniform(8, 1, 2);
        f.refine_patch((1, 0, 0));
        f.enforce_balance();
        f.fill_all(&|x, y| {
            let r2 = (x - 0.4) * (x - 0.4) + (y - 0.45) * (y - 0.45);
            let amp = 1.5 * (-r2 / 0.02).exp();
            conservative(1.0 + amp, 0.1, -0.05, 1.0 + amp)
        });
        f.fill_ghosts(&crate::tree::Bc::all_extrapolate())
            .expect("ghost fill");
        f
    }

    #[test]
    fn pooled_sweep_is_bitwise_identical_across_worker_counts() {
        let dt = 1e-4;
        let reference = {
            let mut f = bump_forest();
            let mut pool = SweepPool::new(1);
            let mut patches = f.patches_mut(None);
            let outcome = pool.sweep(Axis::X, dt, &mut patches);
            (f, outcome)
        };
        for workers in [2usize, 3, 7] {
            let mut f = bump_forest();
            let mut pool = SweepPool::new(workers);
            // Defeat MIN_CHUNK so multiple workers actually engage.
            let ranges = chunk_ranges(f.n_leaves(), workers, 1);
            assert!(workers == 1 || ranges.len() > 1 || f.n_leaves() < 2);
            let outcome = {
                let mut patches = f.patches_mut(None);
                pool.sweep(Axis::X, dt, &mut patches)
            };
            assert_eq!(outcome.cells_updated, reference.1.cells_updated);
            assert_eq!(outcome.registers.len(), reference.1.registers.len());
            for (a, b) in outcome.registers.iter().zip(&reference.1.registers) {
                assert_eq!(a.0, b.0, "register order must be patch order");
                for (fa, fb) in
                    a.1.lo
                        .iter()
                        .chain(&a.1.hi)
                        .zip(b.1.lo.iter().chain(&b.1.hi))
                {
                    for k in 0..NVAR {
                        assert_eq!(fa[k].to_bits(), fb[k].to_bits());
                    }
                }
            }
            for (key, patch) in f.iter() {
                let ref_patch = reference.0.get(*key).expect("same leaves");
                for cy in 0..patch.mx() {
                    for cx in 0..patch.mx() {
                        for k in 0..NVAR {
                            assert_eq!(
                                patch.interior(cx, cy)[k].to_bits(),
                                ref_patch.interior(cx, cy)[k].to_bits(),
                                "{key:?} cell ({cx},{cy}) var {k} with {workers} workers"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sweep_counts_cells_like_the_forest() {
        let mut f = bump_forest();
        let expected = f.total_interior_cells();
        let mut pool = SweepPool::new(2);
        let mut patches = f.patches_mut(None);
        let outcome = pool.sweep(Axis::Y, 1e-4, &mut patches);
        assert_eq!(outcome.cells_updated, expected);
    }

    #[test]
    fn empty_level_sweeps_to_nothing() {
        let mut f = bump_forest();
        let mut pool = SweepPool::new(4);
        let mut patches = f.patches_mut(Some(5));
        let outcome = pool.sweep(Axis::X, 1e-4, &mut patches);
        assert!(outcome.registers.is_empty());
        assert_eq!(outcome.cells_updated, 0);
    }
}
