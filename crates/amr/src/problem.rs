//! Problem definitions: initial conditions plus boundary conditions.
//!
//! The performance study runs the shock–bubble interaction, but the AMR
//! machinery is problem-agnostic — [`crate::AmrSolver::with_problem`]
//! accepts anything implementing [`Problem`]. A Sedov-type blast is
//! provided as a second built-in, exercising refinement patterns (an
//! expanding circular front) very different from the shock–bubble's.

use crate::euler::{conservative, State};
use crate::shockbubble::{self, SimulationConfig};
use crate::tree::{Bc, BcKind};

/// A simulation setup the AMR solver can run.
pub trait Problem {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Pointwise initial condition.
    fn initial_state(&self, x: f64, y: f64) -> State;

    /// Domain boundary conditions.
    fn boundary_conditions(&self) -> Bc;
}

/// The paper's shock–bubble interaction, parameterised by a
/// [`SimulationConfig`].
#[derive(Debug, Clone, Copy)]
pub struct ShockBubbleProblem {
    config: SimulationConfig,
}

impl ShockBubbleProblem {
    /// Wrap a configuration.
    pub fn new(config: SimulationConfig) -> Self {
        ShockBubbleProblem { config }
    }
}

impl Problem for ShockBubbleProblem {
    fn name(&self) -> &'static str {
        "shock-bubble"
    }

    fn initial_state(&self, x: f64, y: f64) -> State {
        shockbubble::initial_condition(&self.config)(x, y)
    }

    fn boundary_conditions(&self) -> Bc {
        Bc {
            west: BcKind::Inflow(shockbubble::post_shock_state(shockbubble::SHOCK_MACH)),
            ..Bc::all_extrapolate()
        }
    }
}

/// A Sedov-type point blast: a disk of high pressure at the domain centre
/// expanding into a quiet ambient gas. Refinement chases the circular
/// blast front.
#[derive(Debug, Clone, Copy)]
pub struct SedovBlast {
    /// Pressure inside the initial energy disk (ambient is 1).
    pub blast_pressure: f64,
    /// Radius of the energy disk, in domain units.
    pub radius: f64,
}

impl SedovBlast {
    /// A strong blast: 1000× ambient pressure in a disk of radius 0.05.
    pub fn strong() -> Self {
        SedovBlast {
            blast_pressure: 1000.0,
            radius: 0.05,
        }
    }
}

impl Problem for SedovBlast {
    fn name(&self) -> &'static str {
        "sedov-blast"
    }

    fn initial_state(&self, x: f64, y: f64) -> State {
        let dx = x - 0.5;
        let dy = y - 0.5;
        let p = if dx * dx + dy * dy < self.radius * self.radius {
            self.blast_pressure
        } else {
            1.0
        };
        conservative(1.0, 0.0, 0.0, p)
    }

    fn boundary_conditions(&self) -> Bc {
        Bc::all_extrapolate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::pressure;

    #[test]
    fn shock_bubble_problem_matches_free_functions() {
        let config = SimulationConfig {
            p: 8,
            mx: 16,
            maxlevel: 4,
            r0: 0.3,
            rhoin: 0.1,
        };
        let problem = ShockBubbleProblem::new(config);
        assert_eq!(problem.name(), "shock-bubble");
        let direct = shockbubble::initial_condition(&config);
        for (x, y) in [(0.1, 0.5), (0.45, 0.5), (0.9, 0.9)] {
            assert_eq!(problem.initial_state(x, y), direct(x, y));
        }
        assert!(matches!(
            problem.boundary_conditions().west,
            BcKind::Inflow(_)
        ));
    }

    #[test]
    fn sedov_blast_geometry() {
        let blast = SedovBlast::strong();
        assert_eq!(blast.name(), "sedov-blast");
        let center = blast.initial_state(0.5, 0.5);
        assert!((pressure(&center) - 1000.0).abs() < 1e-9);
        let ambient = blast.initial_state(0.1, 0.1);
        assert!((pressure(&ambient) - 1.0).abs() < 1e-12);
        // Uniform unit density everywhere.
        assert!((center[0] - 1.0).abs() < 1e-12);
        assert!(matches!(
            blast.boundary_conditions().west,
            BcKind::Extrapolate
        ));
    }

    #[test]
    fn sedov_blast_is_radially_symmetric() {
        let blast = SedovBlast::strong();
        for r in [0.03, 0.06, 0.2] {
            let a = blast.initial_state(0.5 + r, 0.5);
            let b = blast.initial_state(0.5, 0.5 + r);
            let c = blast.initial_state(0.5 - r / 2f64.sqrt(), 0.5 - r / 2f64.sqrt());
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
    }
}
