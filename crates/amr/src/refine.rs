//! Refinement criteria configuration.
//!
//! Tagging itself lives in [`crate::patch::Patch::refinement_indicator`]
//! (largest relative density jump between adjacent cells) and the regrid
//! machinery in [`crate::tree::Forest::regrid`]; this module bundles the
//! thresholds with hysteresis so solver presets can carry them around.

/// Thresholds controlling when patches refine and coarsen.
///
/// Hysteresis (`coarsen < refine`) prevents patches from oscillating
/// between levels as a feature sweeps through them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementCriteria {
    /// Refine a patch when its indicator exceeds this value.
    pub refine_threshold: f64,
    /// Coarsen a sibling quartet when all four indicators are below this
    /// value. Must not exceed `refine_threshold`.
    pub coarsen_threshold: f64,
}

impl RefinementCriteria {
    /// Create criteria, validating the hysteresis ordering.
    pub fn new(refine_threshold: f64, coarsen_threshold: f64) -> Self {
        assert!(refine_threshold > 0.0);
        assert!(
            coarsen_threshold <= refine_threshold,
            "coarsen threshold {coarsen_threshold} must not exceed refine threshold {refine_threshold}"
        );
        RefinementCriteria {
            refine_threshold,
            coarsen_threshold,
        }
    }
}

impl Default for RefinementCriteria {
    /// Values tuned for the shock–bubble problem: tag the shock (density
    /// ratio ≈ 2.7 across a few cells) and the bubble interface (ratio
    /// up to 50) but not the smooth post-shock flow.
    fn default() -> Self {
        RefinementCriteria::new(0.12, 0.04)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_hysteresis() {
        let c = RefinementCriteria::default();
        assert!(c.coarsen_threshold < c.refine_threshold);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_inverted_thresholds() {
        RefinementCriteria::new(0.1, 0.2);
    }

    #[test]
    fn new_accepts_valid_thresholds() {
        let c = RefinementCriteria::new(0.3, 0.1);
        assert_eq!(c.refine_threshold, 0.3);
        assert_eq!(c.coarsen_threshold, 0.1);
    }
}
