//! End-to-end simulation runner: configuration → AMR run → machine-model
//! responses. This is the "one job on the supercomputer" primitive that
//! both the offline dataset generator and the online AL example call.

use crate::error::AmrError;
use crate::machine::{MachineModel, MachineOutcome};
use crate::shockbubble::SimulationConfig;
use crate::solver::{AmrSolver, SolverProfile, WorkStats};
use al_units::{Megabytes, NodeHours, Seconds};

/// Everything a completed "job" reports back (the paper collected the
/// analogous records from FORESTCLAW output and SLURM accounting). The
/// three responses carry their units in the type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationOutcome {
    /// The configuration that ran.
    pub config: SimulationConfig,
    /// Wall-clock time (response 1 of Table I).
    pub wall_seconds: Seconds,
    /// Cost in node-hours (response 2).
    pub cost_node_hours: NodeHours,
    /// MaxRSS per process (response 3).
    pub memory_mb: Megabytes,
    /// Raw work counters, for diagnostics and the Criterion benches.
    pub work: WorkStats,
}

/// Run one AMR simulation of `config` under `profile` and translate its
/// measured work through `machine`. `repeat` selects the measurement-noise
/// realization: the same `(config, repeat)` pair always reproduces the
/// same responses, while different repeats model run-to-run variability.
///
/// `profile.n_threads` controls within-level sweep parallelism for this
/// run (0 = all cores). It changes only the host wall-clock of the run
/// itself — the counted work in [`WorkStats`], and therefore every
/// machine-model response, is bitwise identical for any thread count, so
/// callers may thread runs however they like without perturbing the
/// dataset. The batch runner keeps the default of 1 and parallelizes
/// across runs instead.
///
/// A run that stops short of `t_final` (step cap, collapsed dt) returns
/// [`AmrError::Truncated`] instead of an outcome: a partial burst priced
/// as a completed job would silently corrupt the dataset's cost surface.
///
/// # Examples
///
/// ```
/// use al_amr_sim::{run_simulation, MachineModel, SimulationConfig, SolverProfile};
///
/// let config = SimulationConfig { p: 8, mx: 8, maxlevel: 3, r0: 0.3, rhoin: 0.1 };
/// let outcome = run_simulation(&config, SolverProfile::smoke(), &MachineModel::default(), 0)
///     .expect("simulation");
/// assert!(outcome.cost_node_hours.value() > 0.0);
/// assert!(outcome.memory_mb.value() > 0.0);
/// // Cost is exactly wall-clock × nodes (in hours).
/// let expected = outcome.wall_seconds.node_hours(8.0);
/// assert!((outcome.cost_node_hours - expected).value().abs() < 1e-12);
/// ```
pub fn run_simulation(
    config: &SimulationConfig,
    profile: SolverProfile,
    machine: &MachineModel,
    repeat: u32,
) -> Result<SimulationOutcome, AmrError> {
    let mut solver = AmrSolver::new(config, profile);
    let work = solver.run()?;
    if let Some(reason) = work.truncation {
        return Err(AmrError::Truncated {
            reason,
            steps: work.steps,
        });
    }
    let seed = config
        .stable_hash()
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(repeat as u64);
    let MachineOutcome {
        wall_seconds,
        cost_node_hours,
        memory_mb,
    } = machine.evaluate(&work, config.p, seed);
    Ok(SimulationOutcome {
        config: *config,
        wall_seconds,
        cost_node_hours,
        memory_mb,
        work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SimulationConfig {
        SimulationConfig {
            p: 8,
            mx: 8,
            maxlevel: 3,
            r0: 0.3,
            rhoin: 0.1,
        }
    }

    #[test]
    fn outcome_is_deterministic_per_repeat() {
        let m = MachineModel::default();
        let a = run_simulation(&config(), SolverProfile::smoke(), &m, 0).unwrap();
        let b = run_simulation(&config(), SolverProfile::smoke(), &m, 0).unwrap();
        assert_eq!(a, b);
        let c = run_simulation(&config(), SolverProfile::smoke(), &m, 1).unwrap();
        assert_ne!(a.cost_node_hours, c.cost_node_hours, "repeats differ");
        // But the underlying work is identical — only the noise changes.
        assert_eq!(a.work, c.work);
    }

    #[test]
    fn outcome_is_independent_of_thread_count() {
        let m = MachineModel::default();
        let serial = run_simulation(&config(), SolverProfile::smoke(), &m, 0).unwrap();
        for n_threads in [2, 4] {
            let profile = SolverProfile {
                n_threads,
                ..SolverProfile::smoke()
            };
            let threaded = run_simulation(&config(), profile, &m, 0).unwrap();
            // Bitwise: counted work and every machine-model response are
            // reduced in patch order regardless of host threading.
            assert_eq!(serial.work, threaded.work);
            assert_eq!(serial.wall_seconds, threaded.wall_seconds);
            assert_eq!(serial.cost_node_hours, threaded.cost_node_hours);
            assert_eq!(serial.memory_mb, threaded.memory_mb);
        }
    }

    #[test]
    fn responses_are_positive_and_consistent() {
        let m = MachineModel::default();
        let o = run_simulation(&config(), SolverProfile::smoke(), &m, 0).unwrap();
        assert!(o.wall_seconds.value() > 0.0);
        assert!(o.memory_mb.value() > 0.0);
        let expected = o.wall_seconds.node_hours(o.config.p as f64);
        assert!((o.cost_node_hours - expected).value().abs() < 1e-12);
    }

    #[test]
    fn truncated_run_is_an_error_not_an_outcome() {
        let m = MachineModel::default();
        // A horizon far beyond what two steps can cover forces the cap.
        let profile = SolverProfile {
            t_final: 0.05,
            max_steps: 2,
            ..SolverProfile::smoke()
        };
        let err = run_simulation(&config(), profile, &m, 0).unwrap_err();
        match err {
            AmrError::Truncated { reason, steps } => {
                assert_eq!(reason, crate::solver::TruncationReason::MaxSteps);
                assert_eq!(steps, 2);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn deeper_refinement_is_more_expensive() {
        let m = MachineModel::default();
        let shallow = run_simulation(&config(), SolverProfile::smoke(), &m, 0).unwrap();
        let deep = run_simulation(
            &SimulationConfig {
                maxlevel: 5,
                ..config()
            },
            SolverProfile::smoke(),
            &m,
            0,
        )
        .unwrap();
        assert!(deep.cost_node_hours > shallow.cost_node_hours * 3.0);
        assert!(deep.memory_mb > shallow.memory_mb);
    }
}
