//! The shock–bubble interaction problem and the paper's 5-dimensional
//! configuration space.
//!
//! A planar Mach-2 shock travels rightward into quiescent gas containing a
//! circular low-density bubble. The shock compresses and shreds the bubble,
//! producing the rich interface structure of the paper's Fig. 1 — and,
//! crucially for performance modelling, a refined region whose extent
//! depends on the bubble size `r0` and density `rhoin`.

use crate::euler::{conservative, State, GAMMA};

/// Shock Mach number driving the problem.
pub const SHOCK_MACH: f64 = 2.0;

/// Initial x-position of the shock front.
pub const SHOCK_X: f64 = 0.2;

/// Bubble center.
pub const BUBBLE_CENTER: (f64, f64) = (0.45, 0.5);

/// Scale factor from the `r0` feature to the physical bubble radius,
/// keeping the largest bubble inside the unit square.
pub const RADIUS_SCALE: f64 = 0.45;

/// One point of the paper's input space (Table I features).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// `p` — number of compute nodes the job runs on (machine parameter).
    pub p: u32,
    /// `mx` — cells per patch side ("box size", numerical parameter).
    pub mx: usize,
    /// `maxlevel` — maximum refinement level (numerical parameter).
    pub maxlevel: u8,
    /// `r0` — bubble size (physical parameter, dimensionless).
    pub r0: f64,
    /// `rhoin` — bubble density (physical parameter; ambient is 1).
    pub rhoin: f64,
}

impl SimulationConfig {
    /// Feature vector in the paper's column order
    /// `[p, mx, maxlevel, r0, rhoin]`.
    pub fn features(&self) -> [f64; 5] {
        [
            self.p as f64,
            self.mx as f64,
            self.maxlevel as f64,
            self.r0,
            self.rhoin,
        ]
    }

    /// Physical bubble radius in domain units.
    pub fn bubble_radius(&self) -> f64 {
        self.r0 * RADIUS_SCALE
    }

    /// Stable deterministic hash of the configuration, used to seed the
    /// machine model's run-to-run noise per configuration.
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over the quantized fields; stable across platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(self.p as u64);
        mix(self.mx as u64);
        mix(self.maxlevel as u64);
        mix((self.r0 * 1e6).round() as u64);
        mix((self.rhoin * 1e6).round() as u64);
        h
    }
}

/// Pre-shock (quiescent) ambient state: `ρ = 1, u = v = 0, p = 1`.
pub fn ambient_state() -> State {
    conservative(1.0, 0.0, 0.0, 1.0)
}

/// Post-shock state from the Rankine–Hugoniot relations for a Mach-`M`
/// shock moving into the ambient state.
pub fn post_shock_state(mach: f64) -> State {
    let m2 = mach * mach;
    // Ambient: rho0 = 1, p0 = 1, c0 = sqrt(gamma).
    let c0 = GAMMA.sqrt();
    let rho = (GAMMA + 1.0) * m2 / ((GAMMA - 1.0) * m2 + 2.0);
    let p = (2.0 * GAMMA * m2 - (GAMMA - 1.0)) / (GAMMA + 1.0);
    // Piston (post-shock gas) velocity.
    let u = 2.0 * c0 * (m2 - 1.0) / ((GAMMA + 1.0) * mach);
    conservative(rho, u, 0.0, p)
}

/// Initial condition for the configuration: post-shock gas left of
/// [`SHOCK_X`], ambient gas right of it, with the bubble (density
/// `rhoin`, pressure-matched) carved out around [`BUBBLE_CENTER`].
pub fn initial_condition(config: &SimulationConfig) -> impl Fn(f64, f64) -> State + '_ {
    let post = post_shock_state(SHOCK_MACH);
    let radius = config.bubble_radius();
    let rhoin = config.rhoin;
    move |x: f64, y: f64| -> State {
        if x < SHOCK_X {
            return post;
        }
        let dx = x - BUBBLE_CENTER.0;
        let dy = y - BUBBLE_CENTER.1;
        if dx * dx + dy * dy < radius * radius {
            conservative(rhoin, 0.0, 0.0, 1.0)
        } else {
            ambient_state()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::{pressure, NVAR};

    #[test]
    fn features_follow_table_order() {
        let c = SimulationConfig {
            p: 8,
            mx: 16,
            maxlevel: 5,
            r0: 0.3,
            rhoin: 0.1,
        };
        assert_eq!(c.features(), [8.0, 16.0, 5.0, 0.3, 0.1]);
    }

    #[test]
    fn bubble_radius_stays_inside_domain() {
        let c = SimulationConfig {
            p: 4,
            mx: 8,
            maxlevel: 3,
            r0: 0.5,
            rhoin: 0.5,
        };
        let r = c.bubble_radius();
        assert!(BUBBLE_CENTER.0 - r > SHOCK_X, "bubble clear of the shock");
        assert!(BUBBLE_CENTER.0 + r < 1.0);
        assert!(BUBBLE_CENTER.1 + r < 1.0);
    }

    #[test]
    fn rankine_hugoniot_mach2_textbook_values() {
        let q = post_shock_state(2.0);
        // γ = 1.4, M = 2: ρ/ρ0 = 8/3, p/p0 = 4.5.
        assert!((q[0] - 8.0 / 3.0).abs() < 1e-12, "density {}", q[0]);
        assert!((pressure(&q) - 4.5).abs() < 1e-10, "pressure");
        let u = q[1] / q[0];
        assert!(u > 0.0, "post-shock gas moves rightward");
    }

    #[test]
    fn mach_one_shock_is_no_shock() {
        let q = post_shock_state(1.0);
        let amb = ambient_state();
        for k in 0..NVAR {
            assert!((q[k] - amb[k]).abs() < 1e-12, "component {k}");
        }
    }

    #[test]
    fn initial_condition_regions() {
        let c = SimulationConfig {
            p: 4,
            mx: 8,
            maxlevel: 3,
            r0: 0.4,
            rhoin: 0.05,
        };
        let f = initial_condition(&c);
        // Left of the shock: post-shock density.
        assert!((f(0.1, 0.5)[0] - 8.0 / 3.0).abs() < 1e-12);
        // Inside the bubble: rhoin at ambient pressure.
        let inside = f(BUBBLE_CENTER.0, BUBBLE_CENTER.1);
        assert!((inside[0] - 0.05).abs() < 1e-12);
        assert!((pressure(&inside) - 1.0).abs() < 1e-12);
        // Far field: ambient.
        assert_eq!(f(0.95, 0.95), ambient_state());
    }

    #[test]
    fn stable_hash_distinguishes_configs() {
        let a = SimulationConfig {
            p: 4,
            mx: 8,
            maxlevel: 3,
            r0: 0.2,
            rhoin: 0.02,
        };
        let mut b = a;
        b.rhoin = 0.021;
        assert_ne!(a.stable_hash(), b.stable_hash());
        assert_eq!(a.stable_hash(), a.stable_hash());
    }
}
