//! AMR time integration with work accounting, in two stepping modes.
//!
//! [`TimeStepping::LevelSynchronous`] advances every leaf with the global
//! (finest-level) CFL step — simple, but coarse patches take many more
//! steps than their own CFL condition requires. [`TimeStepping::Subcycled`]
//! implements Berger–Oliger level subcycling: each refinement level ℓ
//! advances with its own step `dt_ℓ = dt_coarse / 2^(ℓ − ℓ_min)` in the
//! recursive order *coarse step → two fine sub-steps → reflux*, with fine
//! ghost bands at coarse–fine interfaces filled by time-interpolated
//! prolongation. Both modes refill ghost layers before each directional
//! sweep and regrid on a fixed cadence. In both modes the directional
//! sweeps of a level run on the [`SweepPool`] (`SolverProfile::n_threads`
//! workers) with order-deterministic reduction, so results are bitwise
//! independent of the thread count; ghost fill stays serial (see
//! `Forest::fill_ghost_set`). Every unit of work the machine model later
//! converts into wall-clock time and memory is counted here: cell
//! updates, per-level advances, ghost-exchange volume, regrids and the
//! peak number of resident cells.

use crate::error::AmrError;
use crate::patch::{BoundaryFluxes, Patch};
use crate::pool::SweepPool;
use crate::refine::RefinementCriteria;
use crate::shockbubble::SimulationConfig;
use crate::tree::{Axis, Bc, Forest, PatchKey};
use std::collections::BTreeMap;

/// How the forest's refinement levels advance in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeStepping {
    /// All levels advance in lockstep with the finest level's CFL step.
    LevelSynchronous,
    /// Berger–Oliger subcycling: level ℓ takes `2^(ℓ − ℓ_min)` halved
    /// steps per coarse step, cutting redundant coarse-level updates.
    Subcycled,
}

/// Why a run stopped short of `t_final` (surfaced via
/// [`WorkStats::truncation`] so sweeps never mistake a truncated burst
/// for a completed job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// The `max_steps` safety cap was reached.
    MaxSteps,
    /// The CFL step collapsed to zero or a non-finite value.
    TimeStepCollapse,
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruncationReason::MaxSteps => write!(f, "step cap reached"),
            TruncationReason::TimeStepCollapse => write!(f, "time step collapsed"),
        }
    }
}

/// Numerical profile controlling how long and how accurately to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverProfile {
    /// Simulated end time (domain units; the shock crosses the whole
    /// domain in roughly 0.37 time units).
    pub t_final: f64,
    /// CFL number for the global time step.
    pub cfl: f64,
    /// Refinement thresholds.
    pub criteria: RefinementCriteria,
    /// Steps between regrid cycles.
    pub regrid_interval: u64,
    /// Coarsest level of the forest.
    pub minlevel: u8,
    /// Hard cap on time steps (safety against pathological configs).
    pub max_steps: u64,
    /// Apply flux-register corrections at coarse–fine interfaces after
    /// each sweep (restores discrete conservation; small extra cost).
    pub reflux: bool,
    /// Time-integration mode (level-synchronous or Berger–Oliger
    /// subcycled).
    pub time_stepping: TimeStepping,
    /// Worker threads for within-level parallel sweeps (`0` = all cores,
    /// `1` = serial). Results are bitwise identical for any value — the
    /// sweep pool reduces per-patch fluxes and work counters in patch
    /// order — so this knob trades wall-clock only, never reproducibility.
    /// Defaults to 1: the batch runner and dataset generator already
    /// parallelize across runs, and nested pools would oversubscribe.
    pub n_threads: usize,
}

impl SolverProfile {
    /// Profile used for dataset generation: a short burst of the early
    /// shock–bubble interaction. The adaptive census (sensitive to `r0`,
    /// `rhoin`, `maxlevel`, `mx`) is fully formed at initialization and the
    /// step count carries the wave-speed dependence on `rhoin`; the machine
    /// model's `full_sim_scale` maps this burst to a production-length run.
    pub fn paper() -> Self {
        SolverProfile {
            t_final: 0.005,
            cfl: 0.45,
            criteria: RefinementCriteria::default(),
            regrid_interval: 4,
            minlevel: 2,
            max_steps: 200_000,
            reflux: true,
            time_stepping: TimeStepping::Subcycled,
            n_threads: 1,
        }
    }

    /// Reduced-accuracy profile (shorter horizon) for quick dataset
    /// regeneration (`--fast` in the experiment binaries).
    pub fn fast() -> Self {
        SolverProfile {
            t_final: 0.002,
            ..Self::paper()
        }
    }

    /// Tiny profile for unit/integration tests. Stays level-synchronous:
    /// several tests pin the lockstep work-counting contract (e.g. step
    /// counts growing with `maxlevel`), and the mode keeps a second
    /// integration path exercised in every suite run.
    pub fn smoke() -> Self {
        SolverProfile {
            t_final: 0.001,
            minlevel: 1,
            regrid_interval: 4,
            cfl: 0.45,
            criteria: RefinementCriteria::default(),
            max_steps: 200_000,
            reflux: true,
            time_stepping: TimeStepping::LevelSynchronous,
            n_threads: 1,
        }
    }

    /// Open-ended subcycled profile for perf measurement: `t_final` is
    /// unbounded so the caller times individual `step()` calls instead of
    /// racing a horizon, and subcycling matches the production
    /// (dataset-generation) integration path. Callers choose `n_threads`.
    pub fn bench() -> Self {
        SolverProfile {
            t_final: f64::INFINITY,
            time_stepping: TimeStepping::Subcycled,
            ..Self::smoke()
        }
    }
}

/// Work performed by a simulation — the machine model's input.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkStats {
    /// Coarse (global) time steps taken.
    pub steps: u64,
    /// Per-level advances summed over all levels: the number of
    /// synchronization rounds a parallel run would execute. Equals
    /// `steps` under [`TimeStepping::LevelSynchronous`]; larger under
    /// [`TimeStepping::Subcycled`], where level ℓ contributes
    /// `2^(ℓ − ℓ_min)` advances per coarse step.
    pub level_steps: u64,
    /// Directional cell updates (one cell, one sweep).
    pub cell_updates: u64,
    /// Ghost cells exchanged between patches (communication volume).
    pub ghost_cells: u64,
    /// Ghost cells filled from physical boundaries.
    pub boundary_cells: u64,
    /// Coarse faces corrected by refluxing.
    pub reflux_faces: u64,
    /// Regrid cycles executed.
    pub regrid_count: u64,
    /// Patches refined or coarsened across all regrids.
    pub regrid_changes: u64,
    /// Peak resident cells including ghost storage.
    pub peak_storage_cells: u64,
    /// Peak leaf-patch count.
    pub peak_leaves: u64,
    /// Simulated time actually reached.
    pub final_time: f64,
    /// `Some` when the run stopped meaningfully short of `t_final`
    /// (step cap, collapsed dt); `None` for a completed run.
    pub truncation: Option<TruncationReason>,
}

impl WorkStats {
    /// Whether the run stopped short of its configured end time.
    pub fn truncated(&self) -> bool {
        self.truncation.is_some()
    }
}

/// Driver owning the forest, boundary conditions and counters.
#[derive(Debug, Clone)]
pub struct AmrSolver {
    forest: Forest,
    bc: Bc,
    profile: SolverProfile,
    time: f64,
    stats: WorkStats,
    pool: SweepPool,
    /// Per-level substep counters (indexed by level) driving the
    /// alternating x/y sweep order under subcycling; level ℓ alternates
    /// on its own cadence so a uniform forest reproduces the
    /// level-synchronous sweep sequence exactly.
    level_substeps: Vec<u64>,
}

/// Per-axis boundary-flux registers recorded while a level advances,
/// handed up the recursion for refluxing against the parent level.
struct LevelFluxes {
    x: BTreeMap<PatchKey, BoundaryFluxes>,
    y: BTreeMap<PatchKey, BoundaryFluxes>,
}

impl LevelFluxes {
    fn new() -> Self {
        LevelFluxes {
            x: BTreeMap::new(),
            y: BTreeMap::new(),
        }
    }
}

/// Merge the time-average of two fine sub-step register maps (weight 1/2
/// each, matching `dt_fine = dt_coarse / 2`) into `into`.
fn merge_time_averaged(
    into: &mut BTreeMap<PatchKey, BoundaryFluxes>,
    first: &BTreeMap<PatchKey, BoundaryFluxes>,
    second: &BTreeMap<PatchKey, BoundaryFluxes>,
) {
    for (key, fluxes) in first {
        let mut avg = BoundaryFluxes::zeros(fluxes.lo.len());
        avg.add_scaled(fluxes, 0.5);
        if let Some(other) = second.get(key) {
            avg.add_scaled(other, 0.5);
        }
        into.insert(*key, avg);
    }
}

impl AmrSolver {
    /// Set up the shock–bubble problem for `config`: build the forest,
    /// adaptively refine the initial condition, and install the inflow
    /// (west) / outflow boundary conditions.
    pub fn new(config: &SimulationConfig, profile: SolverProfile) -> Self {
        Self::with_problem(
            &crate::problem::ShockBubbleProblem::new(*config),
            config.mx,
            config.maxlevel,
            profile,
        )
    }

    /// Set up an arbitrary [`Problem`](crate::problem::Problem) on an
    /// `mx`-cell patch forest refined up to `maxlevel`.
    pub fn with_problem(
        problem: &dyn crate::problem::Problem,
        mx: usize,
        maxlevel: u8,
        profile: SolverProfile,
    ) -> Self {
        let minlevel = profile.minlevel.min(maxlevel);
        let mut forest = Forest::uniform(mx, minlevel, maxlevel);
        forest.init_adaptive(
            &|x, y| problem.initial_state(x, y),
            profile.criteria.refine_threshold,
        );
        let bc = problem.boundary_conditions();
        let stats = WorkStats {
            peak_storage_cells: forest.total_storage_cells(),
            peak_leaves: forest.n_leaves() as u64,
            ..WorkStats::default()
        };

        AmrSolver {
            forest,
            bc,
            profile,
            time: 0.0,
            stats,
            pool: SweepPool::new(profile.n_threads),
            level_substeps: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &WorkStats {
        &self.stats
    }

    /// The forest (for visualization and inspection).
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// Advance one coarse time step in the profile's stepping mode.
    /// Returns the `dt` taken, or [`AmrError`] if the forest's structural
    /// invariants are broken.
    pub fn step(&mut self) -> Result<f64, AmrError> {
        match self.profile.time_stepping {
            TimeStepping::LevelSynchronous => self.step_synchronous(),
            TimeStepping::Subcycled => self.step_subcycled(),
        }
    }

    /// Level-synchronous step: every leaf advances with the finest-level
    /// CFL step (ghost fill → x sweep → ghost fill → y sweep, alternating
    /// the sweep order every step for second-order splitting symmetry).
    fn step_synchronous(&mut self) -> Result<f64, AmrError> {
        let mut dt = self.forest.cfl_dt(self.profile.cfl);
        // Do not overshoot the end time.
        if self.time + dt > self.profile.t_final {
            dt = self.profile.t_final - self.time;
        }
        self.advance_all_levels_lockstep(dt)?;
        self.time += dt;
        self.finish_step();
        Ok(dt)
    }

    /// One lockstep advance of every leaf by `dt`: the level-synchronous
    /// step body, also used by the subcycled mode for a final clamped
    /// step too small to be worth a subcycle hierarchy.
    fn advance_all_levels_lockstep(&mut self, dt: f64) -> Result<(), AmrError> {
        let x_first = self.stats.steps.is_multiple_of(2);
        for half in 0..2 {
            let ex = self.forest.fill_ghosts(&self.bc)?;
            self.stats.ghost_cells += ex.exchanged();
            self.stats.boundary_cells += ex.boundary_cells;
            let axis = if (half == 0) == x_first {
                Axis::X
            } else {
                Axis::Y
            };
            let outcome = {
                let mut patches = self.forest.patches_mut(None);
                self.pool.sweep(axis, dt, &mut patches)
            };
            self.stats.cell_updates += outcome.cells_updated;
            if self.profile.reflux {
                let registers: BTreeMap<PatchKey, BoundaryFluxes> =
                    outcome.registers.into_iter().collect();
                self.stats.reflux_faces += self.forest.reflux(axis, &registers, dt)?;
            }
        }
        self.stats.level_steps += 1;
        Ok(())
    }

    /// Berger–Oliger step: the coarsest populated level takes one step at
    /// its own CFL limit and each finer level recursively takes two halved
    /// sub-steps, refluxing against its parent after the pair completes.
    fn step_subcycled(&mut self) -> Result<f64, AmrError> {
        let coarsest = self.forest.coarsest_level();
        let finest = self.forest.finest_level();
        let mut dt = self.forest.cfl_dt_subcycled(self.profile.cfl, coarsest);
        // Do not overshoot the end time.
        if self.time + dt > self.profile.t_final {
            dt = self.profile.t_final - self.time;
        }

        if dt < self.forest.cfl_dt(self.profile.cfl) {
            // The end-time clamp shrank dt below even the finest level's
            // CFL step; a single lockstep advance is both stable and
            // strictly cheaper than recursing through 2^ℓ sub-steps of an
            // already-tiny dt.
            self.advance_all_levels_lockstep(dt)?;
        } else {
            let mut snapshots: Vec<BTreeMap<PatchKey, Patch>> =
                vec![BTreeMap::new(); finest as usize + 1];
            self.advance_level(coarsest, finest, dt, 0.0, &mut snapshots)?;
        }

        self.time += dt;
        self.finish_step();
        Ok(dt)
    }

    /// Advance every leaf on `level` by `dt` (two directional sweeps),
    /// then recurse into `level + 1` for two sub-steps of `dt / 2` and
    /// reflux this level's coarse–fine faces with the time-averaged fine
    /// fluxes. `theta0` locates this step's start within the parent's
    /// step interval (0 for the first sub-step, 1/2 for the second) and
    /// drives time interpolation of coarse ghost data; `snapshots[ℓ]`
    /// holds pre-step copies of the interface patches of level ℓ.
    /// Returns this level's boundary-flux registers for the caller.
    fn advance_level(
        &mut self,
        level: u8,
        finest: u8,
        dt: f64,
        theta0: f64,
        snapshots: &mut Vec<BTreeMap<PatchKey, Patch>>,
    ) -> Result<LevelFluxes, AmrError> {
        // Snapshot coarse–fine interface patches before this level moves
        // so the finer level can interpolate its ghost bands in time
        // across [t, t + dt].
        if level < finest {
            snapshots[level as usize] = self.forest.snapshot_interface_patches(level);
        }
        if self.level_substeps.len() <= level as usize {
            self.level_substeps.resize(level as usize + 1, 0);
        }

        let x_first = self.level_substeps[level as usize].is_multiple_of(2);
        let mut fluxes = LevelFluxes::new();
        let no_parent = BTreeMap::new();

        for half in 0..2 {
            let parent_old = match level as usize {
                0 => &no_parent,
                l => &snapshots[l - 1],
            };
            let ex = self
                .forest
                .fill_ghosts_level(level, &self.bc, parent_old, theta0)?;
            self.stats.ghost_cells += ex.exchanged();
            self.stats.boundary_cells += ex.boundary_cells;
            let axis = if (half == 0) == x_first {
                Axis::X
            } else {
                Axis::Y
            };
            let outcome = {
                let mut patches = self.forest.patches_mut(Some(level));
                self.pool.sweep(axis, dt, &mut patches)
            };
            self.stats.cell_updates += outcome.cells_updated;
            if self.profile.reflux {
                match axis {
                    Axis::X => fluxes.x.extend(outcome.registers),
                    Axis::Y => fluxes.y.extend(outcome.registers),
                }
            }
        }
        self.level_substeps[level as usize] += 1;
        self.stats.level_steps += 1;

        if level < finest {
            let half_dt = 0.5 * dt;
            let sub0 = self.advance_level(level + 1, finest, half_dt, 0.0, snapshots)?;
            let sub1 = self.advance_level(level + 1, finest, half_dt, 0.5, snapshots)?;
            if self.profile.reflux {
                let mut regs_x = fluxes.x.clone();
                let mut regs_y = fluxes.y.clone();
                merge_time_averaged(&mut regs_x, &sub0.x, &sub1.x);
                merge_time_averaged(&mut regs_y, &sub0.y, &sub1.y);
                self.stats.reflux_faces +=
                    self.forest
                        .reflux_level(Axis::X, &regs_x, dt, Some(level))?;
                self.stats.reflux_faces +=
                    self.forest
                        .reflux_level(Axis::Y, &regs_y, dt, Some(level))?;
            }
        }
        Ok(fluxes)
    }

    /// Bookkeeping shared by both stepping modes after the coarse step's
    /// time advance: step counters and the regrid cadence.
    fn finish_step(&mut self) {
        self.stats.steps += 1;
        self.stats.final_time = self.time;

        if self
            .stats
            .steps
            .is_multiple_of(self.profile.regrid_interval)
        {
            let changes = self.forest.regrid(
                self.profile.criteria.refine_threshold,
                self.profile.criteria.coarsen_threshold,
            );
            self.stats.regrid_count += 1;
            self.stats.regrid_changes += changes as u64;
            self.stats.peak_storage_cells = self
                .stats
                .peak_storage_cells
                .max(self.forest.total_storage_cells());
            self.stats.peak_leaves = self.stats.peak_leaves.max(self.forest.n_leaves() as u64);
        }
    }

    /// Whether the simulation has reached `t_final` up to floating-point
    /// round-off from clamped final steps.
    fn completed(&self) -> bool {
        self.profile.t_final - self.time <= 1e-12 * self.profile.t_final.abs()
    }

    /// Run until `t_final` (or the step cap). Returns the final counters;
    /// a stop meaningfully short of `t_final` is recorded in
    /// [`WorkStats::truncation`] rather than silently reported as complete.
    pub fn run(&mut self) -> Result<WorkStats, AmrError> {
        while self.time < self.profile.t_final {
            if self.stats.steps >= self.profile.max_steps {
                if !self.completed() {
                    self.stats.truncation = Some(TruncationReason::MaxSteps);
                }
                break;
            }
            let dt = self.step()?;
            if dt <= 0.0 || !dt.is_finite() {
                if !self.completed() {
                    self.stats.truncation = Some(TruncationReason::TimeStepCollapse);
                }
                break;
            }
        }
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SimulationConfig {
        SimulationConfig {
            p: 4,
            mx: 8,
            maxlevel: 3,
            r0: 0.35,
            rhoin: 0.1,
        }
    }

    #[test]
    fn initial_forest_refines_around_features() {
        let solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        let census = solver.forest().census();
        assert!(
            census.counts[3] > 0,
            "finest level populated at shock/bubble: {census:?}"
        );
        // The whole domain is NOT uniformly refined.
        assert!(
            (solver.forest().n_leaves() as u64) < 64,
            "{} leaves",
            solver.forest().n_leaves()
        );
    }

    #[test]
    fn step_advances_time_and_counts_work() {
        let mut solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        let dt = solver.step().expect("step");
        assert!(dt > 0.0);
        let s = solver.stats();
        assert_eq!(s.steps, 1);
        assert!(s.cell_updates > 0);
        assert!(s.ghost_cells > 0);
        assert!((solver.time() - dt).abs() < 1e-15);
    }

    #[test]
    fn run_reaches_t_final() {
        let mut solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        let stats = solver.run().expect("run");
        assert!((stats.final_time - SolverProfile::smoke().t_final).abs() < 1e-12);
        assert!(stats.steps >= 1);
        assert!(stats.regrid_count > 0 || stats.steps < 4);
    }

    #[test]
    fn solution_stays_physical() {
        let mut solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        solver.run().expect("run");
        for (_, patch) in solver.forest().iter() {
            for cy in 0..patch.mx() {
                for cx in 0..patch.mx() {
                    let q = patch.interior(cx, cy);
                    assert!(q[0] > 0.0, "negative density");
                    assert!(
                        crate::euler::pressure(q) > 0.0,
                        "negative pressure at {:?}",
                        patch.cell_center(cx, cy)
                    );
                }
            }
        }
    }

    #[test]
    fn more_levels_cost_more_work() {
        let mut shallow = AmrSolver::new(
            &SimulationConfig {
                maxlevel: 2,
                ..tiny_config()
            },
            SolverProfile::smoke(),
        );
        let mut deep = AmrSolver::new(
            &SimulationConfig {
                maxlevel: 4,
                ..tiny_config()
            },
            SolverProfile::smoke(),
        );
        let ws = shallow.run().expect("run");
        let wd = deep.run().expect("run");
        assert!(
            wd.cell_updates > 2 * ws.cell_updates,
            "deep {} vs shallow {}",
            wd.cell_updates,
            ws.cell_updates
        );
        assert!(wd.peak_storage_cells > ws.peak_storage_cells);
        assert!(wd.steps > ws.steps, "finer grid forces smaller dt");
    }

    #[test]
    fn bigger_bubble_refines_more() {
        // maxlevel 4 so the bubble interface is resolved enough for its
        // circumference (∝ r0) to dominate the leaf count.
        let small = AmrSolver::new(
            &SimulationConfig {
                r0: 0.2,
                maxlevel: 4,
                ..tiny_config()
            },
            SolverProfile::smoke(),
        );
        let large = AmrSolver::new(
            &SimulationConfig {
                r0: 0.5,
                maxlevel: 4,
                ..tiny_config()
            },
            SolverProfile::smoke(),
        );
        assert!(
            large.forest().n_leaves() > small.forest().n_leaves(),
            "large bubble {} vs small {}",
            large.forest().n_leaves(),
            small.forest().n_leaves()
        );
    }

    #[test]
    fn peak_counters_never_decrease() {
        let mut solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        let initial_peak = solver.stats().peak_storage_cells;
        solver.run().expect("run");
        assert!(solver.stats().peak_storage_cells >= initial_peak);
        assert!(solver.stats().peak_leaves >= 1);
    }

    #[test]
    fn profiles_are_ordered_by_cost() {
        assert!(SolverProfile::smoke().t_final < SolverProfile::fast().t_final);
        assert!(SolverProfile::fast().t_final < SolverProfile::paper().t_final);
    }

    #[test]
    fn dataset_profiles_default_to_subcycling() {
        assert_eq!(
            SolverProfile::paper().time_stepping,
            TimeStepping::Subcycled
        );
        assert_eq!(SolverProfile::fast().time_stepping, TimeStepping::Subcycled);
        assert_eq!(
            SolverProfile::smoke().time_stepping,
            TimeStepping::LevelSynchronous
        );
    }

    #[test]
    fn completed_run_reports_no_truncation() {
        let mut solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        let stats = solver.run().expect("run");
        assert_eq!(stats.truncation, None);
        assert!(!stats.truncated());
    }

    #[test]
    fn step_cap_sets_truncation_reason() {
        let profile = SolverProfile {
            t_final: 1.0,
            max_steps: 3,
            ..SolverProfile::smoke()
        };
        let mut solver = AmrSolver::new(&tiny_config(), profile);
        let stats = solver.run().expect("run");
        assert_eq!(stats.truncation, Some(TruncationReason::MaxSteps));
        assert!(stats.truncated());
        assert_eq!(stats.steps, 3);
        assert!(stats.final_time < 1.0);
    }

    #[test]
    fn subcycled_run_reaches_t_final_with_more_level_steps() {
        let profile = SolverProfile {
            t_final: 0.005,
            time_stepping: TimeStepping::Subcycled,
            ..SolverProfile::smoke()
        };
        let mut solver = AmrSolver::new(&tiny_config(), profile);
        let stats = solver.run().expect("run");
        assert!(stats.truncation.is_none());
        assert!((stats.final_time - 0.005).abs() < 1e-12);
        assert!(
            stats.level_steps > stats.steps,
            "multi-level hierarchy must take per-level sub-steps: {} vs {}",
            stats.level_steps,
            stats.steps
        );
    }
}
