//! Level-synchronous AMR time integration with work accounting.
//!
//! The solver advances every leaf with the global CFL time step (all levels
//! in lockstep — simpler than subcycling, and conservative in the sense that
//! counted work is an upper bound per coarse cell), refilling ghost layers
//! before each directional sweep and regridding on a fixed cadence. Every
//! unit of work the machine model later converts into wall-clock time and
//! memory is counted here: cell updates, ghost-exchange volume, regrids and
//! the peak number of resident cells.

use crate::error::AmrError;
use crate::patch::SweepScratch;
use crate::refine::RefinementCriteria;
use crate::shockbubble::SimulationConfig;
use crate::tree::{Axis, Bc, Forest};

/// Numerical profile controlling how long and how accurately to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverProfile {
    /// Simulated end time (domain units; the shock crosses the whole
    /// domain in roughly 0.37 time units).
    pub t_final: f64,
    /// CFL number for the global time step.
    pub cfl: f64,
    /// Refinement thresholds.
    pub criteria: RefinementCriteria,
    /// Steps between regrid cycles.
    pub regrid_interval: u64,
    /// Coarsest level of the forest.
    pub minlevel: u8,
    /// Hard cap on time steps (safety against pathological configs).
    pub max_steps: u64,
    /// Apply flux-register corrections at coarse–fine interfaces after
    /// each sweep (restores discrete conservation; small extra cost).
    pub reflux: bool,
}

impl SolverProfile {
    /// Profile used for dataset generation: a short burst of the early
    /// shock–bubble interaction. The adaptive census (sensitive to `r0`,
    /// `rhoin`, `maxlevel`, `mx`) is fully formed at initialization and the
    /// step count carries the wave-speed dependence on `rhoin`; the machine
    /// model's `full_sim_scale` maps this burst to a production-length run.
    pub fn paper() -> Self {
        SolverProfile {
            t_final: 0.005,
            cfl: 0.45,
            criteria: RefinementCriteria::default(),
            regrid_interval: 4,
            minlevel: 2,
            max_steps: 200_000,
            reflux: true,
        }
    }

    /// Reduced-accuracy profile (shorter horizon) for quick dataset
    /// regeneration (`--fast` in the experiment binaries).
    pub fn fast() -> Self {
        SolverProfile {
            t_final: 0.002,
            ..Self::paper()
        }
    }

    /// Tiny profile for unit/integration tests.
    pub fn smoke() -> Self {
        SolverProfile {
            t_final: 0.001,
            minlevel: 1,
            regrid_interval: 4,
            cfl: 0.45,
            criteria: RefinementCriteria::default(),
            max_steps: 200_000,
            reflux: true,
        }
    }
}

/// Work performed by a simulation — the machine model's input.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkStats {
    /// Time steps taken.
    pub steps: u64,
    /// Directional cell updates (one cell, one sweep).
    pub cell_updates: u64,
    /// Ghost cells exchanged between patches (communication volume).
    pub ghost_cells: u64,
    /// Ghost cells filled from physical boundaries.
    pub boundary_cells: u64,
    /// Coarse faces corrected by refluxing.
    pub reflux_faces: u64,
    /// Regrid cycles executed.
    pub regrid_count: u64,
    /// Patches refined or coarsened across all regrids.
    pub regrid_changes: u64,
    /// Peak resident cells including ghost storage.
    pub peak_storage_cells: u64,
    /// Peak leaf-patch count.
    pub peak_leaves: u64,
    /// Simulated time actually reached.
    pub final_time: f64,
}

/// Driver owning the forest, boundary conditions and counters.
#[derive(Debug, Clone)]
pub struct AmrSolver {
    forest: Forest,
    bc: Bc,
    profile: SolverProfile,
    time: f64,
    stats: WorkStats,
    scratch: SweepScratch,
}

impl AmrSolver {
    /// Set up the shock–bubble problem for `config`: build the forest,
    /// adaptively refine the initial condition, and install the inflow
    /// (west) / outflow boundary conditions.
    pub fn new(config: &SimulationConfig, profile: SolverProfile) -> Self {
        Self::with_problem(
            &crate::problem::ShockBubbleProblem::new(*config),
            config.mx,
            config.maxlevel,
            profile,
        )
    }

    /// Set up an arbitrary [`Problem`](crate::problem::Problem) on an
    /// `mx`-cell patch forest refined up to `maxlevel`.
    pub fn with_problem(
        problem: &dyn crate::problem::Problem,
        mx: usize,
        maxlevel: u8,
        profile: SolverProfile,
    ) -> Self {
        let minlevel = profile.minlevel.min(maxlevel);
        let mut forest = Forest::uniform(mx, minlevel, maxlevel);
        forest.init_adaptive(
            &|x, y| problem.initial_state(x, y),
            profile.criteria.refine_threshold,
        );
        let bc = problem.boundary_conditions();
        let stats = WorkStats {
            peak_storage_cells: forest.total_storage_cells(),
            peak_leaves: forest.n_leaves() as u64,
            ..WorkStats::default()
        };

        AmrSolver {
            forest,
            bc,
            profile,
            time: 0.0,
            stats,
            scratch: SweepScratch::default(),
        }
    }

    /// Current simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> &WorkStats {
        &self.stats
    }

    /// The forest (for visualization and inspection).
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// Advance one global time step (ghost fill → x sweep → ghost fill →
    /// y sweep, alternating the sweep order every step for second-order
    /// splitting symmetry). Returns the `dt` taken, or [`AmrError`] if the
    /// forest's structural invariants are broken.
    pub fn step(&mut self) -> Result<f64, AmrError> {
        let mut dt = self.forest.cfl_dt(self.profile.cfl);
        // Do not overshoot the end time.
        if self.time + dt > self.profile.t_final {
            dt = self.profile.t_final - self.time;
        }

        let x_first = self.stats.steps.is_multiple_of(2);
        for half in 0..2 {
            let ex = self.forest.fill_ghosts(&self.bc)?;
            self.stats.ghost_cells += ex.exchanged();
            self.stats.boundary_cells += ex.boundary_cells;
            let sweep_x = (half == 0) == x_first;
            let mut registers = std::collections::BTreeMap::new();
            for key in self.forest.leaf_keys() {
                let patch = self.forest.get_mut(key).ok_or(AmrError::MissingLeaf(key))?;
                let fluxes = if sweep_x {
                    patch.sweep_x(dt, &mut self.scratch)
                } else {
                    patch.sweep_y(dt, &mut self.scratch)
                };
                if self.profile.reflux {
                    registers.insert(key, fluxes);
                }
            }
            if self.profile.reflux {
                let axis = if sweep_x { Axis::X } else { Axis::Y };
                self.stats.reflux_faces += self.forest.reflux(axis, &registers, dt)?;
            }
            self.stats.cell_updates += self.forest.total_interior_cells();
        }

        self.time += dt;
        self.stats.steps += 1;
        self.stats.final_time = self.time;

        if self
            .stats
            .steps
            .is_multiple_of(self.profile.regrid_interval)
        {
            let changes = self.forest.regrid(
                self.profile.criteria.refine_threshold,
                self.profile.criteria.coarsen_threshold,
            );
            self.stats.regrid_count += 1;
            self.stats.regrid_changes += changes as u64;
            self.stats.peak_storage_cells = self
                .stats
                .peak_storage_cells
                .max(self.forest.total_storage_cells());
            self.stats.peak_leaves = self.stats.peak_leaves.max(self.forest.n_leaves() as u64);
        }
        Ok(dt)
    }

    /// Run until `t_final` (or the step cap). Returns the final counters.
    pub fn run(&mut self) -> Result<WorkStats, AmrError> {
        while self.time < self.profile.t_final && self.stats.steps < self.profile.max_steps {
            let dt = self.step()?;
            if dt <= 0.0 || !dt.is_finite() {
                break;
            }
        }
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SimulationConfig {
        SimulationConfig {
            p: 4,
            mx: 8,
            maxlevel: 3,
            r0: 0.35,
            rhoin: 0.1,
        }
    }

    #[test]
    fn initial_forest_refines_around_features() {
        let solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        let census = solver.forest().census();
        assert!(
            census.counts[3] > 0,
            "finest level populated at shock/bubble: {census:?}"
        );
        // The whole domain is NOT uniformly refined.
        assert!(
            (solver.forest().n_leaves() as u64) < 64,
            "{} leaves",
            solver.forest().n_leaves()
        );
    }

    #[test]
    fn step_advances_time_and_counts_work() {
        let mut solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        let dt = solver.step().expect("step");
        assert!(dt > 0.0);
        let s = solver.stats();
        assert_eq!(s.steps, 1);
        assert!(s.cell_updates > 0);
        assert!(s.ghost_cells > 0);
        assert!((solver.time() - dt).abs() < 1e-15);
    }

    #[test]
    fn run_reaches_t_final() {
        let mut solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        let stats = solver.run().expect("run");
        assert!((stats.final_time - SolverProfile::smoke().t_final).abs() < 1e-12);
        assert!(stats.steps >= 1);
        assert!(stats.regrid_count > 0 || stats.steps < 4);
    }

    #[test]
    fn solution_stays_physical() {
        let mut solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        solver.run().expect("run");
        for (_, patch) in solver.forest().iter() {
            for cy in 0..patch.mx() {
                for cx in 0..patch.mx() {
                    let q = patch.interior(cx, cy);
                    assert!(q[0] > 0.0, "negative density");
                    assert!(
                        crate::euler::pressure(q) > 0.0,
                        "negative pressure at {:?}",
                        patch.cell_center(cx, cy)
                    );
                }
            }
        }
    }

    #[test]
    fn more_levels_cost_more_work() {
        let mut shallow = AmrSolver::new(
            &SimulationConfig {
                maxlevel: 2,
                ..tiny_config()
            },
            SolverProfile::smoke(),
        );
        let mut deep = AmrSolver::new(
            &SimulationConfig {
                maxlevel: 4,
                ..tiny_config()
            },
            SolverProfile::smoke(),
        );
        let ws = shallow.run().expect("run");
        let wd = deep.run().expect("run");
        assert!(
            wd.cell_updates > 2 * ws.cell_updates,
            "deep {} vs shallow {}",
            wd.cell_updates,
            ws.cell_updates
        );
        assert!(wd.peak_storage_cells > ws.peak_storage_cells);
        assert!(wd.steps > ws.steps, "finer grid forces smaller dt");
    }

    #[test]
    fn bigger_bubble_refines_more() {
        // maxlevel 4 so the bubble interface is resolved enough for its
        // circumference (∝ r0) to dominate the leaf count.
        let small = AmrSolver::new(
            &SimulationConfig {
                r0: 0.2,
                maxlevel: 4,
                ..tiny_config()
            },
            SolverProfile::smoke(),
        );
        let large = AmrSolver::new(
            &SimulationConfig {
                r0: 0.5,
                maxlevel: 4,
                ..tiny_config()
            },
            SolverProfile::smoke(),
        );
        assert!(
            large.forest().n_leaves() > small.forest().n_leaves(),
            "large bubble {} vs small {}",
            large.forest().n_leaves(),
            small.forest().n_leaves()
        );
    }

    #[test]
    fn peak_counters_never_decrease() {
        let mut solver = AmrSolver::new(&tiny_config(), SolverProfile::smoke());
        let initial_peak = solver.stats().peak_storage_cells;
        solver.run().expect("run");
        assert!(solver.stats().peak_storage_cells >= initial_peak);
        assert!(solver.stats().peak_leaves >= 1);
    }

    #[test]
    fn profiles_are_ordered_by_cost() {
        assert!(SolverProfile::smoke().t_final < SolverProfile::fast().t_final);
        assert!(SolverProfile::fast().t_final < SolverProfile::paper().t_final);
    }
}
