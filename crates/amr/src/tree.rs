//! Quadtree forest of patches: leaf storage, ghost-cell exchange across
//! same-level / coarse–fine interfaces, refinement, coarsening and 2:1
//! balance — the role p4est plays under FORESTCLAW.
//!
//! Leaves are kept in a `BTreeMap` keyed by `(level, i, j)` so iteration
//! order — and therefore every floating-point reduction — is deterministic
//! across runs, which the reproducibility of dataset generation relies on.

use crate::error::AmrError;
use crate::euler::{self, State, NVAR};
use crate::patch::{BoundaryFluxes, Patch, Side, DOMAIN, NG};
use std::collections::BTreeMap;

/// Sweep direction, for refluxing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// x-direction sweep (west/east faces).
    X,
    /// y-direction sweep (south/north faces).
    Y,
}

/// Identifies a patch position: `(level, i, j)` with `i, j < 2^level`.
pub type PatchKey = (u8, u32, u32);

/// Boundary condition applied to ghost bands that fall outside the domain.
#[derive(Debug, Clone, Copy)]
pub enum BcKind {
    /// Zero-order extrapolation (outflow).
    Extrapolate,
    /// Fixed external state (inflow), e.g. the post-shock state driving the
    /// shock–bubble problem from the west.
    Inflow(State),
}

/// Per-side boundary conditions for the square domain.
#[derive(Debug, Clone, Copy)]
pub struct Bc {
    /// `-x` boundary.
    pub west: BcKind,
    /// `+x` boundary.
    pub east: BcKind,
    /// `-y` boundary.
    pub south: BcKind,
    /// `+y` boundary.
    pub north: BcKind,
}

impl Bc {
    /// Outflow on all four sides.
    pub fn all_extrapolate() -> Self {
        Bc {
            west: BcKind::Extrapolate,
            east: BcKind::Extrapolate,
            south: BcKind::Extrapolate,
            north: BcKind::Extrapolate,
        }
    }

    fn for_side(&self, side: Side) -> BcKind {
        match side {
            Side::West => self.west,
            Side::East => self.east,
            Side::South => self.south,
            Side::North => self.north,
        }
    }
}

/// Counters for communication-shaped work, fed to the machine model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExchangeStats {
    /// Ghost cells filled by same-level copies.
    pub same_level_cells: u64,
    /// Ghost cells filled by coarse→fine prolongation.
    pub prolonged_cells: u64,
    /// Ghost cells filled by fine→coarse restriction.
    pub restricted_cells: u64,
    /// Ghost cells filled by physical boundary conditions.
    pub boundary_cells: u64,
}

impl ExchangeStats {
    /// Total ghost cells moved between patches (communication volume).
    pub fn exchanged(&self) -> u64 {
        self.same_level_cells + self.prolonged_cells + self.restricted_cells
    }
}

/// Census of the forest per refinement level (Fig. 1's patch counts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelCensus {
    /// `counts[l]` = number of leaf patches at level `l`.
    pub counts: Vec<usize>,
}

/// A quadtree forest of `mx × mx` patches covering the unit square.
///
/// # Examples
///
/// ```
/// use al_amr_sim::euler::conservative;
/// use al_amr_sim::tree::Forest;
///
/// let mut forest = Forest::uniform(8, 1, 3);
/// // A density jump refines the patches containing it to maxlevel.
/// forest.init_adaptive(
///     &|x, _y| conservative(if x < 0.3 { 1.0 } else { 3.0 }, 0.0, 0.0, 1.0),
///     0.2,
/// );
/// let census = forest.census();
/// assert!(census.counts[3] > 0, "finest level reached");
/// assert!(forest.n_leaves() < 64, "refinement is selective");
/// ```
#[derive(Debug, Clone)]
pub struct Forest {
    mx: usize,
    minlevel: u8,
    maxlevel: u8,
    leaves: BTreeMap<PatchKey, Patch>,
}

impl Forest {
    /// Create a forest uniformly refined at `minlevel` with zeroed patches.
    pub fn uniform(mx: usize, minlevel: u8, maxlevel: u8) -> Self {
        assert!(minlevel <= maxlevel);
        assert!(maxlevel < 16, "levels above 15 overflow patch coordinates");
        let mut leaves = BTreeMap::new();
        let n = 1u32 << minlevel;
        for j in 0..n {
            for i in 0..n {
                leaves.insert((minlevel, i, j), Patch::new(minlevel, i, j, mx));
            }
        }
        Forest {
            mx,
            minlevel,
            maxlevel,
            leaves,
        }
    }

    /// Interior cells per patch side.
    pub fn mx(&self) -> usize {
        self.mx
    }

    /// Coarsest allowed level.
    pub fn minlevel(&self) -> u8 {
        self.minlevel
    }

    /// Finest allowed level.
    pub fn maxlevel(&self) -> u8 {
        self.maxlevel
    }

    /// Number of leaf patches.
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Snapshot of all leaf keys in deterministic order.
    pub fn leaf_keys(&self) -> Vec<PatchKey> {
        self.leaves.keys().copied().collect()
    }

    /// Snapshot of the leaf keys at one refinement level, in deterministic
    /// order (the per-level iteration unit of Berger–Oliger subcycling).
    pub fn leaf_keys_at(&self, level: u8) -> Vec<PatchKey> {
        self.leaves
            .keys()
            .filter(|(l, _, _)| *l == level)
            .copied()
            .collect()
    }

    /// Coarsest populated level (equals `minlevel` unless regridding has
    /// eliminated every coarse leaf).
    pub fn coarsest_level(&self) -> u8 {
        self.leaves
            .keys()
            .map(|(l, _, _)| *l)
            .min()
            .unwrap_or(self.minlevel)
    }

    /// Finest populated level.
    pub fn finest_level(&self) -> u8 {
        self.leaves
            .keys()
            .map(|(l, _, _)| *l)
            .max()
            .unwrap_or(self.minlevel)
    }

    /// Interior cells over the leaves of one level.
    pub fn interior_cells_at(&self, level: u8) -> u64 {
        (self.leaf_keys_at(level).len() * self.mx * self.mx) as u64
    }

    /// Borrow a leaf patch.
    pub fn get(&self, key: PatchKey) -> Option<&Patch> {
        self.leaves.get(&key)
    }

    /// Mutably borrow a leaf patch.
    pub fn get_mut(&mut self, key: PatchKey) -> Option<&mut Patch> {
        self.leaves.get_mut(&key)
    }

    /// Iterate over `(key, patch)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&PatchKey, &Patch)> {
        self.leaves.iter()
    }

    /// Iterate mutably over `(key, patch)` pairs in deterministic order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&PatchKey, &mut Patch)> {
        self.leaves.iter_mut()
    }

    /// Disjoint mutable borrows of every leaf (or only the leaves of
    /// `level`, when given), in ascending key order — the unit the
    /// parallel sweep pool chunks across workers. Each patch appears
    /// exactly once, so handing different sub-slices to different threads
    /// is sound, and the ascending order is what makes the pool's ordered
    /// reduction reproduce serial results bitwise
    /// (see [`SweepPool`](crate::pool::SweepPool)).
    pub fn patches_mut(&mut self, level: Option<u8>) -> Vec<(PatchKey, &mut Patch)> {
        self.leaves
            .iter_mut()
            .filter(|((l, _, _), _)| level.is_none_or(|want| *l == want))
            .map(|(k, p)| (*k, p))
            .collect()
    }

    /// Total interior cells over all leaves.
    pub fn total_interior_cells(&self) -> u64 {
        (self.leaves.len() * self.mx * self.mx) as u64
    }

    /// Total stored cells including ghost layers (memory footprint proxy).
    pub fn total_storage_cells(&self) -> u64 {
        self.leaves.values().map(|p| p.storage_cells() as u64).sum()
    }

    /// Leaf counts per level, indexed `0..=maxlevel`.
    pub fn census(&self) -> LevelCensus {
        let mut counts = vec![0usize; self.maxlevel as usize + 1];
        for (level, _, _) in self.leaves.keys() {
            counts[*level as usize] += 1;
        }
        LevelCensus { counts }
    }

    /// Integral of density over the domain.
    pub fn total_mass(&self) -> f64 {
        self.leaves.values().map(|p| p.total_mass()).sum()
    }

    /// Finest cell width currently present.
    pub fn min_h(&self) -> f64 {
        self.leaves
            .values()
            .map(|p| p.h())
            .fold(f64::INFINITY, f64::min)
    }

    /// Global CFL time step: `cfl · min_leaves(h / s_max)`.
    pub fn cfl_dt(&self, cfl: f64) -> f64 {
        self.leaves
            .values()
            .map(|p| p.h() / p.max_wave_speed().max(1e-12))
            .fold(f64::INFINITY, f64::min)
            * cfl
    }

    /// Coarse-level CFL step for Berger–Oliger subcycling: the largest
    /// `dt` such that level ℓ, advancing with `dt / 2^(ℓ − base)`, still
    /// satisfies its own CFL condition. For uniform wave speeds this
    /// equals the base level's CFL step (cell width doubles per coarser
    /// level, exactly cancelling the halved substep).
    pub fn cfl_dt_subcycled(&self, cfl: f64, base: u8) -> f64 {
        self.leaves
            .iter()
            .map(|((level, _, _), p)| {
                let refinements = level.saturating_sub(base) as i32;
                2f64.powi(refinements) * p.h() / p.max_wave_speed().max(1e-12)
            })
            .fold(f64::INFINITY, f64::min)
            * cfl
    }

    /// Fill every interior cell of every leaf from a pointwise function.
    pub fn fill_all(&mut self, f: &dyn Fn(f64, f64) -> State) {
        for patch in self.leaves.values_mut() {
            patch.fill_with(f);
        }
    }

    // ------------------------------------------------------------------
    // Ghost exchange
    // ------------------------------------------------------------------

    /// Fill the ghost bands of every leaf: same-level copy, coarse→fine
    /// piecewise-constant prolongation, fine→coarse restriction, and the
    /// physical boundary conditions `bc` at domain edges.
    ///
    /// Returns communication-volume statistics for the machine model, or
    /// [`AmrError`] if a leaf guaranteed by 2:1 balance is missing.
    pub fn fill_ghosts(&mut self, bc: &Bc) -> Result<ExchangeStats, AmrError> {
        self.fill_ghost_set(&self.leaf_keys(), bc, None)
    }

    /// Fill the ghost bands of the leaves at one refinement level only —
    /// the subcycled stepper's per-level exchange. `coarse_old` holds
    /// pre-step copies of the coarser patches bordering this level and
    /// `theta ∈ [0, 1]` the position of this level's substep within the
    /// coarse step: coarse→fine prolongation samples the linear
    /// interpolation `(1−θ)·old + θ·new` so fine ghosts see the coarse
    /// solution at the matching intermediate time.
    pub fn fill_ghosts_level(
        &mut self,
        level: u8,
        bc: &Bc,
        coarse_old: &BTreeMap<PatchKey, Patch>,
        theta: f64,
    ) -> Result<ExchangeStats, AmrError> {
        self.fill_ghost_set(&self.leaf_keys_at(level), bc, Some((coarse_old, theta)))
    }

    // Ghost fill is intentionally SERIAL (the parallel sweep pool only
    // covers the sweeps themselves): each patch is taken out of the map so
    // its neighbours can be read immutably, which mutates the shared
    // `leaves` structure per patch — a data dependence the chunked-slice
    // trick that parallelizes sweeps cannot express. A parallel ghost fill
    // would need a two-phase copy-out/copy-in exchange; until that exists,
    // this loop runs on the coordinating thread in deterministic key order.
    fn fill_ghost_set(
        &mut self,
        keys: &[PatchKey],
        bc: &Bc,
        interp: Option<(&BTreeMap<PatchKey, Patch>, f64)>,
    ) -> Result<ExchangeStats, AmrError> {
        let mut stats = ExchangeStats::default();
        for &key in keys {
            // Take the patch out so we can read neighbours immutably.
            let mut patch = self.leaves.remove(&key).ok_or(AmrError::MissingLeaf(key))?;
            for side in Side::ALL {
                if let Err(e) = self.fill_side(&mut patch, key, side, bc, interp, &mut stats) {
                    // Put the patch back so the forest stays structurally
                    // intact for post-mortem inspection.
                    self.leaves.insert(key, patch);
                    return Err(e);
                }
            }
            self.leaves.insert(key, patch);
        }
        Ok(stats)
    }

    fn fill_side(
        &self,
        patch: &mut Patch,
        key: PatchKey,
        side: Side,
        bc: &Bc,
        interp: Option<(&BTreeMap<PatchKey, Patch>, f64)>,
        stats: &mut ExchangeStats,
    ) -> Result<(), AmrError> {
        let (level, i, j) = key;
        let n_side = 1i64 << level;
        let (di, dj) = side.offset();
        let (ni, nj) = (i as i64 + di, j as i64 + dj);
        let band = (NG * self.mx) as u64;

        if ni < 0 || ni >= n_side || nj < 0 || nj >= n_side {
            match bc.for_side(side) {
                BcKind::Extrapolate => patch.extrapolate_boundary(side),
                BcKind::Inflow(state) => patch.set_boundary(side, state),
            }
            stats.boundary_cells += band;
            return Ok(());
        }
        let nk = (level, ni as u32, nj as u32);

        if let Some(nb) = self.leaves.get(&nk) {
            Self::copy_same_level(patch, nb, side, self.mx);
            stats.same_level_cells += band;
            return Ok(());
        }
        // Coarser neighbour: the parent of the would-be same-level
        // neighbour (2:1 balance guarantees at most one level difference).
        let parent = (level - 1, (ni / 2) as u32, (nj / 2) as u32);
        if level > 0 {
            if let Some(nb) = self.leaves.get(&parent) {
                let old = interp
                    .and_then(|(snapshots, theta)| snapshots.get(&parent).map(|p| (p, theta)));
                self.prolong_from_coarse(patch, key, nb, old, side);
                stats.prolonged_cells += band;
                return Ok(());
            }
        }
        // Finer neighbours: the two children of the would-be neighbour
        // that touch this face.
        self.restrict_from_fine(patch, key, side)?;
        stats.restricted_cells += band;
        Ok(())
    }

    /// Same-level exchange: copy the neighbour's interior cells adjacent to
    /// the shared face into this patch's ghost band.
    fn copy_same_level(patch: &mut Patch, nb: &Patch, side: Side, mx: usize) {
        for t in 0..mx {
            for g in 0..NG {
                let (dst, src) = match side {
                    // Ghost column NG+mx+g ← neighbour interior column g.
                    Side::East => ((NG + mx + g, NG + t), (NG + g, NG + t)),
                    // Ghost column g ← neighbour interior column mx-NG+g.
                    Side::West => ((g, NG + t), (NG + mx - NG + g, NG + t)),
                    Side::North => ((NG + t, NG + mx + g), (NG + t, NG + g)),
                    Side::South => ((NG + t, g), (NG + t, NG + mx - NG + g)),
                };
                *patch.get_mut(dst.0, dst.1) = *nb.get(src.0, src.1);
            }
        }
    }

    /// Global cell coordinates (at `level` resolution) of ghost cell
    /// `(ix, iy)` of the patch at `key`.
    fn global_coords(&self, key: PatchKey, ix: usize, iy: usize) -> (i64, i64) {
        let (_, i, j) = key;
        (
            i as i64 * self.mx as i64 + ix as i64 - NG as i64,
            j as i64 * self.mx as i64 + iy as i64 - NG as i64,
        )
    }

    /// Ghost-band cell ranges `(ix, iy)` for a face (excluding corners).
    fn ghost_band(&self, side: Side) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        let mx = self.mx;
        match side {
            Side::West => (0..NG, NG..NG + mx),
            Side::East => (NG + mx..NG + mx + NG, NG..NG + mx),
            Side::South => (NG..NG + mx, 0..NG),
            Side::North => (NG..NG + mx, NG + mx..NG + mx + NG),
        }
    }

    /// Coarse→fine ghost fill: piecewise-constant sampling of the coarse
    /// neighbour's interior (first-order at the interface, standard for a
    /// performance-focused substrate). When `old` carries the neighbour's
    /// pre-step copy and a time fraction `θ`, the sampled value is the
    /// linear interpolation `(1−θ)·old + θ·new` — the time-interpolated
    /// ghost fill subcycled fine levels need at coarse–fine interfaces.
    fn prolong_from_coarse(
        &self,
        patch: &mut Patch,
        key: PatchKey,
        nb: &Patch,
        old: Option<(&Patch, f64)>,
        side: Side,
    ) {
        let (xr, yr) = self.ghost_band(side);
        let (nb_level, nb_i, nb_j) = (nb.level(), nb.coords().0, nb.coords().1);
        debug_assert_eq!(nb_level, key.0 - 1);
        for iy in yr {
            for ix in xr.clone() {
                let (gx, gy) = self.global_coords(key, ix, iy);
                // Coordinates at the coarse level are halved.
                let cgx = (gx.div_euclid(2) - nb_i as i64 * self.mx as i64) as usize;
                let cgy = (gy.div_euclid(2) - nb_j as i64 * self.mx as i64) as usize;
                let mut value = *nb.interior(cgx, cgy);
                if let Some((prev, theta)) = old {
                    let before = prev.interior(cgx, cgy);
                    for k in 0..NVAR {
                        value[k] = (1.0 - theta) * before[k] + theta * value[k];
                    }
                }
                *patch.get_mut(ix, iy) = value;
            }
        }
    }

    /// Fine→coarse ghost fill: average the 2×2 fine cells under each coarse
    /// ghost cell, reading from whichever fine leaf holds them.
    fn restrict_from_fine(
        &self,
        patch: &mut Patch,
        key: PatchKey,
        side: Side,
    ) -> Result<(), AmrError> {
        let (xr, yr) = self.ghost_band(side);
        let fine_level = key.0 + 1;
        debug_assert!(fine_level <= self.maxlevel);
        for iy in yr {
            for ix in xr.clone() {
                let (gx, gy) = self.global_coords(key, ix, iy);
                let mut acc = [0.0; NVAR];
                for (ox, oy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                    let fx = gx * 2 + ox;
                    let fy = gy * 2 + oy;
                    let pi = (fx.div_euclid(self.mx as i64)) as u32;
                    let pj = (fy.div_euclid(self.mx as i64)) as u32;
                    let fine_key = (fine_level, pi, pj);
                    // 2:1 balance guarantees the fine neighbour leaves exist.
                    let leaf = self
                        .leaves
                        .get(&fine_key)
                        .ok_or(AmrError::MissingLeaf(fine_key))?;
                    let cx = (fx - pi as i64 * self.mx as i64) as usize;
                    let cy = (fy - pj as i64 * self.mx as i64) as usize;
                    let s = leaf.interior(cx, cy);
                    for k in 0..NVAR {
                        acc[k] += 0.25 * s[k];
                    }
                }
                *patch.get_mut(ix, iy) = acc;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Refluxing
    // ------------------------------------------------------------------

    /// Flux-register correction after a directional sweep: wherever a
    /// coarse patch borders finer patches, replace the coarse boundary
    /// cell's face flux by the average of the two fine face fluxes
    /// recorded on the other side, restoring discrete conservation at
    /// coarse–fine interfaces (Berger–Colella refluxing, simplified by the
    /// global time step — no time interpolation needed).
    ///
    /// `registers` must hold the [`BoundaryFluxes`] every leaf returned
    /// from this sweep — a missing register is reported as
    /// [`AmrError::MissingFluxRegister`]. Returns the number of corrected
    /// coarse faces.
    pub fn reflux(
        &mut self,
        axis: Axis,
        registers: &BTreeMap<PatchKey, BoundaryFluxes>,
        dt: f64,
    ) -> Result<u64, AmrError> {
        self.reflux_level(axis, registers, dt, None)
    }

    /// [`Forest::reflux`] restricted to the coarse leaves of one level —
    /// the subcycled stepper refluxes each coarse–fine level pair on its
    /// own cadence, with `registers` holding only that pair's fluxes
    /// (coarse sweep fluxes plus the fine level's substep-averaged ones).
    pub fn reflux_level(
        &mut self,
        axis: Axis,
        registers: &BTreeMap<PatchKey, BoundaryFluxes>,
        dt: f64,
        only_level: Option<u8>,
    ) -> Result<u64, AmrError> {
        let sides: [Side; 2] = match axis {
            Axis::X => [Side::West, Side::East],
            Axis::Y => [Side::South, Side::North],
        };
        let mx = self.mx;
        let mut corrected = 0u64;
        for key in self.leaf_keys() {
            let (level, i, j) = key;
            if only_level.is_some_and(|l| l != level) {
                continue;
            }
            for side in sides {
                if self.neighbor_level(key, side) != Some(level + 1) {
                    continue;
                }
                // The sweep produced registers for every leaf.
                let own = registers
                    .get(&key)
                    .ok_or(AmrError::MissingFluxRegister(key))?;
                for t in 0..mx {
                    // The two fine faces under coarse transverse index `t`.
                    let mut correct = [0.0; NVAR];
                    for half in 0..2u32 {
                        // Global fine transverse coordinate.
                        let transverse_global = match side {
                            Side::East | Side::West => (j * mx as u32 + t as u32) * 2 + half,
                            Side::North | Side::South => (i * mx as u32 + t as u32) * 2 + half,
                        };
                        let fine_patch_t = transverse_global / mx as u32;
                        let local = (transverse_global % mx as u32) as usize;
                        // Fine patch coordinate along the sweep axis: the
                        // child column/row touching the shared face.
                        let fine_key = match side {
                            Side::East => (level + 1, 2 * (i + 1), fine_patch_t),
                            Side::West => (level + 1, 2 * i - 1, fine_patch_t),
                            Side::North => (level + 1, fine_patch_t, 2 * (j + 1)),
                            Side::South => (level + 1, fine_patch_t, 2 * j - 1),
                        };
                        // 2:1 balance guarantees the fine registers exist.
                        let fine = registers
                            .get(&fine_key)
                            .ok_or(AmrError::MissingFluxRegister(fine_key))?;
                        // The fine face opposite our side.
                        let flux = match side {
                            Side::East | Side::North => &fine.lo[local],
                            Side::West | Side::South => &fine.hi[local],
                        };
                        for k in 0..NVAR {
                            correct[k] += 0.5 * flux[k];
                        }
                    }
                    let used = match side {
                        Side::East | Side::North => own.hi[t],
                        Side::West | Side::South => own.lo[t],
                    };
                    let (cx, cy) = match side {
                        Side::East => (mx - 1, t),
                        Side::West => (0, t),
                        Side::North => (t, mx - 1),
                        Side::South => (t, 0),
                    };
                    let patch = self
                        .leaves
                        .get_mut(&key)
                        .ok_or(AmrError::MissingLeaf(key))?;
                    patch.apply_flux_correction(side, cx, cy, &used, &correct, dt);
                    corrected += 1;
                }
            }
        }
        Ok(corrected)
    }

    /// Pre-step copies of the level-`level` leaves that border a finer
    /// face neighbour — the interpolation sources for the fine level's
    /// time-interpolated ghost fill. Only interface patches are cloned,
    /// keeping the subcycling scratch footprint proportional to the
    /// coarse–fine interface rather than the whole level.
    pub fn snapshot_interface_patches(&self, level: u8) -> BTreeMap<PatchKey, Patch> {
        let mut snapshots = BTreeMap::new();
        for key in self.leaf_keys_at(level) {
            let borders_finer = Side::ALL
                .iter()
                .any(|&side| self.neighbor_level(key, side) == Some(level + 1));
            if borders_finer {
                if let Some(patch) = self.leaves.get(&key) {
                    snapshots.insert(key, patch.clone());
                }
            }
        }
        snapshots
    }

    // ------------------------------------------------------------------
    // Refinement / coarsening
    // ------------------------------------------------------------------

    /// Split the leaf at `key` into its four children, prolonging the
    /// solution with limited (minmod) slopes. No-op above `maxlevel`.
    pub fn refine_patch(&mut self, key: PatchKey) {
        let (level, i, j) = key;
        if level >= self.maxlevel {
            return;
        }
        let Some(parent) = self.leaves.remove(&key) else {
            return;
        };
        let mx = self.mx;
        for (ci, cj) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)] {
            let ck = (level + 1, 2 * i + ci, 2 * j + cj);
            let mut child = Patch::new(ck.0, ck.1, ck.2, mx);
            // Child interior cell (cx, cy) covers the quarter of parent
            // cell (px, py) selected by the sub-cell offsets.
            for cy in 0..mx {
                for cx in 0..mx {
                    let fx = ci as usize * mx + cx; // fine coords within parent
                    let fy = cj as usize * mx + cy;
                    let px = fx / 2;
                    let py = fy / 2;
                    let q = *parent.interior(px, py);
                    // Limited slopes from the parent's neighbours (clamped
                    // at the patch edge; first-order there).
                    let mut out = q;
                    for k in 0..NVAR {
                        let sx = if px > 0 && px + 1 < mx {
                            euler::minmod(
                                q[k] - parent.interior(px - 1, py)[k],
                                parent.interior(px + 1, py)[k] - q[k],
                            )
                        } else {
                            0.0
                        };
                        let sy = if py > 0 && py + 1 < mx {
                            euler::minmod(
                                q[k] - parent.interior(px, py - 1)[k],
                                parent.interior(px, py + 1)[k] - q[k],
                            )
                        } else {
                            0.0
                        };
                        let ox = if fx.is_multiple_of(2) { -0.25 } else { 0.25 };
                        let oy = if fy.is_multiple_of(2) { -0.25 } else { 0.25 };
                        out[k] = q[k] + ox * sx + oy * sy;
                    }
                    *child.interior_mut(cx, cy) = out;
                }
            }
            self.leaves.insert(ck, child);
        }
    }

    /// Merge the four children of `parent_key` back into one leaf by 2×2
    /// averaging. No-op unless all four children are leaves.
    pub fn coarsen_to(&mut self, parent_key: PatchKey) {
        let (level, i, j) = parent_key;
        if level < self.minlevel {
            return;
        }
        let child_keys: [PatchKey; 4] = [
            (level + 1, 2 * i, 2 * j),
            (level + 1, 2 * i + 1, 2 * j),
            (level + 1, 2 * i, 2 * j + 1),
            (level + 1, 2 * i + 1, 2 * j + 1),
        ];
        // Take all four siblings out up front; if any is missing, put the
        // others back and bail — coarsening only merges complete quads.
        let mut children: Vec<(PatchKey, Patch)> = Vec::with_capacity(4);
        for ck in child_keys {
            match self.leaves.remove(&ck) {
                Some(child) => children.push((ck, child)),
                None => {
                    for (k, c) in children {
                        self.leaves.insert(k, c);
                    }
                    return;
                }
            }
        }
        let mx = self.mx;
        let mut parent = Patch::new(level, i, j, mx);
        for (ck, child) in children {
            let (ci, cj) = (ck.1 - 2 * i, ck.2 - 2 * j);
            for py in 0..mx {
                for px in 0..mx {
                    // Parent cell (px, py) sits inside child (ci, cj) iff
                    // the fine coords map into that quadrant.
                    let fx0 = px * 2;
                    let fy0 = py * 2;
                    let in_ci = fx0 / mx == ci as usize;
                    let in_cj = fy0 / mx == cj as usize;
                    if !(in_ci && in_cj) {
                        continue;
                    }
                    let cx = fx0 % mx;
                    let cy = fy0 % mx;
                    let mut acc = [0.0; NVAR];
                    for (ox, oy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                        let s = child.interior(cx + ox, cy + oy);
                        for k in 0..NVAR {
                            acc[k] += 0.25 * s[k];
                        }
                    }
                    *parent.interior_mut(px, py) = acc;
                }
            }
        }
        self.leaves.insert(parent_key, parent);
    }

    /// The level of the leaf covering the same-level neighbour region of
    /// `key` on `side`, or `None` at the domain boundary.
    fn neighbor_level(&self, key: PatchKey, side: Side) -> Option<u8> {
        let (level, i, j) = key;
        let n_side = 1i64 << level;
        let (di, dj) = side.offset();
        let (ni, nj) = (i as i64 + di, j as i64 + dj);
        if ni < 0 || ni >= n_side || nj < 0 || nj >= n_side {
            return None;
        }
        let (ni, nj) = (ni as u32, nj as u32);
        if self.leaves.contains_key(&(level, ni, nj)) {
            return Some(level);
        }
        // Search coarser ancestors.
        let (mut al, mut ai, mut aj) = (level, ni, nj);
        while al > 0 {
            al -= 1;
            ai /= 2;
            aj /= 2;
            if self.leaves.contains_key(&(al, ai, aj)) {
                return Some(al);
            }
        }
        // Otherwise the region is covered by finer leaves. Only the strip
        // of children touching the shared face matters for face balance
        // (and for the ghost-fill level assumptions), so probe that strip
        // at each finer level and report the finest populated one.
        let mut finest = None;
        for probe in (level + 1)..=self.maxlevel {
            let scale = 1u32 << (probe - level);
            // Child-coordinate strip adjacent to the face, at `probe` level.
            let (ci_range, cj_range) = match side {
                // Our East face ⇒ neighbour's westmost column.
                Side::East => (ni * scale..ni * scale + 1, nj * scale..(nj + 1) * scale),
                // Our West face ⇒ neighbour's eastmost column.
                Side::West => (
                    (ni + 1) * scale - 1..(ni + 1) * scale,
                    nj * scale..(nj + 1) * scale,
                ),
                Side::North => (ni * scale..(ni + 1) * scale, nj * scale..nj * scale + 1),
                Side::South => (
                    ni * scale..(ni + 1) * scale,
                    (nj + 1) * scale - 1..(nj + 1) * scale,
                ),
            };
            let found = ci_range.clone().any(|ci| {
                cj_range
                    .clone()
                    .any(|cj| self.leaves.contains_key(&(probe, ci, cj)))
            });
            if found {
                finest = Some(probe);
            }
        }
        finest
    }

    /// Enforce 2:1 face balance by refining coarse leaves until every pair
    /// of face neighbours differs by at most one level.
    pub fn enforce_balance(&mut self) {
        loop {
            let mut to_refine: Vec<PatchKey> = Vec::new();
            for key in self.leaf_keys() {
                let level = key.0;
                for side in Side::ALL {
                    if let Some(nl) = self.neighbor_level(key, side) {
                        if nl + 1 < level {
                            // Neighbour region is too coarse: refine the
                            // covering coarse leaf.
                            let (di, dj) = side.offset();
                            let (ni, nj) = ((key.1 as i64 + di) as u32, (key.2 as i64 + dj) as u32);
                            let shift = level - nl;
                            let ck = (nl, ni >> shift, nj >> shift);
                            if !to_refine.contains(&ck) {
                                to_refine.push(ck);
                            }
                        }
                    }
                }
            }
            if to_refine.is_empty() {
                break;
            }
            for key in to_refine {
                self.refine_patch(key);
            }
        }
    }

    /// One regrid cycle with the given tagging thresholds:
    ///
    /// 1. refine every leaf whose [`Patch::refinement_indicator`] exceeds
    ///    `refine_threshold` (up to `maxlevel`);
    /// 2. restore 2:1 balance;
    /// 3. coarsen sibling quartets whose indicators are all below
    ///    `coarsen_threshold` (hysteresis: pass a value smaller than
    ///    `refine_threshold`) where balance allows.
    ///
    /// Returns the number of refinements plus coarsenings performed.
    pub fn regrid(&mut self, refine_threshold: f64, coarsen_threshold: f64) -> usize {
        let mut changes = 0;

        // Tag + refine.
        let mut tagged: Vec<PatchKey> = Vec::new();
        for (key, patch) in self.leaves.iter() {
            if key.0 < self.maxlevel && patch.refinement_indicator() > refine_threshold {
                tagged.push(*key);
            }
        }
        for key in tagged {
            self.refine_patch(key);
            changes += 1;
        }
        self.enforce_balance();

        // Coarsen quiet sibling quartets.
        let mut parents: Vec<PatchKey> = Vec::new();
        for key in self.leaf_keys() {
            let (level, i, j) = key;
            if level <= self.minlevel || (i % 2, j % 2) != (0, 0) {
                continue;
            }
            let parent = (level - 1, i / 2, j / 2);
            let siblings = [
                (level, i, j),
                (level, i + 1, j),
                (level, i, j + 1),
                (level, i + 1, j + 1),
            ];
            let all_quiet = siblings.iter().all(|k| {
                self.leaves
                    .get(k)
                    .is_some_and(|p| p.refinement_indicator() < coarsen_threshold)
            });
            if !all_quiet {
                continue;
            }
            // Balance: the would-be parent's neighbours must not be finer
            // than the siblings' level.
            let balance_ok = Side::ALL.iter().all(|&side| {
                self.neighbor_level(parent, side)
                    .is_none_or(|nl| nl <= level)
            });
            if balance_ok {
                parents.push(parent);
            }
        }
        for parent in parents {
            self.coarsen_to(parent);
            changes += 1;
        }
        changes
    }

    /// Build an adaptively refined initial condition: fill at the coarse
    /// level, then repeatedly tag, refine, and re-fill **exactly** from the
    /// initial-condition function until no patch wants refinement (or
    /// `maxlevel` is reached everywhere it matters).
    pub fn init_adaptive(&mut self, f: &dyn Fn(f64, f64) -> State, refine_threshold: f64) {
        self.fill_all(f);
        for _ in self.minlevel..self.maxlevel {
            let mut tagged: Vec<PatchKey> = Vec::new();
            for (key, patch) in self.leaves.iter() {
                if key.0 < self.maxlevel && patch.refinement_indicator() > refine_threshold {
                    tagged.push(*key);
                }
            }
            if tagged.is_empty() {
                break;
            }
            for key in tagged {
                self.refine_patch(key);
            }
            self.enforce_balance();
            // Re-fill everything from the exact initial condition.
            self.fill_all(f);
        }
    }

    /// Sample the density field on a uniform `n × n` raster (for
    /// visualization). Each raster point reads the leaf covering it.
    pub fn raster_density(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n * n];
        for ry in 0..n {
            for rx in 0..n {
                let x = (rx as f64 + 0.5) * DOMAIN / n as f64;
                let y = (ry as f64 + 0.5) * DOMAIN / n as f64;
                out[ry * n + rx] = self.sample_density(x, y);
            }
        }
        out
    }

    /// Density at physical point `(x, y)` from the covering leaf.
    pub fn sample_density(&self, x: f64, y: f64) -> f64 {
        for level in (self.minlevel..=self.maxlevel).rev() {
            let n_side = 1u32 << level;
            let s = DOMAIN / n_side as f64;
            let i = ((x / s) as u32).min(n_side - 1);
            let j = ((y / s) as u32).min(n_side - 1);
            if let Some(patch) = self.leaves.get(&(level, i, j)) {
                let (x0, y0) = patch.origin();
                let cx = (((x - x0) / patch.h()) as usize).min(self.mx - 1);
                let cy = (((y - y0) / patch.h()) as usize).min(self.mx - 1);
                return patch.interior(cx, cy)[0];
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::conservative;

    fn uniform_forest(mx: usize, minlevel: u8, maxlevel: u8) -> Forest {
        let mut f = Forest::uniform(mx, minlevel, maxlevel);
        f.fill_all(&|_x, _y| conservative(1.0, 0.0, 0.0, 1.0));
        f
    }

    #[test]
    fn uniform_forest_has_expected_leaves() {
        let f = uniform_forest(8, 2, 4);
        assert_eq!(f.n_leaves(), 16);
        assert_eq!(f.total_interior_cells(), 16 * 64);
        let census = f.census();
        assert_eq!(census.counts[2], 16);
        assert_eq!(census.counts[3], 0);
    }

    #[test]
    fn refine_replaces_leaf_with_four_children() {
        let mut f = uniform_forest(8, 1, 3);
        assert_eq!(f.n_leaves(), 4);
        f.refine_patch((1, 0, 0));
        assert_eq!(f.n_leaves(), 7);
        assert!(f.get((1, 0, 0)).is_none());
        assert!(f.get((2, 0, 0)).is_some());
        assert!(f.get((2, 1, 1)).is_some());
    }

    #[test]
    fn refine_at_maxlevel_is_noop() {
        let mut f = uniform_forest(8, 2, 2);
        f.refine_patch((2, 0, 0));
        assert_eq!(f.n_leaves(), 16);
    }

    #[test]
    fn refinement_preserves_mass() {
        let mut f = Forest::uniform(8, 1, 3);
        f.fill_all(&|x, y| conservative(1.0 + x + 0.5 * y, 0.1, -0.2, 1.0 + x * y));
        let m0 = f.total_mass();
        f.refine_patch((1, 0, 0));
        f.refine_patch((1, 1, 1));
        assert!((f.total_mass() - m0).abs() < 1e-12);
    }

    #[test]
    fn coarsening_inverts_refinement_mass() {
        let mut f = Forest::uniform(8, 1, 3);
        f.fill_all(&|x, y| conservative(1.0 + x * x + y, 0.0, 0.0, 1.0));
        let m0 = f.total_mass();
        f.refine_patch((1, 0, 0));
        f.coarsen_to((1, 0, 0));
        assert_eq!(f.n_leaves(), 4);
        assert!(f.get((1, 0, 0)).is_some());
        assert!((f.total_mass() - m0).abs() < 1e-12);
    }

    #[test]
    fn coarsen_requires_all_siblings() {
        let mut f = uniform_forest(8, 1, 3);
        f.refine_patch((1, 0, 0));
        // Refine one of the children again: quartet incomplete at level 2.
        f.refine_patch((2, 0, 0));
        f.coarsen_to((1, 0, 0));
        // Still not coarsened.
        assert!(f.get((1, 0, 0)).is_none());
    }

    #[test]
    fn balance_refines_coarse_neighbors() {
        let mut f = uniform_forest(8, 0, 4);
        // Refine one corner twice: (0,0,0) -> level 1 -> refine (1,0,0)
        // twice more to create a level-3 leaf next to level-1 leaves.
        f.refine_patch((0, 0, 0));
        f.refine_patch((1, 0, 0));
        f.refine_patch((2, 0, 0));
        f.enforce_balance();
        // Every leaf's face neighbours must now be within one level.
        for key in f.leaf_keys() {
            for side in Side::ALL {
                if let Some(nl) = f.neighbor_level(key, side) {
                    assert!(
                        (nl as i64 - key.0 as i64).abs() <= 1,
                        "leaf {key:?} side {side:?} neighbour level {nl}"
                    );
                }
            }
        }
    }

    #[test]
    fn ghost_fill_same_level_copies_neighbor_interior() {
        let mut f = Forest::uniform(8, 1, 2);
        // Density = patch index marker so we can recognise sources.
        f.fill_all(&|x, y| {
            let marker = 1.0 + (x * 2.0).floor() + 10.0 * (y * 2.0).floor();
            conservative(marker, 0.0, 0.0, 1.0)
        });
        let stats = f.fill_ghosts(&Bc::all_extrapolate()).expect("fill_ghosts");
        assert!(stats.same_level_cells > 0);
        assert!(stats.boundary_cells > 0);
        assert_eq!(stats.prolonged_cells, 0);
        assert_eq!(stats.restricted_cells, 0);
        // Patch (1,0,0)'s east ghosts must hold patch (1,1,0)'s density 2.
        let p = f.get((1, 0, 0)).unwrap();
        assert_eq!(p.get(NG + 8, NG)[0], 2.0);
        assert_eq!(p.get(NG + 9, NG + 7)[0], 2.0);
        // Its west ghosts are boundary-extrapolated density 1.
        assert_eq!(p.get(0, NG)[0], 1.0);
    }

    #[test]
    fn ghost_fill_across_coarse_fine_interface() {
        let mut f = Forest::uniform(8, 1, 2);
        f.fill_all(&|x, _y| conservative(1.0 + x, 0.0, 0.0, 1.0));
        f.refine_patch((1, 0, 0));
        let stats = f.fill_ghosts(&Bc::all_extrapolate()).expect("fill_ghosts");
        assert!(stats.prolonged_cells > 0, "fine leaves read coarse data");
        assert!(stats.restricted_cells > 0, "coarse leaves read fine data");
        // The coarse patch (1,1,0)'s west ghosts average fine data whose
        // density is near 1+x at the interface x=0.5.
        let p = f.get((1, 1, 0)).unwrap();
        let g = p.get(NG - 1, NG)[0];
        assert!((g - 1.47).abs() < 0.05, "ghost density {g}");
        // The fine patch (2,1,0)'s east ghosts sample the coarse neighbour.
        let fine = f.get((2, 1, 0)).unwrap();
        let gf = fine.get(NG + 8, NG)[0];
        assert!((gf - 1.53).abs() < 0.06, "fine ghost density {gf}");
    }

    #[test]
    fn inflow_bc_sets_fixed_state() {
        let mut f = uniform_forest(8, 0, 1);
        let inflow = conservative(3.0, 1.0, 0.0, 5.0);
        let bc = Bc {
            west: BcKind::Inflow(inflow),
            ..Bc::all_extrapolate()
        };
        f.fill_ghosts(&bc).expect("fill_ghosts");
        let p = f.get((0, 0, 0)).unwrap();
        assert_eq!(p.get(0, NG)[0], 3.0);
        assert_eq!(p.get(1, NG + 3)[0], 3.0);
    }

    #[test]
    fn regrid_refines_feature_and_leaves_quiet_regions() {
        let mut f = Forest::uniform(8, 2, 4);
        // Sharp density jump along x = 0.47, inside patches (a jump exactly
        // on a patch boundary is invisible to the interior-only indicator).
        f.fill_all(&|x, _y| conservative(if x < 0.47 { 1.0 } else { 4.0 }, 0.0, 0.0, 1.0));
        let changes = f.regrid(0.2, 0.05);
        assert!(changes > 0);
        let census = f.census();
        assert!(census.counts[3] > 0, "census {census:?}");
        // Quiet corners stay at level 2.
        assert!(census.counts[2] > 0, "census {census:?}");
    }

    #[test]
    fn init_adaptive_refines_to_maxlevel_on_discontinuity() {
        let mut f = Forest::uniform(8, 1, 4);
        f.init_adaptive(
            &|x, _y| conservative(if x < 0.31 { 1.0 } else { 3.0 }, 0.0, 0.0, 1.0),
            0.2,
        );
        let census = f.census();
        assert!(census.counts[4] > 0, "finest level reached: {census:?}");
        assert!(f.n_leaves() < 4usize.pow(4), "refinement is selective");
        // Mass must match the exact initial condition closely because
        // patches are re-filled exactly after each refinement round.
        let exact = 1.0 * 0.31 + 3.0 * 0.69;
        assert!((f.total_mass() - exact).abs() < 0.02);
    }

    #[test]
    fn cfl_dt_scales_with_finest_level() {
        let coarse = uniform_forest(8, 1, 1);
        let mut fine = uniform_forest(8, 1, 2);
        fine.refine_patch((1, 0, 0));
        fine.enforce_balance();
        let dt_c = coarse.cfl_dt(0.4);
        let dt_f = fine.cfl_dt(0.4);
        assert!((dt_c / dt_f - 2.0).abs() < 1e-9, "dt ratio {}", dt_c / dt_f);
    }

    #[test]
    fn raster_and_sample_read_finest_leaf() {
        let mut f = Forest::uniform(8, 1, 2);
        f.fill_all(&|_x, _y| conservative(1.0, 0.0, 0.0, 1.0));
        f.refine_patch((1, 0, 0));
        // Overwrite a fine leaf to check it wins over coarse sampling.
        if let Some(p) = f.get_mut((2, 0, 0)) {
            p.fill_with(&|_x, _y| conservative(7.0, 0.0, 0.0, 1.0));
        }
        assert_eq!(f.sample_density(0.1, 0.1), 7.0);
        assert_eq!(f.sample_density(0.9, 0.9), 1.0);
        let raster = f.raster_density(4);
        assert_eq!(raster.len(), 16);
        assert_eq!(raster[0], 7.0);
    }

    /// One split step over the whole forest with ghost refills, optionally
    /// refluxing, for the conservation tests below.
    fn split_step(f: &mut Forest, dt: f64, reflux: bool) {
        use crate::patch::SweepScratch;
        let bc = Bc::all_extrapolate();
        let mut scratch = SweepScratch::default();
        for axis in [Axis::X, Axis::Y] {
            f.fill_ghosts(&bc).expect("fill_ghosts");
            let mut registers = BTreeMap::new();
            for key in f.leaf_keys() {
                let patch = f.get_mut(key).unwrap();
                let fluxes = match axis {
                    Axis::X => patch.sweep_x(dt, &mut scratch),
                    Axis::Y => patch.sweep_y(dt, &mut scratch),
                };
                registers.insert(key, fluxes);
            }
            if reflux {
                assert!(
                    f.reflux(axis, &registers, dt).expect("reflux") > 0,
                    "interface exists"
                );
            }
        }
    }

    /// A compact density bump straddling the coarse–fine interface of a
    /// partially refined forest.
    fn bump_forest() -> Forest {
        let mut f = Forest::uniform(8, 1, 2);
        f.refine_patch((1, 0, 0));
        f.enforce_balance();
        f.fill_all(&|x, y| {
            // Density AND pressure bump: a genuinely dynamic blast whose
            // waves cross the coarse–fine interface (a pure density bump
            // at constant pressure is a steady contact with zero mass
            // flux, which would make this test vacuous).
            let r2 = (x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5);
            let amp = 2.0 * (-r2 / 0.01).exp();
            conservative(1.0 + amp, 0.0, 0.0, 1.0 + amp)
        });
        f
    }

    #[test]
    fn refluxing_restores_conservation_at_interfaces() {
        // Without refluxing, coarse and fine sides use inconsistent
        // interface fluxes and total mass drifts; with refluxing the drift
        // is at rounding level.
        let dt_steps = 6;
        let mut plain = bump_forest();
        let mut refluxed = bump_forest();
        let m0 = plain.total_mass();
        for _ in 0..dt_steps {
            let dt = 0.3 * plain.cfl_dt(1.0);
            split_step(&mut plain, dt, false);
            split_step(&mut refluxed, dt, true);
        }
        // The refluxed drift is not exactly zero because the blast's far
        // tail leaks minutely through the extrapolation boundary; it still
        // sits orders of magnitude below the interface error.
        let drift_plain = (plain.total_mass() - m0).abs();
        let drift_refluxed = (refluxed.total_mass() - m0).abs();
        assert!(drift_refluxed < 1e-7, "refluxed drift {drift_refluxed}");
        assert!(
            drift_plain > 1e3 * drift_refluxed,
            "plain drift {drift_plain} should dwarf refluxed {drift_refluxed}"
        );
    }

    #[test]
    fn reflux_counts_interface_faces() {
        // One refined quadrant of a level-1 forest: the fine block borders
        // coarse leaves across 2 faces in each direction, 8 coarse cells
        // per face side... count exactly: east neighbor of fine region is
        // coarse (1,1,0) whose west face has mx cells; north neighbor is
        // (1,0,1) with mx cells.
        let mut f = bump_forest();
        let bc = Bc::all_extrapolate();
        f.fill_ghosts(&bc).expect("fill_ghosts");
        let mut scratch = crate::patch::SweepScratch::default();
        let dt = 1e-4;
        let mut registers = BTreeMap::new();
        for key in f.leaf_keys() {
            let patch = f.get_mut(key).unwrap();
            registers.insert(key, patch.sweep_x(dt, &mut scratch));
        }
        // X-refluxing corrects the coarse west face of (1,1,0): mx cells.
        assert_eq!(f.reflux(Axis::X, &registers, dt).expect("reflux"), 8);
    }

    #[test]
    fn reflux_is_noop_on_uniform_flow() {
        // Identical states everywhere: fine and coarse fluxes agree, so
        // the correction changes nothing.
        let mut f = Forest::uniform(8, 1, 2);
        f.refine_patch((1, 1, 1));
        f.enforce_balance();
        f.fill_all(&|_x, _y| conservative(1.0, 0.3, -0.1, 1.0));
        let before = f.clone();
        split_step(&mut f, 1e-4, true);
        for (key, patch) in f.iter() {
            let reference = before.get(*key).unwrap();
            for cy in 0..8 {
                for cx in 0..8 {
                    for k in 0..NVAR {
                        assert!(
                            (patch.interior(cx, cy)[k] - reference.interior(cx, cy)[k]).abs()
                                < 1e-12,
                            "{key:?} cell ({cx},{cy}) var {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exchange_stats_totals() {
        let s = ExchangeStats {
            same_level_cells: 10,
            prolonged_cells: 5,
            restricted_cells: 3,
            boundary_cells: 100,
        };
        assert_eq!(s.exchanged(), 18);
    }
}
