//! Lightweight visualization: render the density field and the patch
//! structure as ASCII art or a binary PGM image (for the paper's Fig. 1).

use crate::tree::Forest;
use std::io::{self, Write};

/// ASCII density ramp from light to heavy.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Render an `n × n` raster of the density field as ASCII art
/// (row 0 at the top = largest y).
pub fn ascii_density(forest: &Forest, n: usize) -> String {
    let raster = forest.raster_density(n);
    let (lo, hi) = raster
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (hi - lo).max(1e-12);
    let mut out = String::with_capacity(n * (n + 1));
    for ry in (0..n).rev() {
        for rx in 0..n {
            let t = (raster[ry * n + rx] - lo) / span;
            let idx = ((t * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Write the density field as a binary PGM (P5) image, `n × n`, 8-bit.
pub fn write_pgm(forest: &Forest, n: usize, w: &mut dyn Write) -> io::Result<()> {
    let raster = forest.raster_density(n);
    let (lo, hi) = raster
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (hi - lo).max(1e-12);
    writeln!(w, "P5\n{n} {n}\n255")?;
    let mut row = Vec::with_capacity(n);
    for ry in (0..n).rev() {
        row.clear();
        for rx in 0..n {
            let t = (raster[ry * n + rx] - lo) / span;
            row.push((t * 255.0).round().clamp(0.0, 255.0) as u8);
        }
        w.write_all(&row)?;
    }
    Ok(())
}

/// One line per level: level, leaf count, effective resolution, cell width.
pub fn census_table(forest: &Forest) -> String {
    let census = forest.census();
    let mut out = String::new();
    out.push_str("level  leaves  effective-res  cell-width\n");
    for (level, &count) in census.counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let res = (1usize << level) * forest.mx();
        out.push_str(&format!(
            "{level:>5}  {count:>6}  {res:>7}x{res:<5}  {:.6}\n",
            1.0 / res as f64
        ));
    }
    out.push_str(&format!(
        "total  {:>6}  ({} interior cells)\n",
        forest.n_leaves(),
        forest.total_interior_cells()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::euler::conservative;

    fn demo_forest() -> Forest {
        let mut f = Forest::uniform(8, 1, 3);
        f.init_adaptive(
            &|x, _y| conservative(if x < 0.47 { 1.0 } else { 3.0 }, 0.0, 0.0, 1.0),
            0.2,
        );
        f
    }

    #[test]
    fn ascii_render_has_expected_shape() {
        let art = ascii_density(&demo_forest(), 16);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 16);
        assert!(lines.iter().all(|l| l.len() == 16));
        // Left half light, right half heavy.
        assert!(lines[8].starts_with(' '));
        assert!(lines[8].ends_with('@'));
    }

    #[test]
    fn pgm_header_and_size() {
        let mut buf = Vec::new();
        write_pgm(&demo_forest(), 8, &mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n8 8\n255\n"));
        assert_eq!(buf.len(), b"P5\n8 8\n255\n".len() + 64);
    }

    #[test]
    fn census_lists_populated_levels() {
        let table = census_table(&demo_forest());
        assert!(table.contains("level"));
        assert!(table.contains("total"));
        // Level 3 must appear (discontinuity refines to maxlevel).
        assert!(table.lines().any(|l| l.trim_start().starts_with('3')));
    }

    #[test]
    fn uniform_field_renders_without_panicking() {
        let mut f = Forest::uniform(8, 1, 1);
        f.fill_all(&|_x, _y| conservative(1.0, 0.0, 0.0, 1.0));
        let art = ascii_density(&f, 4);
        assert_eq!(art.lines().count(), 4);
    }
}
