//! Determinism contract of the parallel sweep pool: the adaptive
//! shock–bubble run produces **bitwise identical** final state,
//! [`WorkStats`] and conservation sums for any `n_threads`, in both
//! stepping modes — plus a parity test pinning `n_threads = 1` to a
//! hand-rolled replica of the pre-pool serial algorithm.
//!
//! Set `AMR_TEST_THREADS` to add a thread count to the sweep (CI runs the
//! suite twice, with `AMR_TEST_THREADS=1` and unset = all cores).

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic, compare exact copied
// floats, and index loops for readability.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_amr_sim::patch::SweepScratch;
use al_amr_sim::problem::{Problem, ShockBubbleProblem};
use al_amr_sim::tree::{Axis, Forest, PatchKey};
use al_amr_sim::{AmrSolver, SimulationConfig, SolverProfile, TimeStepping, WorkStats};
use std::collections::BTreeMap;

fn config() -> SimulationConfig {
    SimulationConfig {
        p: 8,
        mx: 8,
        maxlevel: 4,
        r0: 0.35,
        rhoin: 0.1,
    }
}

/// `fast()`-derived profile, lengthened so the run takes several coarse
/// steps and crosses regrid cycles (the default `t_final` of `fast()`
/// covers about one subcycled coarse step at this config).
fn profile(mode: TimeStepping, n_threads: usize) -> SolverProfile {
    SolverProfile {
        t_final: 0.006,
        regrid_interval: 2,
        time_stepping: mode,
        n_threads,
        ..SolverProfile::fast()
    }
}

/// Extra thread count from the environment (`AMR_TEST_THREADS`, 0 = all
/// cores); CI exercises 1 and unset so both pool paths run on the runner.
fn env_threads() -> usize {
    std::env::var("AMR_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Thread counts under test: the spec's {1, 2, 4} plus the environment's.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, env_threads()];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Everything the determinism contract covers, in comparable-bits form:
/// leaf structure, every interior cell of every patch, the work counters
/// and the conservation sums.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    keys: Vec<PatchKey>,
    cell_bits: Vec<u64>,
    stats: WorkStats,
    mass_bits: u64,
    energy_bits: u64,
}

fn fingerprint(forest: &Forest, stats: WorkStats) -> Fingerprint {
    let mut cell_bits = Vec::new();
    let mut mass = 0.0f64;
    let mut energy = 0.0f64;
    for (_, patch) in forest.iter() {
        let vol = patch.h() * patch.h();
        for cy in 0..patch.mx() {
            for cx in 0..patch.mx() {
                let q = patch.interior(cx, cy);
                for k in 0..4 {
                    cell_bits.push(q[k].to_bits());
                }
                mass += q[0] * vol;
                energy += q[3] * vol;
            }
        }
    }
    Fingerprint {
        keys: forest.leaf_keys(),
        cell_bits,
        stats,
        mass_bits: mass.to_bits(),
        energy_bits: energy.to_bits(),
    }
}

fn run_with(mode: TimeStepping, n_threads: usize) -> Fingerprint {
    let mut solver = AmrSolver::new(&config(), profile(mode, n_threads));
    let stats = solver.run().expect("run");
    assert!(stats.truncation.is_none(), "truncated: {stats:?}");
    assert!(
        stats.steps > 1,
        "need several coarse steps: {}",
        stats.steps
    );
    assert!(stats.regrid_count > 0, "need regrids in the loop");
    fingerprint(solver.forest(), stats)
}

fn assert_bitwise_deterministic(mode: TimeStepping) {
    let reference = run_with(mode, 1);
    for n_threads in thread_counts() {
        let run = run_with(mode, n_threads);
        assert_eq!(
            run.keys, reference.keys,
            "{mode:?}/{n_threads}: leaf structure diverged"
        );
        assert_eq!(
            run.stats, reference.stats,
            "{mode:?}/{n_threads}: WorkStats diverged"
        );
        assert_eq!(
            run.cell_bits, reference.cell_bits,
            "{mode:?}/{n_threads}: final state not byte-identical"
        );
        assert_eq!(
            (run.mass_bits, run.energy_bits),
            (reference.mass_bits, reference.energy_bits),
            "{mode:?}/{n_threads}: conservation sums diverged"
        );
    }
}

#[test]
fn level_synchronous_is_bitwise_deterministic_across_thread_counts() {
    assert_bitwise_deterministic(TimeStepping::LevelSynchronous);
}

#[test]
fn subcycled_is_bitwise_deterministic_across_thread_counts() {
    assert_bitwise_deterministic(TimeStepping::Subcycled);
}

/// Parity with the pre-pool serial path: a hand-rolled replica of the
/// level-synchronous stepper exactly as it existed before the sweep pool
/// (per-key loop in `BTreeMap` order, one shared scratch buffer, reflux
/// after each directional sweep, regrid cadence on step parity) must match
/// the pooled solver at `n_threads = 1` bit for bit.
#[test]
fn pooled_solver_matches_hand_rolled_serial_stepper() {
    let config = config();
    let profile = profile(TimeStepping::LevelSynchronous, 1);

    let mut solver = AmrSolver::new(&config, profile);
    let mut reference = solver.forest().clone();

    let stats = solver.run().expect("run");
    assert!(stats.truncation.is_none());

    // Hand-drive the reference forest through the same algorithm.
    let bc = ShockBubbleProblem::new(config).boundary_conditions();
    let mut scratch = SweepScratch::default();
    let mut time = 0.0f64;
    let mut steps = 0u64;
    while time < profile.t_final {
        let mut dt = reference.cfl_dt(profile.cfl);
        if time + dt > profile.t_final {
            dt = profile.t_final - time;
        }
        let x_first = steps.is_multiple_of(2);
        for half in 0..2 {
            reference.fill_ghosts(&bc).expect("ghost fill");
            let sweep_x = (half == 0) == x_first;
            let mut registers = BTreeMap::new();
            for key in reference.leaf_keys() {
                let patch = reference.get_mut(key).expect("leaf");
                let fluxes = if sweep_x {
                    patch.sweep_x(dt, &mut scratch)
                } else {
                    patch.sweep_y(dt, &mut scratch)
                };
                registers.insert(key, fluxes);
            }
            let axis = if sweep_x { Axis::X } else { Axis::Y };
            reference.reflux(axis, &registers, dt).expect("reflux");
        }
        time += dt;
        steps += 1;
        if steps.is_multiple_of(profile.regrid_interval) {
            reference.regrid(
                profile.criteria.refine_threshold,
                profile.criteria.coarsen_threshold,
            );
        }
        assert!(steps < profile.max_steps, "reference run ran away");
        assert!(dt > 0.0 && dt.is_finite());
    }

    assert_eq!(stats.steps, steps, "step counts diverged");
    assert_eq!(solver.forest().leaf_keys(), reference.leaf_keys());
    for (key, patch) in solver.forest().iter() {
        let ref_patch = reference.get(*key).expect("leaf");
        for cy in 0..patch.mx() {
            for cx in 0..patch.mx() {
                for k in 0..4 {
                    assert_eq!(
                        patch.interior(cx, cy)[k].to_bits(),
                        ref_patch.interior(cx, cy)[k].to_bits(),
                        "{key:?} cell ({cx},{cy}) var {k}"
                    );
                }
            }
        }
    }
}

/// The pool only changes wall-clock: counted work per the machine-model
/// contract is identical whatever the host threading, in both modes.
#[test]
fn counted_work_is_independent_of_thread_count() {
    for mode in [TimeStepping::LevelSynchronous, TimeStepping::Subcycled] {
        let serial = run_with(mode, 1).stats;
        let threaded = run_with(mode, 4).stats;
        assert_eq!(serial.cell_updates, threaded.cell_updates);
        assert_eq!(serial.level_steps, threaded.level_steps);
        assert_eq!(serial.ghost_cells, threaded.ghost_cells);
        assert_eq!(serial.reflux_faces, threaded.reflux_faces);
    }
}
