//! Property-based tests for the AMR substrate: physical invariants of the
//! Euler solver and structural invariants of the quadtree forest.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic, compare exact copied
// floats, and index loops for readability.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_amr_sim::euler::{self, conservative, hllc_flux, max_wave_speed, pressure, NVAR};
use al_amr_sim::patch::{Patch, Side, SweepScratch};
use al_amr_sim::shockbubble::post_shock_state;
use al_amr_sim::tree::Forest;
use proptest::prelude::*;

/// Strategy: a physically valid primitive state.
fn primitive() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (0.05f64..5.0, -3.0f64..3.0, -3.0f64..3.0, 0.05f64..5.0)
}

proptest! {
    #[test]
    fn primitive_conservative_roundtrip((rho, u, v, p) in primitive()) {
        let q = conservative(rho, u, v, p);
        prop_assert!((q[0] - rho).abs() < 1e-12);
        prop_assert!((pressure(&q) - p).abs() < 1e-9 * (1.0 + p));
        prop_assert!(max_wave_speed(&q) > 0.0);
    }

    #[test]
    fn hllc_is_consistent((rho, u, v, p) in primitive()) {
        // f(q, q) = F(q): the Riemann flux of identical states is exact.
        let q = conservative(rho, u, v, p);
        let f = hllc_flux(&q, &q);
        let fx = euler::flux_x(&q);
        for k in 0..NVAR {
            prop_assert!(
                (f[k] - fx[k]).abs() < 1e-8 * (1.0 + fx[k].abs()),
                "component {}: {} vs {}", k, f[k], fx[k]
            );
        }
    }

    #[test]
    fn hllc_preserves_stationary_contacts(rho_l in 0.05f64..5.0, rho_r in 0.05f64..5.0, p in 0.1f64..5.0) {
        let ql = conservative(rho_l, 0.0, 0.0, p);
        let qr = conservative(rho_r, 0.0, 0.0, p);
        let f = hllc_flux(&ql, &qr);
        prop_assert!(f[0].abs() < 1e-10, "mass flux {}", f[0]);
        prop_assert!(f[3].abs() < 1e-10, "energy flux {}", f[3]);
    }

    #[test]
    fn rankine_hugoniot_post_shock_is_supersonic_compression(mach in 1.01f64..5.0) {
        let q = post_shock_state(mach);
        prop_assert!(q[0] > 1.0, "compression");
        prop_assert!(q[0] < 6.0, "below the γ=1.4 limit of 6");
        prop_assert!(pressure(&q) > 1.0, "pressure rises");
        prop_assert!(q[1] > 0.0, "gas pushed in the shock direction");
    }

    #[test]
    fn minmod_is_bounded_by_inputs(a in -5.0f64..5.0, b in -5.0f64..5.0) {
        let m = euler::minmod(a, b);
        prop_assert!(m.abs() <= a.abs() + 1e-15);
        prop_assert!(m.abs() <= b.abs() + 1e-15);
        // Sign agrees with both or is zero.
        if a * b > 0.0 {
            prop_assert!(m * a >= 0.0);
        } else {
            prop_assert_eq!(m, 0.0);
        }
    }

    #[test]
    fn uniform_flow_is_preserved_by_sweeps((rho, u, v, p) in primitive()) {
        let mut patch = Patch::new(0, 0, 0, 8);
        let q0 = conservative(rho, u, v, p);
        patch.fill_with(&|_x, _y| q0);
        for side in Side::ALL {
            patch.extrapolate_boundary(side);
        }
        let dt = 0.2 * patch.h() / patch.max_wave_speed();
        let mut scratch = SweepScratch::default();
        patch.sweep_x(dt, &mut scratch);
        patch.sweep_y(dt, &mut scratch);
        for cy in 0..8 {
            for cx in 0..8 {
                for k in 0..NVAR {
                    prop_assert!(
                        (patch.interior(cx, cy)[k] - q0[k]).abs() < 1e-10 * (1.0 + q0[k].abs()),
                        "cell ({},{}) var {}", cx, cy, k
                    );
                }
            }
        }
    }

    #[test]
    fn refine_then_coarsen_preserves_mass(
        // Coefficients bounded so the density 2 + ax·x + ay·y + axy·x·y
        // stays positive over the unit square.
        ax in -0.6f64..0.6,
        ay in -0.6f64..0.6,
        axy in -0.3f64..0.3,
    ) {
        let mut f = Forest::uniform(8, 1, 3);
        f.fill_all(&|x, y| conservative(2.0 + ax * x + ay * y + axy * x * y, 0.1, 0.0, 1.0));
        let m0 = f.total_mass();
        f.refine_patch((1, 0, 0));
        prop_assert!((f.total_mass() - m0).abs() < 1e-12);
        f.coarsen_to((1, 0, 0));
        prop_assert!((f.total_mass() - m0).abs() < 1e-12);
    }

    #[test]
    fn forest_leaves_partition_the_domain(refinements in proptest::collection::vec((0u32..4, 0u32..4), 0..6)) {
        // Refine arbitrary level-2 leaves; total covered area must stay 1.
        let mut f = Forest::uniform(4, 2, 4);
        for (i, j) in refinements {
            f.refine_patch((2, i, j));
        }
        f.enforce_balance();
        let area: f64 = f
            .leaf_keys()
            .iter()
            .map(|(l, _, _)| {
                let s = 1.0 / (1u64 << l) as f64;
                s * s
            })
            .sum();
        prop_assert!((area - 1.0).abs() < 1e-12, "area {}", area);
    }

    #[test]
    fn machine_model_is_monotone_in_work(
        updates in 1u64..1_000_000_000,
        extra in 1u64..1_000_000_000,
        p_idx in 0usize..4,
    ) {
        use al_amr_sim::{MachineModel, WorkStats};
        let p = [4u32, 8, 16, 32][p_idx];
        let m = MachineModel::default();
        let mk = |u: u64| WorkStats {
            steps: 1 + u / 1000,
            cell_updates: u,
            ghost_cells: u / 10,
            peak_storage_cells: 1 + u / 100,
            ..WorkStats::default()
        };
        let small = m.evaluate_exact(&mk(updates), p);
        let large = m.evaluate_exact(&mk(updates.saturating_add(extra)), p);
        prop_assert!(large.wall_seconds > small.wall_seconds);
        prop_assert!(large.cost_node_hours > small.cost_node_hours);
        prop_assert!(large.memory_mb >= small.memory_mb);
        prop_assert!(small.wall_seconds.value() > 0.0 && small.memory_mb.value() > 0.0);
    }

    #[test]
    fn machine_model_wall_decreases_with_nodes(
        updates in 1_000_000u64..1_000_000_000,
    ) {
        use al_amr_sim::{MachineModel, WorkStats};
        let m = MachineModel::default();
        // Few steps relative to cell count (large patches): compute
        // dominates the log(p) latency term, so strong scaling holds.
        let w = WorkStats {
            steps: 1 + updates / 1_000_000,
            cell_updates: updates,
            ghost_cells: updates / 10,
            peak_storage_cells: updates / 100,
            ..WorkStats::default()
        };
        // Compute-dominated jobs: wall shrinks with p, node-hours grow.
        let few = m.evaluate_exact(&w, 4);
        let many = m.evaluate_exact(&w, 32);
        prop_assert!(many.wall_seconds < few.wall_seconds);
        prop_assert!(many.cost_node_hours > few.cost_node_hours);
        prop_assert!(many.memory_mb < few.memory_mb);
    }

    #[test]
    fn balance_holds_after_arbitrary_refinement(
        refinements in proptest::collection::vec((0u32..8, 0u32..8), 1..8)
    ) {
        let mut f = Forest::uniform(4, 1, 5);
        // Refine a random walk of positions at increasing depth.
        for (level, (i, j)) in refinements.iter().enumerate() {
            let l = (1 + level.min(3)) as u8;
            let n = 1u32 << l;
            f.refine_patch((l, i % n, j % n));
        }
        f.enforce_balance();
        // Ghost filling must succeed on a balanced forest (it panics on
        // balance violations when restricting from missing fine leaves).
        f.fill_all(&|x, y| conservative(1.0 + x + y, 0.0, 0.0, 1.0));
        let _ = f.fill_ghosts(&al_amr_sim::tree::Bc::all_extrapolate());
    }

    #[test]
    fn chunk_ranges_cover_every_index_exactly_once(
        n_items in 0usize..10_000,
        max_chunks in 0usize..64,
        min_per_chunk in 0usize..64,
    ) {
        // Includes every degenerate shape the sweep pool can feed it:
        // 0 or 1 patches, more workers than patches, zero hints.
        let ranges = al_amr_sim::chunk_ranges(n_items, max_chunks, min_per_chunk);

        // Contiguous ascending partition: chunk c starts where c−1 ended.
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next, "gap or overlap before {:?}", r);
            prop_assert!(r.end > r.start, "empty chunk {:?}", r);
            next = r.end;
        }
        prop_assert_eq!(next, n_items, "indices not fully covered");

        // Never more chunks than requested (one chunk minimum when work
        // exists, even for a degenerate max_chunks of 0).
        prop_assert!(ranges.len() <= max_chunks.max(1));
        if n_items == 0 {
            prop_assert!(ranges.is_empty());
        }

        // Minimum chunk size holds whenever splitting happened; a single
        // chunk may be undersized (fewer items than the minimum exist).
        if ranges.len() > 1 {
            for r in &ranges {
                prop_assert!(
                    r.len() >= min_per_chunk.max(1),
                    "chunk {:?} below minimum {}", r, min_per_chunk
                );
            }
        }

        // Near-even split: chunk sizes differ by at most one cell, so no
        // worker inherits a pathological share.
        if let (Some(min), Some(max)) = (
            ranges.iter().map(|r| r.len()).min(),
            ranges.iter().map(|r| r.len()).max(),
        ) {
            prop_assert!(max - min <= 1, "uneven split: {} vs {}", min, max);
        }
    }
}
