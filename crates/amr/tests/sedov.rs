//! Integration test: the generic-problem interface, exercised by a Sedov
//! blast — an expanding circular front with 4-fold symmetry, a refinement
//! pattern entirely unlike the shock–bubble's.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic, compare exact copied
// floats, and index loops for readability.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_amr_sim::problem::SedovBlast;
use al_amr_sim::{AmrSolver, SolverProfile};

fn blast_solver() -> AmrSolver {
    let mut profile = SolverProfile::smoke();
    profile.t_final = 0.004;
    AmrSolver::with_problem(&SedovBlast::strong(), 8, 4, profile)
}

#[test]
fn blast_front_expands_and_stays_symmetric() {
    let mut solver = blast_solver();
    let initial_front = front_radius(&solver);
    solver.run().expect("run");
    let final_front = front_radius(&solver);
    assert!(
        final_front > initial_front + 0.02,
        "front must expand: {initial_front} -> {final_front}"
    );

    // 4-fold symmetry of the density field.
    let f = solver.forest();
    for (dx, dy) in [(0.1, 0.0), (0.15, 0.1), (0.21, 0.04)] {
        let quadrants = [
            f.sample_density(0.5 + dx, 0.5 + dy),
            f.sample_density(0.5 - dx, 0.5 + dy),
            f.sample_density(0.5 + dx, 0.5 - dy),
            f.sample_density(0.5 - dx, 0.5 - dy),
        ];
        for q in &quadrants[1..] {
            assert!(
                (q - quadrants[0]).abs() < 1e-9,
                "symmetry broken at ({dx},{dy}): {quadrants:?}"
            );
        }
    }
}

#[test]
fn refinement_tracks_the_blast_front() {
    let mut solver = blast_solver();
    solver.run().expect("run");
    let census = solver.forest().census();
    assert!(
        census.counts[4] > 0,
        "finest level follows the front: {census:?}"
    );
    // The far corners stay coarse.
    let total: usize = census.counts.iter().sum();
    assert!(
        total < 4usize.pow(4),
        "refinement is selective: {total} leaves"
    );
}

/// Radius at which the density departs from ambient along +x.
fn front_radius(solver: &AmrSolver) -> f64 {
    let f = solver.forest();
    let mut r = 0.0;
    for i in 0..200 {
        let probe = 0.5 * i as f64 / 200.0;
        let rho = f.sample_density(0.5 + probe, 0.5);
        if (rho - 1.0).abs() > 0.05 {
            r = probe;
        }
    }
    r
}
