//! Shock-tube validation: the 2D MUSCL/HLLC scheme, run on a y-invariant
//! Sod problem, must converge to the exact Riemann solution.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic, compare exact copied
// floats, and index loops for readability.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_amr_sim::euler::{conservative, State};
use al_amr_sim::exact_riemann::{ExactRiemann, Primitive1d};
use al_amr_sim::problem::Problem;
use al_amr_sim::tree::{Bc, Forest};
use al_amr_sim::{AmrSolver, SolverProfile, TimeStepping};

/// Advance a uniform (single-level) forest holding the Sod problem to
/// time `t_final`; returns the forest and the actual time reached.
fn run_sod(level: u8, mx: usize, t_final: f64) -> (Forest, f64) {
    let mut forest = Forest::uniform(mx, level, level);
    forest.fill_all(&|x, _y| {
        if x < 0.5 {
            conservative(1.0, 0.0, 0.0, 1.0)
        } else {
            conservative(0.125, 0.0, 0.0, 0.1)
        }
    });
    let bc = Bc::all_extrapolate();
    let mut scratch = al_amr_sim::patch::SweepScratch::default();
    let mut t = 0.0;
    let mut step = 0u64;
    while t < t_final {
        let mut dt = forest.cfl_dt(0.45);
        if t + dt > t_final {
            dt = t_final - t;
        }
        for half in 0..2 {
            forest.fill_ghosts(&bc).expect("fill_ghosts");
            let sweep_x = (half == 0) == step.is_multiple_of(2);
            for key in forest.leaf_keys() {
                let patch = forest.get_mut(key).unwrap();
                if sweep_x {
                    patch.sweep_x(dt, &mut scratch);
                } else {
                    patch.sweep_y(dt, &mut scratch);
                }
            }
        }
        t += dt;
        step += 1;
        assert!(step < 10_000, "runaway time stepping");
    }
    (forest, t)
}

fn exact_sod() -> ExactRiemann {
    ExactRiemann::solve(
        Primitive1d::new(1.0, 0.0, 1.0),
        Primitive1d::new(0.125, 0.0, 0.1),
    )
}

/// Mean |ρ_numerical − ρ_exact| over a horizontal probe line.
fn density_l1_error(forest: &Forest, t: f64, n_probe: usize) -> f64 {
    let exact = exact_sod();
    let mut total = 0.0;
    for i in 0..n_probe {
        let x = (i as f64 + 0.5) / n_probe as f64;
        let xi = (x - 0.5) / t;
        let w = exact.sample(xi);
        total += (forest.sample_density(x, 0.5) - w.rho).abs();
    }
    total / n_probe as f64
}

#[test]
fn sod_profile_matches_exact_solution() {
    let t_final = 0.12;
    let (forest, t) = run_sod(3, 16, t_final); // 128 cells across
    assert!((t - t_final).abs() < 1e-12);

    let err = density_l1_error(&forest, t, 200);
    assert!(err < 0.02, "L1 density error {err}");

    // Plateau checks away from the discontinuities.
    let exact = exact_sod();
    // Star region left of the contact (xi = 0.5 ⇒ x = 0.56).
    let w = exact.sample(0.5);
    let num = forest.sample_density(0.5 + 0.5 * t, 0.5);
    assert!((num - w.rho).abs() < 0.02, "ρ*L: {num} vs {}", w.rho);
    // Undisturbed right state ahead of the shock.
    let num = forest.sample_density(0.98, 0.5);
    assert!((num - 0.125).abs() < 1e-3, "pre-shock density {num}");
    // Undisturbed left state behind the rarefaction head.
    let num = forest.sample_density(0.02, 0.5);
    assert!((num - 1.0).abs() < 1e-3, "left plateau {num}");
}

/// The Sod shock tube as a [`Problem`], so the full adaptive solver
/// (refinement around the discontinuities, refluxing, either stepping
/// mode) can be validated against the exact solution.
struct SodProblem;

impl Problem for SodProblem {
    fn name(&self) -> &'static str {
        "sod"
    }

    fn initial_state(&self, x: f64, _y: f64) -> State {
        if x < 0.5 {
            conservative(1.0, 0.0, 0.0, 1.0)
        } else {
            conservative(0.125, 0.0, 0.0, 0.1)
        }
    }

    fn boundary_conditions(&self) -> Bc {
        Bc::all_extrapolate()
    }
}

#[test]
fn adaptive_sod_matches_exact_in_both_stepping_modes() {
    let t_final = 0.12;
    for mode in [TimeStepping::LevelSynchronous, TimeStepping::Subcycled] {
        let profile = SolverProfile {
            t_final,
            minlevel: 2,
            time_stepping: mode,
            ..SolverProfile::smoke()
        };
        let mut solver = AmrSolver::with_problem(&SodProblem, 16, 4, profile);
        let stats = solver.run().expect("run");
        assert!(stats.truncation.is_none(), "{mode:?} truncated: {stats:?}");
        assert!((stats.final_time - t_final).abs() < 1e-12);

        let err = density_l1_error(solver.forest(), t_final, 200);
        assert!(err < 0.02, "{mode:?}: L1 density error {err}");
    }
}

#[test]
fn sod_error_decreases_with_resolution() {
    let t_final = 0.1;
    let (coarse, t1) = run_sod(2, 16, t_final); // 64 cells
    let (fine, t2) = run_sod(4, 16, t_final); // 256 cells
    let e_coarse = density_l1_error(&coarse, t1, 200);
    let e_fine = density_l1_error(&fine, t2, 200);
    assert!(
        e_fine < 0.6 * e_coarse,
        "refinement must reduce error: {e_coarse} -> {e_fine}"
    );
}

#[test]
fn solution_is_y_invariant() {
    let (forest, _) = run_sod(3, 8, 0.08);
    for i in 0..20 {
        let x = (i as f64 + 0.5) / 20.0;
        let a = forest.sample_density(x, 0.25);
        let b = forest.sample_density(x, 0.75);
        assert!(
            (a - b).abs() < 1e-10,
            "y-symmetry broken at x={x}: {a} vs {b}"
        );
    }
}
