//! Berger–Oliger subcycling validation: discrete conservation with
//! refluxing, exact parity with the level-synchronous stepper on a
//! uniform forest, and the work reduction that motivates the mode.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic, compare exact copied
// floats, and index loops for readability.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_amr_sim::euler::{conservative, State};
use al_amr_sim::problem::Problem;
use al_amr_sim::tree::{Bc, Forest};
use al_amr_sim::{AmrSolver, SimulationConfig, SolverProfile, TimeStepping};

/// A smooth pressure bump at the domain centre: outgoing acoustic waves
/// that never reach the boundary within the test horizon, so total mass
/// and energy are exactly conserved by the interior scheme + refluxing.
struct PressureBump;

impl Problem for PressureBump {
    fn name(&self) -> &'static str {
        "pressure-bump"
    }

    fn initial_state(&self, x: f64, y: f64) -> State {
        let dx = x - 0.5;
        let dy = y - 0.5;
        let r2 = (dx * dx + dy * dy) / (0.08 * 0.08);
        let p = 1.0 + 3.0 * (-r2).exp();
        let rho = 1.0 + 0.5 * (-r2).exp();
        conservative(rho, 0.0, 0.0, p)
    }

    fn boundary_conditions(&self) -> Bc {
        Bc::all_extrapolate()
    }
}

/// Total (mass, energy) over the forest: Σ q · h².
fn totals(forest: &Forest) -> (f64, f64) {
    let mut mass = 0.0;
    let mut energy = 0.0;
    for (_, patch) in forest.iter() {
        let vol = patch.h() * patch.h();
        for cy in 0..patch.mx() {
            for cx in 0..patch.mx() {
                let q = patch.interior(cx, cy);
                mass += q[0] * vol;
                energy += q[3] * vol;
            }
        }
    }
    (mass, energy)
}

#[test]
fn subcycled_refluxing_conserves_mass_and_energy() {
    let profile = SolverProfile {
        t_final: 0.02,
        minlevel: 1,
        // No regrid during the run: this isolates the conservation
        // property of sweeps + subcycled refluxing from interpolation
        // done by refinement/coarsening.
        regrid_interval: 1_000_000,
        reflux: true,
        time_stepping: TimeStepping::Subcycled,
        ..SolverProfile::smoke()
    };
    let mut solver = AmrSolver::with_problem(&PressureBump, 8, 4, profile);
    let forest = solver.forest();
    assert!(
        forest.finest_level() > forest.coarsest_level(),
        "test needs genuine coarse–fine interfaces: levels {}..{}",
        forest.coarsest_level(),
        forest.finest_level()
    );
    let (mass0, energy0) = totals(solver.forest());

    let stats = solver.run().expect("run");
    assert!(stats.truncation.is_none(), "run truncated: {stats:?}");
    assert!(stats.reflux_faces > 0, "refluxing never engaged");

    let (mass1, energy1) = totals(solver.forest());
    let mass_err = ((mass1 - mass0) / mass0).abs();
    let energy_err = ((energy1 - energy0) / energy0).abs();
    assert!(mass_err <= 1e-10, "relative mass drift {mass_err:e}");
    assert!(energy_err <= 1e-10, "relative energy drift {energy_err:e}");
}

#[test]
fn subcycled_matches_synchronous_on_uniform_forest() {
    // minlevel == maxlevel forces a single-level forest, where the two
    // modes must execute the same sweep sequence with the same dt.
    let base = SolverProfile {
        t_final: 0.01,
        minlevel: 2,
        reflux: true,
        ..SolverProfile::smoke()
    };
    let run = |mode: TimeStepping| {
        let profile = SolverProfile {
            time_stepping: mode,
            ..base
        };
        let mut solver = AmrSolver::with_problem(&PressureBump, 8, 2, profile);
        let stats = solver.run().expect("run");
        (solver, stats)
    };
    let (sync, sync_stats) = run(TimeStepping::LevelSynchronous);
    let (sub, sub_stats) = run(TimeStepping::Subcycled);

    assert_eq!(sync_stats.steps, sub_stats.steps);
    assert_eq!(sync_stats.level_steps, sub_stats.level_steps);
    assert_eq!(sync_stats.cell_updates, sub_stats.cell_updates);

    let keys: Vec<_> = sync.forest().leaf_keys();
    assert_eq!(keys, sub.forest().leaf_keys());
    for key in keys {
        let a = sync.forest().get(key).unwrap();
        let b = sub.forest().get(key).unwrap();
        for cy in 0..a.mx() {
            for cx in 0..a.mx() {
                let qa = a.interior(cx, cy);
                let qb = b.interior(cx, cy);
                for k in 0..4 {
                    assert!(
                        (qa[k] - qb[k]).abs() <= 1e-13,
                        "state mismatch at {key:?} cell ({cx},{cy}) var {k}: {} vs {}",
                        qa[k],
                        qb[k]
                    );
                }
            }
        }
    }
}

#[test]
fn subcycling_cuts_cell_updates_on_multilevel_config() {
    // A paper()-style deep hierarchy: coarse levels dominate the area,
    // so per-level stepping should cut ≥25% of the directional updates
    // the lockstep mode spends advancing coarse patches at the fine dt.
    let config = SimulationConfig {
        p: 4,
        mx: 8,
        maxlevel: 5,
        r0: 0.25,
        rhoin: 0.1,
    };
    // Long enough for several unclamped coarse steps: savings amortize
    // over full subcycle hierarchies, not a single clamped step.
    let base = SolverProfile {
        t_final: 0.03,
        minlevel: 1,
        ..SolverProfile::smoke()
    };
    let run = |mode: TimeStepping| {
        let profile = SolverProfile {
            time_stepping: mode,
            ..base
        };
        let mut solver = AmrSolver::new(&config, profile);
        solver.run().expect("run")
    };
    let sync = run(TimeStepping::LevelSynchronous);
    let sub = run(TimeStepping::Subcycled);

    assert!(sync.truncation.is_none() && sub.truncation.is_none());
    assert!(sub.steps > 1, "need multiple coarse steps: {}", sub.steps);
    assert!(
        (sync.final_time - sub.final_time).abs() < 1e-12,
        "equal horizons"
    );
    assert!(
        (sub.cell_updates as f64) <= 0.75 * sync.cell_updates as f64,
        "subcycling must cut ≥25% of updates: {} vs {}",
        sub.cell_updates,
        sync.cell_updates
    );
    // Latency accounting moves the other way: more synchronization
    // rounds than coarse steps.
    assert!(sub.level_steps > sub.steps);
    assert_eq!(sync.level_steps, sync.steps);
}
