//! Criterion micro-benchmarks for the AL layer: per-strategy selection
//! cost over a large candidate pool, and a full AL iteration
//! (predict → select → retrain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use al_core::{run_trajectory, AlOptions, SelectionContext, StrategyKind};
use al_dataset::{Dataset, Partition, Sample};
use al_gp::FitOptions;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn synthetic_predictions(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mu_cost: Vec<f64> = (0..n).map(|_| rng.random_range(-3.0..1.0)).collect();
    let sigma_cost: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..0.5)).collect();
    let mu_mem: Vec<f64> = (0..n).map(|_| rng.random_range(-2.0..1.5)).collect();
    let sigma_mem: Vec<f64> = (0..n).map(|_| rng.random_range(0.01..0.5)).collect();
    (mu_cost, sigma_cost, mu_mem, sigma_mem)
}

fn bench_strategy_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_select_400");
    group.sample_size(50);
    let (mu_cost, sigma_cost, mu_mem, sigma_mem) = synthetic_predictions(400, 1);
    for kind in StrategyKind::paper_five() {
        let strategy = kind.build();
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            let mut rng = StdRng::seed_from_u64(2);
            let ctx = SelectionContext {
                mu_cost: &mu_cost,
                sigma_cost: &sigma_cost,
                mu_mem: &mu_mem,
                sigma_mem: &sigma_mem,
                mem_limit_log: Some(al_units::LogMegabytes::new(1.0)),
            };
            b.iter(|| black_box(strategy.select(&ctx, &mut rng)));
        });
    }
    group.finish();
}

fn synth_dataset(n: usize) -> Dataset {
    use al_amr_sim::SimulationConfig;
    let samples: Vec<Sample> = (0..n)
        .map(|i| {
            let config = SimulationConfig {
                p: [4u32, 8, 16, 32][i % 4],
                mx: [8usize, 16, 24, 32][(i / 4) % 4],
                maxlevel: [3u8, 4, 5, 6][(i / 16) % 4],
                r0: 0.2 + 0.3 * ((i % 7) as f64 / 6.0),
                rhoin: 0.02 + 0.48 * ((i % 5) as f64 / 4.0),
            };
            let work = 4f64.powi(config.maxlevel as i32 - 3) * (config.mx as f64 / 8.0).powi(2);
            Sample {
                config,
                wall_seconds: al_units::Seconds::new(10.0 * work),
                cost_node_hours: al_units::NodeHours::new(0.01 * work),
                memory_mb: al_units::Megabytes::new(0.4 * work / config.p as f64 + 0.01),
            }
        })
        .collect();
    Dataset::new(samples)
}

fn bench_al_iteration(c: &mut Criterion) {
    // A short capped trajectory exercises the full per-iteration cycle:
    // batch prediction over the pool, selection, and model retraining.
    let mut group = c.benchmark_group("al_trajectory_10iter");
    group.sample_size(10);
    let dataset = synth_dataset(120);
    let mut rng = StdRng::seed_from_u64(3);
    let partition = Partition::random(dataset.len(), 10, 40, &mut rng);
    let opts = AlOptions {
        max_iterations: Some(10),
        initial_fit: FitOptions {
            n_restarts: 0,
            max_iters: 10,
            ..FitOptions::default()
        },
        mem_limit_log: Some(dataset.memory_limit_log(0.95)),
        ..AlOptions::default()
    };
    for kind in [StrategyKind::MaxSigma, StrategyKind::Rgma { base: 10.0 }] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| black_box(run_trajectory(&dataset, &partition, k, &opts).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategy_select, bench_al_iteration);
criterion_main!(benches);
