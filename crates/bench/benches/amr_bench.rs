//! Criterion micro-benchmarks for the AMR substrate: single-patch sweep
//! throughput (the flop kernel), ghost exchange, regridding and a full
//! solver step on a refined forest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use al_amr_sim::euler::conservative;
use al_amr_sim::patch::{Patch, Side, SweepScratch};
use al_amr_sim::tree::{Bc, Forest};
use al_amr_sim::{AmrSolver, SimulationConfig, SolverProfile};

fn filled_patch(mx: usize) -> Patch {
    let mut p = Patch::new(0, 0, 0, mx);
    p.fill_with(&|x, y| {
        conservative(
            1.0 + 0.5 * (6.0 * x).sin() * (4.0 * y).cos(),
            0.3,
            -0.1,
            1.0,
        )
    });
    for side in Side::ALL {
        p.extrapolate_boundary(side);
    }
    p
}

fn bench_patch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("patch_sweep_x");
    group.sample_size(20);
    for mx in [8usize, 16, 32] {
        group.throughput(Throughput::Elements((mx * mx) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(mx), &mx, |b, &mx| {
            let mut patch = filled_patch(mx);
            let mut scratch = SweepScratch::default();
            let dt = 0.2 * patch.h() / patch.max_wave_speed();
            b.iter(|| {
                patch.sweep_x(black_box(dt), &mut scratch);
            });
        });
    }
    group.finish();
}

fn shock_forest() -> Forest {
    let mut f = Forest::uniform(16, 2, 4);
    f.init_adaptive(
        &|x, _y| conservative(if x < 0.43 { 2.6 } else { 1.0 }, 0.0, 0.0, 1.0),
        0.12,
    );
    f
}

fn bench_ghost_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_ghost_fill");
    group.sample_size(20);
    let mut forest = shock_forest();
    let bc = Bc::all_extrapolate();
    group.bench_function("refined_forest", |b| {
        b.iter(|| black_box(forest.fill_ghosts(&bc)));
    });
    group.finish();
}

fn bench_regrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_regrid");
    group.sample_size(10);
    group.bench_function("steady_state", |b| {
        let mut forest = shock_forest();
        b.iter(|| black_box(forest.regrid(0.12, 0.04)));
    });
    group.finish();
}

fn bench_solver_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_step");
    group.sample_size(10);
    let config = SimulationConfig {
        p: 8,
        mx: 16,
        maxlevel: 4,
        r0: 0.35,
        rhoin: 0.1,
    };
    group.bench_function("ml4_mx16", |b| {
        let mut solver = AmrSolver::new(&config, SolverProfile::smoke());
        b.iter(|| black_box(solver.step()));
    });
    // Same hierarchy under Berger–Oliger subcycling: one "step" here is a
    // full coarse step (the entire recursive hierarchy), so compare
    // per-simulated-second throughput rather than raw step times.
    group.bench_function("ml4_mx16_subcycled", |b| {
        let mut solver = AmrSolver::new(&config, SolverProfile::bench());
        b.iter(|| black_box(solver.step()));
    });
    group.finish();
}

/// Parallel-sweep scaling: the same deep-hierarchy coarse step with the
/// sweep pool at 1 worker (the serial path) vs. all cores. Results are
/// bitwise identical by construction — the determinism suite enforces it —
/// so this group measures pure wall-clock. On a single-core host the two
/// variants should tie (chunking degrades to the inline serial loop);
/// speedup on multi-core runners comes from the sweeps only, since ghost
/// fill, refluxing and regridding stay serial.
fn bench_solver_step_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_step_threads");
    group.sample_size(10);
    let config = SimulationConfig {
        p: 8,
        mx: 16,
        maxlevel: 4,
        r0: 0.35,
        rhoin: 0.1,
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    for (label, n_threads) in [("threads_1", 1usize), ("threads_all", 0)] {
        group.bench_with_input(
            BenchmarkId::new("ml4_mx16_subcycled", label),
            &n_threads,
            |b, &n_threads| {
                let profile = SolverProfile {
                    n_threads,
                    ..SolverProfile::bench()
                };
                let mut solver = AmrSolver::new(&config, profile);
                b.iter(|| black_box(solver.step()));
            },
        );
        if cores == 1 {
            // threads_all == threads_1 on this host; one variant suffices.
            break;
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_patch_sweep,
    bench_ghost_fill,
    bench_regrid,
    bench_solver_step,
    bench_solver_step_threads
);
criterion_main!(benches);
