//! Criterion micro-benchmarks for the GP stack: fit (Cholesky), batch
//! prediction and the analytic LML gradient, as functions of training-set
//! size. These are the inner loops of every AL iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use al_gp::{FitOptions, GpModel, KernelKind};
use al_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn training_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
        // Smooth multi-dimensional response.
        y.push(row.iter().map(|x| (3.0 * x).sin()).sum::<f64>());
        data.extend(row);
    }
    (Matrix::from_vec(n, d, data), y)
}

fn bench_gp_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_fit");
    group.sample_size(10);
    for n in [50usize, 100, 200, 400] {
        let (x, y) = training_data(n, 5, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
            b.iter(|| {
                gp.fit(black_box(&x), black_box(&y)).unwrap();
                black_box(gp.lml().unwrap())
            });
        });
    }
    group.finish();
}

fn bench_gp_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_predict_100pts");
    group.sample_size(10);
    for n in [100usize, 200, 400] {
        let (x, y) = training_data(n, 5, 2);
        let (xq, _) = training_data(100, 5, 3);
        let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
        gp.fit(&x, &y).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(gp.predict(black_box(&xq)).unwrap()));
        });
    }
    group.finish();
}

fn bench_lml_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("lml_gradient");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let (x, y) = training_data(n, 5, 4);
        let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
        gp.fit(&x, &y).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(gp.lml_gradient().unwrap()));
        });
    }
    group.finish();
}

fn bench_fit_optimized(c: &mut Criterion) {
    let mut group = c.benchmark_group("fit_optimized_warmstart");
    group.sample_size(10);
    let (x, y) = training_data(100, 5, 5);
    group.bench_function("n100", |b| {
        let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
        let opts = FitOptions::warm_start_only();
        b.iter(|| {
            gp.fit_optimized(black_box(&x), black_box(&y), &opts)
                .unwrap();
        });
    });
    group.finish();
}

fn bench_augment_vs_refit(c: &mut Criterion) {
    // The AL loop's per-sample model update: O(n²) bordered-Cholesky
    // augment against the O(n³) full refactorization it replaces.
    let mut group = c.benchmark_group("absorb_one_sample_n400");
    group.sample_size(10);
    let (x, y) = training_data(400, 5, 6);
    let (x_new, y_new) = training_data(1, 5, 7);

    group.bench_function("augment", |b| {
        let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
        gp.fit(&x, &y).unwrap();
        b.iter(|| {
            let mut m = gp.clone();
            m.augment(black_box(x_new.row(0)), black_box(y_new[0]))
                .unwrap();
            black_box(m.n_train())
        });
    });

    group.bench_function("full_refit", |b| {
        let x_next = x.vstack(&x_new).unwrap();
        let mut y_next = y.clone();
        y_next.push(y_new[0]);
        let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
        b.iter(|| {
            gp.fit(black_box(&x_next), black_box(&y_next)).unwrap();
            black_box(gp.n_train())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gp_fit,
    bench_gp_predict,
    bench_lml_gradient,
    bench_fit_optimized,
    bench_augment_vs_refit
);
criterion_main!(benches);
