//! Batch-selection ablation (paper Section VI future work): selecting `q`
//! simulations per AL round divides the number of (serial) retraining
//! rounds by `q` at the price of less greedy selection — within a round
//! all `q` picks come from the same stale predictions.
//!
//! Run: `cargo run -p al-bench --release --bin ablation_batch [--fast]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_core::{run_trajectory, AlOptions, StrategyKind};
use al_dataset::Partition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);

    let mut rng = StdRng::seed_from_u64(args.seed);
    let partition = Partition::random(dataset.len(), 50, 200, &mut rng);
    const SELECTIONS: usize = 152;

    println!("BATCH-SELECTION ABLATION (RandGoodness, {SELECTIONS} selections)\n");
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>14} {:>10}",
        "q", "rounds", "total cost", "final RMSE", "RMSE@half", "wall s"
    );
    for q in [1usize, 2, 4, 8] {
        let opts = AlOptions {
            batch_size: q,
            max_iterations: Some(SELECTIONS),
            seed: args.seed,
            ..AlOptions::default()
        };
        let started = std::time::Instant::now();
        let t = run_trajectory(
            &dataset,
            &partition,
            StrategyKind::RandGoodness { base: 10.0 },
            &opts,
        )
        .expect("trajectory");
        let rounds = t.len().div_ceil(q);
        let final_rmse = t.records.last().map(|r| r.rmse_cost).unwrap_or(f64::NAN);
        let half_rmse = t
            .records
            .get(t.len() / 2)
            .map(|r| r.rmse_cost)
            .unwrap_or(f64::NAN);
        println!(
            "{q:>6} {rounds:>8} {:>12.3} {final_rmse:>14.4} {half_rmse:>14.4} {:>10.1}",
            t.total_cost(),
            started.elapsed().as_secs_f64()
        );
    }
    println!(
        "\nexpected: per-sample model quality degrades gracefully with q while\n\
         the retraining-round count (the serial bottleneck on a cluster)\n\
         shrinks by the batch factor."
    );
}
