//! Goodness-base ablation: the paper argues base 10 is "the most intuitive
//! option" (matching the log10 transform) and that "higher bases will lead
//! to more skewed candidate distributions". This experiment quantifies
//! that: for `base ∈ {e, 10, 100}`, how skewed are RandGoodness's
//! selections and how does the cost/error trade-off change?
//!
//! Run: `cargo run -p al-bench --release --bin ablation_goodness_base [--fast]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_bench::report::format_violin;
use al_core::{run_trajectory, AlOptions, StrategyKind};
use al_dataset::Partition;
use al_linalg::stats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);

    let mut rng = StdRng::seed_from_u64(args.seed);
    let partition = Partition::random(dataset.len(), 50, 200, &mut rng);
    let pool_median = stats::median(&dataset.raw_cost(&partition.active));
    println!(
        "GOODNESS-BASE ABLATION (150 iterations, Active-pool median cost = {pool_median:.3})\n"
    );

    for base in [std::f64::consts::E, 10.0, 100.0] {
        let opts = AlOptions {
            max_iterations: Some(150),
            seed: args.seed,
            ..AlOptions::default()
        };
        let t = run_trajectory(
            &dataset,
            &partition,
            StrategyKind::RandGoodness { base },
            &opts,
        )
        .expect("trajectory");
        let costs = t.selected_costs(150);
        let log_costs: Vec<f64> = costs.iter().map(|c| c.log10()).collect();
        println!("base = {base:<8.3}");
        print!("{}", format_violin("  selected log10 cost", &log_costs, 10));
        let final_rmse = t.records.last().map(|r| r.rmse_cost).unwrap_or(f64::NAN);
        println!(
            "  total cost = {:.2} node-hours, final cost RMSE = {:.4}\n",
            t.total_cost(),
            final_rmse
        );
    }
    println!(
        "expected: larger bases concentrate selections on cheaper samples\n\
         (lower median, smaller total cost) at some loss of exploration."
    );
}
