//! Kernel-family ablation (the paper's Section VI future work: "evaluating
//! alternative kernel functions, e.g., anisotropic RBF kernels and Matérn
//! kernels with controllable smoothness").
//!
//! Fits each kernel on the same Initial+AL-selected training sets and
//! compares Test-partition RMSE of the cost and memory models.
//!
//! Run: `cargo run -p al-bench --release --bin ablation_kernels [--fast]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_core::metrics::rmse_nonlog;
use al_core::{run_trajectory, AlOptions, StrategyKind};
use al_dataset::Partition;
use al_gp::{FitOptions, GpModel, KernelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);

    // Build one training set with the paper's default pipeline (RBF-driven
    // RandGoodness), then refit every kernel family on it.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let partition = Partition::random(dataset.len(), 50, 200, &mut rng);
    let opts = AlOptions {
        max_iterations: Some(150),
        seed: args.seed,
        ..AlOptions::default()
    };
    let t = run_trajectory(
        &dataset,
        &partition,
        StrategyKind::RandGoodness { base: 10.0 },
        &opts,
    )
    .expect("trajectory");
    let mut learned = partition.init.clone();
    learned.extend(t.records.iter().map(|r| r.dataset_index));
    println!(
        "KERNEL ABLATION: {} training samples (50 initial + {} AL-selected), 200 test\n",
        learned.len(),
        t.len().min(150)
    );

    let x_train = dataset.features_scaled(&learned);
    let x_test = dataset.features_scaled(&partition.test);
    let kernels = [
        KernelKind::Rbf,
        KernelKind::ArdRbf { dim: 5 },
        KernelKind::Matern32,
        KernelKind::Matern52,
        KernelKind::RationalQuadratic,
    ];
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "kernel", "cost RMSE", "memory RMSE", "cost LML", "mem LML"
    );
    for kind in kernels {
        let fit = FitOptions {
            n_restarts: 3,
            ..FitOptions::default()
        };
        let mut gp_cost = GpModel::new(kind.build(0.3), 1e-3);
        gp_cost
            .fit_optimized(&x_train, &dataset.log_cost(&learned), &fit)
            .expect("cost fit");
        let mut gp_mem = GpModel::new(kind.build(0.3), 1e-3);
        gp_mem
            .fit_optimized(&x_train, &dataset.log_memory(&learned), &fit)
            .expect("memory fit");

        let rmse_c = rmse_nonlog(
            &gp_cost.predict(&x_test).expect("predict").mean,
            &dataset.raw_cost(&partition.test),
        );
        let rmse_m = rmse_nonlog(
            &gp_mem.predict(&x_test).expect("predict").mean,
            &dataset.raw_memory(&partition.test),
        );
        println!(
            "{:<12} {:>14.4} {:>14.4} {:>12.1} {:>12.1}",
            kind.label(),
            rmse_c,
            rmse_m,
            gp_cost.lml().unwrap(),
            gp_mem.lml().unwrap()
        );
    }
}
