//! Memory-limit sensitivity: how RGMA's cumulative regret, early stopping
//! and feasible-pool size respond as `L_mem` sweeps from restrictive to
//! permissive (the paper fixes it at the 95% quantile of log memory).
//!
//! Run: `cargo run -p al-bench --release --bin ablation_lmem [--fast]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_core::{run_trajectory, AlOptions, StopReason, StrategyKind};
use al_dataset::Partition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);

    let mut rng = StdRng::seed_from_u64(args.seed);
    let partition = Partition::random(dataset.len(), 50, 200, &mut rng);

    println!("L_MEM SENSITIVITY (RGMA, 200-iteration cap)\n");
    println!(
        "{:>9} {:>12} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "quantile", "L_mem (MB)", "feasible%", "iterations", "CR", "violations", "stop"
    );
    for quantile in [0.30, 0.50, 0.75, 0.85, 0.95, 1.00] {
        let lmem_log = dataset.memory_limit_log(quantile);
        let lmem_raw = lmem_log.to_megabytes();
        let feasible = partition
            .active
            .iter()
            .filter(|&&i| dataset.sample(i).memory_mb < lmem_raw)
            .count();
        let opts = AlOptions {
            mem_limit_log: Some(lmem_log),
            max_iterations: Some(200),
            seed: args.seed,
            ..AlOptions::default()
        };
        let t = run_trajectory(
            &dataset,
            &partition,
            StrategyKind::Rgma { base: 10.0 },
            &opts,
        )
        .expect("trajectory");
        let stop = match t.stop_reason {
            StopReason::AllCandidatesRefused => "all-refused",
            StopReason::ActiveExhausted => "exhausted",
            StopReason::MaxIterations => "max-iter",
            StopReason::PredictionsStabilized => "stabilized",
            StopReason::HyperparamsStabilized => "hp-stable",
        };
        println!(
            "{:>9.2} {:>12.3} {:>9.1}% {:>12} {:>12.3} {:>12} {:>12}",
            quantile,
            lmem_raw,
            100.0 * feasible as f64 / partition.active.len() as f64,
            t.len(),
            t.total_regret(),
            t.violations(),
            stop
        );
    }
    println!(
        "\nexpected: tighter limits shrink the feasible pool, trigger earlier\n\
         all-refused stops, and (because RGMA filters on predictions) keep\n\
         violations near zero once the memory model has learned the boundary."
    );
}
