//! Local-model ablation (paper Section VI: "train multiple local
//! performance models simultaneously"): global GP vs axis-partitioned
//! local GPs on the real dataset. The natural split axis is `maxlevel`
//! (feature 2): refinement depth changes the response regime most.
//!
//! Run: `cargo run -p al-bench --release --bin ablation_local [--fast]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_core::metrics::rmse_nonlog;
use al_dataset::Partition;
use al_gp::{FitOptions, GpModel, KernelKind, LocalGpModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);

    let mut rng = StdRng::seed_from_u64(args.seed);
    let partition = Partition::random(dataset.len(), 200, 200, &mut rng);
    let x_train = dataset.features_scaled(&partition.init);
    let y_train = dataset.log_cost(&partition.init);
    let x_test = dataset.features_scaled(&partition.test);
    let actual = dataset.raw_cost(&partition.test);
    let fit = FitOptions {
        n_restarts: 2,
        seed: args.seed,
        ..FitOptions::default()
    };

    println!("LOCAL-MODEL ABLATION (cost model, 200 training / 200 test samples)\n");
    println!(
        "{:<28} {:>10} {:>14} {:>10}",
        "model", "regions", "cost RMSE", "fit s"
    );

    let t0 = std::time::Instant::now();
    let mut global = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    global.fit_optimized(&x_train, &y_train, &fit).expect("fit");
    let rmse = rmse_nonlog(&global.predict(&x_test).expect("predict").mean, &actual);
    println!(
        "{:<28} {:>10} {:>14.4} {:>10.1}",
        "global RBF",
        1,
        rmse,
        t0.elapsed().as_secs_f64()
    );

    // Split axes: maxlevel (index 2) and mx (index 1), 2-4 regions.
    for (axis, name) in [(2usize, "maxlevel"), (1usize, "mx")] {
        for regions in [2usize, 4] {
            let t0 = std::time::Instant::now();
            let template = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
            let mut local = LocalGpModel::new(template, axis, regions);
            local.fit_optimized(&x_train, &y_train, &fit).expect("fit");
            let rmse = rmse_nonlog(&local.predict(&x_test).expect("predict").mean, &actual);
            println!(
                "{:<28} {:>10} {:>14.4} {:>10.1}",
                format!("local on {name}"),
                local.n_regions(),
                rmse,
                t0.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "\nexpected: local models fit faster (cubic cost on smaller blocks) and\n\
         can win when the response regime changes across the split axis; with\n\
         abundant smooth data the global model remains competitive."
    );
}
