//! Node-count spacing ablation (paper Section V-D, first suggestion):
//! "train GPR models using this exponent as a feature such that the point
//! with 2³ processors is spaced equally from 2² as it is from 2⁴".
//!
//! Fits the cost and memory models on identical training indices with the
//! linear `p` axis and with `log2(p)`, and compares Test RMSE.
//!
//! Run: `cargo run -p al-bench --release --bin ablation_log2p [--fast]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_core::metrics::rmse_nonlog;
use al_dataset::{Dataset, FeatureMap, Partition};
use al_gp::{FitOptions, GpModel, KernelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rmse_pair(dataset: &Dataset, partition: &Partition, seed: u64) -> (f64, f64) {
    let fit = FitOptions {
        n_restarts: 2,
        seed,
        ..FitOptions::default()
    };
    let x_train = dataset.features_scaled(&partition.init);
    let x_test = dataset.features_scaled(&partition.test);

    let mut gp_cost = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    gp_cost
        .fit_optimized(&x_train, &dataset.log_cost(&partition.init), &fit)
        .expect("cost fit");
    let rc = rmse_nonlog(
        &gp_cost.predict(&x_test).expect("predict").mean,
        &dataset.raw_cost(&partition.test),
    );

    let mut gp_mem = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    gp_mem
        .fit_optimized(&x_train, &dataset.log_memory(&partition.init), &fit)
        .expect("memory fit");
    let rm = rmse_nonlog(
        &gp_mem.predict(&x_test).expect("predict").mean,
        &dataset.raw_memory(&partition.test),
    );
    (rc, rm)
}

fn main() {
    let args = Args::parse();
    let linear = paper_dataset(args.fast, args.threads);
    let log2p = Dataset::with_map(linear.samples().to_vec(), FeatureMap { log2_p: true });

    println!("LOG2(P) FEATURE ABLATION (n_init = 100, 200 test samples)\n");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "split", "axis", "cost RMSE", "mem RMSE", "", ""
    );
    let mut wins_cost = 0usize;
    let mut wins_mem = 0usize;
    const SPLITS: u64 = 5;
    for split in 0..SPLITS {
        let mut rng = StdRng::seed_from_u64(args.seed + split);
        let partition = Partition::random(linear.len(), 100, 200, &mut rng);
        let (lc, lm) = rmse_pair(&linear, &partition, args.seed + split);
        let (gc, gm) = rmse_pair(&log2p, &partition, args.seed + split);
        println!("{split:>6} {:>8} {lc:>14.4} {lm:>14.4}", "linear");
        println!("{split:>6} {:>8} {gc:>14.4} {gm:>14.4}", "log2(p)");
        if gc < lc {
            wins_cost += 1;
        }
        if gm < lm {
            wins_mem += 1;
        }
    }
    println!("\nlog2(p) wins {wins_cost}/{SPLITS} splits on cost, {wins_mem}/{SPLITS} on memory");
    println!(
        "expected: the exponent axis helps most for the memory model, whose\n\
         1/p structure is poorly captured by a linear node-count feature."
    );
}
