//! Response-transform ablation (paper Section IV-A): the paper applies
//! log10 to both responses before GP fitting, reporting that it reduces
//! the prediction-quality gap between extremes and eliminates negative
//! predictions. This experiment fits the cost model with and without the
//! transform on identical training data and compares RMSE and the count
//! of nonsensical negative predictions.
//!
//! Run: `cargo run -p al-bench --release --bin ablation_logtransform [--fast]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_core::metrics::rmse_nonlog;
use al_dataset::Partition;
use al_gp::{FitOptions, GpModel, KernelKind};
use al_linalg::stats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);

    let mut rng = StdRng::seed_from_u64(args.seed);
    let partition = Partition::random(dataset.len(), 100, 200, &mut rng);
    let x_train = dataset.features_scaled(&partition.init);
    let x_test = dataset.features_scaled(&partition.test);
    let actual = dataset.raw_cost(&partition.test);
    let fit = FitOptions {
        n_restarts: 3,
        ..FitOptions::default()
    };

    // With log10 transform (the paper's pipeline).
    let mut gp_log = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    gp_log
        .fit_optimized(&x_train, &dataset.log_cost(&partition.init), &fit)
        .expect("fit log");
    let pred_log = gp_log.predict(&x_test).expect("predict");
    let rmse_log = rmse_nonlog(&pred_log.mean, &actual);

    // Without transform: fit raw node-hours directly.
    let mut gp_raw = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    gp_raw
        .fit_optimized(&x_train, &dataset.raw_cost(&partition.init), &fit)
        .expect("fit raw");
    let pred_raw = gp_raw.predict(&x_test).expect("predict");
    let errors: Vec<f64> = pred_raw
        .mean
        .iter()
        .zip(&actual)
        .map(|(p, a)| p - a)
        .collect();
    let rmse_raw = stats::rms(&errors);
    let negatives = pred_raw.mean.iter().filter(|&&p| p < 0.0).count();

    println!("LOG-TRANSFORM ABLATION (cost model, n_init = 100, 200 test samples)\n");
    println!("with log10 transform:    RMSE = {rmse_log:.4} node-hours, negative predictions: 0 (impossible by construction)");
    println!("without transform (raw): RMSE = {rmse_raw:.4} node-hours, negative predictions: {negatives}/{}", actual.len());

    // Per-decade error breakdown: the transform's benefit concentrates in
    // the cheap extremes.
    println!("\nmean |error| by actual-cost decade:");
    println!(
        "{:>20} {:>12} {:>12} {:>6}",
        "decade (node-hours)", "log model", "raw model", "n"
    );
    let mut decades: Vec<(i32, Vec<f64>, Vec<f64>)> = Vec::new();
    for ((pl, pr), a) in pred_log.mean.iter().zip(&pred_raw.mean).zip(&actual) {
        let d = a.log10().floor() as i32;
        let entry = match decades.iter_mut().find(|(dd, _, _)| *dd == d) {
            Some(e) => e,
            None => {
                decades.push((d, Vec::new(), Vec::new()));
                decades.last_mut().unwrap()
            }
        };
        entry.1.push((10f64.powf(*pl) - a).abs());
        entry.2.push((pr - a).abs());
    }
    decades.sort_by_key(|(d, _, _)| *d);
    for (d, el, er) in &decades {
        println!(
            "{:>10}..{:<9} {:>12.4} {:>12.4} {:>6}",
            format!("1e{d}"),
            format!("1e{}", d + 1),
            stats::mean(el),
            stats::mean(er),
            el.len()
        );
    }
}
