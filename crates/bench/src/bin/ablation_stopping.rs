//! Stopping-condition ablation (paper §V-D: "finding optimal stopping
//! conditions in AL is a non-trivial task... multiple factors, including
//! stabilizing predictions, stabilizing hyperparameters, and the
//! reduction of prediction uncertainty, should influence stopping
//! decisions"). Compares running the pool dry against the two
//! stabilization heuristics.
//!
//! Run: `cargo run -p al-bench --release --bin ablation_stopping [--fast]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_core::{run_trajectory, AlOptions, StopReason, StrategyKind};
use al_dataset::Partition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);
    let mut rng = StdRng::seed_from_u64(args.seed);
    let partition = Partition::random(dataset.len(), 50, 200, &mut rng);

    let variants: Vec<(&str, AlOptions)> = vec![
        (
            "run dry (300 cap)",
            AlOptions {
                max_iterations: Some(300),
                seed: args.seed,
                ..AlOptions::default()
            },
        ),
        (
            "stabilizing predictions",
            AlOptions {
                max_iterations: Some(300),
                stabilization: Some((20, 0.05)),
                seed: args.seed,
                ..AlOptions::default()
            },
        ),
        (
            "stabilizing hyperparams",
            AlOptions {
                max_iterations: Some(300),
                hyperparam_stabilization: Some((25, 0.01)),
                seed: args.seed,
                ..AlOptions::default()
            },
        ),
    ];

    println!("STOPPING-CONDITION ABLATION (RandGoodness, n_init = 50)\n");
    println!(
        "{:<26} {:>10} {:>12} {:>14} {:>24}",
        "stopping rule", "iterations", "total cost", "final RMSE", "stop reason"
    );
    for (name, opts) in variants {
        let t = run_trajectory(
            &dataset,
            &partition,
            StrategyKind::RandGoodness { base: 10.0 },
            &opts,
        )
        .expect("trajectory");
        let reason = match t.stop_reason {
            StopReason::ActiveExhausted => "active exhausted",
            StopReason::AllCandidatesRefused => "all refused",
            StopReason::MaxIterations => "max iterations",
            StopReason::PredictionsStabilized => "predictions stabilized",
            StopReason::HyperparamsStabilized => "hyperparams stabilized",
        };
        println!(
            "{name:<26} {:>10} {:>12.3} {:>14.4} {:>24}",
            t.len(),
            t.total_cost(),
            t.records.last().map(|r| r.rmse_cost).unwrap_or(f64::NAN),
            reason
        );
    }
    println!(
        "\nexpected: the hyperparameter rule stops once warm-started refits stop\n\
         moving — nearly free in RMSE at a fraction of the budget. The\n\
         predictions rule is brittle on noisy RMSE curves: it can fire on a\n\
         transient plateau, echoing the paper's §V-D caution that stopping\n\
         decisions should combine multiple signals."
    );
}
