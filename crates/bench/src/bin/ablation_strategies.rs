//! Extended strategy comparison: the paper's five algorithms plus the two
//! extension strategies (`MaxSigmaMA`, `CostWeightedSigma`), under a
//! memory limit. Attribution question: how much of RGMA's regret win
//! comes from the feasibility filter alone (MaxSigmaMA vs MaxSigma), and
//! where does the deterministic σ−λμ interpolation land?
//!
//! Run: `cargo run -p al-bench --release --bin ablation_strategies
//!       [--fast] [--trajectories N]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_core::{run_batch, AlOptions, BatchSpec, StrategyKind};
use al_linalg::stats;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);
    let lmem_log = dataset.memory_limit_log_percentile(0.90);

    let strategies = vec![
        StrategyKind::RandUniform,
        StrategyKind::MaxSigma,
        StrategyKind::MaxSigmaMa,
        StrategyKind::MinPred,
        StrategyKind::CostWeightedSigma { lambda: 0.5 },
        StrategyKind::RandGoodness { base: 10.0 },
        StrategyKind::Rgma { base: 10.0 },
    ];
    let opts = AlOptions {
        mem_limit_log: Some(lmem_log),
        max_iterations: Some(150),
        ..AlOptions::default()
    };
    let spec = BatchSpec {
        strategies: strategies.clone(),
        n_init: 50,
        n_test: 200,
        n_trajectories: args.trajectories,
        base_seed: args.seed,
        n_threads: args.threads,
    };
    let started = std::time::Instant::now();
    let results = run_batch(&dataset, &spec, &opts).expect("batch");
    println!(
        "EXTENDED STRATEGY COMPARISON ({} trajectories per strategy, {:.0}s)",
        args.trajectories,
        started.elapsed().as_secs_f64()
    );
    println!(
        "L_mem = {:.2} MB ({:.1}% of jobs violate)\n",
        lmem_log.to_megabytes(),
        100.0 * dataset.violating_fraction(lmem_log)
    );
    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>14} {:>14}",
        "strategy", "mean CR", "mean CC", "violations", "final RMSE", "median cost"
    );
    for (kind, ts) in &results {
        let crs: Vec<f64> = ts.iter().map(|t| t.total_regret().value()).collect();
        let ccs: Vec<f64> = ts.iter().map(|t| t.total_cost().value()).collect();
        let viol: Vec<f64> = ts.iter().map(|t| t.violations() as f64).collect();
        let rmse: Vec<f64> = ts
            .iter()
            .filter_map(|t| t.records.last().map(|r| r.rmse_cost))
            .collect();
        let med_costs: Vec<f64> = ts.iter().flat_map(|t| t.selected_costs(150)).collect();
        println!(
            "{:<18} {:>12.3} {:>12.2} {:>10.1} {:>14.4} {:>14.4}",
            kind.label(),
            stats::mean(&crs),
            stats::mean(&ccs),
            stats::mean(&viol),
            stats::mean(&rmse),
            stats::median(&med_costs)
        );
    }
}
