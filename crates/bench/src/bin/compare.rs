//! Cross-validated statistical comparison of the five algorithms: batch
//! statistics plus paired sign tests on shared partitions — the summary
//! judgement the paper's Section V builds toward.
//!
//! Run: `cargo run -p al-bench --release --bin compare
//!       [--fast] [--trajectories N] [--seed N]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_core::analysis::{format_stats_table, paired_wins, sign_test_p, summarize};
use al_core::{run_batch, AlOptions, BatchSpec, StrategyKind};

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);
    let lmem_log = dataset.memory_limit_log_percentile(0.90);

    let strategies = StrategyKind::paper_five().to_vec();
    let opts = AlOptions {
        mem_limit_log: Some(lmem_log),
        max_iterations: Some(150),
        ..AlOptions::default()
    };
    let spec = BatchSpec {
        strategies: strategies.clone(),
        n_init: 50,
        n_test: 200,
        n_trajectories: args.trajectories,
        base_seed: args.seed,
        n_threads: args.threads,
    };
    let started = std::time::Instant::now();
    let results = run_batch(&dataset, &spec, &opts).expect("batch");
    println!(
        "STRATEGY COMPARISON: {} paired trajectories each, 150 iterations, {:.0}s\n",
        args.trajectories,
        started.elapsed().as_secs_f64()
    );

    let stats: Vec<_> = results.iter().map(|(_, ts)| summarize(ts)).collect();
    println!("{}", format_stats_table(&stats));

    // Paired sign tests: RGMA vs every other strategy, on final RMSE and
    // on total regret (smaller is better for both).
    let rgma = &results
        .iter()
        .find(|(k, _)| matches!(k, StrategyKind::Rgma { .. }))
        .expect("RGMA in the lineup")
        .1;
    println!("paired sign tests (RGMA vs ...):");
    println!(
        "{:<16} {:>22} {:>10} {:>22} {:>10}",
        "opponent", "regret wins (R-O)", "p", "RMSE wins (R-O)", "p"
    );
    for (kind, ts) in &results {
        if matches!(kind, StrategyKind::Rgma { .. }) {
            continue;
        }
        let (rw, ow) = paired_wins(rgma, ts, |t| t.total_regret().value());
        let p_regret = sign_test_p(rw, rw + ow);
        let (rw2, ow2) = paired_wins(rgma, ts, |t| {
            t.records.last().map(|r| r.rmse_cost).unwrap_or(f64::NAN)
        });
        let p_rmse = sign_test_p(rw2, rw2 + ow2);
        println!(
            "{:<16} {:>12}-{:<9} {:>10.4} {:>12}-{:<9} {:>10.4}",
            kind.label(),
            rw,
            ow,
            p_regret,
            rw2,
            ow2,
            p_rmse
        );
    }
    println!("\n(wins on shared partitions; smaller metric wins; two-sided exact sign test)");

    // Archive every trajectory for offline re-analysis (the paper's
    // published-notebook workflow).
    let dir = al_bench::data::dataset_path(false)
        .parent()
        .unwrap()
        .join("trajectories");
    std::fs::create_dir_all(&dir).expect("create trajectory directory");
    let mut written = 0usize;
    for (kind, ts) in &results {
        for (i, t) in ts.iter().enumerate() {
            let path = dir.join(format!("{}_{i}.csv", kind.label()));
            al_core::io::write_trajectory_csv(t, &path).expect("write trajectory");
            written += 1;
        }
    }
    println!("archived {written} trajectories under {}", dir.display());
}
