//! Fig. 1: visualization of the 2D shock-bubble interaction at increasing
//! refinement levels — "enabling additional levels of refinement reveals
//! finer features of the simulated phenomenon".
//!
//! Prints an ASCII density rendering and the per-level patch census for
//! `maxlevel ∈ {3, 4, 5, 6}`, and writes PGM images under `data/fig1/`.
//!
//! Run: `cargo run -p al-bench --release --bin fig1 [--fast]`

use al_amr_sim::viz::{ascii_density, census_table, write_pgm};
use al_amr_sim::{AmrSolver, SimulationConfig, SolverProfile};
use al_bench::cli::Args;
use std::fs::File;
use std::io::BufWriter;

fn main() {
    let args = Args::parse();
    let profile = if args.fast {
        SolverProfile::fast()
    } else {
        SolverProfile::paper()
    };

    let out_dir = al_bench::data::dataset_path(false)
        .parent()
        .unwrap()
        .join("fig1");
    std::fs::create_dir_all(&out_dir).expect("create data/fig1");

    println!("FIG 1: shock-bubble interaction at increasing maxlevel\n");
    for maxlevel in [3u8, 4, 5, 6] {
        let config = SimulationConfig {
            p: 8,
            mx: 16,
            maxlevel,
            r0: 0.35,
            rhoin: 0.1,
        };
        let started = std::time::Instant::now();
        let mut solver = AmrSolver::new(&config, profile);
        let work = solver.run().expect("simulation");
        println!(
            "--- maxlevel = {maxlevel} (simulated t = {:.3} in {:.1}s, {} steps) ---",
            work.final_time,
            started.elapsed().as_secs_f64(),
            work.steps
        );
        println!("{}", census_table(solver.forest()));
        println!("{}", ascii_density(solver.forest(), 64));

        let pgm_path = out_dir.join(format!("shockbubble_ml{maxlevel}.pgm"));
        let mut w = BufWriter::new(File::create(&pgm_path).expect("create pgm"));
        write_pgm(solver.forest(), 512, &mut w).expect("write pgm");
        println!("wrote {}\n", pgm_path.display());
    }
}
