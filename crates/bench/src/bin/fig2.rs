//! Fig. 2: cost distributions of the samples selected in the first 150 AL
//! iterations, per selection algorithm (the paper's violin plots).
//!
//! Expected shape: RandUniform and MaxSigma show unbiased, long-tailed
//! distributions; MinPred and RandGoodness concentrate on inexpensive
//! experiments (low medians, tight IQRs), with RandGoodness keeping a
//! longer exploratory tail than MinPred.
//!
//! Run: `cargo run -p al-bench --release --bin fig2 [--fast] [--seed N]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_bench::report::format_violin;
use al_core::{run_trajectory, AlOptions, StrategyKind};
use al_dataset::Partition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);

    // One trajectory per algorithm on a shared partition, first 150
    // iterations — exactly the figure's setup.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let partition = Partition::random(dataset.len(), 50, 200, &mut rng);
    let opts = AlOptions {
        max_iterations: Some(150),
        seed: args.seed,
        ..AlOptions::default()
    };

    println!("FIG 2: cost distribution of the first 150 AL selections\n");
    println!("(violin summaries over actual, not predicted, costs in node-hours;");
    println!(" histogram bins are log10 node-hours)\n");
    for kind in StrategyKind::cost_only_four() {
        let started = std::time::Instant::now();
        let t = run_trajectory(&dataset, &partition, kind, &opts).expect("trajectory");
        let costs = t.selected_costs(150);
        let log_costs: Vec<f64> = costs.iter().map(|c| c.log10()).collect();
        print!("{}", format_violin(kind.label(), &costs, 1));
        print!(
            "{}",
            format_violin(&format!("{} (log10)", kind.label()), &log_costs, 12)
        );
        println!(
            "  [{} iterations in {:.1}s]\n",
            t.len(),
            started.elapsed().as_secs_f64()
        );
    }
}
