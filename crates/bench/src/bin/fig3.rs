//! Fig. 3: cumulative regret vs AL iteration under a memory limit
//! `L_mem` = 95% of the largest log10 memory response.
//!
//! Expected shape: memory-oblivious algorithms keep paying regret whenever
//! they pick a violating job, so their CR curves keep climbing; RGMA's
//! curve flattens after the early iterations (it learns to avoid the
//! violating region), and larger Initial partitions (`n_init`) lower
//! RGMA's total regret because the memory model starts better informed.
//!
//! Run: `cargo run -p al-bench --release --bin fig3
//!       [--fast] [--trajectories N] [--seed N] [--threads N]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_bench::report::format_curves;
use al_core::trajectory::mean_curve;
use al_core::{run_batch, AlOptions, BatchSpec, StrategyKind};

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);
    // The paper's "95% of the largest log memory" leaves only ~1% of our
    // (shorter-tailed) dataset violating; the 90th-percentile limit pins a
    // 10% violating fraction so the regret dynamics are clearly visible.
    // Pass --paper-lmem for the literal paper definition.
    let lmem_log = if args.has_flag("--paper-lmem") {
        dataset.memory_limit_log(0.95)
    } else {
        dataset.memory_limit_log_percentile(0.90)
    };
    println!(
        "FIG 3: cumulative regret vs iteration (L_mem = {:.3} log10 MB = {:.2} MB, {:.1}% of jobs violate)\n",
        lmem_log,
        lmem_log.to_megabytes(),
        100.0 * dataset.violating_fraction(lmem_log)
    );

    let strategies = StrategyKind::paper_five().to_vec();
    for n_init in [1usize, 50, 100] {
        let opts = AlOptions {
            mem_limit_log: Some(lmem_log),
            max_iterations: Some(200),
            ..AlOptions::default()
        };
        let spec = BatchSpec {
            strategies: strategies.clone(),
            n_init,
            n_test: 200,
            n_trajectories: args.trajectories,
            base_seed: args.seed,
            n_threads: args.threads,
        };
        let started = std::time::Instant::now();
        let results = run_batch(&dataset, &spec, &opts).expect("batch");
        println!(
            "--- n_init = {n_init} ({} trajectories per strategy, {:.0}s) ---",
            args.trajectories,
            started.elapsed().as_secs_f64()
        );
        let labels: Vec<&str> = results.iter().map(|(k, _)| k.label()).collect();
        let curves: Vec<Vec<f64>> = results
            .iter()
            .map(|(_, ts)| mean_curve(ts, |r| r.cumulative_regret.value()))
            .collect();
        println!(
            "{}",
            format_curves(&labels, &curves, 20).expect("labels match curves")
        );
        for (kind, ts) in &results {
            let mean_regret: f64 =
                ts.iter().map(|t| t.total_regret().value()).sum::<f64>() / ts.len().max(1) as f64;
            let mean_violations: f64 =
                ts.iter().map(|t| t.violations() as f64).sum::<f64>() / ts.len().max(1) as f64;
            let stopped_early = ts
                .iter()
                .filter(|t| t.stop_reason == al_core::StopReason::AllCandidatesRefused)
                .count();
            println!(
                "{:<14} mean CR = {:8.3} node-hours, mean violations = {:5.1}, early stops = {}",
                kind.label(),
                mean_regret,
                mean_violations,
                stopped_early
            );
        }
        println!();
    }
}
