//! Fig. 4: AL "progress" — non-log RMSE of the cost and memory models on
//! the Test partition, vs iteration and vs cumulative cost, for all five
//! algorithms and `n_init ∈ {1, 50, 100}`.
//!
//! Expected shape: all algorithms reduce RMSE as samples accrue; per unit
//! of *cumulative cost*, the cost-efficient algorithms (RandGoodness,
//! RGMA, MinPred) dominate MaxSigma/RandUniform early; RGMA trajectories
//! can stop early when all remaining candidates are predicted to violate
//! the memory limit.
//!
//! `--weighted` additionally reports the cost-weighted RMSE of Eq. 12.
//!
//! Run: `cargo run -p al-bench --release --bin fig4
//!       [--fast] [--trajectories N] [--seed N] [--threads N] [--weighted]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_bench::report::format_curves;
use al_core::trajectory::mean_curve;
use al_core::{run_batch, AlOptions, BatchSpec, StrategyKind};

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);
    // Same limit convention as fig3 (see the comment there).
    let lmem_log = if args.has_flag("--paper-lmem") {
        dataset.memory_limit_log(0.95)
    } else {
        dataset.memory_limit_log_percentile(0.90)
    };

    println!("FIG 4: RMSE trajectories (Test partition, non-log units)\n");
    for n_init in [1usize, 50, 100] {
        let opts = AlOptions {
            mem_limit_log: Some(lmem_log),
            max_iterations: Some(200),
            ..AlOptions::default()
        };
        let spec = BatchSpec {
            strategies: StrategyKind::paper_five().to_vec(),
            n_init,
            n_test: 200,
            n_trajectories: args.trajectories,
            base_seed: args.seed,
            n_threads: args.threads,
        };
        let started = std::time::Instant::now();
        let results = run_batch(&dataset, &spec, &opts).expect("batch");
        println!(
            "--- n_init = {n_init} ({} trajectories per strategy, {:.0}s) ---\n",
            args.trajectories,
            started.elapsed().as_secs_f64()
        );
        let labels: Vec<&str> = results.iter().map(|(k, _)| k.label()).collect();

        println!("(a) cost-model RMSE vs iteration");
        let rmse_curves: Vec<Vec<f64>> = results
            .iter()
            .map(|(_, ts)| mean_curve(ts, |r| r.rmse_cost))
            .collect();
        println!(
            "{}",
            format_curves(&labels, &rmse_curves, 20).expect("labels match curves")
        );

        println!("(b) memory-model RMSE vs iteration");
        let mem_curves: Vec<Vec<f64>> = results
            .iter()
            .map(|(_, ts)| mean_curve(ts, |r| r.rmse_mem))
            .collect();
        println!(
            "{}",
            format_curves(&labels, &mem_curves, 20).expect("labels match curves")
        );

        println!("(c) cost-model RMSE vs cumulative cost (node-hours)");
        for (kind, ts) in &results {
            let cc = mean_curve(ts, |r| r.cumulative_cost.value());
            let rm = mean_curve(ts, |r| r.rmse_cost);
            // Sample a few milestones along the cumulative-cost axis.
            print!("{:<14}", kind.label());
            for frac in [0.1, 0.25, 0.5, 1.0] {
                let i = ((cc.len() as f64 * frac) as usize).saturating_sub(1);
                if let (Some(c), Some(r)) = (cc.get(i), rm.get(i)) {
                    print!("  CC={c:8.2} -> RMSE={r:8.4}");
                }
            }
            println!();
        }
        println!();

        // Paper-style summary: initial vs final RMSE per strategy.
        println!("(d) initial vs final RMSE (cost model)");
        for (kind, ts) in &results {
            let init: f64 =
                ts.iter().map(|t| t.initial_rmse_cost).sum::<f64>() / ts.len().max(1) as f64;
            let fin: f64 = ts
                .iter()
                .filter_map(|t| t.records.last().map(|r| r.rmse_cost))
                .sum::<f64>()
                / ts.len().max(1) as f64;
            let cost: f64 =
                ts.iter().map(|t| t.total_cost().value()).sum::<f64>() / ts.len().max(1) as f64;
            println!(
                "{:<14} initial {init:8.4} -> final {fin:8.4}  (mean total cost {cost:8.2} node-hours)",
                kind.label()
            );
        }
        println!();
    }

    if args.has_flag("--weighted") {
        weighted_rmse_report(&dataset, &args, lmem_log);
    }
}

/// Eq. 12 ablation: compare uniform and cost-weighted RMSE of a model
/// trained by RandGoodness — expensive-region errors dominate the weighted
/// metric, showing why scale-dependent weighting matters for cost-aware AL.
fn weighted_rmse_report(
    dataset: &al_dataset::Dataset,
    args: &Args,
    lmem_log: al_units::LogMegabytes,
) {
    use al_core::metrics::{cost_weights, rmse_nonlog, weighted_rmse_nonlog};
    use al_core::run_trajectory;
    use al_dataset::Partition;
    use al_gp::{FitOptions, GpModel, KernelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    println!("--- weighted RMSE (Eq. 12) ---");
    let mut rng = StdRng::seed_from_u64(args.seed);
    let partition = Partition::random(dataset.len(), 50, 200, &mut rng);
    let opts = AlOptions {
        mem_limit_log: Some(lmem_log),
        max_iterations: Some(150),
        seed: args.seed,
        ..AlOptions::default()
    };
    let t = run_trajectory(
        dataset,
        &partition,
        StrategyKind::RandGoodness { base: 10.0 },
        &opts,
    )
    .expect("trajectory");

    // Refit a model on everything the trajectory learned and compare
    // uniform vs cost-weighted test error.
    let mut learned = partition.init.clone();
    learned.extend(t.records.iter().map(|r| r.dataset_index));
    let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
    gp.fit_optimized(
        &dataset.features_scaled(&learned),
        &dataset.log_cost(&learned),
        &FitOptions::default(),
    )
    .expect("fit");
    let pred = gp
        .predict(&dataset.features_scaled(&partition.test))
        .expect("predict");
    let actual = dataset.raw_cost(&partition.test);
    let uniform = rmse_nonlog(&pred.mean, &actual);
    let weighted = weighted_rmse_nonlog(&pred.mean, &actual, &cost_weights(&actual));
    println!("uniform RMSE  = {uniform:.4} node-hours");
    println!("cost-weighted = {weighted:.4} node-hours (expensive samples dominate)");
}
