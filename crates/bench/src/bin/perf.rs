//! `perf` — the BENCH_*.json trajectory driver.
//!
//! ```text
//! perf list    [--tier quick|full] [--group G]...
//! perf run     [--tier quick|full] [--group G]... [--out DIR]
//! perf validate <file>...
//! perf compare <old> <new> [--threshold F] [--format text|github] [--check-only]
//! ```
//!
//! `run` writes one schema-versioned `BENCH_<group>.json` per group
//! (workspace root by default). `compare` takes two files or directories,
//! flags scenarios whose median slowed by more than the threshold with
//! disjoint IQRs, and exits 1 on any regression unless `--check-only`
//! (advisory mode for cross-machine CI). Usage errors exit 2.

use al_bench::perf::{
    compare, group_names, load_dir, load_report, registry, run, workspace_root, BenchReport, Tier,
    DEFAULT_THRESHOLD,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  perf list    [--tier quick|full] [--group G]...\n  perf run     [--tier quick|full] [--group G]... [--out DIR]\n  perf validate <file>...\n  perf compare <old> <new> [--threshold F] [--format text|github] [--check-only]\n\ngroups: {}",
        group_names().join(", ")
    );
    ExitCode::from(2)
}

struct Common {
    tier: Tier,
    groups: Vec<String>,
    out: Option<PathBuf>,
    threshold: f64,
    github: bool,
    check_only: bool,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Option<Common> {
    let mut c = Common {
        tier: Tier::Quick,
        groups: Vec::new(),
        out: None,
        threshold: DEFAULT_THRESHOLD,
        github: false,
        check_only: false,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tier" => c.tier = Tier::from_label(it.next()?)?,
            "--group" => c.groups.push(it.next()?.clone()),
            "--out" => c.out = Some(PathBuf::from(it.next()?)),
            "--threshold" => c.threshold = it.next()?.parse().ok().filter(|t: &f64| *t > 0.0)?,
            "--format" => match it.next()?.as_str() {
                "github" => c.github = true,
                "text" => c.github = false,
                _ => return None,
            },
            "--check-only" => c.check_only = true,
            _ if a.starts_with("--") => return None,
            _ => c.positional.push(a.clone()),
        }
    }
    Some(c)
}

/// A compare operand: one report file, or a directory of `BENCH_*.json`.
fn load_operand(path: &Path) -> Result<Vec<BenchReport>, al_bench::error::BenchError> {
    if path.is_dir() {
        load_dir(path)
    } else {
        load_report(path).map(|r| vec![r])
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let Some(c) = parse_args(rest) else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            if !c.positional.is_empty() {
                return usage();
            }
            match registry(c.tier, &c.groups) {
                Ok(scenarios) => {
                    for s in &scenarios {
                        println!("{}/{}", s.group, s.name);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("perf list: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "run" => {
            if !c.positional.is_empty() {
                return usage();
            }
            let out_dir = c.out.unwrap_or_else(workspace_root);
            if let Err(e) = std::fs::create_dir_all(&out_dir) {
                eprintln!("perf run: {}: {e}", out_dir.display());
                return ExitCode::from(2);
            }
            let reports = match run(c.tier, &c.groups, |line| println!("{line}")) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("perf run: {e}");
                    return ExitCode::from(2);
                }
            };
            for report in &reports {
                match al_bench::perf::write_report(report, &out_dir) {
                    Ok(path) => println!("wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("perf run: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "validate" => {
            if c.positional.is_empty() {
                return usage();
            }
            let mut ok = true;
            for p in &c.positional {
                match load_report(Path::new(p)) {
                    Ok(r) => println!(
                        "{p}: valid ({} scenarios, group {})",
                        r.scenarios.len(),
                        r.group
                    ),
                    Err(e) => {
                        eprintln!("{p}: INVALID: {e}");
                        ok = false;
                    }
                }
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "compare" => {
            let [old_path, new_path] = c.positional.as_slice() else {
                return usage();
            };
            let old = match load_operand(Path::new(old_path)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("perf compare: {old_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let new = match load_operand(Path::new(new_path)) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("perf compare: {new_path}: {e}");
                    return ExitCode::from(2);
                }
            };
            let cmp = match compare(&old, &new, c.threshold) {
                Ok(cmp) => cmp,
                Err(e) => {
                    eprintln!("perf compare: {e}");
                    return ExitCode::from(2);
                }
            };
            if c.github {
                print!("{}", cmp.render_github(c.check_only));
            }
            print!("{}", cmp.render_text());
            if cmp.regression_count() > 0 && !c.check_only {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
