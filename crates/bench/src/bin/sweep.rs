//! Workload generator CLI: run a custom parameter sweep with the real AMR
//! solver and write the measured dataset as CSV.
//!
//! Run: `cargo run -p al-bench --release --bin sweep -- \
//!        --out data/custom.csv [--fast|--smoke] [--unique N] [--repeats N] [--small-grid]`

use al_amr_sim::{MachineModel, SolverProfile};
use al_bench::cli::Args;
use al_dataset::{generate_parallel, io, Dataset, GenerateOptions, SweepGrid, TableSummary};
use std::path::PathBuf;

fn main() {
    let args = Args::parse();
    let mut out: Option<PathBuf> = None;
    let mut unique = 60usize;
    let mut repeats = 8usize;
    let mut small_grid = false;
    let mut smoke = false;
    let mut it = args.extra.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = it.next().map(PathBuf::from),
            "--unique" => unique = it.next().and_then(|v| v.parse().ok()).unwrap_or(unique),
            "--repeats" => repeats = it.next().and_then(|v| v.parse().ok()).unwrap_or(repeats),
            "--small-grid" => small_grid = true,
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: sweep --out FILE [--unique N] [--repeats N] [--small-grid] [--smoke] [--fast] [--seed N] [--threads N]"
                );
                std::process::exit(2);
            }
        }
    }
    let Some(out) = out else {
        eprintln!("--out FILE is required");
        std::process::exit(2);
    };

    let grid = if small_grid {
        SweepGrid::small()
    } else {
        SweepGrid::default()
    };
    let profile = if smoke {
        SolverProfile::smoke()
    } else if args.fast {
        SolverProfile::fast()
    } else {
        SolverProfile::paper()
    };
    let unique = unique.min(grid.n_combinations());

    eprintln!(
        "sweeping {} unique + {} repeat jobs from a {}-combination grid...",
        unique,
        repeats,
        grid.n_combinations()
    );
    let jobs = grid.draw_jobs(unique, repeats, args.seed);
    let started = std::time::Instant::now();
    let samples = generate_parallel(
        &jobs,
        &GenerateOptions {
            profile,
            machine: MachineModel::default(),
            n_threads: args.threads,
        },
    )
    .expect("AMR simulation failed");
    eprintln!("measured in {:.1}s", started.elapsed().as_secs_f64());

    if let Some(parent) = out.parent() {
        std::fs::create_dir_all(parent).expect("create output directory");
    }
    io::write_csv(&samples, &out).expect("write CSV");
    println!("wrote {} samples to {}\n", samples.len(), out.display());
    println!("{}", TableSummary::of(&Dataset::new(samples)).format());
}
