//! Table I: descriptive statistics of the 600-sample AMR shock-bubble
//! dataset (min / median / mean / max of the 5 features and 3 responses).
//!
//! Run: `cargo run -p al-bench --release --bin table1 [--fast]`

use al_bench::cli::Args;
use al_bench::data::paper_dataset;
use al_dataset::TableSummary;

fn main() {
    let args = Args::parse();
    let dataset = paper_dataset(args.fast, args.threads);

    println!("TABLE I: Parameters of the AMR shock-bubble simulation dataset");
    println!("({} samples)\n", dataset.len());
    let summary = TableSummary::of(&dataset);
    println!("{}", summary.format());
    println!(
        "cost dynamic range (max/min): {:.3e}   (paper reports 5.4e3)",
        summary.cost_dynamic_range()
    );
    println!(
        "memory limit L_mem (95% of max log10 memory): {:.3} log10 MB = {:.2} MB",
        dataset.memory_limit_log(0.95),
        dataset.memory_limit_log(0.95).to_megabytes()
    );
}
