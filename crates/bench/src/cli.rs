//! Minimal argument parsing shared by the experiment binaries.

/// Common experiment options parsed from `std::env::args`.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Use the reduced-accuracy fast dataset (separate cache file).
    pub fast: bool,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Trajectories per strategy for batch experiments.
    pub trajectories: usize,
    /// Base random seed.
    pub seed: u64,
    /// Extra flags not consumed by the common parser.
    pub extra: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            fast: false,
            threads: 0,
            trajectories: 5,
            seed: 2018,
            extra: Vec::new(),
        }
    }
}

impl Args {
    /// Parse from an iterator of argument strings (excluding `argv[0]`).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--fast" => out.fast = true,
                "--threads" => {
                    out.threads = Self::value(&mut it, "--threads")?;
                }
                "--trajectories" => {
                    out.trajectories = Self::value(&mut it, "--trajectories")?;
                }
                "--seed" => {
                    out.seed = Self::value(&mut it, "--seed")?;
                }
                other => out.extra.push(other.to_string()),
            }
        }
        Ok(out)
    }

    /// Parse the process arguments, exiting with a message on error.
    pub fn parse() -> Args {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--fast] [--threads N] [--trajectories N] [--seed N] [experiment flags]"
                );
                std::process::exit(2);
            }
        }
    }

    /// True when the given extra flag was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.extra.iter().any(|a| a == flag)
    }

    fn value<T: std::str::FromStr>(
        it: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<T, String> {
        let v = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        v.parse()
            .map_err(|_| format!("{flag}: invalid value {v:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_flags() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, Args::default());
    }

    #[test]
    fn parses_all_common_flags() {
        let a = parse(&[
            "--fast",
            "--threads",
            "8",
            "--trajectories",
            "12",
            "--seed",
            "7",
        ])
        .unwrap();
        assert!(a.fast);
        assert_eq!(a.threads, 8);
        assert_eq!(a.trajectories, 12);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn unknown_flags_go_to_extra() {
        let a = parse(&["--weighted", "--fast"]).unwrap();
        assert!(a.has_flag("--weighted"));
        assert!(!a.has_flag("--nope"));
        assert!(a.fast);
    }

    #[test]
    fn missing_or_bad_values_error() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
    }
}
