//! The shared 600-sample dataset, generated once and cached under
//! `data/` at the workspace root.

use al_amr_sim::{MachineModel, SolverProfile};
use al_dataset::io::load_or_generate;
use al_dataset::{generate_parallel, Dataset, GenerateOptions, SweepGrid};
use std::path::PathBuf;

/// Seed used for the dataset job draw (fixed so every experiment binary
/// sees the same 600 jobs).
pub const DATASET_SEED: u64 = 2018;

/// Number of unique configurations in the dataset (paper: 525).
pub const N_UNIQUE: usize = 525;

/// Number of repeated measurements (paper: 75).
pub const N_REPEATS: usize = 75;

/// Cache path for the dataset (`--fast` uses a separate file so the two
/// profiles never mix).
pub fn dataset_path(fast: bool) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut path = root
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate lives two levels under the workspace root")
        .to_path_buf();
    path.push("data");
    path.push(if fast {
        "dataset_fast.csv"
    } else {
        "dataset.csv"
    });
    path
}

/// Load the cached 600-sample dataset, generating (and caching) it on
/// first use. Generation runs the real AMR solver for every job, spread
/// across `threads` workers.
pub fn paper_dataset(fast: bool, threads: usize) -> Dataset {
    let path = dataset_path(fast);
    load_or_generate(&path, || {
        eprintln!(
            "generating {} dataset ({} jobs) -> {} ...",
            if fast { "fast" } else { "paper" },
            N_UNIQUE + N_REPEATS,
            path.display()
        );
        let jobs = SweepGrid::default().draw_jobs(N_UNIQUE, N_REPEATS, DATASET_SEED);
        let opts = GenerateOptions {
            profile: if fast {
                SolverProfile::fast()
            } else {
                SolverProfile::paper()
            },
            machine: MachineModel::default(),
            n_threads: threads,
        };
        let started = std::time::Instant::now();
        let samples = generate_parallel(&jobs, &opts).expect("AMR simulation failed");
        eprintln!("generated in {:.1}s", started.elapsed().as_secs_f64());
        samples
    })
    .expect("dataset generation or cache load failed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_differ_per_profile() {
        let a = dataset_path(false);
        let b = dataset_path(true);
        assert_ne!(a, b);
        assert!(a.ends_with("data/dataset.csv"));
        assert!(b.ends_with("data/dataset_fast.csv"));
    }
}
