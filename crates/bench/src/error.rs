//! Typed error for the bench library surface.
//!
//! The experiment *binaries* abort on failure by design, but the shared
//! library modules (`report`, `json`, `perf`) follow the same typed-error
//! discipline alint L1/L3 enforce on the core crates: no panics in library
//! code, one crate error type on every public `Result`.

use std::fmt;

/// Errors from the bench support library (reporting helpers, the perf
/// harness and its JSON schema layer).
#[derive(Debug)]
pub enum BenchError {
    /// `format_curves` was given a label list and a curve list of
    /// different lengths.
    LabelCountMismatch {
        /// Number of labels provided.
        labels: usize,
        /// Number of curves provided.
        curves: usize,
    },
    /// Reading or writing a `BENCH_*.json` file failed.
    Io {
        /// Path involved (display form).
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// A JSON document could not be parsed.
    JsonParse {
        /// Byte offset of the first unparseable input.
        offset: usize,
        /// What the parser expected or found.
        detail: String,
    },
    /// A parsed JSON document does not match the BENCH report schema.
    Schema {
        /// Field (dotted path) that failed validation.
        field: String,
        /// Why it failed.
        detail: String,
    },
    /// `perf run --group` named a group the registry does not contain.
    UnknownGroup(String),
    /// `perf compare` found no scenario present in both reports.
    NoCommonScenarios,
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::LabelCountMismatch { labels, curves } => write!(
                f,
                "format_curves: {labels} labels for {curves} curves (must match)"
            ),
            BenchError::Io { path, source } => write!(f, "{path}: {source}"),
            BenchError::JsonParse { offset, detail } => {
                write!(f, "JSON parse error at byte {offset}: {detail}")
            }
            BenchError::Schema { field, detail } => {
                write!(f, "BENCH schema violation at `{field}`: {detail}")
            }
            BenchError::UnknownGroup(g) => write!(f, "unknown scenario group {g:?}"),
            BenchError::NoCommonScenarios => {
                write!(f, "compare: the two reports share no scenario names")
            }
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BenchError::LabelCountMismatch {
            labels: 2,
            curves: 3,
        };
        assert!(e.to_string().contains("2 labels for 3 curves"));
        let e = BenchError::Schema {
            field: "scenarios[0].stats".into(),
            detail: "missing".into(),
        };
        assert!(e.to_string().contains("scenarios[0].stats"));
    }

    #[test]
    fn io_errors_chain_a_source() {
        use std::error::Error;
        let e = BenchError::Io {
            path: "BENCH_x.json".into(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("BENCH_x.json"));
    }
}
