//! Minimal JSON value type, writer and parser for the `BENCH_*.json`
//! perf trajectory.
//!
//! The build environment is fully offline (no serde), so the harness
//! carries its own ~200-line JSON layer: enough of RFC 8259 to round-trip
//! the BENCH report schema exactly. Objects use `BTreeMap` so emitted key
//! order is deterministic (the alint L6 contract covers this crate's bins).

use crate::error::BenchError;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps serialization order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member by key (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value (`None` for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Bool value (`None` for non-bools).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                // Rust's shortest-round-trip float formatting is valid JSON
                // for finite values; non-finite has no JSON spelling.
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (rejects trailing non-whitespace input).
pub fn parse(input: &str) -> Result<Json, BenchError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(offset: usize, detail: &str) -> BenchError {
    BenchError::JsonParse {
        offset,
        detail: detail.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), BenchError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, &format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, BenchError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, BenchError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogates never appear in the BENCH schema; map
                        // them to the replacement character rather than
                        // rejecting the document.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = s.chars().next().ok_or_else(|| err(*pos, "empty char"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, BenchError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return Err(err(start, "expected a JSON value"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Json)]) -> Json {
        Json::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn renders_and_reparses_nested_document() {
        let doc = obj(&[
            ("name", Json::Str("cholesky_factor_n200".into())),
            (
                "stats",
                obj(&[
                    ("median_s", Json::Num(0.0123456789012345)),
                    ("repeats", Json::Num(5.0)),
                ]),
            ),
            (
                "tags",
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-1.5e-9)]),
            ),
        ]);
        let text = doc.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for v in [0.0, 1.0, 1e-12, 123456.789, 2.2250738585072014e-308] {
            let text = Json::Num(v).render();
            let back = parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode é";
        let text = Json::Str(s.into()).render();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn parses_standard_escapes_and_unicode() {
        let v = parse(r#""a\u0041\n\/""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\n/");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "[1] x", "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn empty_containers_render_compactly() {
        assert_eq!(Json::Arr(vec![]).render(), "[]\n");
        assert_eq!(Json::Obj(BTreeMap::new()).render(), "{}\n");
    }

    #[test]
    fn accessors_discriminate_types() {
        let v = parse(r#"{"a": 1, "b": "x", "c": [true]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            v.get("c")
                .and_then(Json::as_arr)
                .and_then(|a| a[0].as_bool()),
            Some(true)
        );
        assert!(v.get("missing").is_none());
        assert!(v.as_f64().is_none());
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }
}
