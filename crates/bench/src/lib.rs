// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
#![warn(missing_docs)]

//! Shared support for the experiment harness: dataset caching, a tiny CLI
//! parser, text reporting helpers, and the deterministic perf harness
//! behind the `BENCH_*.json` trajectory.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; see
//! `DESIGN.md` §3 for the experiment index, §11 for the perf harness, and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

pub mod cli;
pub mod data;
pub mod error;
pub mod json;
pub mod perf;
pub mod report;
