// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
#![warn(missing_docs)]

//! Shared support for the experiment harness: dataset caching, a tiny CLI
//! parser and text reporting helpers.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; see
//! `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured results.

pub mod cli;
pub mod data;
pub mod report;
