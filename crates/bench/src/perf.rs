//! Deterministic perf harness: the `BENCH_*.json` trajectory.
//!
//! A registry of named, fixed-seed scenarios covers every hot path of the
//! workspace — Cholesky factorization and the O(n²) bordered extension vs.
//! the O(n³) refit it replaces, GP fit/predict/augment, local-GP selection
//! over a 10⁵-candidate grid, the AMR solver step at 1 vs. all threads, and
//! one end-to-end RGMA sweep iteration. Each scenario runs warmup calls,
//! then N timed repeats (auto-batched so a sample spans at least a few
//! milliseconds), and records robust statistics (min / quartiles / median)
//! plus a machine fingerprint and a schema version into one
//! `BENCH_<group>.json` file per group at the workspace root.
//!
//! `compare` flags a regression only when the median moved by more than the
//! noise threshold AND the interquartile ranges of the two runs do not
//! overlap — a single noisy sample cannot fail CI, and a real slowdown
//! cannot hide inside the IQR.
//!
//! Wall-clock reads live entirely inside `crates/bench`, the alint L6
//! `wall_clock_approved` carve-out: timings annotate the BENCH trajectory
//! only and never feed priced results (DESIGN §9, machine.rs contract).

use crate::error::BenchError;
use crate::json::{parse, Json};
use al_linalg::{stats::Summary, Matrix};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Version stamp written into (and required from) every BENCH file.
pub const SCHEMA_VERSION: u64 = 1;

/// Default regression threshold for `compare`: relative median change
/// beyond which (together with disjoint IQRs) a scenario is flagged.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// Scenario size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Reduced problem sizes: CI smoke runs and debug builds.
    Quick,
    /// The full trajectory point (paper-scale problem sizes).
    Full,
}

impl Tier {
    /// Parse a CLI spelling.
    pub fn from_label(s: &str) -> Option<Tier> {
        match s {
            "quick" => Some(Tier::Quick),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }

    /// Canonical label (as written into the JSON).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Full => "full",
        }
    }

    fn warmup(self) -> usize {
        match self {
            Tier::Quick => 1,
            Tier::Full => 2,
        }
    }

    fn repeats(self) -> usize {
        match self {
            Tier::Quick => 5,
            Tier::Full => 10,
        }
    }

    /// Minimum wall-clock span of one recorded sample; faster bodies are
    /// batched (`inner` calls per sample) until they reach it.
    fn min_sample_s(self) -> f64 {
        match self {
            Tier::Quick => 2e-3,
            Tier::Full => 10e-3,
        }
    }
}

/// Host identity recorded with every report so cross-machine comparisons
/// are visible as such.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// `available_parallelism` (1 when unknown).
    pub cores: usize,
    /// Whether the binary was built with debug assertions (dev profile) —
    /// dev/release timings are never comparable.
    pub debug_assertions: bool,
}

impl Fingerprint {
    /// Fingerprint of the running host/build.
    pub fn current() -> Fingerprint {
        Fingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            debug_assertions: cfg!(debug_assertions),
        }
    }
}

/// Robust per-scenario timing statistics, in seconds per call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustStats {
    /// Fastest sample.
    pub min_s: f64,
    /// First quartile.
    pub q1_s: f64,
    /// Median.
    pub median_s: f64,
    /// Third quartile.
    pub q3_s: f64,
    /// Slowest sample.
    pub max_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
}

impl RobustStats {
    /// Summarize a non-empty sample vector.
    pub fn of(samples: &[f64]) -> RobustStats {
        let s = Summary::of(samples);
        RobustStats {
            min_s: s.min,
            q1_s: s.q1,
            median_s: s.median,
            q3_s: s.q3,
            max_s: s.max,
            mean_s: s.mean,
        }
    }

    /// Interquartile range.
    pub fn iqr_s(&self) -> f64 {
        self.q3_s - self.q1_s
    }
}

/// One measured scenario inside a report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Registry name, e.g. `cholesky_factor_n400`.
    pub name: String,
    /// Warmup calls executed before sampling.
    pub warmup: usize,
    /// Recorded samples.
    pub repeats: usize,
    /// Calls batched into each sample (1 for slow bodies).
    pub inner: usize,
    /// Timing statistics.
    pub stats: RobustStats,
}

/// One `BENCH_<group>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this build).
    pub schema_version: u64,
    /// Scenario group (`linalg`, `gp`, `amr`, `al`).
    pub group: String,
    /// Tier label the run used.
    pub tier: String,
    /// Producing host/build.
    pub fingerprint: Fingerprint,
    /// Measured scenarios, in registry order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchReport {
    /// File name this report is stored under (`BENCH_<group>.json`).
    pub fn file_name(group: &str) -> String {
        format!("BENCH_{group}.json")
    }

    /// Serialize to the on-disk JSON schema.
    pub fn to_json(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert(
            "schema_version".to_string(),
            Json::Num(self.schema_version as f64),
        );
        root.insert("group".to_string(), Json::Str(self.group.clone()));
        root.insert("tier".to_string(), Json::Str(self.tier.clone()));
        let mut fp = BTreeMap::new();
        fp.insert("os".to_string(), Json::Str(self.fingerprint.os.clone()));
        fp.insert("arch".to_string(), Json::Str(self.fingerprint.arch.clone()));
        fp.insert(
            "cores".to_string(),
            Json::Num(self.fingerprint.cores as f64),
        );
        fp.insert(
            "debug_assertions".to_string(),
            Json::Bool(self.fingerprint.debug_assertions),
        );
        root.insert("fingerprint".to_string(), Json::Obj(fp));
        let scenarios = self
            .scenarios
            .iter()
            .map(|s| {
                let mut o = BTreeMap::new();
                o.insert("name".to_string(), Json::Str(s.name.clone()));
                o.insert("warmup".to_string(), Json::Num(s.warmup as f64));
                o.insert("repeats".to_string(), Json::Num(s.repeats as f64));
                o.insert("inner".to_string(), Json::Num(s.inner as f64));
                let mut st = BTreeMap::new();
                st.insert("min_s".to_string(), Json::Num(s.stats.min_s));
                st.insert("q1_s".to_string(), Json::Num(s.stats.q1_s));
                st.insert("median_s".to_string(), Json::Num(s.stats.median_s));
                st.insert("q3_s".to_string(), Json::Num(s.stats.q3_s));
                st.insert("max_s".to_string(), Json::Num(s.stats.max_s));
                st.insert("mean_s".to_string(), Json::Num(s.stats.mean_s));
                o.insert("stats".to_string(), Json::Obj(st));
                Json::Obj(o)
            })
            .collect();
        root.insert("scenarios".to_string(), Json::Arr(scenarios));
        Json::Obj(root)
    }

    /// Parse and schema-validate a report from JSON text.
    pub fn parse_str(text: &str) -> Result<BenchReport, BenchError> {
        Self::from_json(&parse(text)?)
    }

    /// Convert a parsed JSON document, validating every schema field.
    pub fn from_json(doc: &Json) -> Result<BenchReport, BenchError> {
        let schema_version = get_uint(doc, "schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(schema_err(
                "schema_version",
                &format!("expected {SCHEMA_VERSION}, found {schema_version}"),
            ));
        }
        let group = get_str(doc, "group")?;
        let tier = get_str(doc, "tier")?;
        let fp = doc
            .get("fingerprint")
            .ok_or_else(|| schema_err("fingerprint", "missing"))?;
        let fingerprint = Fingerprint {
            os: get_str(fp, "fingerprint.os")?,
            arch: get_str(fp, "fingerprint.arch")?,
            cores: get_uint(fp, "fingerprint.cores")? as usize,
            debug_assertions: fp
                .get("debug_assertions")
                .and_then(Json::as_bool)
                .ok_or_else(|| schema_err("fingerprint.debug_assertions", "missing bool"))?,
        };
        let arr = doc
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or_else(|| schema_err("scenarios", "missing array"))?;
        let mut scenarios = Vec::with_capacity(arr.len());
        for (i, s) in arr.iter().enumerate() {
            let ctx = format!("scenarios[{i}]");
            let name = get_str(s, &ctx)?;
            let stats_obj = s
                .get("stats")
                .ok_or_else(|| schema_err(&format!("{ctx}.stats"), "missing"))?;
            let stats = RobustStats {
                min_s: get_finite(stats_obj, &ctx, "min_s")?,
                q1_s: get_finite(stats_obj, &ctx, "q1_s")?,
                median_s: get_finite(stats_obj, &ctx, "median_s")?,
                q3_s: get_finite(stats_obj, &ctx, "q3_s")?,
                max_s: get_finite(stats_obj, &ctx, "max_s")?,
                mean_s: get_finite(stats_obj, &ctx, "mean_s")?,
            };
            let ordered = stats.min_s <= stats.q1_s
                && stats.q1_s <= stats.median_s
                && stats.median_s <= stats.q3_s
                && stats.q3_s <= stats.max_s
                && stats.min_s >= 0.0;
            if !ordered {
                return Err(schema_err(
                    &format!("{ctx}.stats"),
                    "quantiles must be ordered and non-negative",
                ));
            }
            scenarios.push(ScenarioResult {
                name,
                warmup: get_uint(s, &format!("{ctx}.warmup"))? as usize,
                repeats: get_uint(s, &format!("{ctx}.repeats"))? as usize,
                inner: get_uint(s, &format!("{ctx}.inner"))? as usize,
                stats,
            });
        }
        Ok(BenchReport {
            schema_version,
            group,
            tier,
            fingerprint,
            scenarios,
        })
    }
}

fn schema_err(field: &str, detail: &str) -> BenchError {
    BenchError::Schema {
        field: field.to_string(),
        detail: detail.to_string(),
    }
}

fn get_str(doc: &Json, field: &str) -> Result<String, BenchError> {
    // `field` may be a dotted context path whose last segment is the key.
    let key = field.rsplit('.').next().unwrap_or(field);
    let key = if key.contains('[') { "name" } else { key };
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| schema_err(field, "missing string"))
}

fn get_uint(doc: &Json, field: &str) -> Result<u64, BenchError> {
    let key = field.rsplit('.').next().unwrap_or(field);
    let v = doc
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| schema_err(field, "missing number"))?;
    let rounded = v.round();
    if !(0.0..=(u64::MAX as f64)).contains(&v) || (v - rounded).abs() > 0.0 {
        return Err(schema_err(field, "must be a non-negative integer"));
    }
    Ok(rounded as u64)
}

fn get_finite(stats: &Json, ctx: &str, key: &str) -> Result<f64, BenchError> {
    let v = stats
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| schema_err(&format!("{ctx}.stats.{key}"), "missing number"))?;
    if !v.is_finite() {
        return Err(schema_err(&format!("{ctx}.stats.{key}"), "must be finite"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------------

/// A named benchmark body. Setup runs lazily (only when the scenario is
/// selected), producing the closure the harness times.
pub struct Scenario {
    /// Group this scenario reports under.
    pub group: &'static str,
    /// Unique name within the registry.
    pub name: String,
    setup: Box<dyn FnOnce() -> Box<dyn FnMut()>>,
}

impl Scenario {
    fn new(
        group: &'static str,
        name: String,
        setup: impl FnOnce() -> Box<dyn FnMut()> + 'static,
    ) -> Scenario {
        Scenario {
            group,
            name,
            setup: Box::new(setup),
        }
    }
}

/// The registry's group names, in report order.
pub fn group_names() -> [&'static str; 4] {
    ["linalg", "gp", "amr", "al"]
}

/// Deterministic pseudo-random training data on the unit cube with a
/// smooth multi-dimensional response (the same generator the Criterion
/// micro-benches use).
fn training_data(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * d);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
        y.push(row.iter().map(|x| (3.0 * x).sin()).sum::<f64>());
        data.extend(row);
    }
    (Matrix::from_vec(n, d, data), y)
}

/// SPD kernel-style matrix: RBF gram of fixed pseudo-random 1-D points
/// with a unit diagonal boost (O(n²) to build, O(n³) to factor — setup
/// never dominates the scenario).
fn spd_gram(n: usize, seed: u64) -> Matrix {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 4.0).collect();
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        a[(i, i)] = 2.0;
        for j in (i + 1)..n {
            let d = pts[i] - pts[j];
            let v = (-0.5 * d * d).exp();
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

fn linalg_scenarios(tier: Tier) -> Vec<Scenario> {
    let sizes: &[usize] = match tier {
        Tier::Quick => &[200, 400],
        Tier::Full => &[200, 400, 800, 1600],
    };
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Scenario::new(
            "linalg",
            format!("cholesky_factor_n{n}"),
            move || {
                let a = spd_gram(n, 11);
                Box::new(move || {
                    let ch = al_linalg::Cholesky::new(&a).expect("SPD gram factors");
                    std::hint::black_box(ch.log_det());
                })
            },
        ));
        // The augment-vs-refit pair: extending an n-point factor by one
        // bordered row (O(n²), includes the clone the GP augment path
        // performs) against refactoring the (n+1)-point matrix (O(n³)).
        out.push(Scenario::new(
            "linalg",
            format!("cholesky_extend_n{n}"),
            move || {
                let a = spd_gram(n + 1, 13);
                let head: Vec<usize> = (0..n).collect();
                let an = a.select_rows(&head);
                let an = {
                    // Leading n×n principal block.
                    let mut block = Matrix::zeros(n, n);
                    for i in 0..n {
                        block.row_mut(i).copy_from_slice(&an.row(i)[..n]);
                    }
                    block
                };
                let border: Vec<f64> = (0..n).map(|i| a[(i, n)]).collect();
                let corner = a[(n, n)];
                let base = al_linalg::Cholesky::new(&an).expect("SPD principal block factors");
                Box::new(move || {
                    let mut ch = base.clone();
                    ch.extend(&border, corner).expect("bordered matrix is SPD");
                    std::hint::black_box(ch.dim());
                })
            },
        ));
        out.push(Scenario::new(
            "linalg",
            format!("cholesky_refit_n{n}"),
            move || {
                let a = spd_gram(n + 1, 13);
                Box::new(move || {
                    let ch = al_linalg::Cholesky::new(&a).expect("SPD gram factors");
                    std::hint::black_box(ch.dim());
                })
            },
        ));
    }
    // Blocked vs. unblocked factorization of the same gram matrix: the
    // pair pins the cache-tiling speedup of the panel-packed `Cholesky`
    // (DESIGN §13), while the in-crate parity tests pin that both paths
    // produce identical bits. The quick tier keeps n = 1600 so the
    // committed trajectory records the ratio at paper scale.
    let pair_sizes: &[usize] = match tier {
        Tier::Quick => &[400, 1600],
        Tier::Full => &[400, 800, 1600],
    };
    for &n in pair_sizes {
        out.push(Scenario::new(
            "linalg",
            format!("cholesky_factor_blocked_n{n}"),
            move || {
                let a = spd_gram(n, 17);
                Box::new(move || {
                    let ch = al_linalg::Cholesky::new(&a).expect("SPD gram factors");
                    std::hint::black_box(ch.log_det());
                })
            },
        ));
        out.push(Scenario::new(
            "linalg",
            format!("cholesky_factor_naive_n{n}"),
            move || {
                let a = spd_gram(n, 17);
                Box::new(move || {
                    let ch = al_linalg::Cholesky::new_reference(&a).expect("SPD gram factors");
                    std::hint::black_box(ch.log_det());
                })
            },
        ));
    }
    out
}

fn gp_scenarios(tier: Tier) -> Vec<Scenario> {
    use al_gp::{FitOptions, GpModel, KernelKind, LocalGpModel};
    let fit_sizes: &[usize] = match tier {
        Tier::Quick => &[100, 200],
        Tier::Full => &[200, 400],
    };
    let augment_n = match tier {
        Tier::Quick => 200,
        Tier::Full => 400,
    };
    let mut out = Vec::new();
    for &n in fit_sizes {
        out.push(Scenario::new("gp", format!("gp_fit_n{n}"), move || {
            let (x, y) = training_data(n, 5, 21);
            let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
            Box::new(move || {
                gp.fit(&x, &y).expect("synthetic data fits");
                std::hint::black_box(gp.n_train());
            })
        }));
    }
    let predict_n = *fit_sizes.last().unwrap_or(&200);
    out.push(Scenario::new(
        "gp",
        format!("gp_predict_n{predict_n}_q100"),
        move || {
            let (x, y) = training_data(predict_n, 5, 22);
            let (xq, _) = training_data(100, 5, 23);
            let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
            gp.fit(&x, &y).expect("synthetic data fits");
            Box::new(move || {
                let p = gp.predict(&xq).expect("prediction succeeds");
                std::hint::black_box(p.mean.len());
            })
        },
    ));
    out.push(Scenario::new(
        "gp",
        format!("gp_augment_n{augment_n}"),
        move || {
            let (x, y) = training_data(augment_n, 5, 24);
            let (xn, yn) = training_data(1, 5, 25);
            let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
            gp.fit(&x, &y).expect("synthetic data fits");
            Box::new(move || {
                let mut m = gp.clone();
                m.augment(xn.row(0), yn[0]).expect("augment succeeds");
                std::hint::black_box(m.n_train());
            })
        },
    ));
    out.push(Scenario::new(
        "gp",
        format!("gp_refit_n{augment_n}"),
        move || {
            let (x, y) = training_data(augment_n, 5, 24);
            let (xn, yn) = training_data(1, 5, 25);
            let x_next = x.vstack(&xn).expect("same width");
            let mut y_next = y;
            y_next.push(yn[0]);
            let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
            Box::new(move || {
                gp.fit(&x_next, &y_next).expect("synthetic data fits");
                std::hint::black_box(gp.n_train());
            })
        },
    ));
    // Local-GP selection over a grown candidate pool: route + batch-predict
    // 10⁵ query points through a 4-region partitioned model, then take the
    // max-σ candidate — the selection hot path at "Active emulation of
    // computer codes with GPs" scale (PAPERS.md, 1912.06552).
    let candidates = 100_000;
    out.push(Scenario::new(
        "gp",
        format!("local_select_{}k", candidates / 1000),
        move || {
            let (x, y) = training_data(200, 5, 26);
            let template = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
            let mut local = LocalGpModel::new(template, 0, 4);
            local
                .fit_optimized(&x, &y, &FitOptions::warm_start_only())
                .expect("local model fits");
            let (grid, _) = training_data(candidates, 5, 27);
            Box::new(move || {
                let p = local.predict(&grid).expect("grid prediction succeeds");
                let pick = p
                    .std
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i);
                std::hint::black_box(pick);
            })
        },
    ));
    // Thread-scaling pairs for the PR 9 parallel GP kernels: results are
    // bitwise identical at any count (the index-addressed slot contract),
    // so each pair measures pure wall-clock scaling — 1 worker vs. all
    // cores; the all-cores variant only engages on multi-core runners.
    for (name, n_threads) in [
        ("kernel_matrix_threads_1", 1usize),
        ("kernel_matrix_threads_all", 0),
    ] {
        out.push(Scenario::new("gp", name.to_string(), move || {
            let (x, _) = training_data(800, 5, 28);
            let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
            gp.set_n_threads(n_threads);
            Box::new(move || {
                let k = gp.noisy_kernel_matrix(&x);
                std::hint::black_box(k.as_slice()[0]);
            })
        }));
    }
    // Local-GP selection again, but with the region fan-out across the
    // pool — the 10⁵-candidate routing loop is the AL selection hot path
    // this PR parallelizes.
    for (name, n_threads) in [
        ("local_select_threads_1", 1usize),
        ("local_select_threads_all", 0),
    ] {
        out.push(Scenario::new("gp", name.to_string(), move || {
            let (x, y) = training_data(200, 5, 26);
            let template = GpModel::new(KernelKind::Rbf.build(0.3), 1e-3);
            let mut local = LocalGpModel::new(template, 0, 4);
            let opts = FitOptions {
                n_threads,
                ..FitOptions::warm_start_only()
            };
            local
                .fit_optimized(&x, &y, &opts)
                .expect("local model fits");
            let (grid, _) = training_data(candidates, 5, 27);
            Box::new(move || {
                let p = local.predict(&grid).expect("grid prediction succeeds");
                let pick = p
                    .std
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i);
                std::hint::black_box(pick);
            })
        }));
    }
    out
}

fn amr_scenarios(tier: Tier) -> Vec<Scenario> {
    use al_amr_sim::{AmrSolver, SimulationConfig, SolverProfile};
    let maxlevel = match tier {
        Tier::Quick => 3,
        Tier::Full => 4,
    };
    let config = SimulationConfig {
        p: 8,
        mx: 16,
        maxlevel,
        r0: 0.35,
        rhoin: 0.1,
    };
    // 1 worker vs. all cores on the same subcycled hierarchy — results are
    // bitwise identical by the PR 3 contract, so the pair measures pure
    // wall-clock scaling of the within-level sweep pool.
    [
        ("solver_step_threads_1", 1usize),
        ("solver_step_threads_all", 0),
    ]
    .into_iter()
    .map(|(name, n_threads)| {
        Scenario::new("amr", name.to_string(), move || {
            let profile = SolverProfile {
                n_threads,
                ..SolverProfile::bench()
            };
            let mut solver = AmrSolver::new(&config, profile);
            Box::new(move || {
                let dt = solver.step().expect("bench hierarchy steps");
                std::hint::black_box(dt);
            })
        })
    })
    .collect()
}

/// Synthetic AMR-shaped dataset (no solver runs) for the end-to-end AL
/// scenario: cost/memory follow the refinement-level and patch-size power
/// laws of the real response surface.
fn synthetic_dataset(n: usize) -> al_dataset::Dataset {
    use al_amr_sim::SimulationConfig;
    use al_dataset::{Dataset, Sample};
    let samples: Vec<Sample> = (0..n)
        .map(|i| {
            let config = SimulationConfig {
                p: [4u32, 8, 16, 32][i % 4],
                mx: [8usize, 16, 24, 32][(i / 4) % 4],
                maxlevel: [3u8, 4, 5, 6][(i / 16) % 4],
                r0: 0.2 + 0.3 * ((i % 7) as f64 / 6.0),
                rhoin: 0.02 + 0.48 * ((i % 5) as f64 / 4.0),
            };
            let work = 4f64.powi(config.maxlevel as i32 - 3) * (config.mx as f64 / 8.0).powi(2);
            Sample {
                config,
                wall_seconds: al_units::Seconds::new(10.0 * work),
                cost_node_hours: al_units::NodeHours::new(0.01 * work),
                memory_mb: al_units::Megabytes::new(0.4 * work / config.p as f64 + 0.01),
            }
        })
        .collect();
    Dataset::new(samples)
}

fn al_scenarios(tier: Tier) -> Vec<Scenario> {
    use al_core::{
        run_trajectory, step, AlOptions, Decision, Observation, SessionConfig, SessionState,
        StrategyKind,
    };
    use al_dataset::Partition;
    use al_gp::FitOptions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let iterations = match tier {
        Tier::Quick => 10,
        Tier::Full => 20,
    };
    let mut out = vec![Scenario::new(
        "al",
        format!("rgma_sweep_{iterations}iter"),
        move || {
            let dataset = synthetic_dataset(120);
            let mut rng = StdRng::seed_from_u64(31);
            let partition = Partition::random(dataset.len(), 10, 40, &mut rng);
            let opts = AlOptions {
                max_iterations: Some(iterations),
                initial_fit: FitOptions {
                    n_restarts: 0,
                    max_iters: 10,
                    ..FitOptions::default()
                },
                mem_limit_log: Some(dataset.memory_limit_log(0.95)),
                ..AlOptions::default()
            };
            Box::new(move || {
                let t = run_trajectory(
                    &dataset,
                    &partition,
                    StrategyKind::Rgma { base: 10.0 },
                    &opts,
                )
                .expect("synthetic trajectory runs");
                std::hint::black_box(t.records.len());
            })
        },
    )];
    // One pure session transition on a mid-flight RGMA session — the
    // serving-layer latency unit behind SessionStore::observe (ingest the
    // observation, close the round: incremental augment + refit decision +
    // pool re-prediction + next selection).
    out.push(Scenario::new("al", "session_step".to_string(), move || {
        let dataset = synthetic_dataset(120);
        let mut rng = StdRng::seed_from_u64(33);
        let partition = Partition::random(dataset.len(), 10, 40, &mut rng);
        let opts = AlOptions {
            initial_fit: FitOptions {
                n_restarts: 0,
                max_iters: 10,
                ..FitOptions::default()
            },
            refit: FitOptions {
                n_restarts: 0,
                max_iters: 5,
                ..FitOptions::default()
            },
            mem_limit_log: Some(dataset.memory_limit_log(0.95)),
            ..AlOptions::default()
        };
        let config = SessionConfig::from_partition(
            &dataset,
            &partition,
            StrategyKind::Rgma { base: 10.0 },
            &opts,
        );
        let (mut state, mut decision) =
            SessionState::start(config).expect("synthetic session starts");
        // Advance to a mid-flight state so the timed step is representative
        // (a few points past the initial design, pool still large).
        for _ in 0..3 {
            let q = decision.query().expect("session still mid-flight");
            let obs = Observation::from_dataset(&dataset, q.dataset_index);
            let (s, d) = step(state, &obs).expect("synthetic step succeeds");
            state = s;
            decision = d;
        }
        let q = decision.query().expect("session still mid-flight");
        let obs = Observation::from_dataset(&dataset, q.dataset_index);
        Box::new(move || {
            let (s, d) = step(state.clone(), &obs).expect("synthetic step succeeds");
            match d {
                Decision::Query(next) => std::hint::black_box(next.dataset_index),
                Decision::Stop(_) => std::hint::black_box(s.iteration()),
            };
        })
    }));
    // Store contention: several workers hammer a small SessionStore with a
    // create → observe-to-stop → finish mix over distinct ids sharing one
    // warm key. Sessions land on all shards and every call crosses the
    // shard and warm locks, so this prices the locking discipline itself —
    // the L7 contract that GP steps run outside the guards is what keeps
    // this scenario scaling instead of serializing on a shard.
    out.push(Scenario::new(
        "al",
        "store_contention".to_string(),
        move || {
            use al_core::{SessionStore, WarmKey};
            use al_parallel::WorkerPool;
            let dataset = synthetic_dataset(120);
            let mut rng = StdRng::seed_from_u64(37);
            let partition = Partition::random(dataset.len(), 10, 40, &mut rng);
            let opts = AlOptions {
                max_iterations: Some(2),
                initial_fit: FitOptions {
                    n_restarts: 0,
                    max_iters: 10,
                    ..FitOptions::default()
                },
                refit: FitOptions {
                    n_restarts: 0,
                    max_iters: 5,
                    ..FitOptions::default()
                },
                mem_limit_log: Some(dataset.memory_limit_log(0.95)),
                ..AlOptions::default()
            };
            let config = SessionConfig::from_partition(
                &dataset,
                &partition,
                StrategyKind::Rgma { base: 10.0 },
                &opts,
            );
            let pool = WorkerPool::new(4);
            let store = SessionStore::new(4);
            Box::new(move || {
                let jobs: Vec<_> = (0..pool.n_workers() as u64)
                    .map(|worker| {
                        let store = &store;
                        let dataset = &dataset;
                        let config = config.clone();
                        move || {
                            // Each worker owns its ids (the per-session caller
                            // contract); ids differ mod n_shards so the workers
                            // spread over every shard. Four sessions per worker
                            // keep one timed call long enough that scheduler
                            // noise on oversubscribed runners averages out.
                            for k in 0..4u64 {
                                let id = worker + 4 * k;
                                let mut decision = store
                                    .create(
                                        id,
                                        config.clone(),
                                        Some(WarmKey::new("bench-grid", "RBF")),
                                    )
                                    .expect("session creates");
                                while let Some(q) = decision.query() {
                                    let obs = Observation::from_dataset(dataset, q.dataset_index);
                                    decision = store.observe(id, &obs).expect("session observes");
                                }
                                let t = store.finish(id).expect("session finishes");
                                std::hint::black_box(t.records.len());
                            }
                        }
                    })
                    .collect();
                pool.run(jobs);
                std::hint::black_box(store.len());
            })
        },
    ));
    // Warm-start contrast: opening a session with cached hyperparameters
    // from the LRU (short refit polish) vs. a cold open (full restarted
    // optimization) — the quantity the SessionStore's warm cache saves.
    for (name, use_warm) in [("warm_start_cold", false), ("warm_start_hit", true)] {
        out.push(Scenario::new("al", name.to_string(), move || {
            let dataset = synthetic_dataset(120);
            let mut rng = StdRng::seed_from_u64(35);
            let partition = Partition::random(dataset.len(), 10, 40, &mut rng);
            let opts = AlOptions {
                initial_fit: FitOptions {
                    n_restarts: 1,
                    max_iters: 40,
                    ..FitOptions::default()
                },
                refit: FitOptions {
                    n_restarts: 0,
                    max_iters: 5,
                    ..FitOptions::default()
                },
                mem_limit_log: Some(dataset.memory_limit_log(0.95)),
                ..AlOptions::default()
            };
            let config = SessionConfig::from_partition(
                &dataset,
                &partition,
                StrategyKind::Rgma { base: 10.0 },
                &opts,
            );
            let warm = use_warm.then(|| {
                let (donor, _) = SessionState::start(config.clone()).expect("donor session starts");
                donor.warm_hyperparams()
            });
            Box::new(move || {
                let (s, d) = SessionState::start_warm(config.clone(), warm.as_ref())
                    .expect("synthetic session starts");
                std::hint::black_box((s.iteration(), d.query().is_some()));
            })
        }));
    }
    out
}

/// Build the full registry for a tier, optionally restricted to `groups`
/// (empty slice = every group).
pub fn registry(tier: Tier, groups: &[String]) -> Result<Vec<Scenario>, BenchError> {
    for g in groups {
        if !group_names().contains(&g.as_str()) {
            return Err(BenchError::UnknownGroup(g.clone()));
        }
    }
    let wanted = |g: &str| groups.is_empty() || groups.iter().any(|w| w == g);
    let mut out = Vec::new();
    if wanted("linalg") {
        out.extend(linalg_scenarios(tier));
    }
    if wanted("gp") {
        out.extend(gp_scenarios(tier));
    }
    if wanted("amr") {
        out.extend(amr_scenarios(tier));
    }
    if wanted("al") {
        out.extend(al_scenarios(tier));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Time one scenario: warmup, calibrate an inner batch count so each
/// sample spans at least `min_sample_s`, then record `repeats` samples of
/// seconds-per-call.
fn measure(scenario: Scenario, tier: Tier) -> ScenarioResult {
    let name = scenario.name;
    let mut body = (scenario.setup)();
    let warmup = tier.warmup();
    let repeats = tier.repeats();
    for _ in 0..warmup {
        body();
    }
    let started = Instant::now();
    body();
    let once = started.elapsed().as_secs_f64().max(1e-9);
    // Ceiled and clamped to [1, 1024] first, so the cast is exact.
    let inner = ((tier.min_sample_s() / once).ceil().clamp(1.0, 1024.0)) as usize; // alint: allow(L4)
    let mut samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let started = Instant::now();
        for _ in 0..inner {
            body();
        }
        samples.push(started.elapsed().as_secs_f64() / inner as f64);
    }
    ScenarioResult {
        name,
        warmup,
        repeats,
        inner,
        stats: RobustStats::of(&samples),
    }
}

/// Run every selected scenario and assemble one report per group, in
/// registry group order. `progress` receives a line per finished scenario.
pub fn run(
    tier: Tier,
    groups: &[String],
    mut progress: impl FnMut(&str),
) -> Result<Vec<BenchReport>, BenchError> {
    let scenarios = registry(tier, groups)?;
    let fingerprint = Fingerprint::current();
    let mut by_group: Vec<(&'static str, Vec<ScenarioResult>)> = Vec::new();
    for scenario in scenarios {
        let group = scenario.group;
        let label = scenario.name.clone();
        let result = measure(scenario, tier);
        progress(&format!(
            "{group}/{label}: median {} (n={} x{})",
            format_duration(result.stats.median_s),
            result.repeats,
            result.inner
        ));
        match by_group.iter_mut().find(|(g, _)| *g == group) {
            Some((_, v)) => v.push(result),
            None => by_group.push((group, vec![result])),
        }
    }
    Ok(by_group
        .into_iter()
        .map(|(group, scenarios)| BenchReport {
            schema_version: SCHEMA_VERSION,
            group: group.to_string(),
            tier: tier.label().to_string(),
            fingerprint: fingerprint.clone(),
            scenarios,
        })
        .collect())
}

/// Human-readable duration with an auto-selected unit.
pub fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3}s")
    } else if seconds >= 1e-3 {
        format!("{:.3}ms", seconds * 1e3)
    } else {
        format!("{:.3}us", seconds * 1e6)
    }
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

/// Workspace root (the bench crate lives two levels below it) — BENCH
/// files are written there so the trajectory sits next to ROADMAP.md.
pub fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    root.parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(root)
}

/// Write one report as `BENCH_<group>.json` under `dir`; returns the path.
pub fn write_report(report: &BenchReport, dir: &Path) -> Result<PathBuf, BenchError> {
    let path = dir.join(BenchReport::file_name(&report.group));
    std::fs::write(&path, report.to_json().render()).map_err(|source| BenchError::Io {
        path: path.display().to_string(),
        source,
    })?;
    Ok(path)
}

/// Load and schema-validate one report.
pub fn load_report(path: &Path) -> Result<BenchReport, BenchError> {
    let text = std::fs::read_to_string(path).map_err(|source| BenchError::Io {
        path: path.display().to_string(),
        source,
    })?;
    BenchReport::parse_str(&text)
}

/// Load every `BENCH_*.json` directly under `dir`, sorted by file name.
pub fn load_dir(dir: &Path) -> Result<Vec<BenchReport>, BenchError> {
    let entries = std::fs::read_dir(dir).map_err(|source| BenchError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    paths.iter().map(|p| load_report(p)).collect()
}

// ---------------------------------------------------------------------------
// Compare
// ---------------------------------------------------------------------------

/// Judgement for one scenario present in both runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Median slower than the threshold AND IQRs disjoint.
    Regression,
    /// Median faster than the threshold AND IQRs disjoint.
    Improvement,
    /// Inside the noise band.
    Within,
}

/// One compared scenario.
#[derive(Debug, Clone)]
pub struct ScenarioDelta {
    /// Group name.
    pub group: String,
    /// Scenario name.
    pub name: String,
    /// Baseline stats.
    pub old: RobustStats,
    /// New stats.
    pub new: RobustStats,
    /// Relative median change (`new/old − 1`; positive = slower).
    pub rel_median: f64,
    /// Classification under the threshold rule.
    pub verdict: Verdict,
}

/// Full comparison of two report sets.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Per-scenario deltas, in `(group, name)` order.
    pub deltas: Vec<ScenarioDelta>,
    /// `group/name` keys only present in the baseline.
    pub only_old: Vec<String>,
    /// `group/name` keys only present in the new run.
    pub only_new: Vec<String>,
    /// Host or build profile differs between the runs — absolute numbers
    /// are then not comparable (CI's check-only mode exists for this).
    pub fingerprint_differs: bool,
    /// Threshold the verdicts used.
    pub threshold: f64,
}

impl Comparison {
    /// Number of scenarios judged [`Verdict::Regression`].
    pub fn regression_count(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regression)
            .count()
    }

    /// Render as an aligned text table plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.fingerprint_differs {
            out.push_str(
                "note: fingerprints differ (host or build profile); absolute deltas are advisory\n",
            );
        }
        for d in &self.deltas {
            let tag = match d.verdict {
                Verdict::Regression => "REGRESSION",
                Verdict::Improvement => "improvement",
                Verdict::Within => "ok",
            };
            out.push_str(&format!(
                "{:<10} {:<28} median {:>10} -> {:>10} ({:+.1}%)  {}\n",
                d.group,
                d.name,
                format_duration(d.old.median_s),
                format_duration(d.new.median_s),
                d.rel_median * 100.0,
                tag
            ));
        }
        for k in &self.only_old {
            out.push_str(&format!("missing in new run: {k}\n"));
        }
        for k in &self.only_new {
            out.push_str(&format!("new scenario (no baseline): {k}\n"));
        }
        let improvements = self
            .deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Improvement)
            .count();
        out.push_str(&format!(
            "{} compared: {} regression(s), {} improvement(s), threshold {:.0}% + disjoint IQRs\n",
            self.deltas.len(),
            self.regression_count(),
            improvements,
            self.threshold * 100.0
        ));
        out
    }

    /// Render GitHub workflow-command annotations (like `alint --format
    /// github`): `::error` per regression, or `::warning` in check-only
    /// mode so advisory CI runs annotate without failing.
    pub fn render_github(&self, check_only: bool) -> String {
        let level = if check_only { "warning" } else { "error" };
        let mut out = String::new();
        for d in &self.deltas {
            if d.verdict != Verdict::Regression {
                continue;
            }
            out.push_str(&format!(
                "::{level} title=perf regression::{}/{}: median {} -> {} ({:+.1}%), IQRs disjoint\n",
                d.group,
                d.name,
                format_duration(d.old.median_s),
                format_duration(d.new.median_s),
                d.rel_median * 100.0
            ));
        }
        for k in &self.only_old {
            out.push_str(&format!(
                "::warning title=perf scenario missing::{k} present in baseline but not in the new run\n"
            ));
        }
        out
    }
}

/// Compare two report sets. A scenario regresses when its median slowed by
/// more than `threshold` (relative) AND the new IQR sits entirely above
/// the old one (`new.q1 > old.q3`) — both conditions, so neither a noisy
/// single run nor a sub-threshold drift can flag.
pub fn compare(
    old: &[BenchReport],
    new: &[BenchReport],
    threshold: f64,
) -> Result<Comparison, BenchError> {
    let index = |reports: &[BenchReport]| -> BTreeMap<String, (RobustStats, Fingerprint)> {
        let mut m = BTreeMap::new();
        for r in reports {
            for s in &r.scenarios {
                m.insert(
                    format!("{}/{}", r.group, s.name),
                    (s.stats, r.fingerprint.clone()),
                );
            }
        }
        m
    };
    let old_idx = index(old);
    let new_idx = index(new);

    let mut deltas = Vec::new();
    let mut only_old = Vec::new();
    let mut fingerprint_differs = false;
    for (key, (old_stats, old_fp)) in &old_idx {
        match new_idx.get(key) {
            None => only_old.push(key.clone()),
            Some((new_stats, new_fp)) => {
                if old_fp != new_fp {
                    fingerprint_differs = true;
                }
                let denom = old_stats.median_s.max(1e-12);
                let rel = (new_stats.median_s - old_stats.median_s) / denom;
                let disjoint_slower = new_stats.q1_s > old_stats.q3_s;
                let disjoint_faster = new_stats.q3_s < old_stats.q1_s;
                let verdict = if rel > threshold && disjoint_slower {
                    Verdict::Regression
                } else if rel < -threshold && disjoint_faster {
                    Verdict::Improvement
                } else {
                    Verdict::Within
                };
                let (group, name) = key.split_once('/').unwrap_or(("", key));
                deltas.push(ScenarioDelta {
                    group: group.to_string(),
                    name: name.to_string(),
                    old: *old_stats,
                    new: *new_stats,
                    rel_median: rel,
                    verdict,
                });
            }
        }
    }
    let only_new: Vec<String> = new_idx
        .keys()
        .filter(|k| !old_idx.contains_key(*k))
        .cloned()
        .collect();
    if deltas.is_empty() {
        return Err(BenchError::NoCommonScenarios);
    }
    Ok(Comparison {
        deltas,
        only_old,
        only_new,
        fingerprint_differs,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(stats: &[(&str, RobustStats)]) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            group: "linalg".to_string(),
            tier: "quick".to_string(),
            fingerprint: Fingerprint::current(),
            scenarios: stats
                .iter()
                .map(|(name, s)| ScenarioResult {
                    name: name.to_string(),
                    warmup: 1,
                    repeats: 5,
                    inner: 1,
                    stats: *s,
                })
                .collect(),
        }
    }

    fn stats(median: f64) -> RobustStats {
        RobustStats {
            min_s: median * 0.95,
            q1_s: median * 0.98,
            median_s: median,
            q3_s: median * 1.02,
            max_s: median * 1.05,
            mean_s: median,
        }
    }

    #[test]
    fn report_json_round_trips_exactly() {
        let r = report_with(&[("a", stats(1e-3)), ("b", stats(2.5e-2))]);
        let text = r.to_json().render();
        let back = BenchReport::parse_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn self_compare_reports_zero_regressions() {
        let r = report_with(&[("a", stats(1e-3)), ("b", stats(2.5e-2))]);
        let text = r.to_json().render();
        let back = BenchReport::parse_str(&text).unwrap();
        let cmp = compare(
            std::slice::from_ref(&r),
            std::slice::from_ref(&back),
            DEFAULT_THRESHOLD,
        )
        .unwrap();
        assert_eq!(cmp.regression_count(), 0);
        assert!(!cmp.fingerprint_differs);
        assert!(cmp.deltas.iter().all(|d| d.verdict == Verdict::Within));
    }

    #[test]
    fn injected_2x_slowdown_is_flagged() {
        let old = report_with(&[("a", stats(1e-3)), ("b", stats(4e-3))]);
        let new = report_with(&[("a", stats(2e-3)), ("b", stats(4e-3))]);
        let cmp = compare(&[old], &[new], DEFAULT_THRESHOLD).unwrap();
        assert_eq!(cmp.regression_count(), 1);
        let reg = cmp
            .deltas
            .iter()
            .find(|d| d.verdict == Verdict::Regression)
            .unwrap();
        assert_eq!(reg.name, "a");
        assert!(reg.rel_median > 0.9);
        assert!(cmp.render_text().contains("REGRESSION"));
        assert!(cmp.render_github(false).contains("::error"));
        assert!(cmp.render_github(true).contains("::warning"));
    }

    #[test]
    fn sub_threshold_or_overlapping_iqr_is_within_noise() {
        // 5% median drift: below threshold.
        let old = report_with(&[("a", stats(1.00e-3))]);
        let new = report_with(&[("a", stats(1.05e-3))]);
        let cmp = compare(&[old], &[new], DEFAULT_THRESHOLD).unwrap();
        assert_eq!(cmp.regression_count(), 0);

        // 20% median drift but wide overlapping IQRs: still within noise.
        let wide = RobustStats {
            min_s: 0.5e-3,
            q1_s: 0.8e-3,
            median_s: 1.2e-3,
            q3_s: 1.6e-3,
            max_s: 2.0e-3,
            mean_s: 1.2e-3,
        };
        let old = report_with(&[("a", stats(1.0e-3))]);
        let new = report_with(&[("a", wide)]);
        let cmp = compare(&[old], &[new], DEFAULT_THRESHOLD).unwrap();
        assert_eq!(cmp.regression_count(), 0);
    }

    #[test]
    fn missing_scenarios_are_reported_not_fatal() {
        let old = report_with(&[("a", stats(1e-3)), ("gone", stats(1e-3))]);
        let new = report_with(&[("a", stats(1e-3)), ("fresh", stats(1e-3))]);
        let cmp = compare(&[old], &[new], DEFAULT_THRESHOLD).unwrap();
        assert_eq!(cmp.only_old, vec!["linalg/gone".to_string()]);
        assert_eq!(cmp.only_new, vec!["linalg/fresh".to_string()]);
        assert!(cmp.render_github(true).contains("perf scenario missing"));
    }

    #[test]
    fn disjoint_report_sets_error() {
        let old = report_with(&[("a", stats(1e-3))]);
        let new = report_with(&[("b", stats(1e-3))]);
        assert!(matches!(
            compare(&[old], &[new], DEFAULT_THRESHOLD),
            Err(BenchError::NoCommonScenarios)
        ));
    }

    #[test]
    fn schema_rejects_bad_documents() {
        let good = report_with(&[("a", stats(1e-3))]).to_json().render();
        // Wrong version.
        let bad = good.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(matches!(
            BenchReport::parse_str(&bad),
            Err(BenchError::Schema { .. })
        ));
        // Unordered quantiles.
        let mut r = report_with(&[("a", stats(1e-3))]);
        r.scenarios[0].stats.q1_s = r.scenarios[0].stats.q3_s * 2.0;
        assert!(matches!(
            BenchReport::parse_str(&r.to_json().render()),
            Err(BenchError::Schema { .. })
        ));
        // Not JSON at all.
        assert!(matches!(
            BenchReport::parse_str("not json"),
            Err(BenchError::JsonParse { .. })
        ));
        // Missing stats field.
        let bad = good.replace("\"median_s\"", "\"median_sx\"");
        assert!(matches!(
            BenchReport::parse_str(&bad),
            Err(BenchError::Schema { .. })
        ));
    }

    #[test]
    fn registry_covers_contracted_scenarios() {
        let names: Vec<String> = registry(Tier::Quick, &[])
            .unwrap()
            .iter()
            .map(|s| format!("{}/{}", s.group, s.name))
            .collect();
        // The ROADMAP-contracted coverage: extend-vs-refit curve, local
        // selection at 1e5 candidates, thread scaling, end-to-end AL.
        assert!(names
            .iter()
            .any(|n| n.starts_with("linalg/cholesky_extend_n")));
        assert!(names
            .iter()
            .any(|n| n.starts_with("linalg/cholesky_refit_n")));
        assert!(names.contains(&"gp/local_select_100k".to_string()));
        assert!(names.contains(&"amr/solver_step_threads_1".to_string()));
        assert!(names.contains(&"amr/solver_step_threads_all".to_string()));
        assert!(names.iter().any(|n| n.starts_with("al/rgma_sweep_")));
        // PR 8: the session core's serving-latency unit and the warm-start
        // contrast pair backing the SessionStore's hyperparameter LRU.
        assert!(names.contains(&"al/session_step".to_string()));
        assert!(names.contains(&"al/warm_start_cold".to_string()));
        assert!(names.contains(&"al/warm_start_hit".to_string()));
        // PR 9: blocked-vs-naive factorization at paper scale, plus the
        // GP thread-scaling pairs over the shared worker pool.
        assert!(names.contains(&"linalg/cholesky_factor_blocked_n1600".to_string()));
        assert!(names.contains(&"linalg/cholesky_factor_naive_n1600".to_string()));
        assert!(names.contains(&"gp/kernel_matrix_threads_1".to_string()));
        assert!(names.contains(&"gp/kernel_matrix_threads_all".to_string()));
        assert!(names.contains(&"gp/local_select_threads_1".to_string()));
        assert!(names.contains(&"gp/local_select_threads_all".to_string()));
        // PR 10: workers hammering the sharded SessionStore — the priced
        // counterpart of the alint L7 locking contract.
        assert!(names.contains(&"al/store_contention".to_string()));
        // Unknown group is a typed error.
        assert!(matches!(
            registry(Tier::Quick, &["nope".to_string()]),
            Err(BenchError::UnknownGroup(_))
        ));
        // Group filter narrows the registry.
        let only_amr = registry(Tier::Quick, &["amr".to_string()]).unwrap();
        assert!(only_amr.iter().all(|s| s.group == "amr"));
        assert_eq!(only_amr.len(), 2);
    }

    #[test]
    fn full_tier_grows_the_cholesky_curve() {
        let full: Vec<String> = registry(Tier::Full, &["linalg".to_string()])
            .unwrap()
            .iter()
            .map(|s| s.name.clone())
            .collect();
        for n in [200, 400, 800, 1600] {
            assert!(full.contains(&format!("cholesky_factor_n{n}")), "n={n}");
            assert!(full.contains(&format!("cholesky_extend_n{n}")), "n={n}");
            assert!(full.contains(&format!("cholesky_refit_n{n}")), "n={n}");
        }
        for n in [400, 800, 1600] {
            assert!(
                full.contains(&format!("cholesky_factor_blocked_n{n}")),
                "n={n}"
            );
            assert!(
                full.contains(&format!("cholesky_factor_naive_n{n}")),
                "n={n}"
            );
        }
    }

    #[test]
    fn measure_produces_ordered_stats() {
        // A tiny real measurement (cheap body) exercises calibration.
        let s = Scenario::new("linalg", "noop".to_string(), || {
            let mut x = 0u64;
            Box::new(move || {
                x = x.wrapping_add(std::hint::black_box(1));
                std::hint::black_box(x);
            })
        });
        let r = measure(s, Tier::Quick);
        assert_eq!(r.repeats, 5);
        assert!(r.inner >= 1);
        assert!(r.stats.min_s >= 0.0);
        assert!(r.stats.min_s <= r.stats.median_s);
        assert!(r.stats.median_s <= r.stats.max_s);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_duration(2.5), "2.500s");
        assert_eq!(format_duration(2.5e-3), "2.500ms");
        assert_eq!(format_duration(2.5e-6), "2.500us");
    }

    #[test]
    fn file_names_follow_the_trajectory_convention() {
        assert_eq!(BenchReport::file_name("linalg"), "BENCH_linalg.json");
        assert!(workspace_root().join("Cargo.toml").exists());
    }
}
