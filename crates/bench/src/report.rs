//! Text reporting helpers: aligned series tables and ASCII violin
//! summaries, so every figure's data prints in a form directly comparable
//! with the paper's plots.

use al_linalg::stats::{histogram, Summary};

/// Print a named numeric series as `index,value` CSV rows, downsampled to
/// at most `max_rows` evenly spaced points (figures have hundreds of
/// iterations; the trend is what matters).
pub fn format_series(name: &str, values: &[f64], max_rows: usize) -> String {
    let mut out = format!("# series: {name} ({} points)\n", values.len());
    if values.is_empty() {
        return out;
    }
    let stride = (values.len() / max_rows.max(1)).max(1);
    for (i, v) in values.iter().enumerate() {
        if i % stride == 0 || i == values.len() - 1 {
            out.push_str(&format!("{i},{v:.6}\n"));
        }
    }
    out
}

/// ASCII violin: a quantile summary plus a sideways histogram of the
/// distribution (log10 bins work well for cost data — pass transformed
/// values if desired).
pub fn format_violin(label: &str, values: &[f64], bins: usize) -> String {
    if values.is_empty() {
        return format!("{label}: (no data)\n");
    }
    let s = Summary::of(values);
    let mut out = format!(
        "{label}: n={} min={:.4} q1={:.4} median={:.4} mean={:.4} q3={:.4} max={:.4} IQR={:.4}\n",
        values.len(),
        s.min,
        s.q1,
        s.median,
        s.mean,
        s.q3,
        s.max,
        s.iqr()
    );
    let span = (s.max - s.min).max(1e-12);
    let counts = histogram(values, s.min, s.min + span, bins);
    let peak = *counts.iter().max().unwrap_or(&1) as f64;
    for (b, &c) in counts.iter().enumerate() {
        let lo = s.min + span * b as f64 / bins as f64;
        let width = ((c as f64 / peak) * 40.0).round() as usize;
        out.push_str(&format!("  {lo:>10.4} | {} {c}\n", "#".repeat(width)));
    }
    out
}

/// Align several labelled curves into one CSV block with a shared
/// iteration column: `iter,label1,label2,...`. Shorter curves print empty
/// cells once exhausted (RGMA stops early).
pub fn format_curves(labels: &[&str], curves: &[Vec<f64>], max_rows: usize) -> String {
    assert_eq!(labels.len(), curves.len());
    let n = curves.iter().map(|c| c.len()).max().unwrap_or(0);
    let mut out = String::from("iter");
    for l in labels {
        out.push(',');
        out.push_str(l);
    }
    out.push('\n');
    let stride = (n / max_rows.max(1)).max(1);
    for i in 0..n {
        if i % stride != 0 && i != n - 1 {
            continue;
        }
        out.push_str(&i.to_string());
        for c in curves {
            out.push(',');
            if let Some(v) = c.get(i) {
                out.push_str(&format!("{v:.6}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_downsamples_and_keeps_last() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = format_series("x", &values, 10);
        assert!(s.starts_with("# series: x (100 points)"));
        let rows = s.lines().count() - 1;
        assert!(rows <= 12, "{rows} rows");
        assert!(s.contains("99,99"));
    }

    #[test]
    fn series_empty_is_header_only() {
        assert_eq!(format_series("e", &[], 5).lines().count(), 1);
    }

    #[test]
    fn violin_shows_quartiles_and_bars() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let v = format_violin("costs", &values, 5);
        assert!(v.contains("median=50.5"));
        assert!(v.contains('#'));
        assert_eq!(v.lines().count(), 6);
        assert!(format_violin("none", &[], 5).contains("no data"));
    }

    #[test]
    fn curves_handle_ragged_lengths() {
        let s = format_curves(&["a", "b"], &[vec![1.0, 2.0, 3.0], vec![10.0]], 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "iter,a,b");
        assert!(lines[1].starts_with("0,1.000000,10.000000"));
        assert!(lines.last().unwrap().starts_with("2,3.000000,"));
        assert!(lines.last().unwrap().ends_with(','));
    }
}
