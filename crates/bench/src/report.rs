//! Text reporting helpers: aligned series tables and ASCII violin
//! summaries, so every figure's data prints in a form directly comparable
//! with the paper's plots.

use crate::error::BenchError;
use al_linalg::stats::{histogram, Summary};

/// Downsampling stride that keeps the emitted row count within `max_rows`:
/// ceiling division, so e.g. 150 points at `max_rows = 100` stride by 2
/// (75 rows) instead of flooring to stride 1 (all 150 rows).
fn stride_for(len: usize, max_rows: usize) -> usize {
    len.div_ceil(max_rows.max(1)).max(1)
}

/// Print a named numeric series as `index,value` CSV rows, downsampled to
/// at most `max_rows` evenly spaced points (figures have hundreds of
/// iterations; the trend is what matters), plus the final point, which
/// always prints even when it falls off the stride.
pub fn format_series(name: &str, values: &[f64], max_rows: usize) -> String {
    let mut out = format!("# series: {name} ({} points)\n", values.len());
    if values.is_empty() {
        return out;
    }
    let stride = stride_for(values.len(), max_rows);
    for (i, v) in values.iter().enumerate() {
        if i % stride == 0 || i == values.len() - 1 {
            out.push_str(&format!("{i},{v:.6}\n"));
        }
    }
    out
}

/// ASCII violin: a quantile summary plus a sideways histogram of the
/// distribution (log10 bins work well for cost data — pass transformed
/// values if desired).
pub fn format_violin(label: &str, values: &[f64], bins: usize) -> String {
    if values.is_empty() {
        return format!("{label}: (no data)\n");
    }
    let s = Summary::of(values);
    let mut out = format!(
        "{label}: n={} min={:.4} q1={:.4} median={:.4} mean={:.4} q3={:.4} max={:.4} IQR={:.4}\n",
        values.len(),
        s.min,
        s.q1,
        s.median,
        s.mean,
        s.q3,
        s.max,
        s.iqr()
    );
    let span = (s.max - s.min).max(1e-12);
    let counts = histogram(values, s.min, s.min + span, bins);
    let peak = *counts.iter().max().unwrap_or(&1) as f64;
    for (b, &c) in counts.iter().enumerate() {
        let lo = s.min + span * b as f64 / bins as f64;
        let width = ((c as f64 / peak) * 40.0).round() as usize;
        out.push_str(&format!("  {lo:>10.4} | {} {c}\n", "#".repeat(width)));
    }
    out
}

/// Align several labelled curves into one CSV block with a shared
/// iteration column: `iter,label1,label2,...`. Shorter curves print empty
/// cells once exhausted (RGMA stops early). Errors (instead of panicking —
/// this is library code under the L1/L3 policy) when the label and curve
/// counts disagree.
pub fn format_curves(
    labels: &[&str],
    curves: &[Vec<f64>],
    max_rows: usize,
) -> Result<String, BenchError> {
    if labels.len() != curves.len() {
        return Err(BenchError::LabelCountMismatch {
            labels: labels.len(),
            curves: curves.len(),
        });
    }
    let n = curves.iter().map(|c| c.len()).max().unwrap_or(0);
    let mut out = String::from("iter");
    for l in labels {
        out.push(',');
        out.push_str(l);
    }
    out.push('\n');
    let stride = stride_for(n.max(1), max_rows);
    for i in 0..n {
        if i % stride != 0 && i != n - 1 {
            continue;
        }
        out.push_str(&i.to_string());
        for c in curves {
            out.push(',');
            if let Some(v) = c.get(i) {
                out.push_str(&format!("{v:.6}"));
            }
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_downsamples_and_keeps_last() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = format_series("x", &values, 10);
        assert!(s.starts_with("# series: x (100 points)"));
        let rows = s.lines().count() - 1;
        assert!(rows <= 12, "{rows} rows");
        assert!(s.contains("99,99"));
    }

    #[test]
    fn series_empty_is_header_only() {
        assert_eq!(format_series("e", &[], 5).lines().count(), 1);
    }

    #[test]
    fn series_respects_max_rows_at_boundary_lengths() {
        // The former floor-division stride emitted ALL 150 rows here
        // (150 / 100 == 1); ceiling division strides by 2.
        for (len, max_rows) in [
            (150usize, 100usize),
            (101, 100),
            (100, 100),
            (99, 100),
            (7, 3),
        ] {
            let values: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let s = format_series("b", &values, max_rows);
            let rows = s.lines().count() - 1;
            assert!(
                rows <= max_rows,
                "len={len} max_rows={max_rows}: emitted {rows} rows"
            );
            // The final point always survives downsampling.
            assert!(s
                .lines()
                .last()
                .unwrap()
                .starts_with(&format!("{}", len - 1)));
        }
    }

    #[test]
    fn violin_shows_quartiles_and_bars() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let v = format_violin("costs", &values, 5);
        assert!(v.contains("median=50.5"));
        assert!(v.contains('#'));
        assert_eq!(v.lines().count(), 6);
        assert!(format_violin("none", &[], 5).contains("no data"));
    }

    #[test]
    fn violin_counts_series_max_in_last_bin() {
        // Upper-edge pinning: the histogram's half-open bins clamp the
        // closed upper edge into the final bin, so the series max is
        // counted there — never dropped. Three values sit at the max;
        // the last bar must show all three.
        let values = [0.0, 0.1, 0.2, 1.0, 1.0, 1.0];
        let v = format_violin("edge", &values, 4);
        let bars: Vec<&str> = v.lines().skip(1).collect();
        assert_eq!(bars.len(), 4);
        assert!(bars[3].trim_end().ends_with("### 3"), "{v}");
        // Nothing dropped: bar counts sum to the series length.
        let total: usize = bars
            .iter()
            .map(|b| b.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, values.len());
    }

    #[test]
    fn curves_handle_ragged_lengths() {
        let s = format_curves(&["a", "b"], &[vec![1.0, 2.0, 3.0], vec![10.0]], 10).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "iter,a,b");
        assert!(lines[1].starts_with("0,1.000000,10.000000"));
        assert!(lines.last().unwrap().starts_with("2,3.000000,"));
        assert!(lines.last().unwrap().ends_with(','));
    }

    #[test]
    fn curves_mismatched_labels_are_a_typed_error() {
        let err = format_curves(&["a"], &[vec![1.0], vec![2.0]], 10).unwrap_err();
        assert!(matches!(
            err,
            BenchError::LabelCountMismatch {
                labels: 1,
                curves: 2
            }
        ));
    }

    #[test]
    fn curves_respect_max_rows_at_boundary_lengths() {
        let long: Vec<f64> = (0..150).map(|i| i as f64).collect();
        let s = format_curves(&["a"], &[long], 100).unwrap();
        let rows = s.lines().count() - 1;
        assert!(rows <= 100, "emitted {rows} rows");
        assert!(s.lines().last().unwrap().starts_with("149,"));
    }
}
