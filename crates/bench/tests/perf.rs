//! End-to-end tests of the `perf` binary: the acceptance-criteria paths.
//! A real (tiny) `run` emits schema-valid `BENCH_*.json`; `validate`
//! accepts them; `compare` against an injected 2× median slowdown exits
//! nonzero with a `REGRESSION` line and `--format github` annotations;
//! self-compare and `--check-only` exit zero.

use al_bench::perf::{load_report, SCHEMA_VERSION};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn perf(args: &[&str], cwd: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_perf"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("perf binary runs")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("al-perf-test-{tag}-{}", std::process::id()));
    // A stale directory from a previous crashed run is fine to reuse.
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

/// One real quick-tier run of the cheapest group, then every downstream
/// CLI path against its artifact. Grouped into one test because the run
/// itself (a real AMR measurement) is the expensive part.
#[test]
fn run_validate_and_compare_round_trip() {
    let dir = temp_dir("run");
    let out = perf(
        &[
            "run",
            "--tier",
            "quick",
            "--group",
            "amr",
            "--out",
            dir.to_str().unwrap(),
        ],
        &dir,
    );
    assert!(out.status.success(), "run failed: {out:?}");
    let bench_path = dir.join("BENCH_amr.json");
    assert!(bench_path.exists(), "run writes BENCH_amr.json");

    // The artifact is schema-valid both through the library and the CLI.
    let report = load_report(&bench_path).expect("emitted file validates");
    assert_eq!(report.schema_version, SCHEMA_VERSION);
    assert_eq!(report.group, "amr");
    assert_eq!(report.scenarios.len(), 2);
    let out = perf(&["validate", bench_path.to_str().unwrap()], &dir);
    assert!(out.status.success(), "validate failed: {out:?}");

    // Self-compare: zero regressions, exit 0.
    let out = perf(
        &[
            "compare",
            bench_path.to_str().unwrap(),
            bench_path.to_str().unwrap(),
        ],
        &dir,
    );
    assert!(out.status.success(), "self-compare must pass: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 regression(s)"), "{text}");

    // Injected regression fixture: double every median and shift the IQR
    // fully above the old one — the exact shape `compare` must flag.
    let mut slowed = report.clone();
    for s in &mut slowed.scenarios {
        // Doubling plus an own-max shift puts the whole new IQR strictly
        // above the old one even for skewed sample distributions.
        let shift = s.stats.max_s;
        s.stats.min_s = s.stats.min_s * 2.0 + shift;
        s.stats.q1_s = s.stats.q1_s * 2.0 + shift;
        s.stats.median_s = s.stats.median_s * 2.0 + shift;
        s.stats.q3_s = s.stats.q3_s * 2.0 + shift;
        s.stats.max_s = s.stats.max_s * 2.0 + shift;
        s.stats.mean_s = s.stats.mean_s * 2.0 + shift;
    }
    let slow_path = dir.join("BENCH_amr_slow.json");
    std::fs::write(&slow_path, slowed.to_json().render()).unwrap();
    let out = perf(
        &[
            "compare",
            bench_path.to_str().unwrap(),
            slow_path.to_str().unwrap(),
        ],
        &dir,
    );
    assert!(
        !out.status.success(),
        "2x slowdown must exit nonzero: {out:?}"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSION"), "{text}");

    // --check-only downgrades the same comparison to advisory (exit 0),
    // and --format github emits workflow annotations.
    let out = perf(
        &[
            "compare",
            bench_path.to_str().unwrap(),
            slow_path.to_str().unwrap(),
            "--check-only",
            "--format",
            "github",
        ],
        &dir,
    );
    assert!(out.status.success(), "check-only must exit 0: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("::warning"), "{text}");

    // The improvement direction (old = slowed, new = fast) does not fail.
    let out = perf(
        &[
            "compare",
            slow_path.to_str().unwrap(),
            bench_path.to_str().unwrap(),
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "improvements are not failures: {out:?}"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("improvement"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_and_bad_input_exit_two() {
    let dir = temp_dir("usage");
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["run", "--tier", "warp"][..],
        &["run", "--group", "nope"][..],
        &["compare", "only-one-operand"][..],
        &["compare", "a", "b", "--threshold", "-1"][..],
    ] {
        let out = perf(args, &dir);
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
    }
    // A malformed operand is also a usage-class failure (exit 2).
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{not json").unwrap();
    let out = perf(
        &["compare", bad.to_str().unwrap(), bad.to_str().unwrap()],
        &dir,
    );
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // validate reports invalid files with exit 1.
    let out = perf(&["validate", bad.to_str().unwrap()], &dir);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn list_names_the_contracted_scenarios() {
    let dir = temp_dir("list");
    let out = perf(&["list", "--tier", "quick"], &dir);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "linalg/cholesky_extend_n",
        "linalg/cholesky_refit_n",
        "gp/local_select_100k",
        "amr/solver_step_threads_1",
        "al/rgma_sweep_",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
