//! Cross-validated comparison of AL strategies: aggregate statistics over
//! batches of trajectories and paired tests on shared partitions — the
//! "robust comparison of AL strategies" the paper's offline simulator
//! exists to enable.

use crate::trajectory::Trajectory;
use al_linalg::stats;

/// Aggregate statistics of one strategy over a batch of trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyStats {
    /// Strategy label.
    pub strategy: String,
    /// Trajectories aggregated.
    pub n_trajectories: usize,
    /// Mean / sample-std of the final cost-model RMSE.
    pub final_rmse_cost: (f64, f64),
    /// Mean / sample-std of the final memory-model RMSE.
    pub final_rmse_mem: (f64, f64),
    /// Mean / sample-std of the total cumulative cost.
    pub total_cost: (f64, f64),
    /// Mean / sample-std of the total cumulative regret.
    pub total_regret: (f64, f64),
    /// Mean number of memory violations.
    pub mean_violations: f64,
    /// Mean trajectory length (differs across strategies when early
    /// stopping fires).
    pub mean_length: f64,
}

fn mean_std(v: &[f64]) -> (f64, f64) {
    (stats::mean(v), stats::std_dev(v))
}

/// Summarize a batch of trajectories from one strategy.
///
/// Panics on an empty batch.
pub fn summarize(trajectories: &[Trajectory]) -> StrategyStats {
    assert!(
        !trajectories.is_empty(),
        "cannot summarize zero trajectories"
    );
    let final_of = |f: &dyn Fn(&crate::trajectory::IterationRecord) -> f64| -> Vec<f64> {
        trajectories
            .iter()
            .filter_map(|t| t.records.last().map(f))
            .collect()
    };
    StrategyStats {
        strategy: trajectories[0].strategy.clone(),
        n_trajectories: trajectories.len(),
        final_rmse_cost: mean_std(&final_of(&|r| r.rmse_cost)),
        final_rmse_mem: mean_std(&final_of(&|r| r.rmse_mem)),
        total_cost: mean_std(
            &trajectories
                .iter()
                .map(|t| t.total_cost().value())
                .collect::<Vec<_>>(),
        ),
        total_regret: mean_std(
            &trajectories
                .iter()
                .map(|t| t.total_regret().value())
                .collect::<Vec<_>>(),
        ),
        mean_violations: stats::mean(
            &trajectories
                .iter()
                .map(|t| t.violations() as f64)
                .collect::<Vec<_>>(),
        ),
        mean_length: stats::mean(
            &trajectories
                .iter()
                .map(|t| t.len() as f64)
                .collect::<Vec<_>>(),
        ),
    }
}

/// Paired comparison on shared partitions (as produced by
/// [`crate::batch::run_batch`], where trajectory `t` of every strategy
/// uses the same partition): count how often `a` beats `b` on a metric
/// where **smaller is better**. Ties count for neither.
pub fn paired_wins(
    a: &[Trajectory],
    b: &[Trajectory],
    metric: impl Fn(&Trajectory) -> f64,
) -> (usize, usize) {
    assert_eq!(a.len(), b.len(), "paired comparison needs equal batches");
    let mut wins_a = 0;
    let mut wins_b = 0;
    for (ta, tb) in a.iter().zip(b) {
        let (ma, mb) = (metric(ta), metric(tb));
        if ma < mb {
            wins_a += 1;
        } else if mb < ma {
            wins_b += 1;
        }
    }
    (wins_a, wins_b)
}

/// Two-sided sign-test p-value for `wins` successes out of `n` untied
/// pairs under the null of equal strategies (exact binomial).
pub fn sign_test_p(wins: usize, n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    assert!(wins <= n);
    // Exact: p = 2 · P(X ≤ min(wins, n−wins)), X ~ Bin(n, 1/2), capped at 1.
    let k = wins.min(n - wins);
    let mut tail = 0.0f64;
    for i in 0..=k {
        tail += binomial_pmf(n, i);
    }
    (2.0 * tail).min(1.0)
}

fn binomial_pmf(n: usize, k: usize) -> f64 {
    // C(n, k) / 2^n computed in log space for robustness.
    let mut log_c = 0.0f64;
    for i in 0..k {
        log_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    (log_c - n as f64 * 2f64.ln()).exp()
}

/// Text table of per-strategy statistics.
pub fn format_stats_table(stats: &[StrategyStats]) -> String {
    let mut out = format!(
        "{:<18} {:>4} {:>20} {:>18} {:>18} {:>10} {:>8}\n",
        "strategy", "n", "final RMSE (±σ)", "cost (±σ)", "regret (±σ)", "violations", "length"
    );
    for s in stats {
        out.push_str(&format!(
            "{:<18} {:>4} {:>12.4} ±{:>6.4} {:>11.2} ±{:>5.2} {:>11.3} ±{:>5.3} {:>10.1} {:>8.1}\n",
            s.strategy,
            s.n_trajectories,
            s.final_rmse_cost.0,
            s.final_rmse_cost.1,
            s.total_cost.0,
            s.total_cost.1,
            s.total_regret.0,
            s.total_regret.1,
            s.mean_violations,
            s.mean_length
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stopping::StopReason;
    use crate::trajectory::IterationRecord;

    fn trajectory(label: &str, final_rmse: f64, total_cost: f64, regret: f64) -> Trajectory {
        Trajectory {
            strategy: label.into(),
            n_init: 1,
            initial_rmse_cost: 1.0,
            initial_rmse_mem: 1.0,
            records: vec![IterationRecord {
                iteration: 0,
                dataset_index: 0,
                cost: al_units::NodeHours::new(total_cost),
                memory: al_units::Megabytes::new(1.0),
                regret: al_units::NodeHours::new(regret),
                cumulative_cost: al_units::NodeHours::new(total_cost),
                cumulative_regret: al_units::NodeHours::new(regret),
                rmse_cost: final_rmse,
                rmse_mem: final_rmse * 2.0,
            }],
            stop_reason: StopReason::ActiveExhausted,
        }
    }

    #[test]
    fn summarize_aggregates_correctly() {
        let ts = vec![
            trajectory("A", 1.0, 10.0, 0.0),
            trajectory("A", 3.0, 20.0, 2.0),
        ];
        let s = summarize(&ts);
        assert_eq!(s.strategy, "A");
        assert_eq!(s.n_trajectories, 2);
        assert!((s.final_rmse_cost.0 - 2.0).abs() < 1e-12);
        assert!((s.total_cost.0 - 15.0).abs() < 1e-12);
        assert!((s.total_regret.0 - 1.0).abs() < 1e-12);
        assert!((s.mean_violations - 0.5).abs() < 1e-12);
        assert!((s.mean_length - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero trajectories")]
    fn summarize_rejects_empty() {
        summarize(&[]);
    }

    #[test]
    fn paired_wins_counts_and_ignores_ties() {
        let a = vec![
            trajectory("A", 1.0, 0.0, 0.0),
            trajectory("A", 2.0, 0.0, 0.0),
            trajectory("A", 3.0, 0.0, 0.0),
        ];
        let b = vec![
            trajectory("B", 2.0, 0.0, 0.0),
            trajectory("B", 2.0, 0.0, 0.0),
            trajectory("B", 1.0, 0.0, 0.0),
        ];
        let (wa, wb) = paired_wins(&a, &b, |t| t.records[0].rmse_cost);
        assert_eq!((wa, wb), (1, 1));
    }

    #[test]
    fn sign_test_matches_hand_computed_values() {
        // n = 5, wins = 5: p = 2/32 = 0.0625.
        assert!((sign_test_p(5, 5) - 0.0625).abs() < 1e-12);
        // n = 5, wins = 0 symmetric.
        assert!((sign_test_p(0, 5) - 0.0625).abs() < 1e-12);
        // Balanced outcome: p capped at 1.
        assert_eq!(sign_test_p(3, 6), 1.0);
        assert_eq!(sign_test_p(0, 0), 1.0);
        // n = 10, wins = 9: p = 2·(C(10,0)+C(10,1))/1024 = 22/1024.
        assert!((sign_test_p(9, 10) - 22.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn stats_table_renders_rows() {
        let s = summarize(&[trajectory("RGMA", 1.0, 5.0, 0.5)]);
        let table = format_stats_table(&[s]);
        assert!(table.contains("RGMA"));
        assert_eq!(table.lines().count(), 2);
    }
}
