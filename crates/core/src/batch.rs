//! Batch-mode AL: run every strategy on many random partitions in
//! parallel, so comparisons are paired (same partitions for all
//! strategies) and statistics are independent of any single shuffle —
//! the role of the paper's `multiprocessing` outer loop.
//!
//! This module is one of the three `spawn_approved` fan-outs under
//! alint L6 (DESIGN §9): the job list is a deterministic cross
//! product, every worker writes its result into the job's own
//! index-addressed slot, each trajectory's RNG is seeded from
//! `base_seed + t` alone, and the assembly loop below reads the slots
//! in input order — no hash containers anywhere, so thread scheduling
//! can never reach the numbers.

use crate::procedure::{run_trajectory, AlOptions};
use crate::strategy::StrategyKind;
use crate::trajectory::Trajectory;
use al_dataset::{Dataset, Partition};
use al_gp::GpError;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// What to run: the cross product of strategies × random partitions.
#[derive(Debug, Clone)]
pub struct BatchSpec {
    /// Strategies to compare.
    pub strategies: Vec<StrategyKind>,
    /// Initial-partition size (the paper's `n_init ∈ {1, 50, 100}`).
    pub n_init: usize,
    /// Test-partition size (the paper reserves 200 of 600).
    pub n_test: usize,
    /// Number of random partitions (trajectories) per strategy.
    pub n_trajectories: usize,
    /// Base seed; trajectory `t` uses partition seed `base_seed + t`, so
    /// all strategies see the same partitions (paired comparison).
    pub base_seed: u64,
    /// Worker threads (0 = one per available core).
    pub n_threads: usize,
}

/// Run the batch; returns, per strategy, its trajectories in partition
/// order. Results are deterministic regardless of thread count.
pub fn run_batch(
    dataset: &Dataset,
    spec: &BatchSpec,
    opts: &AlOptions,
) -> Result<Vec<(StrategyKind, Vec<Trajectory>)>, GpError> {
    let jobs: Vec<(usize, usize)> = (0..spec.strategies.len())
        .flat_map(|s| (0..spec.n_trajectories).map(move |t| (s, t)))
        .collect();
    if jobs.is_empty() {
        return Ok(spec.strategies.iter().map(|&s| (s, Vec::new())).collect());
    }

    let n_threads = if spec.n_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        spec.n_threads
    }
    .min(jobs.len());

    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<Trajectory, GpError>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());

    if let Err(payload) = crossbeam::thread::scope(|scope| {
        for _ in 0..n_threads {
            let cursor = &cursor;
            let results = &results;
            let jobs = &jobs;
            scope.spawn(move |_| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= jobs.len() {
                    break;
                }
                let (s, t) = jobs[k];
                let kind = spec.strategies[s];
                let mut prng = StdRng::seed_from_u64(spec.base_seed.wrapping_add(t as u64));
                let partition =
                    Partition::random(dataset.len(), spec.n_init, spec.n_test, &mut prng);
                // Strategy randomness differs per (strategy, trajectory).
                let traj_opts = AlOptions {
                    seed: spec
                        .base_seed
                        .wrapping_add((t as u64) << 8)
                        .wrapping_add(s as u64),
                    ..opts.clone()
                };
                let result = run_trajectory(dataset, &partition, kind, &traj_opts);
                results.lock()[k] = Some(result);
            });
        }
    }) {
        // A worker panicked; re-raise its payload rather than masking it
        // behind a second, less informative panic here.
        std::panic::resume_unwind(payload);
    }

    let collected = results.into_inner();
    // Every worker exited normally (a panic would have unwound above), so
    // the work-stealing cursor guarantees each slot was filled exactly once.
    debug_assert!(collected.iter().all(Option::is_some));
    let mut per_strategy: Vec<(StrategyKind, Vec<Trajectory>)> = spec
        .strategies
        .iter()
        .map(|&s| (s, Vec::with_capacity(spec.n_trajectories)))
        .collect();
    for (k, result) in collected.into_iter().enumerate() {
        let (s, _) = jobs[k];
        if let Some(result) = result {
            per_strategy[s].1.push(result?);
        }
    }
    Ok(per_strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::test_util::synth_dataset;
    use al_gp::FitOptions;

    fn fast_opts() -> AlOptions {
        AlOptions {
            initial_fit: FitOptions {
                n_restarts: 0,
                max_iters: 15,
                ..FitOptions::default()
            },
            refit: FitOptions {
                n_restarts: 0,
                max_iters: 5,
                ..FitOptions::default()
            },
            optimize_every: 10,
            max_iterations: Some(8),
            mem_limit_log: Some(al_units::LogMegabytes::new(1.0)),
            ..AlOptions::default()
        }
    }

    #[test]
    fn batch_runs_all_strategy_trajectory_pairs() {
        let d = synth_dataset(40);
        let spec = BatchSpec {
            strategies: vec![StrategyKind::RandUniform, StrategyKind::MinPred],
            n_init: 3,
            n_test: 12,
            n_trajectories: 3,
            base_seed: 5,
            n_threads: 2,
        };
        let out = run_batch(&d, &spec, &fast_opts()).unwrap();
        assert_eq!(out.len(), 2);
        for (kind, trajectories) in &out {
            assert_eq!(trajectories.len(), 3);
            for t in trajectories {
                assert_eq!(t.strategy, kind.label());
                assert_eq!(t.n_init, 3);
            }
        }
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        let d = synth_dataset(36);
        let mk_spec = |n_threads| BatchSpec {
            strategies: vec![StrategyKind::RandGoodness { base: 10.0 }],
            n_init: 2,
            n_test: 10,
            n_trajectories: 2,
            base_seed: 9,
            n_threads,
        };
        let a = run_batch(&d, &mk_spec(1), &fast_opts()).unwrap();
        let b = run_batch(&d, &mk_spec(4), &fast_opts()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn strategies_share_partitions_for_paired_comparison() {
        let d = synth_dataset(36);
        let spec = BatchSpec {
            strategies: vec![StrategyKind::RandUniform, StrategyKind::MaxSigma],
            n_init: 2,
            n_test: 10,
            n_trajectories: 2,
            base_seed: 3,
            n_threads: 2,
        };
        let out = run_batch(&d, &spec, &fast_opts()).unwrap();
        // Same partition ⇒ same initial RMSE for deterministic initial fit.
        for t in 0..2 {
            assert_eq!(
                out[0].1[t].initial_rmse_cost, out[1].1[t].initial_rmse_cost,
                "trajectory {t} partitions must match across strategies"
            );
        }
        // Different partitions across trajectories.
        assert_ne!(out[0].1[0].initial_rmse_cost, out[0].1[1].initial_rmse_cost);
    }

    #[test]
    fn empty_spec_yields_empty_results() {
        let d = synth_dataset(24);
        let spec = BatchSpec {
            strategies: vec![],
            n_init: 2,
            n_test: 8,
            n_trajectories: 0,
            base_seed: 0,
            n_threads: 1,
        };
        assert!(run_batch(&d, &spec, &fast_opts()).unwrap().is_empty());
    }
}
