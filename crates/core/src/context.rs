//! What a selection algorithm is allowed to see: the GP predictions for
//! every remaining candidate (paper Algorithm 1, lines 3–5).

use al_units::LogMegabytes;

/// Model predictions over the remaining Active candidates, all in the
/// transformed spaces the models work in (log10 responses, unit-cube
/// features). Index `i` refers to the `i`-th remaining candidate; the
/// procedure maps selected indices back to dataset rows.
#[derive(Debug, Clone, Copy)]
pub struct SelectionContext<'a> {
    /// Cost-model posterior means `μ_cost` (log10 node-hours).
    pub mu_cost: &'a [f64],
    /// Cost-model posterior standard deviations `σ_cost`.
    pub sigma_cost: &'a [f64],
    /// Memory-model posterior means `μ_mem` (log10 MB).
    pub mu_mem: &'a [f64],
    /// Memory-model posterior standard deviations `σ_mem`.
    pub sigma_mem: &'a [f64],
    /// Memory limit `L_mem` in log10 MB, when the workflow imposes one.
    pub mem_limit_log: Option<LogMegabytes>,
}

impl<'a> SelectionContext<'a> {
    /// Number of remaining candidates.
    pub fn len(&self) -> usize {
        self.mu_cost.len()
    }

    /// True when no candidates remain.
    pub fn is_empty(&self) -> bool {
        self.mu_cost.is_empty()
    }

    /// Assert the four prediction vectors are aligned (debug aid).
    pub fn validate(&self) {
        assert_eq!(self.mu_cost.len(), self.sigma_cost.len());
        assert_eq!(self.mu_cost.len(), self.mu_mem.len());
        assert_eq!(self.mu_cost.len(), self.sigma_mem.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_validate() {
        let mu = [0.1, 0.2];
        let ctx = SelectionContext {
            mu_cost: &mu,
            sigma_cost: &mu,
            mu_mem: &mu,
            sigma_mem: &mu,
            mem_limit_log: None,
        };
        ctx.validate();
        assert_eq!(ctx.len(), 2);
        assert!(!ctx.is_empty());
    }

    #[test]
    #[should_panic]
    fn validate_catches_misaligned_vectors() {
        let ctx = SelectionContext {
            mu_cost: &[0.1, 0.2],
            sigma_cost: &[0.1],
            mu_mem: &[0.1, 0.2],
            sigma_mem: &[0.1, 0.2],
            mem_limit_log: None,
        };
        ctx.validate();
    }
}
