//! CSV persistence for AL trajectories, so experiment outputs can be
//! archived and re-analysed without re-running AL (the role of the
//! paper's published analysis notebooks).

use crate::stopping::StopReason;
use crate::trajectory::{IterationRecord, Trajectory};
use al_units::{Megabytes, NodeHours};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Header of the per-iteration section.
pub const RECORD_HEADER: &str =
    "iteration,dataset_index,cost,memory,regret,cumulative_cost,cumulative_regret,rmse_cost,rmse_mem";

fn stop_reason_str(r: StopReason) -> &'static str {
    match r {
        StopReason::ActiveExhausted => "active_exhausted",
        StopReason::AllCandidatesRefused => "all_candidates_refused",
        StopReason::MaxIterations => "max_iterations",
        StopReason::PredictionsStabilized => "predictions_stabilized",
        StopReason::HyperparamsStabilized => "hyperparams_stabilized",
    }
}

fn parse_stop_reason(s: &str) -> Option<StopReason> {
    Some(match s {
        "active_exhausted" => StopReason::ActiveExhausted,
        "all_candidates_refused" => StopReason::AllCandidatesRefused,
        "max_iterations" => StopReason::MaxIterations,
        "predictions_stabilized" => StopReason::PredictionsStabilized,
        "hyperparams_stabilized" => StopReason::HyperparamsStabilized,
        _ => return None,
    })
}

/// Write one trajectory: a `#`-prefixed metadata preamble followed by the
/// record rows.
pub fn write_trajectory_csv(trajectory: &Trajectory, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# strategy: {}", trajectory.strategy)?;
    writeln!(w, "# n_init: {}", trajectory.n_init)?;
    writeln!(w, "# initial_rmse_cost: {}", trajectory.initial_rmse_cost)?;
    writeln!(w, "# initial_rmse_mem: {}", trajectory.initial_rmse_mem)?;
    writeln!(
        w,
        "# stop_reason: {}",
        stop_reason_str(trajectory.stop_reason)
    )?;
    writeln!(w, "{RECORD_HEADER}")?;
    for r in &trajectory.records {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{}",
            r.iteration,
            r.dataset_index,
            r.cost,
            r.memory,
            r.regret,
            r.cumulative_cost,
            r.cumulative_regret,
            r.rmse_cost,
            r.rmse_mem
        )?;
    }
    w.flush()
}

/// Read a trajectory written by [`write_trajectory_csv`].
pub fn read_trajectory_csv(path: &Path) -> io::Result<Trajectory> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let reader = BufReader::new(File::open(path)?);
    let mut strategy = String::new();
    let mut n_init = 0usize;
    let mut initial_rmse_cost = f64::NAN;
    let mut initial_rmse_mem = f64::NAN;
    let mut stop_reason = StopReason::ActiveExhausted;
    let mut records = Vec::new();
    let mut saw_header = false;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(meta) = line.strip_prefix('#') {
            let (key, value) = meta
                .split_once(':')
                .ok_or_else(|| bad(format!("line {}: bad metadata", lineno + 1)))?;
            let value = value.trim();
            match key.trim() {
                "strategy" => strategy = value.to_string(),
                "n_init" => {
                    n_init = value.parse().map_err(|e| bad(format!("n_init: {e}")))?;
                }
                "initial_rmse_cost" => {
                    initial_rmse_cost = value.parse().map_err(|e| bad(format!("rmse: {e}")))?;
                }
                "initial_rmse_mem" => {
                    initial_rmse_mem = value.parse().map_err(|e| bad(format!("rmse: {e}")))?;
                }
                "stop_reason" => {
                    stop_reason = parse_stop_reason(value)
                        .ok_or_else(|| bad(format!("unknown stop reason {value:?}")))?;
                }
                other => return Err(bad(format!("unknown metadata key {other:?}"))),
            }
            continue;
        }
        if !saw_header {
            if line != RECORD_HEADER {
                return Err(bad(format!("line {}: bad header", lineno + 1)));
            }
            saw_header = true;
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 9 {
            return Err(bad(format!(
                "line {}: expected 9 fields, got {}",
                lineno + 1,
                fields.len()
            )));
        }
        let pf = |i: usize| -> io::Result<f64> {
            fields[i]
                .parse()
                .map_err(|e| bad(format!("line {}: field {i}: {e}", lineno + 1)))
        };
        let pu = |i: usize| -> io::Result<usize> {
            fields[i]
                .parse()
                .map_err(|e| bad(format!("line {}: field {i}: {e}", lineno + 1)))
        };
        records.push(IterationRecord {
            iteration: pu(0)?,
            dataset_index: pu(1)?,
            cost: NodeHours::new(pf(2)?),
            memory: Megabytes::new(pf(3)?),
            regret: NodeHours::new(pf(4)?),
            cumulative_cost: NodeHours::new(pf(5)?),
            cumulative_regret: NodeHours::new(pf(6)?),
            rmse_cost: pf(7)?,
            rmse_mem: pf(8)?,
        });
    }
    Ok(Trajectory {
        strategy,
        n_init,
        initial_rmse_cost,
        initial_rmse_mem,
        records,
        stop_reason,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trajectory() -> Trajectory {
        Trajectory {
            strategy: "RGMA".into(),
            n_init: 50,
            initial_rmse_cost: 1.25,
            initial_rmse_mem: 0.75,
            records: (0..5)
                .map(|i| IterationRecord {
                    iteration: i,
                    dataset_index: 100 + i,
                    cost: NodeHours::new(0.1 * (i + 1) as f64),
                    memory: Megabytes::new(1.0 + i as f64),
                    regret: NodeHours::new(if i == 3 { 0.4 } else { 0.0 }),
                    cumulative_cost: NodeHours::new(0.1 * ((i + 1) * (i + 2) / 2) as f64),
                    cumulative_regret: NodeHours::new(if i >= 3 { 0.4 } else { 0.0 }),
                    rmse_cost: 1.0 / (i + 1) as f64,
                    rmse_mem: 2.0 / (i + 1) as f64,
                })
                .collect(),
            stop_reason: StopReason::AllCandidatesRefused,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("al_traj_{name}_{}.csv", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let path = tmp("roundtrip");
        let t = sample_trajectory();
        write_trajectory_csv(&t, &path).unwrap();
        let back = read_trajectory_csv(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_stop_reasons_roundtrip() {
        for reason in [
            StopReason::ActiveExhausted,
            StopReason::AllCandidatesRefused,
            StopReason::MaxIterations,
            StopReason::PredictionsStabilized,
            StopReason::HyperparamsStabilized,
        ] {
            assert_eq!(parse_stop_reason(stop_reason_str(reason)), Some(reason));
        }
        assert_eq!(parse_stop_reason("bogus"), None);
    }

    #[test]
    fn read_rejects_malformed_files() {
        let path = tmp("bad");
        std::fs::write(&path, "# strategy RGMA\n").unwrap(); // missing colon
        assert!(read_trajectory_csv(&path).is_err());
        std::fs::write(&path, "not,the,header\n").unwrap();
        assert!(read_trajectory_csv(&path).is_err());
        std::fs::write(&path, format!("{RECORD_HEADER}\n1,2,3\n")).unwrap();
        assert!(read_trajectory_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trajectory_roundtrips() {
        let path = tmp("empty");
        let t = Trajectory {
            records: vec![],
            ..sample_trajectory()
        };
        write_trajectory_csv(&t, &path).unwrap();
        let back = read_trajectory_csv(&path).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.strategy, "RGMA");
        std::fs::remove_file(&path).ok();
    }
}
