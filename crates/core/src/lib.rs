// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
#![warn(missing_docs)]

//! Cost- and memory-aware active learning (the paper's contribution).
//!
//! Implements Algorithm 1 (the AL procedure that trains cost and memory
//! GPR models by selecting one experiment at a time from an Active pool),
//! the five candidate-selection algorithms of Section IV-B —
//! `RandUniform`, `MaxSigma`, `MinPred`, `RandGoodness` and the
//! memory-aware `RGMA` (Algorithm 2) — and the evaluation metrics of
//! Section V-B: non-log RMSE on the Test partition, cumulative cost, and
//! cumulative regret with respect to a memory limit `L_mem`.
//!
//! [`batch::run_batch`] runs many trajectories over random partitions in
//! parallel (the paper's `multiprocessing` batches) so strategy statistics
//! are independent of any particular partition.
//!
//! [`session`] re-expresses the loop body as an explicit [`SessionState`]
//! value plus a pure [`step`] transition function — the serving-layer
//! shape — and [`store`] shards many live sessions behind per-shard locks
//! with a warm-start hyperparameter cache. [`run_trajectory`] is a thin
//! driver over the session core; the two are byte-identical by test.

pub mod analysis;
pub mod batch;
pub mod context;
pub mod io;
pub mod metrics;
pub mod procedure;
pub mod session;
pub mod stopping;
pub mod store;
pub mod strategy;
pub mod trajectory;

pub use batch::{run_batch, BatchSpec};
pub use context::SelectionContext;
pub use procedure::{run_trajectory, AlOptions};
pub use session::{
    step, Decision, EvalSet, Observation, Query, SessionConfig, SessionState, WarmHyperparams,
};
pub use stopping::StopReason;
pub use store::{HyperparamLru, SessionError, SessionStore, WarmKey};
pub use strategy::{SelectionStrategy, StrategyKind};
pub use trajectory::{IterationRecord, Trajectory};
