//! Evaluation metrics (paper Section V-B): non-log RMSE on the Test
//! partition, cumulative cost, and cumulative regret against a memory
//! limit.

use al_dataset::transform::unlog10_response;
use al_linalg::stats;
use al_units::{Megabytes, NodeHours};

/// RMSE between model predictions (in log10 space, as the GPs produce
/// them) and raw responses: predictions are exponentiated back to natural
/// units first, exactly as the paper's Eq. 10 prescribes.
pub fn rmse_nonlog(pred_log: &[f64], actual_raw: &[f64]) -> f64 {
    assert_eq!(pred_log.len(), actual_raw.len());
    let errors: Vec<f64> = pred_log
        .iter()
        .zip(actual_raw)
        .map(|(p, a)| unlog10_response(*p) - a)
        .collect();
    stats::rms(&errors)
}

/// Weighted variant (paper Eq. 12): `sqrt(Σ ρ_i e_i²)`; weights should sum
/// to 1. Lets the experimenter prioritize accuracy in chosen regions, e.g.
/// weighting by cost so expensive-configuration errors matter more.
pub fn weighted_rmse_nonlog(pred_log: &[f64], actual_raw: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(pred_log.len(), actual_raw.len());
    let errors: Vec<f64> = pred_log
        .iter()
        .zip(actual_raw)
        .map(|(p, a)| unlog10_response(*p) - a)
        .collect();
    stats::weighted_rms(&errors, weights)
}

/// Normalized cost weights `ρ_i ∝ c_i` for the cost-weighted RMSE.
pub fn cost_weights(costs: &[f64]) -> Vec<f64> {
    let total: f64 = costs.iter().sum();
    assert!(total > 0.0, "total cost must be positive");
    costs.iter().map(|c| c / total).collect()
}

/// Running cumulative cost / cumulative regret tracker (Eq. 11).
///
/// Regret accounting: when a selected job's **actual** memory meets or
/// exceeds the limit, the job is assumed to crash at the very end and its
/// whole cost is the individual regret `IR_i = c_i`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CumulativeTracker {
    cc: NodeHours,
    cr: NodeHours,
    violations: u32,
}

impl CumulativeTracker {
    /// Record one selected experiment. `mem_limit_raw` is the limit in
    /// natural units; `None` disables regret accounting.
    /// Returns the individual regret of this selection.
    pub fn record(
        &mut self,
        cost: NodeHours,
        memory: Megabytes,
        mem_limit_raw: Option<Megabytes>,
    ) -> NodeHours {
        self.cc += cost;
        let ir = match mem_limit_raw {
            Some(limit) if memory >= limit => {
                self.violations += 1;
                cost
            }
            _ => NodeHours::default(),
        };
        self.cr += ir;
        ir
    }

    /// Cumulative cost `CC = Σ c_i` so far.
    pub fn cumulative_cost(&self) -> NodeHours {
        self.cc
    }

    /// Cumulative regret `CR = Σ IR_i` so far.
    pub fn cumulative_regret(&self) -> NodeHours {
        self.cr
    }

    /// Number of memory-violating selections so far.
    pub fn violations(&self) -> u32 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_nonlog_exponentiates_predictions() {
        // Perfect log predictions ⇒ zero error.
        let actual = [10.0, 100.0];
        let pred = [1.0, 2.0];
        assert!(rmse_nonlog(&pred, &actual) < 1e-12);
        // One decade off on the second point: error = 1000 − 100 = 900.
        let pred = [1.0, 3.0];
        let expected = (900.0f64 * 900.0 / 2.0).sqrt();
        assert!((rmse_nonlog(&pred, &actual) - expected).abs() < 1e-9);
    }

    #[test]
    fn weighted_rmse_reduces_to_uniform() {
        let actual = [10.0, 100.0];
        let pred = [1.2, 1.8];
        let uniform = [0.5, 0.5];
        assert!(
            (weighted_rmse_nonlog(&pred, &actual, &uniform) - rmse_nonlog(&pred, &actual)).abs()
                < 1e-12
        );
    }

    #[test]
    fn cost_weights_normalize() {
        let w = cost_weights(&[1.0, 3.0]);
        assert_eq!(w, vec![0.25, 0.75]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn cost_weights_reject_zero_total() {
        cost_weights(&[0.0, 0.0]);
    }

    #[test]
    fn tracker_accumulates_cost_and_regret() {
        let nh = NodeHours::new;
        let mb = Megabytes::new;
        let mut t = CumulativeTracker::default();
        // Under the limit: cost counted, no regret.
        assert_eq!(t.record(nh(2.0), mb(5.0), Some(mb(10.0))), nh(0.0));
        // At the limit: counts as a violation (m >= L).
        assert_eq!(t.record(nh(3.0), mb(10.0), Some(mb(10.0))), nh(3.0));
        // Above the limit.
        assert_eq!(t.record(nh(1.5), mb(20.0), Some(mb(10.0))), nh(1.5));
        assert!((t.cumulative_cost().value() - 6.5).abs() < 1e-12);
        assert!((t.cumulative_regret().value() - 4.5).abs() < 1e-12);
        assert_eq!(t.violations(), 2);
    }

    #[test]
    fn tracker_without_limit_never_regrets() {
        let mut t = CumulativeTracker::default();
        t.record(NodeHours::new(2.0), Megabytes::new(1e9), None);
        assert_eq!(t.cumulative_regret().value(), 0.0);
        assert_eq!(t.violations(), 0);
        assert_eq!(t.cumulative_cost().value(), 2.0);
    }
}
