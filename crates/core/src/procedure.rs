//! Algorithm 1: the active-learning procedure that incrementally trains
//! cost and memory GPR models by selecting one experiment at a time.

use crate::context::SelectionContext;
use crate::metrics::{self, CumulativeTracker};
use crate::stopping::{StabilizationDetector, StopReason, VectorStabilization};
use crate::strategy::StrategyKind;
use crate::trajectory::{IterationRecord, Trajectory};
use al_dataset::{Dataset, Partition};
use al_gp::{FitOptions, GpError, GpModel, KernelKind};
use al_linalg::Matrix;
use al_units::{LogMegabytes, Megabytes, NodeHours};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Options controlling one AL trajectory.
#[derive(Debug, Clone)]
pub struct AlOptions {
    /// Kernel family for both GP models (the paper uses the isotropic RBF).
    pub kernel: KernelKind,
    /// Initial length scale for unit-cube features.
    pub init_length_scale: f64,
    /// Initial observation-noise variance (log10-response units squared).
    pub noise_variance: f64,
    /// Hyperparameter optimization for the initial fit (multi-start).
    pub initial_fit: FitOptions,
    /// Hyperparameter optimization during AL (warm-started, cheap) — the
    /// paper's "use old model's parameters as a starting point".
    pub refit: FitOptions,
    /// Re-optimize hyperparameters every this many iterations; in between,
    /// models are refit (refactored) at fixed hyperparameters.
    pub optimize_every: usize,
    /// Optional cap on AL iterations (default: run the Active pool dry).
    /// With batching, each *selection* counts as one iteration.
    pub max_iterations: Option<usize>,
    /// Selections per retraining round (paper Section VI future work:
    /// "running multiple simulations in parallel at each iteration").
    /// With `batch_size > 1` the strategy picks that many candidates from
    /// the *same* (stale) predictions before the models retrain once —
    /// less greedy, but the round count drops by the batch factor.
    pub batch_size: usize,
    /// Memory limit `L_mem` in log10 MB. Required by RGMA; also enables
    /// regret accounting for every strategy.
    pub mem_limit_log: Option<LogMegabytes>,
    /// Optional stabilizing-predictions early stop `(window, tolerance)`.
    pub stabilization: Option<(usize, f64)>,
    /// Optional stabilizing-hyperparameters early stop
    /// `(consecutive quiet steps, relative tolerance)` on the cost model's
    /// hyperparameter vector.
    pub hyperparam_stabilization: Option<(usize, f64)>,
    /// Absorb newly acquired samples by `O(n²)` bordered-Cholesky updates
    /// ([`GpModel::augment`]) between hyperparameter re-optimizations,
    /// instead of `O(n³)` refactorizations. Numerically equivalent up to
    /// rounding (near-tie greedy picks may reorder). Off by default —
    /// full refits are the paper-faithful reference path; enable for
    /// large Active pools where the cubic refit dominates the loop.
    pub incremental: bool,
    /// Seed for the strategy's random draws.
    pub seed: u64,
}

impl Default for AlOptions {
    fn default() -> Self {
        AlOptions {
            kernel: KernelKind::Rbf,
            init_length_scale: 0.3,
            noise_variance: 1e-3,
            initial_fit: FitOptions::default(),
            refit: FitOptions::warm_start_only(),
            optimize_every: 10,
            max_iterations: None,
            batch_size: 1,
            mem_limit_log: None,
            stabilization: None,
            hyperparam_stabilization: None,
            incremental: false,
            seed: 0,
        }
    }
}

/// Growing training set: scaled features plus log responses.
struct TrainingSet {
    rows: Vec<f64>,
    n: usize,
    cost: Vec<f64>,
    memory: Vec<f64>,
}

impl TrainingSet {
    fn from_partition(dataset: &Dataset, indices: &[usize]) -> Self {
        let x = dataset.features_scaled(indices);
        TrainingSet {
            rows: x.as_slice().to_vec(),
            n: indices.len(),
            cost: dataset.log_cost(indices),
            memory: dataset.log_memory(indices),
        }
    }

    fn push(&mut self, dataset: &Dataset, index: usize) {
        self.rows.extend_from_slice(&dataset.scaled_row(index));
        self.n += 1;
        self.cost.extend(dataset.log_cost(&[index]));
        self.memory.extend(dataset.log_memory(&[index]));
    }

    fn x(&self) -> Matrix {
        Matrix::from_vec(self.n, 5, self.rows.clone())
    }
}

/// Run one AL trajectory of `kind` over the given partition (Algorithm 1).
///
/// Both GP models are fit on the Initial partition with full hyperparameter
/// optimization, then AL repeatedly: predicts all remaining Active
/// candidates, asks the strategy for one, acquires its responses, retrains,
/// and records cost/regret/RMSE metrics.
pub fn run_trajectory(
    dataset: &Dataset,
    partition: &Partition,
    kind: StrategyKind,
    opts: &AlOptions,
) -> Result<Trajectory, GpError> {
    assert!(
        !kind.is_memory_aware() || opts.mem_limit_log.is_some(),
        "RGMA requires AlOptions::mem_limit_log"
    );
    let strategy = kind.build();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut train = TrainingSet::from_partition(dataset, &partition.init);
    let mut gp_cost = GpModel::new(
        opts.kernel.build(opts.init_length_scale),
        opts.noise_variance,
    );
    let mut gp_mem = GpModel::new(
        opts.kernel.build(opts.init_length_scale),
        opts.noise_variance,
    );
    gp_cost.fit_optimized(&train.x(), &train.cost, &opts.initial_fit)?;
    gp_mem.fit_optimized(&train.x(), &train.memory, &opts.initial_fit)?;

    let x_test = dataset.features_scaled(&partition.test);
    let test_cost_raw = dataset.raw_cost(&partition.test);
    let test_mem_raw = dataset.raw_memory(&partition.test);
    let test_rmse = |gp_cost: &GpModel, gp_mem: &GpModel| -> Result<(f64, f64), GpError> {
        let pc = gp_cost.predict(&x_test)?;
        let pm = gp_mem.predict(&x_test)?;
        Ok((
            metrics::rmse_nonlog(&pc.mean, &test_cost_raw),
            metrics::rmse_nonlog(&pm.mean, &test_mem_raw),
        ))
    };
    let (initial_rmse_cost, initial_rmse_mem) = test_rmse(&gp_cost, &gp_mem)?;

    let mut active: Vec<usize> = partition.active.clone();
    let mem_limit_raw = opts.mem_limit_log.map(|l| l.to_megabytes());
    let mut tracker = CumulativeTracker::default();
    let mut detector = opts
        .stabilization
        .map(|(w, tol)| StabilizationDetector::new(w, tol));
    let mut hp_detector = opts
        .hyperparam_stabilization
        .map(|(w, tol)| VectorStabilization::new(w, tol));

    let mut records = Vec::with_capacity(active.len());
    let max_iterations = opts.max_iterations.unwrap_or(usize::MAX);
    assert!(opts.batch_size >= 1, "batch_size must be at least 1");
    let mut iteration = 0usize;

    let stop_reason = loop {
        if active.is_empty() {
            break StopReason::ActiveExhausted;
        }
        if iteration >= max_iterations {
            break StopReason::MaxIterations;
        }

        // Algorithm 1, lines 3–5: predict all remaining candidates, then
        // delegate the choice to the selection algorithm. With batching
        // (paper §VI), up to `batch_size` picks come from these same
        // (progressively shrinking) predictions before the models retrain.
        let x_active = dataset.features_scaled(&active);
        let pred_cost = gp_cost.predict(&x_active)?;
        let pred_mem = gp_mem.predict(&x_active)?;
        let mut mu_c = pred_cost.mean;
        let mut sg_c = pred_cost.std;
        let mut mu_m = pred_mem.mean;
        let mut sg_m = pred_mem.std;

        let mut picked: Vec<usize> = Vec::with_capacity(opts.batch_size);
        let mut refused = false;
        while picked.len() < opts.batch_size
            && !active.is_empty()
            && iteration + picked.len() < max_iterations
        {
            let ctx = SelectionContext {
                mu_cost: &mu_c,
                sigma_cost: &sg_c,
                mu_mem: &mu_m,
                sigma_mem: &sg_m,
                mem_limit_log: opts.mem_limit_log,
            };
            match strategy.select(&ctx, &mut rng) {
                Some(k) => {
                    picked.push(active.remove(k));
                    mu_c.remove(k);
                    sg_c.remove(k);
                    mu_m.remove(k);
                    sg_m.remove(k);
                }
                None => {
                    refused = true;
                    break;
                }
            }
        }
        if picked.is_empty() {
            break StopReason::AllCandidatesRefused;
        }

        let crossed_optimize_boundary =
            (iteration + picked.len()) / opts.optimize_every > iteration / opts.optimize_every;

        // Lines 6–9: acquire the batch. With incremental updates enabled,
        // each sample is absorbed by an O(n²) bordered-Cholesky update on
        // the spot; otherwise the models refit once after the batch.
        let mut acquired: Vec<(usize, NodeHours, Megabytes, NodeHours, NodeHours, NodeHours)> =
            Vec::new();
        for &dataset_index in &picked {
            let sample = dataset.sample(dataset_index);
            let cost = sample.cost_node_hours;
            let memory = sample.memory_mb;
            let regret = tracker.record(cost, memory, mem_limit_raw);
            train.push(dataset, dataset_index);
            if opts.incremental && !crossed_optimize_boundary {
                let row = dataset.scaled_row(dataset_index);
                gp_cost.augment(&row, dataset.log_cost(&[dataset_index])[0])?;
                gp_mem.augment(&row, dataset.log_memory(&[dataset_index])[0])?;
            }
            acquired.push((
                dataset_index,
                cost,
                memory,
                regret,
                tracker.cumulative_cost(),
                tracker.cumulative_regret(),
            ));
        }

        // Lines 10–11: retrain both models on Initial + everything learned,
        // periodically re-optimizing hyperparameters from a warm start
        // (cadence counted in selections, not rounds).
        if crossed_optimize_boundary {
            let x = train.x();
            gp_cost.fit_optimized(&x, &train.cost, &opts.refit)?;
            gp_mem.fit_optimized(&x, &train.memory, &opts.refit)?;
        } else if !opts.incremental {
            let x = train.x();
            gp_cost.fit(&x, &train.cost)?;
            gp_mem.fit(&x, &train.memory)?;
        }

        // RMSE is measured once per retraining round and shared by the
        // round's records (within a batch the model does not change).
        let (rmse_cost, rmse_mem) = test_rmse(&gp_cost, &gp_mem)?;
        for (offset, (dataset_index, cost, memory, regret, cc, cr)) in
            acquired.into_iter().enumerate()
        {
            records.push(IterationRecord {
                iteration: iteration + offset,
                dataset_index,
                cost,
                memory,
                regret,
                cumulative_cost: cc,
                cumulative_regret: cr,
                rmse_cost,
                rmse_mem,
            });
        }
        iteration += picked.len();

        if refused {
            break StopReason::AllCandidatesRefused;
        }
        if let Some(detector) = detector.as_mut() {
            if detector.push(rmse_cost) {
                break StopReason::PredictionsStabilized;
            }
        }
        if let Some(hp) = hp_detector.as_mut() {
            if hp.push(&gp_cost.hyperparams()) {
                break StopReason::HyperparamsStabilized;
            }
        }
    };

    Ok(Trajectory {
        strategy: kind.label().to_string(),
        n_init: partition.init.len(),
        initial_rmse_cost,
        initial_rmse_mem,
        records,
        stop_reason,
    })
}

#[cfg(test)]
pub(crate) mod test_util {
    use al_amr_sim::SimulationConfig;
    use al_dataset::{Dataset, Sample};

    /// Deterministic synthetic dataset with smooth, learnable responses:
    /// cost grows multiplicatively in `maxlevel`/`mx`, memory in
    /// `mx`/`maxlevel` divided by `p` — the same qualitative shape as the
    /// AMR data, but cheap to build in tests.
    pub(crate) fn synth_dataset(n: usize) -> Dataset {
        let ps = [4u32, 8, 16, 32];
        let mxs = [8usize, 16, 24, 32];
        let mls = [3u8, 4, 5, 6];
        let samples: Vec<Sample> = (0..n)
            .map(|i| {
                let config = SimulationConfig {
                    p: ps[i % 4],
                    mx: mxs[(i / 4) % 4],
                    maxlevel: mls[(i / 16) % 4],
                    r0: 0.2 + 0.3 * ((i % 7) as f64 / 6.0),
                    rhoin: 0.02 + 0.48 * ((i % 5) as f64 / 4.0),
                };
                let work = 4f64.powi(config.maxlevel as i32 - 3)
                    * (config.mx as f64 / 8.0).powi(2)
                    * (1.0 + config.r0);
                let cost = 0.01 * work * (1.0 + 0.02 * config.p as f64);
                let memory = 0.05 * work * 8.0 / config.p as f64 + 0.01;
                Sample {
                    config,
                    wall_seconds: al_units::Seconds::new(cost * 3600.0 / config.p as f64),
                    cost_node_hours: al_units::NodeHours::new(cost),
                    memory_mb: al_units::Megabytes::new(memory),
                }
            })
            .collect();
        Dataset::new(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::synth_dataset;
    use super::*;
    use al_linalg::stats;

    fn fast_opts() -> AlOptions {
        AlOptions {
            initial_fit: FitOptions {
                n_restarts: 1,
                max_iters: 30,
                ..FitOptions::default()
            },
            refit: FitOptions {
                n_restarts: 0,
                max_iters: 10,
                ..FitOptions::default()
            },
            optimize_every: 8,
            ..AlOptions::default()
        }
    }

    fn partition(dataset: &Dataset, n_init: usize, seed: u64) -> Partition {
        let mut rng = StdRng::seed_from_u64(seed);
        Partition::random(dataset.len(), n_init, dataset.len() / 3, &mut rng)
    }

    #[test]
    fn rand_uniform_exhausts_the_active_pool() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 1);
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &fast_opts()).unwrap();
        assert_eq!(t.stop_reason, StopReason::ActiveExhausted);
        assert_eq!(t.len(), p.active.len());
        assert_eq!(t.strategy, "RandUniform");
        assert_eq!(t.n_init, 4);
        // Cumulative cost is strictly increasing.
        for w in t.records.windows(2) {
            assert!(w[1].cumulative_cost > w[0].cumulative_cost);
        }
        // Every active sample selected exactly once.
        let mut seen: Vec<usize> = t.records.iter().map(|r| r.dataset_index).collect();
        seen.sort_unstable();
        let mut expected = p.active.clone();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn learning_reduces_cost_rmse() {
        let d = synth_dataset(60);
        let p = partition(&d, 4, 2);
        let t = run_trajectory(&d, &p, StrategyKind::MaxSigma, &fast_opts()).unwrap();
        let final_rmse = t.records.last().unwrap().rmse_cost;
        assert!(
            final_rmse < t.initial_rmse_cost,
            "final {final_rmse} vs initial {}",
            t.initial_rmse_cost
        );
    }

    #[test]
    fn min_pred_selects_cheap_experiments_first() {
        let d = synth_dataset(60);
        let p = partition(&d, 6, 3);
        let t = run_trajectory(&d, &p, StrategyKind::MinPred, &fast_opts()).unwrap();
        let first_costs = t.selected_costs(15);
        let pool_costs = d.raw_cost(&p.active);
        assert!(
            stats::median(&first_costs) < stats::median(&pool_costs) / 2.0,
            "MinPred median {} vs pool median {}",
            stats::median(&first_costs),
            stats::median(&pool_costs)
        );
    }

    #[test]
    fn max_iterations_caps_the_run() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 4);
        let opts = AlOptions {
            max_iterations: Some(5),
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn rgma_avoids_memory_violations() {
        let d = synth_dataset(72);
        let p = partition(&d, 12, 5);
        let limit_log = d.memory_limit_log(0.7);
        let opts = AlOptions {
            mem_limit_log: Some(limit_log),
            ..fast_opts()
        };
        let rgma = run_trajectory(&d, &p, StrategyKind::Rgma { base: 10.0 }, &opts).unwrap();
        let uniform = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert!(
            rgma.total_regret() < uniform.total_regret(),
            "RGMA regret {} vs uniform {}",
            rgma.total_regret(),
            uniform.total_regret(),
        );
        assert!(rgma.violations() < uniform.violations());
    }

    #[test]
    fn regret_accounting_matches_limit() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 6);
        let limit_log = d.memory_limit_log(0.8);
        let limit_raw = limit_log.to_megabytes();
        let opts = AlOptions {
            mem_limit_log: Some(limit_log),
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        for r in &t.records {
            if r.memory >= limit_raw {
                assert!((r.regret - r.cost).value().abs() < 1e-12);
            } else {
                assert_eq!(r.regret.value(), 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "mem_limit_log")]
    fn rgma_without_limit_is_rejected() {
        let d = synth_dataset(24);
        let p = partition(&d, 2, 7);
        let _ = run_trajectory(&d, &p, StrategyKind::Rgma { base: 10.0 }, &fast_opts());
    }

    #[test]
    fn stabilization_stops_early() {
        let d = synth_dataset(60);
        let p = partition(&d, 10, 8);
        let opts = AlOptions {
            stabilization: Some((3, 10.0)), // huge tolerance: fires ASAP
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert_eq!(t.stop_reason, StopReason::PredictionsStabilized);
        assert!(t.len() <= 5);
    }

    #[test]
    fn batched_selection_exhausts_pool_with_fewer_rounds() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 11);
        let opts = AlOptions {
            batch_size: 4,
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert_eq!(t.len(), p.active.len(), "whole pool still consumed");
        assert_eq!(t.stop_reason, StopReason::ActiveExhausted);
        // Iterations are consecutively numbered across batches.
        for (i, r) in t.records.iter().enumerate() {
            assert_eq!(r.iteration, i);
        }
        // Each batch of 4 shares one RMSE value.
        for chunk in t.records.chunks(4) {
            assert!(chunk.iter().all(|r| r.rmse_cost == chunk[0].rmse_cost));
        }
        // No sample selected twice.
        let mut seen: Vec<usize> = t.records.iter().map(|r| r.dataset_index).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), t.len());
    }

    #[test]
    fn batch_size_one_matches_legacy_behaviour() {
        let d = synth_dataset(36);
        let p = partition(&d, 3, 12);
        let a = run_trajectory(
            &d,
            &p,
            StrategyKind::RandGoodness { base: 10.0 },
            &fast_opts(),
        )
        .unwrap();
        let b = run_trajectory(
            &d,
            &p,
            StrategyKind::RandGoodness { base: 10.0 },
            &AlOptions {
                batch_size: 1,
                ..fast_opts()
            },
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batched_max_iterations_respected_mid_batch() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 13);
        let opts = AlOptions {
            batch_size: 4,
            max_iterations: Some(6), // not a multiple of the batch size
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::MinPred, &opts).unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn incremental_updates_match_full_refits() {
        let d = synth_dataset(48);
        let p = partition(&d, 6, 21);
        let base = AlOptions {
            max_iterations: Some(20),
            ..fast_opts()
        };
        let inc = run_trajectory(
            &d,
            &p,
            StrategyKind::MinPred,
            &AlOptions {
                incremental: true,
                ..base.clone()
            },
        )
        .unwrap();
        let full = run_trajectory(
            &d,
            &p,
            StrategyKind::MinPred,
            &AlOptions {
                incremental: false,
                ..base
            },
        )
        .unwrap();
        // The paths are numerically equivalent up to rounding, which can
        // legitimately reorder near-tie greedy picks — compare the
        // selected *set* and the final model quality, not the order.
        let picks = |t: &Trajectory| -> Vec<usize> {
            let mut v: Vec<usize> = t.records.iter().map(|r| r.dataset_index).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(picks(&inc), picks(&full));
        let final_rmse = |t: &Trajectory| t.records.last().unwrap().rmse_cost;
        let (ri, rf) = (final_rmse(&inc), final_rmse(&full));
        assert!(
            (ri - rf).abs() < 0.05 * (ri + rf),
            "final RMSE diverged: {ri} vs {rf}"
        );
        assert!((inc.total_cost() - full.total_cost()).value().abs() < 1e-9);
    }

    #[test]
    fn hyperparam_stabilization_stops_early() {
        let d = synth_dataset(60);
        let p = partition(&d, 10, 12);
        let opts = AlOptions {
            // Between optimize_every refits the hyperparameters are frozen,
            // so a loose detector fires quickly.
            hyperparam_stabilization: Some((2, 1.0)),
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert_eq!(t.stop_reason, StopReason::HyperparamsStabilized);
        assert!(t.len() <= 4);
    }

    #[test]
    fn same_seed_reproduces_trajectory() {
        let d = synth_dataset(36);
        let p = partition(&d, 3, 9);
        let a = run_trajectory(
            &d,
            &p,
            StrategyKind::RandGoodness { base: 10.0 },
            &fast_opts(),
        )
        .unwrap();
        let b = run_trajectory(
            &d,
            &p,
            StrategyKind::RandGoodness { base: 10.0 },
            &fast_opts(),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
