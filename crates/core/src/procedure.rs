//! Algorithm 1: the active-learning procedure that incrementally trains
//! cost and memory GPR models by selecting one experiment at a time.
//!
//! Since the session-core split, this module is a thin driver: the loop
//! body itself lives in [`crate::session`] as a pure transition function,
//! and [`run_trajectory`] merely feeds it dataset lookups. The replay
//! suite in `tests/session_parity.rs` proves the driver byte-identical to
//! the pre-split loop.

use crate::session::{step, Decision, Observation, SessionConfig, SessionState};
use crate::strategy::StrategyKind;
use crate::trajectory::Trajectory;
use al_dataset::{Dataset, Partition};
use al_gp::{FitOptions, GpError, KernelKind};
use al_units::LogMegabytes;

/// Options controlling one AL trajectory.
#[derive(Debug, Clone)]
pub struct AlOptions {
    /// Kernel family for both GP models (the paper uses the isotropic RBF).
    pub kernel: KernelKind,
    /// Initial length scale for unit-cube features.
    pub init_length_scale: f64,
    /// Initial observation-noise variance (log10-response units squared).
    pub noise_variance: f64,
    /// Hyperparameter optimization for the initial fit (multi-start).
    /// `FitOptions::n_threads` also sets the worker count for the GP's
    /// parallel kernel paths (bitwise identical for any value).
    pub initial_fit: FitOptions,
    /// Hyperparameter optimization during AL (warm-started, cheap) — the
    /// paper's "use old model's parameters as a starting point".
    pub refit: FitOptions,
    /// Re-optimize hyperparameters every this many iterations; in between,
    /// models are refit (refactored) at fixed hyperparameters.
    pub optimize_every: usize,
    /// Optional cap on AL iterations (default: run the Active pool dry).
    /// With batching, each *selection* counts as one iteration.
    pub max_iterations: Option<usize>,
    /// Selections per retraining round (paper Section VI future work:
    /// "running multiple simulations in parallel at each iteration").
    /// With `batch_size > 1` the strategy picks that many candidates from
    /// the *same* (stale) predictions before the models retrain once —
    /// less greedy, but the round count drops by the batch factor.
    pub batch_size: usize,
    /// Memory limit `L_mem` in log10 MB. Required by RGMA; also enables
    /// regret accounting for every strategy.
    pub mem_limit_log: Option<LogMegabytes>,
    /// Optional stabilizing-predictions early stop `(window, tolerance)`.
    pub stabilization: Option<(usize, f64)>,
    /// Optional stabilizing-hyperparameters early stop
    /// `(consecutive quiet steps, relative tolerance)` on the cost model's
    /// hyperparameter vector.
    pub hyperparam_stabilization: Option<(usize, f64)>,
    /// Absorb newly acquired samples by `O(n²)` bordered-Cholesky updates
    /// ([`al_gp::GpModel::augment`]) between hyperparameter re-optimizations,
    /// instead of `O(n³)` refactorizations. Numerically equivalent up to
    /// rounding (near-tie greedy picks may reorder). Off by default —
    /// full refits are the paper-faithful reference path; enable for
    /// large Active pools where the cubic refit dominates the loop.
    pub incremental: bool,
    /// Seed for the strategy's random draws.
    pub seed: u64,
}

impl Default for AlOptions {
    fn default() -> Self {
        AlOptions {
            kernel: KernelKind::Rbf,
            init_length_scale: 0.3,
            noise_variance: 1e-3,
            initial_fit: FitOptions::default(),
            refit: FitOptions::warm_start_only(),
            optimize_every: 10,
            max_iterations: None,
            batch_size: 1,
            mem_limit_log: None,
            stabilization: None,
            hyperparam_stabilization: None,
            incremental: false,
            seed: 0,
        }
    }
}

/// Run one AL trajectory of `kind` over the given partition (Algorithm 1).
///
/// Both GP models are fit on the Initial partition with full hyperparameter
/// optimization, then AL repeatedly: predicts all remaining Active
/// candidates, asks the strategy for one, acquires its responses, retrains,
/// and records cost/regret/RMSE metrics.
///
/// The loop itself is [`crate::session::step`]; this driver answers each
/// [`Decision::Query`] with a dataset lookup until the session stops.
pub fn run_trajectory(
    dataset: &Dataset,
    partition: &Partition,
    kind: StrategyKind,
    opts: &AlOptions,
) -> Result<Trajectory, GpError> {
    let config = SessionConfig::from_partition(dataset, partition, kind, opts);
    let (mut state, mut decision) = SessionState::start(config)?;
    while let Decision::Query(query) = decision {
        let obs = Observation::from_dataset(dataset, query.dataset_index);
        (state, decision) = step(state, &obs)?;
    }
    Ok(state.into_trajectory())
}

#[cfg(test)]
pub(crate) mod test_util {
    use al_amr_sim::SimulationConfig;
    use al_dataset::{Dataset, Sample};

    /// Deterministic synthetic dataset with smooth, learnable responses:
    /// cost grows multiplicatively in `maxlevel`/`mx`, memory in
    /// `mx`/`maxlevel` divided by `p` — the same qualitative shape as the
    /// AMR data, but cheap to build in tests.
    pub(crate) fn synth_dataset(n: usize) -> Dataset {
        let ps = [4u32, 8, 16, 32];
        let mxs = [8usize, 16, 24, 32];
        let mls = [3u8, 4, 5, 6];
        let samples: Vec<Sample> = (0..n)
            .map(|i| {
                let config = SimulationConfig {
                    p: ps[i % 4],
                    mx: mxs[(i / 4) % 4],
                    maxlevel: mls[(i / 16) % 4],
                    r0: 0.2 + 0.3 * ((i % 7) as f64 / 6.0),
                    rhoin: 0.02 + 0.48 * ((i % 5) as f64 / 4.0),
                };
                let work = 4f64.powi(config.maxlevel as i32 - 3)
                    * (config.mx as f64 / 8.0).powi(2)
                    * (1.0 + config.r0);
                let cost = 0.01 * work * (1.0 + 0.02 * config.p as f64);
                let memory = 0.05 * work * 8.0 / config.p as f64 + 0.01;
                Sample {
                    config,
                    wall_seconds: al_units::Seconds::new(cost * 3600.0 / config.p as f64),
                    cost_node_hours: al_units::NodeHours::new(cost),
                    memory_mb: al_units::Megabytes::new(memory),
                }
            })
            .collect();
        Dataset::new(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::synth_dataset;
    use super::*;
    use crate::stopping::StopReason;
    use al_linalg::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fast_opts() -> AlOptions {
        AlOptions {
            initial_fit: FitOptions {
                n_restarts: 1,
                max_iters: 30,
                ..FitOptions::default()
            },
            refit: FitOptions {
                n_restarts: 0,
                max_iters: 10,
                ..FitOptions::default()
            },
            optimize_every: 8,
            ..AlOptions::default()
        }
    }

    fn partition(dataset: &Dataset, n_init: usize, seed: u64) -> Partition {
        let mut rng = StdRng::seed_from_u64(seed);
        Partition::random(dataset.len(), n_init, dataset.len() / 3, &mut rng)
    }

    #[test]
    fn rand_uniform_exhausts_the_active_pool() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 1);
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &fast_opts()).unwrap();
        assert_eq!(t.stop_reason, StopReason::ActiveExhausted);
        assert_eq!(t.len(), p.active.len());
        assert_eq!(t.strategy, "RandUniform");
        assert_eq!(t.n_init, 4);
        // Cumulative cost is strictly increasing.
        for w in t.records.windows(2) {
            assert!(w[1].cumulative_cost > w[0].cumulative_cost);
        }
        // Every active sample selected exactly once.
        let mut seen: Vec<usize> = t.records.iter().map(|r| r.dataset_index).collect();
        seen.sort_unstable();
        let mut expected = p.active.clone();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn learning_reduces_cost_rmse() {
        let d = synth_dataset(60);
        let p = partition(&d, 4, 2);
        let t = run_trajectory(&d, &p, StrategyKind::MaxSigma, &fast_opts()).unwrap();
        let final_rmse = t.records.last().unwrap().rmse_cost;
        assert!(
            final_rmse < t.initial_rmse_cost,
            "final {final_rmse} vs initial {}",
            t.initial_rmse_cost
        );
    }

    #[test]
    fn min_pred_selects_cheap_experiments_first() {
        let d = synth_dataset(60);
        let p = partition(&d, 6, 3);
        let t = run_trajectory(&d, &p, StrategyKind::MinPred, &fast_opts()).unwrap();
        let first_costs = t.selected_costs(15);
        let pool_costs = d.raw_cost(&p.active);
        assert!(
            stats::median(&first_costs) < stats::median(&pool_costs) / 2.0,
            "MinPred median {} vs pool median {}",
            stats::median(&first_costs),
            stats::median(&pool_costs)
        );
    }

    #[test]
    fn max_iterations_caps_the_run() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 4);
        let opts = AlOptions {
            max_iterations: Some(5),
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn rgma_avoids_memory_violations() {
        let d = synth_dataset(72);
        let p = partition(&d, 12, 5);
        let limit_log = d.memory_limit_log(0.7);
        let opts = AlOptions {
            mem_limit_log: Some(limit_log),
            ..fast_opts()
        };
        let rgma = run_trajectory(&d, &p, StrategyKind::Rgma { base: 10.0 }, &opts).unwrap();
        let uniform = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert!(
            rgma.total_regret() < uniform.total_regret(),
            "RGMA regret {} vs uniform {}",
            rgma.total_regret(),
            uniform.total_regret(),
        );
        assert!(rgma.violations() < uniform.violations());
    }

    #[test]
    fn regret_accounting_matches_limit() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 6);
        let limit_log = d.memory_limit_log(0.8);
        let limit_raw = limit_log.to_megabytes();
        let opts = AlOptions {
            mem_limit_log: Some(limit_log),
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        for r in &t.records {
            if r.memory >= limit_raw {
                assert!((r.regret - r.cost).value().abs() < 1e-12);
            } else {
                assert_eq!(r.regret.value(), 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "mem_limit_log")]
    fn rgma_without_limit_is_rejected() {
        let d = synth_dataset(24);
        let p = partition(&d, 2, 7);
        let _ = run_trajectory(&d, &p, StrategyKind::Rgma { base: 10.0 }, &fast_opts());
    }

    #[test]
    fn stabilization_stops_early() {
        let d = synth_dataset(60);
        let p = partition(&d, 10, 8);
        let opts = AlOptions {
            stabilization: Some((3, 10.0)), // huge tolerance: fires ASAP
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert_eq!(t.stop_reason, StopReason::PredictionsStabilized);
        assert!(t.len() <= 5);
    }

    #[test]
    fn batched_selection_exhausts_pool_with_fewer_rounds() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 11);
        let opts = AlOptions {
            batch_size: 4,
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert_eq!(t.len(), p.active.len(), "whole pool still consumed");
        assert_eq!(t.stop_reason, StopReason::ActiveExhausted);
        // Iterations are consecutively numbered across batches.
        for (i, r) in t.records.iter().enumerate() {
            assert_eq!(r.iteration, i);
        }
        // Each batch of 4 shares one RMSE value.
        for chunk in t.records.chunks(4) {
            assert!(chunk.iter().all(|r| r.rmse_cost == chunk[0].rmse_cost));
        }
        // No sample selected twice.
        let mut seen: Vec<usize> = t.records.iter().map(|r| r.dataset_index).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), t.len());
    }

    #[test]
    fn batch_size_one_matches_legacy_behaviour() {
        let d = synth_dataset(36);
        let p = partition(&d, 3, 12);
        let a = run_trajectory(
            &d,
            &p,
            StrategyKind::RandGoodness { base: 10.0 },
            &fast_opts(),
        )
        .unwrap();
        let b = run_trajectory(
            &d,
            &p,
            StrategyKind::RandGoodness { base: 10.0 },
            &AlOptions {
                batch_size: 1,
                ..fast_opts()
            },
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batched_max_iterations_respected_mid_batch() {
        let d = synth_dataset(48);
        let p = partition(&d, 4, 13);
        let opts = AlOptions {
            batch_size: 4,
            max_iterations: Some(6), // not a multiple of the batch size
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::MinPred, &opts).unwrap();
        assert_eq!(t.len(), 6);
        assert_eq!(t.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn incremental_updates_match_full_refits() {
        let d = synth_dataset(48);
        let p = partition(&d, 6, 21);
        let base = AlOptions {
            max_iterations: Some(20),
            ..fast_opts()
        };
        let inc = run_trajectory(
            &d,
            &p,
            StrategyKind::MinPred,
            &AlOptions {
                incremental: true,
                ..base.clone()
            },
        )
        .unwrap();
        let full = run_trajectory(
            &d,
            &p,
            StrategyKind::MinPred,
            &AlOptions {
                incremental: false,
                ..base
            },
        )
        .unwrap();
        // The paths are numerically equivalent up to rounding, which can
        // legitimately reorder near-tie greedy picks — compare the
        // selected *set* and the final model quality, not the order.
        let picks = |t: &Trajectory| -> Vec<usize> {
            let mut v: Vec<usize> = t.records.iter().map(|r| r.dataset_index).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(picks(&inc), picks(&full));
        let final_rmse = |t: &Trajectory| t.records.last().unwrap().rmse_cost;
        let (ri, rf) = (final_rmse(&inc), final_rmse(&full));
        assert!(
            (ri - rf).abs() < 0.05 * (ri + rf),
            "final RMSE diverged: {ri} vs {rf}"
        );
        assert!((inc.total_cost() - full.total_cost()).value().abs() < 1e-9);
    }

    #[test]
    fn hyperparam_stabilization_stops_early() {
        let d = synth_dataset(60);
        let p = partition(&d, 10, 12);
        let opts = AlOptions {
            // Between optimize_every refits the hyperparameters are frozen,
            // so a loose detector fires quickly.
            hyperparam_stabilization: Some((2, 1.0)),
            ..fast_opts()
        };
        let t = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        assert_eq!(t.stop_reason, StopReason::HyperparamsStabilized);
        assert!(t.len() <= 4);
    }

    #[test]
    fn same_seed_reproduces_trajectory() {
        let d = synth_dataset(36);
        let p = partition(&d, 3, 9);
        let a = run_trajectory(
            &d,
            &p,
            StrategyKind::RandGoodness { base: 10.0 },
            &fast_opts(),
        )
        .unwrap();
        let b = run_trajectory(
            &d,
            &p,
            StrategyKind::RandGoodness { base: 10.0 },
            &fast_opts(),
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
