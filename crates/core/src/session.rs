//! Session core: Algorithm 1 as a pure transition function.
//!
//! [`crate::procedure::run_trajectory`] owns a whole trajectory — it holds
//! the dataset, runs the loop, and returns only when a stop condition
//! fires. A serving layer cannot use that shape: each of many concurrent
//! sessions must answer "which config should I run next?", then wait for
//! an *external* caller to actually run the simulation and report back.
//!
//! This module splits the loop body out into an explicit value plus a
//! transition function:
//!
//! - [`SessionState`] carries everything the loop used to keep on its
//!   stack: both GP models, the growing training set, the remaining
//!   candidate pool, the cumulative cost/regret tracker, the stopping
//!   detectors, and the strategy RNG. It is `Clone`, so a state can be
//!   snapshotted, shipped, or replayed.
//! - [`SessionState::start`] performs the initial fit and returns the
//!   first [`Decision`].
//! - [`step`] ingests one [`Observation`] (the simulation result for the
//!   outstanding query) and returns the successor state plus the next
//!   [`Decision`] — either another query or a typed stop reason.
//!
//! # Purity contract
//!
//! `step` is deterministic state-to-state: the successor depends only on
//! the input state value and the observation. No wall-clock, no ambient
//! entropy (the RNG lives *inside* the state), no interior mutability —
//! stepping a cloned snapshot twice with the same observation yields
//! bitwise-identical successors. `crates/core/tests/session_parity.rs`
//! enforces this, and also proves the legacy driver built on top of this
//! module reproduces the pre-split `run_trajectory` byte-for-byte.
//!
//! # Round semantics (batching parity)
//!
//! The legacy loop selects up to `batch_size` candidates from one set of
//! stale predictions, acquires them all, then retrains once. The session
//! keeps the same shape: a round opens with a prediction pass, each
//! `step` ingests one observation and either extends the round (next
//! pick from the same shrinking prediction vectors, identical RNG draw
//! order) or closes it (deferred incremental augments in pick order, or
//! one refit), emitting the round's [`IterationRecord`]s with a shared
//! RMSE. Deferring augments to round close is behaviour-preserving:
//! selection consults only the stale prediction vectors and the RNG, and
//! the legacy loop augments strictly after its selection phase anyway.

use crate::context::SelectionContext;
use crate::metrics::{self, CumulativeTracker};
use crate::stopping::{StabilizationDetector, StopReason, VectorStabilization};
use crate::strategy::StrategyKind;
use crate::trajectory::{IterationRecord, Trajectory};
use crate::AlOptions;
use al_dataset::{Dataset, Partition};
use al_gp::{GpError, GpModel};
use al_linalg::Matrix;
use al_units::{Megabytes, NodeHours};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Held-out evaluation set for per-round RMSE tracking.
///
/// Optional: a serving deployment has no labelled test split, in which
/// case records carry `NaN` RMSE and the stabilizing-predictions stop
/// never fires (the detector ignores non-finite errors).
#[derive(Debug, Clone)]
pub struct EvalSet {
    /// Scaled feature rows of the held-out configurations.
    pub features: Matrix,
    /// Raw (non-log) cost responses, aligned with `features` rows.
    pub cost_raw: Vec<f64>,
    /// Raw (non-log) memory responses, aligned with `features` rows.
    pub mem_raw: Vec<f64>,
}

/// Everything needed to open a session: strategy, options, the initial
/// labelled pool, the candidate pool, and an optional evaluation set.
#[derive(Clone)]
pub struct SessionConfig {
    /// Selection strategy for this session.
    pub kind: StrategyKind,
    /// Loop options (kernel, fit schedules, batching, stopping, seed).
    pub opts: AlOptions,
    /// Scaled features of the initial training set (one row per sample).
    pub init_features: Matrix,
    /// log10 cost responses aligned with `init_features` rows.
    pub init_log_cost: Vec<f64>,
    /// log10 memory responses aligned with `init_features` rows.
    pub init_log_mem: Vec<f64>,
    /// External ids (dataset row indices) of the candidate pool.
    pub candidate_ids: Vec<usize>,
    /// Scaled features aligned with `candidate_ids`.
    pub candidate_features: Matrix,
    /// Optional held-out split for RMSE accounting.
    pub eval: Option<EvalSet>,
}

impl SessionConfig {
    /// Build a session config from a dataset partition — the bridge from
    /// the batch world ([`run_trajectory`](crate::run_trajectory)) into
    /// the session world. Uses the partition's Initial split as training
    /// data, Active as candidates, and Test as the evaluation set.
    pub fn from_partition(
        dataset: &Dataset,
        partition: &Partition,
        kind: StrategyKind,
        opts: &AlOptions,
    ) -> Self {
        SessionConfig {
            kind,
            opts: opts.clone(),
            init_features: dataset.features_scaled(&partition.init),
            init_log_cost: dataset.log_cost(&partition.init),
            init_log_mem: dataset.log_memory(&partition.init),
            candidate_ids: partition.active.clone(),
            candidate_features: dataset.features_scaled(&partition.active),
            eval: Some(EvalSet {
                features: dataset.features_scaled(&partition.test),
                cost_raw: dataset.raw_cost(&partition.test),
                mem_raw: dataset.raw_memory(&partition.test),
            }),
        }
    }
}

/// Fitted GP hyperparameters for both response models — the value cached
/// by the [`SessionStore`](crate::SessionStore) warm-start LRU and fed to
/// [`SessionState::start_warm`].
#[derive(Debug, Clone, PartialEq)]
pub struct WarmHyperparams {
    /// Cost-model hyperparameters (kernel params + log noise).
    pub cost: Vec<f64>,
    /// Memory-model hyperparameters (kernel params + log noise).
    pub mem: Vec<f64>,
}

/// One query the session asks its driver to run: which candidate, and
/// what the models predicted for it at selection time (log10 units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// External id of the selected candidate (dataset row index).
    pub dataset_index: usize,
    /// Predicted log10 cost at selection time.
    pub pred_cost_log: f64,
    /// Predictive standard deviation of the log10 cost.
    pub pred_cost_sigma: f64,
    /// Predicted log10 memory at selection time.
    pub pred_mem_log: f64,
    /// Predictive standard deviation of the log10 memory.
    pub pred_mem_sigma: f64,
}

/// What the session wants next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Run this candidate and report back via [`step`].
    Query(Query),
    /// The trajectory is over; [`SessionState::into_trajectory`] has the
    /// full record.
    Stop(StopReason),
}

impl Decision {
    /// The outstanding query, if the session is waiting for one.
    pub fn query(&self) -> Option<Query> {
        match *self {
            Decision::Query(q) => Some(q),
            Decision::Stop(_) => None,
        }
    }
}

/// The measured result of running one queried candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Echo of [`Query::dataset_index`] — must match the outstanding query.
    pub dataset_index: usize,
    /// Measured cost of the run.
    pub cost: NodeHours,
    /// Measured peak memory of the run.
    pub memory: Megabytes,
    /// Scaled feature row of the candidate (same scaler as the config).
    pub features_scaled: Vec<f64>,
    /// log10 cost response.
    pub log_cost: f64,
    /// log10 memory response.
    pub log_mem: f64,
}

impl Observation {
    /// Look up the observation for dataset row `index` — the bridge used
    /// by batch drivers where "running" a candidate is a table lookup.
    pub fn from_dataset(dataset: &Dataset, index: usize) -> Self {
        let sample = dataset.sample(index);
        Observation {
            dataset_index: index,
            cost: sample.cost_node_hours,
            memory: sample.memory_mb,
            features_scaled: dataset.scaled_row(index).to_vec(),
            log_cost: dataset.log_cost(&[index])[0],
            log_mem: dataset.log_memory(&[index])[0],
        }
    }
}

/// Growing training set: scaled features plus log responses (the session
/// twin of the one `run_trajectory` used to keep inline).
#[derive(Debug, Clone)]
struct TrainingSet {
    rows: Vec<f64>,
    n: usize,
    dim: usize,
    cost: Vec<f64>,
    memory: Vec<f64>,
}

impl TrainingSet {
    fn new(x: &Matrix, cost: Vec<f64>, memory: Vec<f64>) -> Self {
        TrainingSet {
            rows: x.as_slice().to_vec(),
            n: x.rows(),
            dim: x.cols(),
            cost,
            memory,
        }
    }

    fn push(&mut self, features: &[f64], log_cost: f64, log_mem: f64) {
        self.rows.extend_from_slice(features);
        self.n += 1;
        self.cost.push(log_cost);
        self.memory.push(log_mem);
    }

    fn x(&self) -> Matrix {
        Matrix::from_vec(self.n, self.dim, self.rows.clone())
    }
}

/// One acquired sample, staged until its round closes.
#[derive(Debug, Clone)]
struct Acquired {
    dataset_index: usize,
    cost: NodeHours,
    memory: Megabytes,
    regret: NodeHours,
    cumulative_cost: NodeHours,
    cumulative_regret: NodeHours,
    features: Vec<f64>,
    log_cost: f64,
    log_mem: f64,
}

/// An open selection round: the stale prediction vectors every pick in
/// the round draws from, the picks made so far, and the staged results.
#[derive(Debug, Clone)]
struct Round {
    mu_c: Vec<f64>,
    sg_c: Vec<f64>,
    mu_m: Vec<f64>,
    sg_m: Vec<f64>,
    picked: Vec<usize>,
    acquired: Vec<Acquired>,
    refused: bool,
}

/// The complete state of one active-learning session between steps.
///
/// `Clone` snapshots the whole session (models, pool, RNG); replaying a
/// snapshot through [`step`] with the same observations reproduces the
/// original run bit-for-bit.
#[derive(Clone)]
pub struct SessionState {
    kind: StrategyKind,
    opts: AlOptions,
    train: TrainingSet,
    gp_cost: GpModel,
    gp_mem: GpModel,
    active_ids: Vec<usize>,
    active_rows: Matrix,
    eval: Option<EvalSet>,
    mem_limit_raw: Option<Megabytes>,
    rng: StdRng,
    tracker: CumulativeTracker,
    detector: Option<StabilizationDetector>,
    hp_detector: Option<VectorStabilization>,
    iteration: usize,
    max_iterations: usize,
    records: Vec<IterationRecord>,
    n_init: usize,
    initial_rmse_cost: f64,
    initial_rmse_mem: f64,
    round: Option<Round>,
    stopped: Option<StopReason>,
}

/// Advance a session by one observation — the pure transition function.
///
/// Free-function form of [`SessionState::step`]; the successor state and
/// next decision depend only on the inputs.
pub fn step(state: SessionState, obs: &Observation) -> Result<(SessionState, Decision), GpError> {
    state.step(obs)
}

impl SessionState {
    /// Open a session: fit both GP models on the initial pool with full
    /// hyperparameter optimization and return the first decision.
    pub fn start(config: SessionConfig) -> Result<(Self, Decision), GpError> {
        Self::start_warm(config, None)
    }

    /// Open a session warm-started from previously fitted hyperparameters
    /// (the paper's "use the old model's parameters as a starting point",
    /// applied across sessions). The initial fit then uses the cheap
    /// `opts.refit` schedule instead of the multi-start `opts.initial_fit`.
    /// With `warm = None` this is exactly [`SessionState::start`].
    pub fn start_warm(
        config: SessionConfig,
        warm: Option<&WarmHyperparams>,
    ) -> Result<(Self, Decision), GpError> {
        let SessionConfig {
            kind,
            opts,
            init_features,
            init_log_cost,
            init_log_mem,
            candidate_ids,
            candidate_features,
            eval,
        } = config;
        assert!(
            !kind.is_memory_aware() || opts.mem_limit_log.is_some(),
            "RGMA requires AlOptions::mem_limit_log"
        );
        assert!(opts.batch_size >= 1, "batch_size must be at least 1");
        assert!(
            candidate_features.rows() == candidate_ids.len(),
            "candidate_features rows must match candidate_ids"
        );
        assert!(
            candidate_ids.is_empty() || candidate_features.cols() == init_features.cols(),
            "candidate and initial feature dimensions must match"
        );

        let rng = StdRng::seed_from_u64(opts.seed);
        let train = TrainingSet::new(&init_features, init_log_cost, init_log_mem);
        let mut gp_cost = GpModel::new(
            opts.kernel.build(opts.init_length_scale),
            opts.noise_variance,
        );
        let mut gp_mem = GpModel::new(
            opts.kernel.build(opts.init_length_scale),
            opts.noise_variance,
        );
        let fit_opts = match warm {
            Some(w) => {
                gp_cost.set_hyperparams(&w.cost)?;
                gp_mem.set_hyperparams(&w.mem)?;
                &opts.refit
            }
            None => &opts.initial_fit,
        };
        let x = train.x();
        gp_cost.fit_optimized(&x, &train.cost, fit_opts)?;
        gp_mem.fit_optimized(&x, &train.memory, fit_opts)?;

        let mut state = SessionState {
            n_init: init_features.rows(),
            mem_limit_raw: opts.mem_limit_log.map(|l| l.to_megabytes()),
            max_iterations: opts.max_iterations.unwrap_or(usize::MAX),
            detector: opts
                .stabilization
                .map(|(w, tol)| StabilizationDetector::new(w, tol)),
            hp_detector: opts
                .hyperparam_stabilization
                .map(|(w, tol)| VectorStabilization::new(w, tol)),
            kind,
            opts,
            train,
            gp_cost,
            gp_mem,
            active_ids: candidate_ids,
            active_rows: candidate_features,
            eval,
            rng,
            tracker: CumulativeTracker::default(),
            iteration: 0,
            records: Vec::new(),
            initial_rmse_cost: f64::NAN,
            initial_rmse_mem: f64::NAN,
            round: None,
            stopped: None,
        };
        let (rc, rm) = state.test_rmse()?;
        state.initial_rmse_cost = rc;
        state.initial_rmse_mem = rm;
        let decision = state.open_round()?;
        Ok((state, decision))
    }

    /// Ingest the result of the outstanding query and advance: either the
    /// current round continues (next pick from the same stale predictions)
    /// or it closes (retrain/augment, record metrics, open the next round
    /// or stop). Consumes the state; see the module docs for the purity
    /// contract.
    ///
    /// The observation must answer the outstanding [`Query`] (asserted).
    /// Calling `step` on a stopped session is a no-op that re-reports the
    /// stop decision.
    pub fn step(mut self, obs: &Observation) -> Result<(Self, Decision), GpError> {
        let mut round = match self.round.take() {
            Some(round) => round,
            None => {
                let reason = self.stopped.unwrap_or(StopReason::ActiveExhausted);
                return Ok((self, Decision::Stop(reason)));
            }
        };
        assert!(
            round.picked.last() == Some(&obs.dataset_index),
            "observation for candidate {} does not answer the outstanding query",
            obs.dataset_index
        );
        assert!(
            obs.features_scaled.len() == self.train.dim,
            "observation feature dimension mismatch"
        );

        let regret = self
            .tracker
            .record(obs.cost, obs.memory, self.mem_limit_raw);
        self.train
            .push(&obs.features_scaled, obs.log_cost, obs.log_mem);
        round.acquired.push(Acquired {
            dataset_index: obs.dataset_index,
            cost: obs.cost,
            memory: obs.memory,
            regret,
            cumulative_cost: self.tracker.cumulative_cost(),
            cumulative_regret: self.tracker.cumulative_regret(),
            features: obs.features_scaled.clone(),
            log_cost: obs.log_cost,
            log_mem: obs.log_mem,
        });

        // Same guard as the legacy inner `while`: keep picking from this
        // round's stale predictions until the batch, the pool, or the
        // iteration budget runs out.
        if round.picked.len() < self.opts.batch_size
            && !self.active_ids.is_empty()
            && self.iteration + round.picked.len() < self.max_iterations
        {
            match self.select_next(&mut round) {
                Some(q) => {
                    self.round = Some(round);
                    return Ok((self, Decision::Query(q)));
                }
                None => round.refused = true,
            }
        }
        let decision = self.close_round(round)?;
        Ok((self, decision))
    }

    /// Start a new round: stop checks, one prediction pass over the
    /// remaining pool, and the round's first pick.
    fn open_round(&mut self) -> Result<Decision, GpError> {
        if self.active_ids.is_empty() {
            return Ok(self.stop(StopReason::ActiveExhausted));
        }
        if self.iteration >= self.max_iterations {
            return Ok(self.stop(StopReason::MaxIterations));
        }
        let pred_cost = self.gp_cost.predict(&self.active_rows)?;
        let pred_mem = self.gp_mem.predict(&self.active_rows)?;
        let mut round = Round {
            mu_c: pred_cost.mean,
            sg_c: pred_cost.std,
            mu_m: pred_mem.mean,
            sg_m: pred_mem.std,
            picked: Vec::with_capacity(self.opts.batch_size),
            acquired: Vec::with_capacity(self.opts.batch_size),
            refused: false,
        };
        match self.select_next(&mut round) {
            Some(q) => {
                self.round = Some(round);
                Ok(Decision::Query(q))
            }
            // Refusal with an empty round: nothing to retrain or record.
            None => Ok(self.stop(StopReason::AllCandidatesRefused)),
        }
    }

    /// One strategy selection over the round's remaining predictions;
    /// removes the pick from the pool and the prediction vectors (the
    /// legacy loop's `active.remove(k)` block, verbatim).
    fn select_next(&mut self, round: &mut Round) -> Option<Query> {
        let ctx = SelectionContext {
            mu_cost: &round.mu_c,
            sigma_cost: &round.sg_c,
            mu_mem: &round.mu_m,
            sigma_mem: &round.sg_m,
            mem_limit_log: self.opts.mem_limit_log,
        };
        let k = self.kind.build().select(&ctx, &mut self.rng)?;
        let query = Query {
            dataset_index: self.active_ids[k],
            pred_cost_log: round.mu_c[k],
            pred_cost_sigma: round.sg_c[k],
            pred_mem_log: round.mu_m[k],
            pred_mem_sigma: round.sg_m[k],
        };
        self.active_ids.remove(k);
        self.active_rows.remove_row(k);
        round.mu_c.remove(k);
        round.sg_c.remove(k);
        round.mu_m.remove(k);
        round.sg_m.remove(k);
        round.picked.push(query.dataset_index);
        Some(query)
    }

    /// Close a round: retrain (or absorb the staged augments), measure
    /// RMSE once, emit the round's records, and open the next round or
    /// stop. Mirrors the tail of the legacy loop body exactly.
    fn close_round(&mut self, round: Round) -> Result<Decision, GpError> {
        let crossed_optimize_boundary = (self.iteration + round.picked.len())
            / self.opts.optimize_every
            > self.iteration / self.opts.optimize_every;

        if crossed_optimize_boundary {
            let x = self.train.x();
            self.gp_cost
                .fit_optimized(&x, &self.train.cost, &self.opts.refit)?;
            self.gp_mem
                .fit_optimized(&x, &self.train.memory, &self.opts.refit)?;
        } else if self.opts.incremental {
            // Deferred O(n²) bordered-Cholesky updates, in pick order —
            // the same model-op sequence the legacy loop performed, since
            // it too augmented only after the selection phase.
            for a in &round.acquired {
                self.gp_cost.augment(&a.features, a.log_cost)?;
                self.gp_mem.augment(&a.features, a.log_mem)?;
            }
        } else {
            let x = self.train.x();
            self.gp_cost.fit(&x, &self.train.cost)?;
            self.gp_mem.fit(&x, &self.train.memory)?;
        }

        // RMSE is measured once per round and shared by its records.
        let (rmse_cost, rmse_mem) = self.test_rmse()?;
        for (offset, a) in round.acquired.iter().enumerate() {
            self.records.push(IterationRecord {
                iteration: self.iteration + offset,
                dataset_index: a.dataset_index,
                cost: a.cost,
                memory: a.memory,
                regret: a.regret,
                cumulative_cost: a.cumulative_cost,
                cumulative_regret: a.cumulative_regret,
                rmse_cost,
                rmse_mem,
            });
        }
        self.iteration += round.picked.len();

        if round.refused {
            return Ok(self.stop(StopReason::AllCandidatesRefused));
        }
        if let Some(detector) = self.detector.as_mut() {
            if detector.push(rmse_cost) {
                return Ok(self.stop(StopReason::PredictionsStabilized));
            }
        }
        if let Some(hp) = self.hp_detector.as_mut() {
            if hp.push(&self.gp_cost.hyperparams()) {
                return Ok(self.stop(StopReason::HyperparamsStabilized));
            }
        }
        self.open_round()
    }

    fn stop(&mut self, reason: StopReason) -> Decision {
        self.stopped = Some(reason);
        Decision::Stop(reason)
    }

    /// RMSE of both models on the evaluation set, or `NaN` without one.
    fn test_rmse(&self) -> Result<(f64, f64), GpError> {
        match &self.eval {
            Some(eval) => {
                let pc = self.gp_cost.predict(&eval.features)?;
                let pm = self.gp_mem.predict(&eval.features)?;
                Ok((
                    metrics::rmse_nonlog(&pc.mean, &eval.cost_raw),
                    metrics::rmse_nonlog(&pm.mean, &eval.mem_raw),
                ))
            }
            None => Ok((f64::NAN, f64::NAN)),
        }
    }

    /// Selections completed so far (the legacy loop's iteration counter).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Candidates still in the pool.
    pub fn remaining_candidates(&self) -> usize {
        self.active_ids.len()
    }

    /// Why the session stopped, once it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stopped
    }

    /// Dataset index of the outstanding query, if the session is waiting
    /// for an observation.
    pub fn awaiting(&self) -> Option<usize> {
        self.round.as_ref().and_then(|r| r.picked.last().copied())
    }

    /// Records emitted so far (one per completed selection).
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Current fitted hyperparameters of both models — what the
    /// warm-start cache stores.
    pub fn warm_hyperparams(&self) -> WarmHyperparams {
        WarmHyperparams {
            cost: self.gp_cost.hyperparams(),
            mem: self.gp_mem.hyperparams(),
        }
    }

    /// Order-stable bit-level fingerprint of the session: training data,
    /// pool, model hyperparameters and posterior probe, tracker, RNG
    /// stream, and emitted records. Two states with equal digests behave
    /// identically under [`step`] — the replay/parity suite leans on this
    /// because the RNG (deliberately) does not implement `PartialEq`.
    pub fn digest(&self) -> Vec<u64> {
        let mut d: Vec<u64> = Vec::new();
        d.push(self.iteration as u64);
        d.push(self.train.n as u64);
        d.push(self.active_ids.len() as u64);
        d.extend(self.active_ids.iter().map(|&i| i as u64));
        d.extend(self.train.rows.iter().map(|v| v.to_bits()));
        d.extend(self.train.cost.iter().map(|v| v.to_bits()));
        d.extend(self.train.memory.iter().map(|v| v.to_bits()));
        d.extend(self.gp_cost.hyperparams().iter().map(|v| v.to_bits()));
        d.extend(self.gp_mem.hyperparams().iter().map(|v| v.to_bits()));
        d.push(self.tracker.cumulative_cost().value().to_bits());
        d.push(self.tracker.cumulative_regret().value().to_bits());
        d.push(u64::from(self.tracker.violations()));
        // Posterior probe: the fitted state (weights, factorization) is
        // private to the GP, but a prediction at a fixed point pins it.
        if self.train.n > 0 {
            let probe = Matrix::from_vec(
                1,
                self.train.dim,
                self.train.rows[..self.train.dim].to_vec(),
            );
            for gp in [&self.gp_cost, &self.gp_mem] {
                if let Ok(p) = gp.predict(&probe) {
                    d.push(p.mean[0].to_bits());
                    d.push(p.std[0].to_bits());
                }
            }
        }
        // RNG probe on a clone: captures the stream position without
        // advancing the real generator.
        let mut rng = self.rng.clone();
        for _ in 0..4 {
            d.push(rng.next_u64());
        }
        if let Some(round) = &self.round {
            d.push(round.picked.len() as u64);
            d.extend(round.picked.iter().map(|&i| i as u64));
            d.push(round.acquired.len() as u64);
            d.extend(round.mu_c.iter().map(|v| v.to_bits()));
            d.extend(round.sg_c.iter().map(|v| v.to_bits()));
            d.extend(round.mu_m.iter().map(|v| v.to_bits()));
            d.extend(round.sg_m.iter().map(|v| v.to_bits()));
        }
        d.push(self.records.len() as u64);
        for r in &self.records {
            d.push(r.iteration as u64);
            d.push(r.dataset_index as u64);
            d.push(r.cost.value().to_bits());
            d.push(r.memory.value().to_bits());
            d.push(r.rmse_cost.to_bits());
        }
        d
    }

    /// Consume the session into its trajectory. A session abandoned
    /// mid-flight (no stop decision yet) reports `MaxIterations` — it was
    /// externally truncated.
    pub fn into_trajectory(self) -> Trajectory {
        Trajectory {
            strategy: self.kind.label().to_string(),
            n_init: self.n_init,
            initial_rmse_cost: self.initial_rmse_cost,
            initial_rmse_mem: self.initial_rmse_mem,
            records: self.records,
            stop_reason: self.stopped.unwrap_or(StopReason::MaxIterations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::test_util::synth_dataset;
    use al_gp::FitOptions;

    fn fast_opts() -> AlOptions {
        AlOptions {
            initial_fit: FitOptions {
                n_restarts: 1,
                max_iters: 30,
                ..FitOptions::default()
            },
            refit: FitOptions {
                n_restarts: 0,
                max_iters: 10,
                ..FitOptions::default()
            },
            optimize_every: 8,
            ..AlOptions::default()
        }
    }

    fn drive(config: SessionConfig, dataset: &Dataset) -> Trajectory {
        let (mut state, mut decision) = SessionState::start(config).unwrap();
        while let Decision::Query(q) = decision {
            let obs = Observation::from_dataset(dataset, q.dataset_index);
            (state, decision) = state.step(&obs).unwrap();
        }
        state.into_trajectory()
    }

    #[test]
    fn session_exhausts_pool_like_the_loop() {
        let d = synth_dataset(36);
        let mut rng = StdRng::seed_from_u64(4);
        let p = Partition::random(d.len(), 3, 12, &mut rng);
        let config = SessionConfig::from_partition(&d, &p, StrategyKind::RandUniform, &fast_opts());
        let t = drive(config, &d);
        assert_eq!(t.stop_reason, StopReason::ActiveExhausted);
        assert_eq!(t.len(), p.active.len());
    }

    #[test]
    fn query_carries_selection_time_predictions() {
        let d = synth_dataset(36);
        let mut rng = StdRng::seed_from_u64(5);
        let p = Partition::random(d.len(), 4, 12, &mut rng);
        let config = SessionConfig::from_partition(&d, &p, StrategyKind::MinPred, &fast_opts());
        let (state, decision) = SessionState::start(config).unwrap();
        let q = decision.query().expect("fresh session must query");
        assert_eq!(state.awaiting(), Some(q.dataset_index));
        assert!(q.pred_cost_sigma > 0.0);
        assert!(q.pred_mem_sigma > 0.0);
        assert!(q.pred_cost_log.is_finite());
    }

    #[test]
    fn step_on_stopped_session_is_a_noop_restating_the_stop() {
        let d = synth_dataset(24);
        let mut rng = StdRng::seed_from_u64(6);
        let p = Partition::random(d.len(), 2, 8, &mut rng);
        let opts = AlOptions {
            max_iterations: Some(1),
            ..fast_opts()
        };
        let config = SessionConfig::from_partition(&d, &p, StrategyKind::RandUniform, &opts);
        let (state, decision) = SessionState::start(config).unwrap();
        let q = decision.query().unwrap();
        let obs = Observation::from_dataset(&d, q.dataset_index);
        let (state, decision) = state.step(&obs).unwrap();
        assert_eq!(decision, Decision::Stop(StopReason::MaxIterations));
        let digest_before = state.digest();
        let (state, again) = state.step(&obs).unwrap();
        assert_eq!(again, Decision::Stop(StopReason::MaxIterations));
        assert_eq!(state.digest(), digest_before, "no-op must not mutate");
    }

    #[test]
    #[should_panic(expected = "does not answer the outstanding query")]
    fn mismatched_observation_is_rejected() {
        let d = synth_dataset(24);
        let mut rng = StdRng::seed_from_u64(7);
        let p = Partition::random(d.len(), 2, 8, &mut rng);
        let config = SessionConfig::from_partition(&d, &p, StrategyKind::RandUniform, &fast_opts());
        let (state, decision) = SessionState::start(config).unwrap();
        let q = decision.query().unwrap();
        // Pick a wrong id: any other active candidate.
        let wrong = *p.active.iter().find(|&&i| i != q.dataset_index).unwrap();
        let _ = state.step(&Observation::from_dataset(&d, wrong));
    }

    #[test]
    fn warm_start_reproduces_injected_hyperparams_as_starting_point() {
        let d = synth_dataset(36);
        let mut rng = StdRng::seed_from_u64(8);
        let p = Partition::random(d.len(), 4, 12, &mut rng);
        let config = SessionConfig::from_partition(&d, &p, StrategyKind::MaxSigma, &fast_opts());
        let (cold, _) = SessionState::start(config.clone()).unwrap();
        let warm_params = cold.warm_hyperparams();
        // A frozen warm refit (0 iterations) keeps the injected values.
        let frozen = AlOptions {
            refit: FitOptions {
                n_restarts: 0,
                max_iters: 0,
                ..FitOptions::default()
            },
            ..fast_opts()
        };
        let config = SessionConfig {
            opts: frozen,
            ..config
        };
        let (warm, _) = SessionState::start_warm(config, Some(&warm_params)).unwrap();
        assert_eq!(warm.warm_hyperparams(), warm_params);
    }

    #[test]
    fn eval_free_session_records_nan_rmse_and_still_runs() {
        let d = synth_dataset(24);
        let mut rng = StdRng::seed_from_u64(9);
        let p = Partition::random(d.len(), 2, 8, &mut rng);
        let opts = AlOptions {
            max_iterations: Some(3),
            ..fast_opts()
        };
        let mut config = SessionConfig::from_partition(&d, &p, StrategyKind::RandUniform, &opts);
        config.eval = None;
        let t = drive(config, &d);
        assert_eq!(t.stop_reason, StopReason::MaxIterations);
        assert_eq!(t.len(), 3);
        assert!(t.records.iter().all(|r| r.rmse_cost.is_nan()));
        assert!(t.initial_rmse_cost.is_nan());
    }
}
