//! Stopping conditions for AL trajectories (paper Section V-D discussion).

/// Why a trajectory ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every Active sample was selected (the paper's default: AL runs
    /// until the pool is empty).
    ActiveExhausted,
    /// The strategy refused all remaining candidates — RGMA's early
    /// termination when everything is predicted to violate `L_mem`.
    AllCandidatesRefused,
    /// The configured iteration cap was reached.
    MaxIterations,
    /// The stabilizing-predictions heuristic fired: RMSE changed less than
    /// a tolerance over a trailing window.
    PredictionsStabilized,
    /// The stabilizing-hyperparameters heuristic fired: the models'
    /// hyperparameter vectors stopped moving.
    HyperparamsStabilized,
}

/// Stabilizing-hyperparameters heuristic: stop once the step-to-step
/// change of a parameter vector stays below `tolerance` (Euclidean norm,
/// relative to the vector's norm) for `window` consecutive iterations.
///
/// The paper lists stabilizing hyperparameters alongside stabilizing
/// predictions as practical AL stopping signals (Section V-D).
#[derive(Debug, Clone)]
pub struct VectorStabilization {
    window: usize,
    tolerance: f64,
    last: Option<Vec<f64>>,
    quiet_steps: usize,
}

impl VectorStabilization {
    /// Create with a consecutive-quiet-step requirement (≥ 1) and relative
    /// tolerance.
    pub fn new(window: usize, tolerance: f64) -> Self {
        assert!(window >= 1);
        assert!(tolerance >= 0.0);
        VectorStabilization {
            window,
            tolerance,
            last: None,
            quiet_steps: 0,
        }
    }

    /// Record the next parameter vector; returns `true` once `window`
    /// consecutive steps moved less than the tolerance.
    pub fn push(&mut self, params: &[f64]) -> bool {
        if let Some(last) = &self.last {
            if last.len() == params.len() {
                let delta: f64 = last
                    .iter()
                    .zip(params)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                let scale: f64 = params.iter().map(|p| p * p).sum::<f64>().sqrt().max(1e-12);
                if delta / scale <= self.tolerance {
                    self.quiet_steps += 1;
                } else {
                    self.quiet_steps = 0;
                }
            } else {
                self.quiet_steps = 0;
            }
        }
        self.last = Some(params.to_vec());
        self.quiet_steps >= self.window
    }
}

/// Stabilizing-predictions stopping heuristic (the paper cites this as a
/// practical alternative to running AL dry): stop once the relative change
/// of the tracked error over the last `window` iterations stays below
/// `tolerance`.
#[derive(Debug, Clone)]
pub struct StabilizationDetector {
    window: usize,
    tolerance: f64,
    history: Vec<f64>,
}

impl StabilizationDetector {
    /// Create a detector with the given trailing window length (≥ 2) and
    /// relative tolerance.
    pub fn new(window: usize, tolerance: f64) -> Self {
        assert!(window >= 2, "window must cover at least two observations");
        assert!(tolerance >= 0.0);
        StabilizationDetector {
            window,
            tolerance,
            history: Vec::new(),
        }
    }

    /// Record the next error value; returns `true` when predictions have
    /// stabilized (the whole trailing window lies within `tolerance`
    /// relative spread).
    pub fn push(&mut self, error: f64) -> bool {
        self.history.push(error);
        if self.history.len() < self.window {
            return false;
        }
        let tail = &self.history[self.history.len() - self.window..];
        let lo = tail.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !lo.is_finite() || !hi.is_finite() || lo <= 0.0 {
            return false;
        }
        (hi - lo) / lo <= self.tolerance
    }

    /// Observations recorded so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True before any observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_after_window_fills_and_flattens() {
        let mut d = StabilizationDetector::new(3, 0.05);
        assert!(!d.push(10.0));
        assert!(!d.push(5.0));
        assert!(!d.push(2.0), "still falling fast");
        assert!(!d.push(1.0));
        assert!(!d.push(1.01));
        assert!(d.push(1.02), "flat for a full window");
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
    }

    #[test]
    fn noisy_error_does_not_trigger() {
        let mut d = StabilizationDetector::new(4, 0.01);
        for e in [1.0, 1.5, 1.0, 1.5, 1.0, 1.5] {
            assert!(!d.push(e));
        }
    }

    #[test]
    fn handles_non_finite_and_zero_errors() {
        let mut d = StabilizationDetector::new(2, 0.1);
        assert!(!d.push(f64::NAN));
        assert!(!d.push(0.0));
        assert!(!d.push(0.0), "zero floor never counts as stabilized");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn window_of_one_rejected() {
        StabilizationDetector::new(1, 0.1);
    }

    #[test]
    fn vector_stabilization_requires_consecutive_quiet_steps() {
        let mut d = VectorStabilization::new(2, 0.01);
        assert!(!d.push(&[1.0, 2.0])); // first observation: no delta yet
        assert!(!d.push(&[1.0, 2.0])); // quiet step 1
        assert!(d.push(&[1.0, 2.0001])); // quiet step 2 -> fires
    }

    #[test]
    fn vector_stabilization_resets_on_movement() {
        let mut d = VectorStabilization::new(2, 0.01);
        assert!(!d.push(&[1.0, 0.0]));
        assert!(!d.push(&[1.0, 0.0])); // quiet 1
        assert!(!d.push(&[2.0, 0.0])); // big move resets
        assert!(!d.push(&[2.0, 0.0])); // quiet 1
        assert!(d.push(&[2.0, 0.0])); // quiet 2 -> fires
    }

    #[test]
    fn vector_stabilization_handles_dimension_changes() {
        let mut d = VectorStabilization::new(1, 0.5);
        assert!(!d.push(&[1.0]));
        assert!(!d.push(&[1.0, 2.0])); // dimension change = not quiet
        assert!(d.push(&[1.0, 2.0]));
    }
}
