//! In-memory session store: many live AL sessions behind sharded locks,
//! plus a warm-start cache of fitted hyperparameters.
//!
//! The serving shape the ROADMAP asks for: sessions are keyed by a
//! caller-chosen `u64` id, a session's shard is `id % n_shards`, and each
//! shard is an independent [`parking_lot::Mutex`] over an ordered map —
//! no cross-shard locks are ever held, so operations on sessions in
//! different shards never contend. GP work never runs under a shard lock
//! (the alint L7 contract): [`SessionStore::observe`] checks the session
//! out of its shard, runs the refit/select step unlocked, and checks the
//! successor state back in, so a slow fit on one session never blocks its
//! shard-mates. Per-session call ordering is what makes
//! [`crate::session::step`] deterministic, and the concurrency suite
//! (`tests/session_concurrency.rs`) checks that hammering distinct
//! sessions from many threads reproduces the single-threaded trajectories
//! exactly.
//!
//! The warm-start cache is the paper's "reuse the old model's parameters
//! as a starting point" applied across sessions: when a session finishes,
//! its fitted hyperparameters are cached under a [`WarmKey`] (grid,
//! kernel); a new session created with the same key starts its models
//! from those values with the cheap `refit` schedule instead of the
//! multi-start `initial_fit`. The cache is a bounded, deterministic LRU —
//! a plain recency-ordered vector, no hash containers, so iteration
//! order is a pure function of the operation history (alint L6).

use crate::session::{Decision, Observation, SessionConfig, SessionState, WarmHyperparams};
use crate::trajectory::Trajectory;
use al_gp::GpError;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Warm-start cache key: which candidate grid and kernel family the
/// hyperparameters were fitted on. Sessions over the same grid/kernel
/// pair share a response surface, so their fitted length scales and
/// noise levels transfer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct WarmKey {
    /// Candidate-grid label (e.g. `"sweep-600"`).
    pub grid: String,
    /// Kernel label (e.g. `"RBF"`, from `KernelKind::label`).
    pub kernel: String,
}

impl WarmKey {
    /// Convenience constructor.
    pub fn new(grid: impl Into<String>, kernel: impl Into<String>) -> Self {
        WarmKey {
            grid: grid.into(),
            kernel: kernel.into(),
        }
    }
}

/// Bounded LRU of fitted hyperparameters, deterministic by construction.
///
/// Entries live in a recency-ordered vector (least recent at the front);
/// `get` refreshes recency, inserting over capacity evicts the least
/// recent entry. Iteration walks the vector, so the order observed by
/// callers is a pure function of the insert/get history — never of hash
/// state — which keeps the store inside alint L6's determinism contract.
///
/// Linear scans are deliberate: capacities here are tens of grid/kernel
/// pairs, far below where a map + intrusive list would win.
#[derive(Debug, Clone)]
pub struct HyperparamLru {
    capacity: usize,
    entries: Vec<(WarmKey, WarmHyperparams)>,
}

impl HyperparamLru {
    /// Create a cache holding at most `capacity` entries (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be at least 1");
        HyperparamLru {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &WarmKey) -> Option<&WarmHyperparams> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.push(entry);
        self.entries.last().map(|(_, v)| v)
    }

    /// Insert or overwrite `key` as the most recent entry, evicting the
    /// least recent entry when over capacity. Returns the evicted pair,
    /// if any.
    pub fn insert(
        &mut self,
        key: WarmKey,
        value: WarmHyperparams,
    ) -> Option<(WarmKey, WarmHyperparams)> {
        if let Some(pos) = self.entries.iter().position(|(k, _)| k == &key) {
            self.entries.remove(pos);
        }
        self.entries.push((key, value));
        if self.entries.len() > self.capacity {
            Some(self.entries.remove(0))
        } else {
            None
        }
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: &WarmKey) -> Option<WarmHyperparams> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }

    /// Entries from least to most recently used — deterministic given the
    /// operation history.
    pub fn iter(&self) -> impl Iterator<Item = (&WarmKey, &WarmHyperparams)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Typed errors of the serving layer.
///
/// GP failures come wrapped from the session core; the rest are protocol
/// misuse the store detects *before* touching session state, so a bad
/// request never corrupts a live session.
#[derive(Debug)]
pub enum SessionError {
    /// The underlying GP model failed (fit, augment, or predict).
    Gp(GpError),
    /// No session with this id exists in the store.
    UnknownSession(u64),
    /// A session with this id already exists.
    DuplicateSession(u64),
    /// The observation does not answer the session's outstanding query.
    ObservationMismatch {
        /// Session id.
        id: u64,
        /// Candidate the session asked for (`None`: session is stopped
        /// and awaits nothing).
        expected: Option<usize>,
        /// Candidate the observation answered.
        got: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Gp(e) => write!(f, "session GP failure: {e}"),
            SessionError::UnknownSession(id) => write!(f, "no session with id {id}"),
            SessionError::DuplicateSession(id) => write!(f, "session id {id} already exists"),
            SessionError::ObservationMismatch { id, expected, got } => match expected {
                Some(e) => write!(
                    f,
                    "session {id}: observation answers candidate {got}, outstanding query is {e}"
                ),
                None => write!(
                    f,
                    "session {id}: observation answers candidate {got}, but no query is outstanding"
                ),
            },
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Gp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpError> for SessionError {
    fn from(e: GpError) -> Self {
        SessionError::Gp(e)
    }
}

/// One live session plus its serving metadata.
struct Entry {
    state: SessionState,
    decision: Decision,
    warm_key: Option<WarmKey>,
}

/// Sharded map of live AL sessions with a shared warm-start cache.
///
/// See the module docs for the locking and warm-start design. The store
/// is `Sync`: shards are independent mutexes, and the warm cache is its
/// own lock taken only at session create/finish (never while a shard
/// lock is held for stepping — create takes warm-then-shard, finish takes
/// shard-then-warm, but finish drops the shard lock before touching the
/// cache, so lock order can never invert).
pub struct SessionStore {
    shards: Vec<Mutex<BTreeMap<u64, Entry>>>,
    warm: Mutex<HyperparamLru>,
}

impl SessionStore {
    /// Create a store with `n_shards` shards (≥ 1) and the default
    /// warm-cache capacity of 32 grid/kernel pairs.
    pub fn new(n_shards: usize) -> Self {
        Self::with_warm_capacity(n_shards, 32)
    }

    /// Create a store with an explicit warm-cache capacity.
    pub fn with_warm_capacity(n_shards: usize, warm_capacity: usize) -> Self {
        assert!(n_shards >= 1, "store needs at least one shard");
        SessionStore {
            shards: (0..n_shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
            warm: Mutex::new(HyperparamLru::new(warm_capacity)),
        }
    }

    fn shard(&self, id: u64) -> &Mutex<BTreeMap<u64, Entry>> {
        let n = self.shards.len() as u64;
        &self.shards[(id % n) as usize]
    }

    /// Number of live sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.lock().len()).sum()
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `id` names a live session.
    pub fn contains(&self, id: u64) -> bool {
        self.shard(id).lock().contains_key(&id)
    }

    /// Create a session and return its first decision.
    ///
    /// When `warm_key` is provided and the cache holds fitted
    /// hyperparameters for it, the session starts warm (cheap refit from
    /// the cached values); otherwise it performs the full multi-start
    /// initial fit. Warm-started sessions therefore depend on what
    /// finished before them — callers wanting bitwise-reproducible
    /// trajectories should pass `None`.
    pub fn create(
        &self,
        id: u64,
        config: SessionConfig,
        warm_key: Option<WarmKey>,
    ) -> Result<Decision, SessionError> {
        // The expensive fit runs before the shard lock is taken; only the
        // duplicate check and insert happen under it. A duplicate id thus
        // costs a wasted fit, never a poisoned map.
        let warm = match &warm_key {
            Some(key) => self.warm.lock().get(key).cloned(),
            None => None,
        };
        let (state, decision) = SessionState::start_warm(config, warm.as_ref())?;
        let mut shard = self.shard(id).lock();
        if shard.contains_key(&id) {
            return Err(SessionError::DuplicateSession(id));
        }
        shard.insert(
            id,
            Entry {
                state,
                decision,
                warm_key,
            },
        );
        Ok(decision)
    }

    /// The session's current decision (its outstanding query or stop).
    pub fn decision(&self, id: u64) -> Result<Decision, SessionError> {
        let shard = self.shard(id).lock();
        shard
            .get(&id)
            .map(|e| e.decision)
            .ok_or(SessionError::UnknownSession(id))
    }

    /// Feed the result of a session's outstanding query; returns the next
    /// decision.
    ///
    /// The observation is validated against the outstanding query before
    /// any state is touched, so a mismatched report leaves the session
    /// intact. A GP failure mid-step is fatal for that session: it is
    /// removed from the store and the error returned.
    ///
    /// The GP step runs with the shard guard dropped (alint L7: no fit
    /// work under a lock): the session is checked out of the shard, the
    /// refit/select step runs unlocked, and the successor state is checked
    /// back in. While a session is checked out its id reads as absent —
    /// harmless under the one-caller-per-session contract the concurrency
    /// suite exercises, and a `create` racing into the gap loses its map
    /// slot here, surfacing as [`SessionError::DuplicateSession`] rather
    /// than a silently dropped session.
    pub fn observe(&self, id: u64, obs: &Observation) -> Result<Decision, SessionError> {
        use std::collections::btree_map::Entry as MapEntry;
        let Entry {
            state,
            warm_key,
            decision: _,
        } = {
            let mut shard = self.shard(id).lock();
            let entry = shard.get_mut(&id).ok_or(SessionError::UnknownSession(id))?;
            let expected = entry.state.awaiting();
            if expected != Some(obs.dataset_index) {
                return Err(SessionError::ObservationMismatch {
                    id,
                    expected,
                    got: obs.dataset_index,
                });
            }
            match shard.remove(&id) {
                Some(entry) => entry,
                None => return Err(SessionError::UnknownSession(id)),
            }
        };
        match state.step(obs) {
            Ok((state, decision)) => {
                match self.shard(id).lock().entry(id) {
                    MapEntry::Occupied(_) => return Err(SessionError::DuplicateSession(id)),
                    MapEntry::Vacant(slot) => slot.insert(Entry {
                        state,
                        decision,
                        warm_key,
                    }),
                };
                Ok(decision)
            }
            Err(e) => Err(SessionError::Gp(e)),
        }
    }

    /// Remove a session and return its trajectory.
    ///
    /// If the session ran to a stop and carries a warm key, its fitted
    /// hyperparameters are published to the warm cache for future
    /// sessions (shard lock released first; see the module docs).
    pub fn finish(&self, id: u64) -> Result<Trajectory, SessionError> {
        let entry = {
            let mut shard = self.shard(id).lock();
            shard.remove(&id).ok_or(SessionError::UnknownSession(id))?
        };
        if let (Some(key), Some(_)) = (&entry.warm_key, entry.state.stop_reason()) {
            self.warm
                .lock()
                .insert(key.clone(), entry.state.warm_hyperparams());
        }
        Ok(entry.state.into_trajectory())
    }

    /// Snapshot of the warm cache (recency order), for introspection.
    pub fn warm_keys(&self) -> Vec<WarmKey> {
        self.warm.lock().iter().map(|(k, _)| k.clone()).collect()
    }

    /// Ids of all live sessions, ascending — deterministic because each
    /// shard is an ordered map and shards are visited in index order.
    pub fn session_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|shard| shard.lock().keys().copied().collect::<Vec<u64>>())
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::test_util::synth_dataset;
    use crate::procedure::AlOptions;
    use crate::stopping::StopReason;
    use crate::strategy::StrategyKind;
    use al_dataset::Partition;
    use al_gp::FitOptions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lru_value(tag: f64) -> WarmHyperparams {
        WarmHyperparams {
            cost: vec![tag, tag + 0.5],
            mem: vec![-tag],
        }
    }

    #[test]
    fn lru_evicts_least_recent_and_refreshes_on_get() {
        let mut lru = HyperparamLru::new(2);
        assert!(lru.is_empty());
        assert!(lru
            .insert(WarmKey::new("a", "RBF"), lru_value(1.0))
            .is_none());
        assert!(lru
            .insert(WarmKey::new("b", "RBF"), lru_value(2.0))
            .is_none());
        // Touch "a" so "b" becomes least recent.
        assert!(lru.get(&WarmKey::new("a", "RBF")).is_some());
        let evicted = lru.insert(WarmKey::new("c", "RBF"), lru_value(3.0));
        assert_eq!(evicted.map(|(k, _)| k), Some(WarmKey::new("b", "RBF")));
        assert_eq!(lru.len(), 2);
        assert!(lru.get(&WarmKey::new("b", "RBF")).is_none());
        let order: Vec<&WarmKey> = lru.iter().map(|(k, _)| k).collect();
        assert_eq!(order[0].grid, "a");
        assert_eq!(order[1].grid, "c");
    }

    #[test]
    fn lru_overwrite_keeps_len_and_updates_value() {
        let mut lru = HyperparamLru::new(2);
        lru.insert(WarmKey::new("a", "RBF"), lru_value(1.0));
        lru.insert(WarmKey::new("a", "RBF"), lru_value(9.0));
        assert_eq!(lru.len(), 1);
        assert_eq!(
            lru.get(&WarmKey::new("a", "RBF")),
            Some(&lru_value(9.0)),
            "hit must return the most recently inserted value"
        );
        assert_eq!(lru.remove(&WarmKey::new("a", "RBF")), Some(lru_value(9.0)));
        assert!(lru.is_empty());
        assert_eq!(lru.capacity(), 2);
    }

    fn fast_opts() -> AlOptions {
        AlOptions {
            initial_fit: FitOptions {
                n_restarts: 0,
                max_iters: 15,
                ..FitOptions::default()
            },
            refit: FitOptions {
                n_restarts: 0,
                max_iters: 5,
                ..FitOptions::default()
            },
            max_iterations: Some(4),
            ..AlOptions::default()
        }
    }

    fn config(seed: u64) -> (SessionConfig, al_dataset::Dataset) {
        let d = synth_dataset(36);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Partition::random(d.len(), 3, 12, &mut rng);
        let opts = AlOptions {
            seed,
            ..fast_opts()
        };
        (
            SessionConfig::from_partition(&d, &p, StrategyKind::RandUniform, &opts),
            d,
        )
    }

    #[test]
    fn store_lifecycle_create_observe_finish() {
        let store = SessionStore::new(4);
        let (cfg, d) = config(3);
        let mut decision = store.create(7, cfg, None).unwrap();
        assert!(store.contains(7));
        assert_eq!(store.len(), 1);
        while let Decision::Query(q) = decision {
            let obs = Observation::from_dataset(&d, q.dataset_index);
            decision = store.observe(7, &obs).unwrap();
        }
        assert_eq!(decision, Decision::Stop(StopReason::MaxIterations));
        let t = store.finish(7).unwrap();
        assert_eq!(t.len(), 4);
        assert!(store.is_empty());
        assert!(matches!(
            store.finish(7),
            Err(SessionError::UnknownSession(7))
        ));
    }

    #[test]
    fn duplicate_and_unknown_ids_are_typed_errors() {
        let store = SessionStore::new(2);
        let (cfg, d) = config(4);
        store.create(1, cfg.clone(), None).unwrap();
        assert!(matches!(
            store.create(1, cfg, None),
            Err(SessionError::DuplicateSession(1))
        ));
        let obs = Observation::from_dataset(&d, 0);
        assert!(matches!(
            store.observe(99, &obs),
            Err(SessionError::UnknownSession(99))
        ));
    }

    #[test]
    fn mismatched_observation_leaves_session_intact() {
        let store = SessionStore::new(2);
        let (cfg, d) = config(5);
        let decision = store.create(2, cfg, None).unwrap();
        let q = decision.query().unwrap();
        let wrong = (0..d.len()).find(|&i| i != q.dataset_index).unwrap();
        let err = store
            .observe(2, &Observation::from_dataset(&d, wrong))
            .unwrap_err();
        assert!(matches!(err, SessionError::ObservationMismatch { .. }));
        // The session still awaits the same query and can proceed.
        assert_eq!(store.decision(2).unwrap().query(), Some(q));
        let next = store
            .observe(2, &Observation::from_dataset(&d, q.dataset_index))
            .unwrap();
        assert!(next.query().is_some());
    }

    #[test]
    fn finished_sessions_publish_warm_hyperparams() {
        let store = SessionStore::with_warm_capacity(2, 4);
        let key = WarmKey::new("synth-36", "RBF");
        let (cfg, d) = config(6);
        let mut decision = store.create(10, cfg.clone(), Some(key.clone())).unwrap();
        while let Decision::Query(q) = decision {
            decision = store
                .observe(10, &Observation::from_dataset(&d, q.dataset_index))
                .unwrap();
        }
        assert!(store.warm_keys().is_empty(), "published only on finish");
        store.finish(10).unwrap();
        assert_eq!(store.warm_keys(), vec![key.clone()]);
        // A second session with the same key starts from the cache.
        store.create(11, cfg, Some(key)).unwrap();
        assert!(store.contains(11));
    }

    #[test]
    fn sessions_land_in_id_modulo_shards() {
        let store = SessionStore::new(3);
        for id in [0u64, 1, 2, 3, 4, 5] {
            let (cfg, _) = config(id + 20);
            store.create(id, cfg, None).unwrap();
        }
        assert_eq!(store.session_ids(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(store.len(), 6);
    }

    #[test]
    fn error_display_is_informative() {
        let e = SessionError::ObservationMismatch {
            id: 3,
            expected: Some(7),
            got: 9,
        };
        let msg = format!("{e}");
        assert!(msg.contains("3") && msg.contains("7") && msg.contains("9"));
        assert!(format!("{}", SessionError::UnknownSession(4)).contains("4"));
        assert!(format!("{}", SessionError::DuplicateSession(5)).contains("5"));
    }
}
