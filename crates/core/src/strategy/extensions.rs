//! Extension strategies beyond the paper's five, used by the strategy
//! ablation: a memory-aware variant of uncertainty sampling and a tunable
//! exploration/exploitation interpolation.

use crate::context::SelectionContext;
use crate::strategy::SelectionStrategy;
use al_linalg::ops::argmax;
use rand::Rng;

/// MaxSigma with RGMA's feasibility filter: pure uncertainty sampling,
/// restricted to candidates whose predicted memory satisfies `L_mem`.
///
/// Separates the paper's two mechanisms — memory filtering and
/// goodness-weighted cost awareness — so the ablation can attribute regret
/// reduction to the filter alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSigmaMa;

impl SelectionStrategy for MaxSigmaMa {
    fn name(&self) -> &'static str {
        "MaxSigmaMA"
    }

    fn select(&self, ctx: &SelectionContext<'_>, _rng: &mut dyn Rng) -> Option<usize> {
        // `run_trajectory` validates that memory-aware strategies get a
        // limit; for direct callers without one, refusing every candidate
        // (None) is the safe degradation.
        let limit = ctx.mem_limit_log?;
        (0..ctx.len())
            .filter(|&i| limit.admits(ctx.mu_mem[i]))
            .max_by(|&a, &b| {
                ctx.sigma_cost[a]
                    .partial_cmp(&ctx.sigma_cost[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

/// Deterministic interpolation between MaxSigma and MinPred:
/// `argmax_i (σ_cost,i − λ·μ_cost,i)`.
///
/// `λ = 0` recovers MaxSigma (pure exploration); `λ = 1` recovers MinPred
/// (which in practice exploits the cheapest prediction). Intermediate
/// values trade exploration against cost.
#[derive(Debug, Clone, Copy)]
pub struct CostWeightedSigma {
    lambda: f64,
}

impl CostWeightedSigma {
    /// Create with trade-off weight `λ ∈ [0, 1]`.
    pub fn new(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
        CostWeightedSigma { lambda }
    }
}

impl SelectionStrategy for CostWeightedSigma {
    fn name(&self) -> &'static str {
        "CostWeightedSigma"
    }

    fn select(&self, ctx: &SelectionContext<'_>, _rng: &mut dyn Rng) -> Option<usize> {
        let score: Vec<f64> = ctx
            .sigma_cost
            .iter()
            .zip(ctx.mu_cost)
            .map(|(s, m)| s - self.lambda * m)
            .collect();
        argmax(&score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::OwnedContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn max_sigma_ma_filters_then_maximizes_uncertainty() {
        let mut owned = OwnedContext::uniform(4);
        owned.mem_limit_log = Some(al_units::LogMegabytes::new(1.0));
        owned.mu_mem = vec![0.5, 0.5, 2.0, 0.5]; // candidate 2 violates
        owned.sigma_cost = vec![0.1, 0.3, 0.9, 0.2]; // ...but is most uncertain
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(MaxSigmaMa.select(&owned.ctx(), &mut rng), Some(1));
    }

    #[test]
    fn max_sigma_ma_refuses_when_everything_violates() {
        let mut owned = OwnedContext::uniform(2);
        owned.mem_limit_log = Some(al_units::LogMegabytes::new(-1.0));
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(MaxSigmaMa.select(&owned.ctx(), &mut rng), None);
    }

    #[test]
    fn max_sigma_ma_refuses_without_a_limit() {
        // `run_trajectory` asserts the limit is present; a direct caller
        // without one gets the safe degradation (no selection) instead of
        // a panic.
        let owned = OwnedContext::uniform(2);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(MaxSigmaMa.select(&owned.ctx(), &mut rng), None);
    }

    #[test]
    fn lambda_zero_matches_max_sigma() {
        let mut owned = OwnedContext::uniform(3);
        owned.sigma_cost = vec![0.2, 0.9, 0.5];
        owned.mu_cost = vec![-5.0, 5.0, 0.0];
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            CostWeightedSigma::new(0.0).select(&owned.ctx(), &mut rng),
            Some(1),
            "λ=0 ignores cost entirely"
        );
    }

    #[test]
    fn lambda_one_matches_min_pred() {
        let mut owned = OwnedContext::uniform(3);
        owned.sigma_cost = vec![0.1, 0.12, 0.11];
        owned.mu_cost = vec![2.0, -1.0, 0.5];
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            CostWeightedSigma::new(1.0).select(&owned.ctx(), &mut rng),
            Some(1),
            "λ=1 greedily picks the cheapest"
        );
    }

    #[test]
    fn intermediate_lambda_trades_off() {
        // Candidate 0: very uncertain but expensive; candidate 1: certain
        // and cheap. Small λ picks 0, large λ picks 1.
        let mut owned = OwnedContext::uniform(2);
        owned.sigma_cost = vec![1.0, 0.1];
        owned.mu_cost = vec![2.0, -1.0];
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(
            CostWeightedSigma::new(0.1).select(&owned.ctx(), &mut rng),
            Some(0)
        );
        assert_eq!(
            CostWeightedSigma::new(0.9).select(&owned.ctx(), &mut rng),
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn lambda_out_of_range_rejected() {
        CostWeightedSigma::new(1.5);
    }
}
