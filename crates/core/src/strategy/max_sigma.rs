//! Uncertainty sampling on the cost model (the paper's MaxSigma, called
//! Variance Reduction in the authors' earlier work).

use crate::context::SelectionContext;
use crate::strategy::SelectionStrategy;
use al_linalg::ops::argmax;
use rand::Rng;

/// Select the candidate with the largest cost-prediction uncertainty
/// `σ_cost`. Pure exploration: it chases the least-known region of the
/// input space regardless of how expensive the experiment will be.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSigma;

impl SelectionStrategy for MaxSigma {
    fn name(&self) -> &'static str {
        "MaxSigma"
    }

    fn select(&self, ctx: &SelectionContext<'_>, _rng: &mut dyn Rng) -> Option<usize> {
        argmax(ctx.sigma_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::OwnedContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn picks_largest_sigma() {
        let mut owned = OwnedContext::uniform(4);
        owned.sigma_cost = vec![0.1, 0.9, 0.5, 0.2];
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(MaxSigma.select(&owned.ctx(), &mut rng), Some(1));
    }

    #[test]
    fn ignores_cost_mean_entirely() {
        let mut owned = OwnedContext::uniform(3);
        owned.sigma_cost = vec![0.5, 0.6, 0.4];
        owned.mu_cost = vec![-100.0, 100.0, 0.0]; // wildly different costs
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(MaxSigma.select(&owned.ctx(), &mut rng), Some(1));
    }

    #[test]
    fn empty_pool_returns_none() {
        let owned = OwnedContext::uniform(0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(MaxSigma.select(&owned.ctx(), &mut rng), None);
    }
}
