//! The greedy "cost-efficient" algorithm the paper names MinPred.

use crate::context::SelectionContext;
use crate::strategy::SelectionStrategy;
use al_linalg::ops::argmax;
use rand::Rng;

/// Select `argmax_i (σ_cost,i − μ_cost,i)` — in the log10 space this is
/// the maximal uncertainty-to-cost ratio in natural units.
///
/// As the paper observes, the variations of `μ_cost` dwarf those of
/// `σ_cost` (the responses span orders of magnitude while posterior
/// standard deviations stay comparable), so in practice this degrades to
/// greedily selecting the **cheapest predicted** candidate — hence the
/// name. Pure exploitation.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinPred;

impl SelectionStrategy for MinPred {
    fn name(&self) -> &'static str {
        "MinPred"
    }

    fn select(&self, ctx: &SelectionContext<'_>, _rng: &mut dyn Rng) -> Option<usize> {
        let score: Vec<f64> = ctx
            .sigma_cost
            .iter()
            .zip(ctx.mu_cost)
            .map(|(s, m)| s - m)
            .collect();
        argmax(&score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::OwnedContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degenerates_to_cheapest_when_sigmas_are_comparable() {
        let mut owned = OwnedContext::uniform(4);
        owned.mu_cost = vec![2.0, -1.0, 0.5, 1.0]; // candidate 1 is cheapest
        owned.sigma_cost = vec![0.1, 0.12, 0.09, 0.11];
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(MinPred.select(&owned.ctx(), &mut rng), Some(1));
    }

    #[test]
    fn large_uncertainty_can_still_win_in_principle() {
        let mut owned = OwnedContext::uniform(2);
        owned.mu_cost = vec![0.0, 0.5];
        owned.sigma_cost = vec![0.0, 1.0]; // σ−μ: 0.0 vs 0.5
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(MinPred.select(&owned.ctx(), &mut rng), Some(1));
    }

    #[test]
    fn empty_pool_returns_none() {
        let owned = OwnedContext::uniform(0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(MinPred.select(&owned.ctx(), &mut rng), None);
    }
}
