//! The five candidate-selection algorithms of the paper's Section IV-B.

mod extensions;
mod max_sigma;
mod min_pred;
mod rand_goodness;
mod rand_uniform;
mod rgma;

pub use extensions::{CostWeightedSigma, MaxSigmaMa};
pub use max_sigma::MaxSigma;
pub use min_pred::MinPred;
pub use rand_goodness::RandGoodness;
pub use rand_uniform::RandUniform;
pub use rgma::Rgma;

use crate::context::SelectionContext;
use rand::Rng;

/// A candidate-selection algorithm: given the models' predictions for all
/// remaining candidates, pick the index of the next experiment to run.
///
/// Returning `None` signals that the algorithm refuses every remaining
/// candidate (RGMA does this when all predictions exceed the memory limit),
/// which terminates the trajectory early.
pub trait SelectionStrategy: Send {
    /// Display name (matches the paper's algorithm names).
    fn name(&self) -> &'static str;

    /// Select the next candidate, or `None` to stop.
    fn select(&self, ctx: &SelectionContext<'_>, rng: &mut dyn Rng) -> Option<usize>;
}

/// Runtime-selectable strategy family — the unit of comparison in every
/// figure of the paper.
///
/// # Examples
///
/// ```
/// use al_core::{SelectionContext, StrategyKind};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // Three candidates; the middle one is the most uncertain.
/// let mu = [0.0, 0.5, 1.0];
/// let sigma = [0.1, 0.9, 0.2];
/// let ctx = SelectionContext {
///     mu_cost: &mu,
///     sigma_cost: &sigma,
///     mu_mem: &mu,
///     sigma_mem: &sigma,
///     mem_limit_log: None,
/// };
/// let mut rng = StdRng::seed_from_u64(0);
/// let pick = StrategyKind::MaxSigma.build().select(&ctx, &mut rng);
/// assert_eq!(pick, Some(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// Uniform random sampling (the non-adaptive reference point).
    RandUniform,
    /// Uncertainty sampling on the cost model (`argmax σ_cost`).
    MaxSigma,
    /// Greedy "cost-efficient" selection `argmax(σ_cost − μ_cost)`, which
    /// in practice degrades to picking the cheapest prediction.
    MinPred,
    /// Randomized goodness sampling with `g = base^(σ_cost − μ_cost)`.
    RandGoodness {
        /// Exponent base (the paper argues for 10, matching the log10
        /// response transform).
        base: f64,
    },
    /// RandGoodness with memory awareness: candidates whose predicted
    /// memory exceeds `L_mem` are filtered out first (Algorithm 2).
    Rgma {
        /// Exponent base for the goodness distribution.
        base: f64,
    },
    /// *Extension:* MaxSigma restricted to memory-feasible candidates —
    /// isolates the effect of the RGMA filter from goodness weighting.
    MaxSigmaMa,
    /// *Extension:* deterministic `argmax(σ − λμ)` interpolating between
    /// MaxSigma (`λ = 0`) and MinPred (`λ = 1`).
    CostWeightedSigma {
        /// Exploration/exploitation trade-off weight in `[0, 1]`.
        lambda: f64,
    },
}

impl StrategyKind {
    /// The paper's five algorithms with default parameters.
    pub fn paper_five() -> [StrategyKind; 5] {
        [
            StrategyKind::RandUniform,
            StrategyKind::MaxSigma,
            StrategyKind::MinPred,
            StrategyKind::RandGoodness { base: 10.0 },
            StrategyKind::Rgma { base: 10.0 },
        ]
    }

    /// The four memory-oblivious algorithms (Fig. 2's comparison).
    pub fn cost_only_four() -> [StrategyKind; 4] {
        [
            StrategyKind::RandUniform,
            StrategyKind::MaxSigma,
            StrategyKind::MinPred,
            StrategyKind::RandGoodness { base: 10.0 },
        ]
    }

    /// Instantiate the strategy.
    pub fn build(&self) -> Box<dyn SelectionStrategy> {
        match *self {
            StrategyKind::RandUniform => Box::new(RandUniform),
            StrategyKind::MaxSigma => Box::new(MaxSigma),
            StrategyKind::MinPred => Box::new(MinPred),
            StrategyKind::RandGoodness { base } => Box::new(RandGoodness::new(base)),
            StrategyKind::Rgma { base } => Box::new(Rgma::new(base)),
            StrategyKind::MaxSigmaMa => Box::new(MaxSigmaMa),
            StrategyKind::CostWeightedSigma { lambda } => Box::new(CostWeightedSigma::new(lambda)),
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::RandUniform => "RandUniform",
            StrategyKind::MaxSigma => "MaxSigma",
            StrategyKind::MinPred => "MinPred",
            StrategyKind::RandGoodness { .. } => "RandGoodness",
            StrategyKind::Rgma { .. } => "RGMA",
            StrategyKind::MaxSigmaMa => "MaxSigmaMA",
            StrategyKind::CostWeightedSigma { .. } => "CostWeightedSigma",
        }
    }

    /// Whether the strategy consults the memory model.
    pub fn is_memory_aware(&self) -> bool {
        matches!(self, StrategyKind::Rgma { .. } | StrategyKind::MaxSigmaMa)
    }
}

/// Compute the normalized goodness distribution `g_i ∝ base^(σ_i − μ_i)`
/// over the given candidate indices (shared by RandGoodness and RGMA).
///
/// Returns `None` when the weights cannot form a distribution (no
/// candidates, or degenerate values).
pub(crate) fn goodness_weights(
    base: f64,
    mu: &[f64],
    sigma: &[f64],
    indices: &[usize],
) -> Option<Vec<f64>> {
    if indices.is_empty() {
        return None;
    }
    // Subtract the max exponent before exponentiating for numerical
    // stability; normalization cancels the shift.
    let exps: Vec<f64> = indices.iter().map(|&i| sigma[i] - mu[i]).collect();
    let max_e = exps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max_e.is_finite() {
        return None;
    }
    let weights: Vec<f64> = exps.iter().map(|e| base.powf(e - max_e)).collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return None;
    }
    Some(weights.iter().map(|w| w / total).collect())
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// A context whose four vectors are owned, for strategy unit tests.
    pub(crate) struct OwnedContext {
        pub(crate) mu_cost: Vec<f64>,
        pub(crate) sigma_cost: Vec<f64>,
        pub(crate) mu_mem: Vec<f64>,
        pub(crate) sigma_mem: Vec<f64>,
        pub(crate) mem_limit_log: Option<al_units::LogMegabytes>,
    }

    impl OwnedContext {
        pub(crate) fn uniform(n: usize) -> Self {
            OwnedContext {
                mu_cost: vec![0.0; n],
                sigma_cost: vec![1.0; n],
                mu_mem: vec![0.0; n],
                sigma_mem: vec![1.0; n],
                mem_limit_log: None,
            }
        }

        pub(crate) fn ctx(&self) -> SelectionContext<'_> {
            SelectionContext {
                mu_cost: &self.mu_cost,
                sigma_cost: &self.sigma_cost,
                mu_mem: &self.mu_mem,
                sigma_mem: &self.sigma_mem,
                mem_limit_log: self.mem_limit_log,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_matching_strategies() {
        for kind in StrategyKind::paper_five() {
            let s = kind.build();
            assert_eq!(s.name(), kind.label());
        }
    }

    #[test]
    fn only_rgma_is_memory_aware() {
        for kind in StrategyKind::paper_five() {
            assert_eq!(
                kind.is_memory_aware(),
                matches!(kind, StrategyKind::Rgma { .. })
            );
        }
        assert_eq!(StrategyKind::cost_only_four().len(), 4);
        assert!(StrategyKind::cost_only_four()
            .iter()
            .all(|k| !k.is_memory_aware()));
    }

    #[test]
    fn extension_kinds_build_and_label() {
        let kinds = [
            StrategyKind::MaxSigmaMa,
            StrategyKind::CostWeightedSigma { lambda: 0.5 },
        ];
        for kind in kinds {
            assert_eq!(kind.build().name(), kind.label());
        }
        assert!(StrategyKind::MaxSigmaMa.is_memory_aware());
        assert!(!StrategyKind::CostWeightedSigma { lambda: 0.5 }.is_memory_aware());
        // The paper's five remain exactly five.
        assert_eq!(StrategyKind::paper_five().len(), 5);
    }

    #[test]
    fn goodness_weights_normalize_and_order() {
        // Candidate 1 is cheaper (lower μ) ⇒ higher weight.
        let mu = [1.0, -1.0, 0.0];
        let sigma = [0.1, 0.1, 0.1];
        let w = goodness_weights(10.0, &mu, &sigma, &[0, 1, 2]).unwrap();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[1] > w[2] && w[2] > w[0]);
        // Base 10: Δ(σ−μ) = 1 decade between candidates 1 and 2 ⇒ 10×,
        // and 2 decades between 1 and 0 ⇒ 100×.
        assert!((w[1] / w[2] - 10.0).abs() < 1e-9);
        assert!((w[1] / w[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn goodness_weights_subset_of_indices() {
        let mu = [0.0, 5.0, 0.0];
        let sigma = [0.0; 3];
        let w = goodness_weights(10.0, &mu, &sigma, &[0, 2]).unwrap();
        assert_eq!(w.len(), 2);
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn goodness_weights_degenerate_inputs() {
        assert!(goodness_weights(10.0, &[], &[], &[]).is_none());
        let mu = [f64::NAN];
        let sigma = [0.0];
        assert!(goodness_weights(10.0, &mu, &sigma, &[0]).is_none());
    }

    #[test]
    fn higher_base_skews_distribution_more() {
        let mu = [0.0, 1.0];
        let sigma = [0.0, 0.0];
        let w10 = goodness_weights(10.0, &mu, &sigma, &[0, 1]).unwrap();
        let w100 = goodness_weights(100.0, &mu, &sigma, &[0, 1]).unwrap();
        assert!(
            w100[0] > w10[0],
            "base 100 concentrates more on the cheap candidate"
        );
    }
}
