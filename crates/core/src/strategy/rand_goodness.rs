//! Randomized goodness sampling — MinPred's exploration-capable sibling.

use crate::context::SelectionContext;
use crate::strategy::{goodness_weights, SelectionStrategy};
use al_linalg::rng::weighted_index;
use rand::Rng;

/// Sample the next candidate from the discrete distribution
/// `g_i ∝ base^(σ_cost,i − μ_cost,i)` (normalized to 1).
///
/// Base 10 matches the log10 response transform: a candidate predicted 10×
/// cheaper is 10× more likely to be drawn. Most draws land near MinPred's
/// choice, but occasionally an expensive, informative candidate is
/// selected — the exploration the paper adds to avoid exploiting only the
/// cheap corner of the input space.
#[derive(Debug, Clone, Copy)]
pub struct RandGoodness {
    base: f64,
}

impl RandGoodness {
    /// Create with the given exponent base (> 1; the paper uses 10).
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "goodness base must exceed 1");
        RandGoodness { base }
    }

    /// The exponent base.
    pub fn base(&self) -> f64 {
        self.base
    }
}

impl SelectionStrategy for RandGoodness {
    fn name(&self) -> &'static str {
        "RandGoodness"
    }

    fn select(&self, ctx: &SelectionContext<'_>, rng: &mut dyn Rng) -> Option<usize> {
        let all: Vec<usize> = (0..ctx.len()).collect();
        let weights = goodness_weights(self.base, ctx.mu_cost, ctx.sigma_cost, &all)?;
        weighted_index(rng, &weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::OwnedContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn favors_cheap_candidates_ten_to_one_per_decade() {
        let mut owned = OwnedContext::uniform(2);
        owned.mu_cost = vec![0.0, 1.0]; // one decade apart
        owned.sigma_cost = vec![0.2, 0.2];
        let s = RandGoodness::new(10.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 2];
        for _ in 0..22_000 {
            counts[s.select(&owned.ctx(), &mut rng).unwrap()] += 1;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 10.0).abs() < 1.5, "ratio {ratio}");
    }

    #[test]
    fn still_explores_expensive_candidates() {
        let mut owned = OwnedContext::uniform(2);
        owned.mu_cost = vec![0.0, 2.0]; // 100× more expensive
        owned.sigma_cost = vec![0.1, 0.1];
        let s = RandGoodness::new(10.0);
        let mut rng = StdRng::seed_from_u64(3);
        let picked_expensive = (0..20_000)
            .filter(|_| s.select(&owned.ctx(), &mut rng) == Some(1))
            .count();
        assert!(
            picked_expensive > 50,
            "exploration happens: {picked_expensive}"
        );
        assert!(picked_expensive < 1000, "but rarely: {picked_expensive}");
    }

    #[test]
    fn uncertainty_raises_selection_probability() {
        let mut owned = OwnedContext::uniform(2);
        owned.mu_cost = vec![0.0, 0.0];
        owned.sigma_cost = vec![0.05, 1.05]; // candidate 1 far less known
        let s = RandGoodness::new(10.0);
        let mut rng = StdRng::seed_from_u64(4);
        let picked_uncertain = (0..10_000)
            .filter(|_| s.select(&owned.ctx(), &mut rng) == Some(1))
            .count();
        assert!(picked_uncertain > 8500, "{picked_uncertain}");
    }

    #[test]
    fn empty_pool_returns_none() {
        let owned = OwnedContext::uniform(0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(RandGoodness::new(10.0).select(&owned.ctx(), &mut rng), None);
    }

    #[test]
    #[should_panic(expected = "base must exceed")]
    fn base_must_exceed_one() {
        RandGoodness::new(1.0);
    }
}
