//! Uniform random sampling — the paper's non-adaptive reference algorithm.

use crate::context::SelectionContext;
use crate::strategy::SelectionStrategy;
use rand::{Rng, RngExt};

/// Select uniformly at random among the remaining candidates, ignoring the
/// models entirely. Useful only as a comparison baseline: in sequential AL
/// it pays the full retraining cost without using any of the information.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandUniform;

impl SelectionStrategy for RandUniform {
    fn name(&self) -> &'static str {
        "RandUniform"
    }

    fn select(&self, ctx: &SelectionContext<'_>, rng: &mut dyn Rng) -> Option<usize> {
        if ctx.is_empty() {
            return None;
        }
        Some(rng.random_range(0..ctx.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::OwnedContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn covers_all_candidates_roughly_uniformly() {
        let owned = OwnedContext::uniform(4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[RandUniform.select(&owned.ctx(), &mut rng).unwrap()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn empty_pool_returns_none() {
        let owned = OwnedContext::uniform(0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(RandUniform.select(&owned.ctx(), &mut rng), None);
    }
}
