//! RGMA — RandGoodness with Memory Awareness (the paper's Algorithm 2 and
//! primary contribution).

use crate::context::SelectionContext;
use crate::strategy::{goodness_weights, SelectionStrategy};
use al_linalg::rng::weighted_index;
use rand::Rng;

/// Memory-aware extension of RandGoodness: candidates whose **predicted**
/// memory `μ_mem` meets or exceeds the limit `L_mem` are marked
/// undesirable and removed; the goodness draw happens over the satisfying
/// remainder only.
///
/// When every remaining candidate is predicted to violate the limit,
/// `select` returns `None`, which the AL procedure treats as early
/// termination — the paper's stopping rule "triggered only when all
/// remaining samples are likely to exceed the memory limit".
#[derive(Debug, Clone, Copy)]
pub struct Rgma {
    base: f64,
}

impl Rgma {
    /// Create with the given goodness base (> 1; the paper uses 10).
    pub fn new(base: f64) -> Self {
        assert!(base > 1.0, "goodness base must exceed 1");
        Rgma { base }
    }
}

impl SelectionStrategy for Rgma {
    fn name(&self) -> &'static str {
        "RGMA"
    }

    fn select(&self, ctx: &SelectionContext<'_>, rng: &mut dyn Rng) -> Option<usize> {
        // `run_trajectory` validates that memory-aware strategies get a
        // limit; for direct callers without one, refusing every candidate
        // (None) is the safe degradation.
        let limit = ctx.mem_limit_log?;
        // Algorithm 2, lines 1–2: classify candidates as satisfying
        // (μ_mem < L_mem) or exceeding.
        let satisfying: Vec<usize> = (0..ctx.len())
            .filter(|&i| limit.admits(ctx.mu_mem[i]))
            .collect();
        // Lines 3–5: goodness-weighted draw over the satisfying set.
        let weights = goodness_weights(self.base, ctx.mu_cost, ctx.sigma_cost, &satisfying)?;
        weighted_index(rng, &weights).map(|k| satisfying[k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_util::OwnedContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_with_limit(n: usize, limit: f64) -> OwnedContext {
        let mut owned = OwnedContext::uniform(n);
        owned.mem_limit_log = Some(al_units::LogMegabytes::new(limit));
        owned
    }

    #[test]
    fn never_selects_predicted_violators() {
        let mut owned = ctx_with_limit(4, 1.0);
        owned.mu_mem = vec![0.5, 1.5, 0.8, 2.0]; // 1 and 3 exceed
        owned.mu_cost = vec![0.0; 4];
        owned.sigma_cost = vec![0.1; 4];
        let s = Rgma::new(10.0);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..2000 {
            let pick = s.select(&owned.ctx(), &mut rng).unwrap();
            assert!(pick == 0 || pick == 2, "picked violator {pick}");
        }
    }

    #[test]
    fn limit_is_exclusive_at_the_boundary() {
        // μ_mem exactly equal to L_mem counts as exceeding (μ < L required).
        let mut owned = ctx_with_limit(2, 1.0);
        owned.mu_mem = vec![1.0, 0.9];
        let s = Rgma::new(10.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(s.select(&owned.ctx(), &mut rng), Some(1));
        }
    }

    #[test]
    fn all_violating_terminates() {
        let mut owned = ctx_with_limit(3, 0.0);
        owned.mu_mem = vec![0.5, 1.0, 2.0];
        let s = Rgma::new(10.0);
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(s.select(&owned.ctx(), &mut rng), None);
    }

    #[test]
    fn goodness_ordering_applies_within_satisfying_set() {
        let mut owned = ctx_with_limit(3, 10.0); // nothing filtered
        owned.mu_cost = vec![0.0, 2.0, 0.0];
        owned.sigma_cost = vec![0.1, 0.1, 0.1];
        let s = Rgma::new(10.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[s.select(&owned.ctx(), &mut rng).unwrap()] += 1;
        }
        assert!(counts[1] < counts[0] / 10, "{counts:?}");
        assert!(counts[1] < counts[2] / 10, "{counts:?}");
    }

    #[test]
    fn missing_limit_refuses_every_candidate() {
        // `run_trajectory` asserts the limit is present; a direct caller
        // without one gets the safe degradation (no selection) instead of
        // a panic.
        let owned = OwnedContext::uniform(2);
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(Rgma::new(10.0).select(&owned.ctx(), &mut rng), None);
    }

    #[test]
    fn empty_pool_returns_none() {
        let owned = ctx_with_limit(0, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(Rgma::new(10.0).select(&owned.ctx(), &mut rng), None);
    }
}
