//! Per-iteration records of one AL trajectory — the raw material every
//! figure of the paper is computed from.

use crate::stopping::StopReason;
use al_units::{Megabytes, NodeHours};

/// What happened at one AL iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Dataset row index of the selected experiment.
    pub dataset_index: usize,
    /// Actual cost of the selected experiment.
    pub cost: NodeHours,
    /// Actual memory of the selected experiment.
    pub memory: Megabytes,
    /// Individual regret `IR_i` of this selection (Eq. 11).
    pub regret: NodeHours,
    /// Cumulative cost `CC` up to and including this iteration.
    pub cumulative_cost: NodeHours,
    /// Cumulative regret `CR` up to and including this iteration.
    pub cumulative_regret: NodeHours,
    /// Non-log RMSE of the cost model on the Test partition after
    /// retraining with this sample.
    pub rmse_cost: f64,
    /// Non-log RMSE of the memory model on the Test partition after
    /// retraining with this sample.
    pub rmse_mem: f64,
}

/// A complete AL run: strategy, per-iteration records, and how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Strategy label (e.g. `"RGMA"`).
    pub strategy: String,
    /// Size of the Initial partition used.
    pub n_init: usize,
    /// Cost-model RMSE before any AL selection (after the initial fit).
    pub initial_rmse_cost: f64,
    /// Memory-model RMSE before any AL selection.
    pub initial_rmse_mem: f64,
    /// One record per executed iteration, in order.
    pub records: Vec<IterationRecord>,
    /// Why the trajectory stopped.
    pub stop_reason: StopReason,
}

impl Trajectory {
    /// Number of AL iterations executed.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no iterations ran.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Actual costs of the first `n` selections (Fig. 2's violin input),
    /// as bare node-hour magnitudes ready for violin statistics.
    pub fn selected_costs(&self, n: usize) -> Vec<f64> {
        self.records
            .iter()
            .take(n)
            .map(|r| r.cost.value())
            .collect()
    }

    /// Final cumulative cost.
    pub fn total_cost(&self) -> NodeHours {
        self.records
            .last()
            .map_or(NodeHours::default(), |r| r.cumulative_cost)
    }

    /// Final cumulative regret.
    pub fn total_regret(&self) -> NodeHours {
        self.records
            .last()
            .map_or(NodeHours::default(), |r| r.cumulative_regret)
    }

    /// Number of memory-violating selections.
    pub fn violations(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.regret.value() > 0.0)
            .count()
    }
}

/// Average a per-iteration quantity across trajectories of possibly
/// different lengths (RGMA stops early): entry `i` of the result averages
/// `f(records[i])` over every trajectory that reached iteration `i`.
pub fn mean_curve(trajectories: &[Trajectory], f: impl Fn(&IterationRecord) -> f64) -> Vec<f64> {
    let max_len = trajectories.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(max_len);
    for i in 0..max_len {
        let values: Vec<f64> = trajectories
            .iter()
            .filter_map(|t| t.records.get(i))
            .map(&f)
            .collect();
        out.push(al_linalg::stats::mean(&values));
    }
    out
}

/// Per-iteration quantile of a quantity across trajectories (e.g. the
/// median and quartile band of Fig. 3's regret curves). Entry `i` is the
/// `q`-quantile of `f(records[i])` over trajectories that reached `i`.
pub fn quantile_curve(
    trajectories: &[Trajectory],
    q: f64,
    f: impl Fn(&IterationRecord) -> f64,
) -> Vec<f64> {
    let max_len = trajectories.iter().map(|t| t.len()).max().unwrap_or(0);
    let mut out = Vec::with_capacity(max_len);
    for i in 0..max_len {
        let values: Vec<f64> = trajectories
            .iter()
            .filter_map(|t| t.records.get(i))
            .map(&f)
            .collect();
        out.push(al_linalg::stats::quantile(&values, q));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize, cost: f64, regret: f64) -> IterationRecord {
        IterationRecord {
            iteration: i,
            dataset_index: i,
            cost: NodeHours::new(cost),
            memory: Megabytes::new(1.0),
            regret: NodeHours::new(regret),
            cumulative_cost: NodeHours::default(),
            cumulative_regret: NodeHours::default(),
            rmse_cost: 1.0 / (i + 1) as f64,
            rmse_mem: 2.0 / (i + 1) as f64,
        }
    }

    fn trajectory(n: usize) -> Trajectory {
        let mut records: Vec<IterationRecord> =
            (0..n).map(|i| record(i, (i + 1) as f64, 0.0)).collect();
        let mut cc = NodeHours::default();
        for r in &mut records {
            cc += r.cost;
            r.cumulative_cost = cc;
        }
        Trajectory {
            strategy: "test".into(),
            n_init: 1,
            initial_rmse_cost: 5.0,
            initial_rmse_mem: 6.0,
            records,
            stop_reason: StopReason::ActiveExhausted,
        }
    }

    #[test]
    fn accessors() {
        let t = trajectory(3);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.selected_costs(2), vec![1.0, 2.0]);
        assert_eq!(t.selected_costs(10).len(), 3);
        assert!((t.total_cost().value() - 6.0).abs() < 1e-12);
        assert_eq!(t.total_regret().value(), 0.0);
        assert_eq!(t.violations(), 0);
    }

    #[test]
    fn violations_count_positive_regrets() {
        let mut t = trajectory(3);
        t.records[1].regret = NodeHours::new(2.0);
        assert_eq!(t.violations(), 1);
    }

    #[test]
    fn mean_curve_handles_ragged_lengths() {
        let a = trajectory(3);
        let b = trajectory(1);
        let curve = mean_curve(&[a, b], |r| r.cost.value());
        assert_eq!(curve.len(), 3);
        assert!((curve[0] - 1.0).abs() < 1e-12); // both contribute 1.0
        assert!((curve[1] - 2.0).abs() < 1e-12); // only the longer one
        assert!((curve[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_curve_of_nothing_is_empty() {
        assert!(mean_curve(&[], |r| r.cost.value()).is_empty());
    }

    #[test]
    fn quantile_curve_brackets_mean_curve() {
        let ts: Vec<Trajectory> = (1..=4).map(|n| trajectory(n * 2)).collect();
        let lo = quantile_curve(&ts, 0.0, |r| r.cost.value());
        let mid = mean_curve(&ts, |r| r.cost.value());
        let hi = quantile_curve(&ts, 1.0, |r| r.cost.value());
        assert_eq!(lo.len(), mid.len());
        for i in 0..mid.len() {
            assert!(lo[i] <= mid[i] + 1e-12 && mid[i] <= hi[i] + 1e-12);
        }
        // The median of identical trajectories equals their value.
        let same = vec![trajectory(3), trajectory(3)];
        let med = quantile_curve(&same, 0.5, |r| r.cost.value());
        assert_eq!(med, vec![1.0, 2.0, 3.0]);
    }
}
