//! Property-based tests for the warm-start hyperparameter LRU
//! (`al_core::HyperparamLru`), mirroring the `chunk_ranges` proptest
//! style in `crates/amr/tests/props.rs`: arbitrary insert/get/remove
//! sequences are checked against a tiny reference recency model.
//!
//! The properties the serving layer depends on (DESIGN §12):
//! - the cache never exceeds its capacity;
//! - a hit returns the most recently inserted value for that key;
//! - evictions always take the least recently used entry;
//! - iteration order is a pure function of the operation history
//!   (deterministic — the L6 requirement), equal to recency order.

// Integration tests run outside #[cfg(test)]; tests may panic and
// compare exact floats.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use al_core::{HyperparamLru, WarmHyperparams, WarmKey};
use proptest::prelude::*;

const KEY_UNIVERSE: usize = 6;

fn key(k: usize) -> WarmKey {
    WarmKey::new(format!("grid-{k}"), "RBF")
}

fn value(k: usize, tag: u32) -> WarmHyperparams {
    WarmHyperparams {
        cost: vec![k as f64, f64::from(tag)],
        mem: vec![-(f64::from(tag))],
    }
}

/// One cache operation: 0 = insert, 1 = get, 2 = remove.
fn ops() -> impl Strategy<Value = Vec<(u8, usize, u32)>> {
    proptest::collection::vec((0u8..3, 0usize..KEY_UNIVERSE, 0u32..1000), 1..200)
}

/// Apply an op sequence, checking every step against a reference model:
/// `recency` holds the member keys from least to most recently used, and
/// `latest[k]` the last value inserted for key `k`. Returns the final
/// iteration order. (The vendored proptest's `prop_assert*` panic, so no
/// error plumbing is needed.)
fn run_and_check(capacity: usize, ops: &[(u8, usize, u32)]) -> Vec<WarmKey> {
    let mut lru = HyperparamLru::new(capacity);
    let mut recency: Vec<usize> = Vec::new();
    let mut latest: Vec<Option<WarmHyperparams>> = vec![None; KEY_UNIVERSE];

    for &(op, k, tag) in ops {
        match op {
            0 => {
                let v = value(k, tag);
                latest[k] = Some(v.clone());
                let evicted = lru.insert(key(k), v);
                recency.retain(|&r| r != k);
                recency.push(k);
                let expected_eviction = if recency.len() > capacity {
                    Some(recency.remove(0))
                } else {
                    None
                };
                prop_assert_eq!(
                    evicted.as_ref().map(|(ek, _)| ek.clone()),
                    expected_eviction.map(key),
                    "eviction must take the least recently used entry"
                );
            }
            1 => {
                let hit = lru.get(&key(k)).cloned();
                if recency.contains(&k) {
                    prop_assert_eq!(
                        hit,
                        latest[k].clone(),
                        "hit must return the most recently inserted value"
                    );
                    recency.retain(|&r| r != k);
                    recency.push(k);
                } else {
                    prop_assert_eq!(hit, None);
                }
            }
            _ => {
                let removed = lru.remove(&key(k));
                if recency.contains(&k) {
                    prop_assert_eq!(removed, latest[k].clone());
                    recency.retain(|&r| r != k);
                } else {
                    prop_assert_eq!(removed, None);
                }
            }
        }
        // Step invariants: bounded, and iteration == recency order.
        prop_assert!(lru.len() <= lru.capacity(), "capacity exceeded");
        prop_assert_eq!(lru.len(), recency.len());
        prop_assert_eq!(lru.is_empty(), recency.is_empty());
        let order: Vec<WarmKey> = lru.iter().map(|(k, _)| k.clone()).collect();
        let expected: Vec<WarmKey> = recency.iter().map(|&r| key(r)).collect();
        prop_assert_eq!(order, expected, "iteration must walk recency order");
    }
    lru.iter().map(|(k, _)| k.clone()).collect()
}

proptest! {
    #[test]
    fn lru_matches_reference_recency_model(
        capacity in 1usize..6,
        ops in ops(),
    ) {
        run_and_check(capacity, &ops);
    }

    #[test]
    fn lru_iteration_order_is_deterministic(
        capacity in 1usize..6,
        ops in ops(),
    ) {
        // Replaying the identical history must reproduce the identical
        // final iteration order — no hash state, no ambient entropy.
        let a = run_and_check(capacity, &ops);
        let b = run_and_check(capacity, &ops);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn hit_after_insert_always_returns_that_value(
        capacity in 1usize..6,
        prefix in ops(),
        k in 0usize..KEY_UNIVERSE,
        tag in 0u32..1000,
    ) {
        // Whatever came before, an insert followed immediately by a get
        // of the same key is a hit with exactly the inserted value.
        let mut lru = HyperparamLru::new(capacity);
        for &(op, pk, ptag) in &prefix {
            match op {
                0 => { lru.insert(key(pk), value(pk, ptag)); }
                1 => { lru.get(&key(pk)); }
                _ => { lru.remove(&key(pk)); }
            }
        }
        lru.insert(key(k), value(k, tag));
        prop_assert_eq!(lru.get(&key(k)), Some(&value(k, tag)));
    }
}
