//! Property-based tests for the AL layer: strategy semantics and metric
//! invariants over arbitrary prediction vectors.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic, compare exact copied
// floats, and index loops for readability.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_core::metrics::{rmse_nonlog, CumulativeTracker};
use al_core::{SelectionContext, StrategyKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: aligned prediction vectors of common length 1..40.
fn predictions() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)> {
    (1usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(-4.0f64..2.0, n),
            proptest::collection::vec(0.001f64..1.0, n),
            proptest::collection::vec(-3.0f64..2.0, n),
            proptest::collection::vec(0.001f64..1.0, n),
        )
    })
}

proptest! {
    #[test]
    fn every_strategy_returns_a_valid_index(
        (mu_c, sg_c, mu_m, sg_m) in predictions(),
        seed in 0u64..1000,
    ) {
        let ctx = SelectionContext {
            mu_cost: &mu_c,
            sigma_cost: &sg_c,
            mu_mem: &mu_m,
            sigma_mem: &sg_m,
            mem_limit_log: Some(al_units::LogMegabytes::new(10.0)), // permissive: nothing filtered
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for kind in StrategyKind::paper_five() {
            let pick = kind.build().select(&ctx, &mut rng);
            let i = pick.expect("non-empty pool with permissive limit");
            prop_assert!(i < mu_c.len(), "{}: index {} out of bounds", kind.label(), i);
        }
    }

    #[test]
    fn rgma_selections_always_satisfy_the_limit(
        (mu_c, sg_c, mu_m, sg_m) in predictions(),
        limit in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let ctx = SelectionContext {
            mu_cost: &mu_c,
            sigma_cost: &sg_c,
            mu_mem: &mu_m,
            sigma_mem: &sg_m,
            mem_limit_log: Some(al_units::LogMegabytes::new(limit)),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let rgma = StrategyKind::Rgma { base: 10.0 }.build();
        match rgma.select(&ctx, &mut rng) {
            Some(i) => prop_assert!(mu_m[i] < limit, "picked μ_mem {} >= {}", mu_m[i], limit),
            None => {
                // Refusal is only legitimate when nothing satisfies.
                prop_assert!(mu_m.iter().all(|&m| m >= limit));
            }
        }
    }

    #[test]
    fn max_sigma_always_picks_the_most_uncertain(
        (mu_c, sg_c, mu_m, sg_m) in predictions(),
        seed in 0u64..100,
    ) {
        let ctx = SelectionContext {
            mu_cost: &mu_c,
            sigma_cost: &sg_c,
            mu_mem: &mu_m,
            sigma_mem: &sg_m,
            mem_limit_log: None,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let pick = StrategyKind::MaxSigma.build().select(&ctx, &mut rng).unwrap();
        for &s in &sg_c {
            prop_assert!(sg_c[pick] >= s);
        }
    }

    #[test]
    fn tracker_regret_never_exceeds_cost(
        jobs in proptest::collection::vec((0.001f64..10.0, 0.001f64..50.0), 1..50),
        limit in 0.01f64..50.0,
    ) {
        let mut t = CumulativeTracker::default();
        for (cost, mem) in &jobs {
            t.record(
                al_units::NodeHours::new(*cost),
                al_units::Megabytes::new(*mem),
                Some(al_units::Megabytes::new(limit)),
            );
        }
        prop_assert!(t.cumulative_regret().value() <= t.cumulative_cost().value() + 1e-12);
        prop_assert!(t.violations() as usize <= jobs.len());
        // Regret equals the sum of costs of violating jobs exactly.
        let expected: f64 = jobs.iter().filter(|(_, m)| *m >= limit).map(|(c, _)| c).sum();
        prop_assert!((t.cumulative_regret().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn rmse_nonlog_is_zero_iff_predictions_perfect(
        actual in proptest::collection::vec(0.01f64..100.0, 1..20),
    ) {
        let perfect: Vec<f64> = actual.iter().map(|a| a.log10()).collect();
        prop_assert!(rmse_nonlog(&perfect, &actual) < 1e-9);
        // Any perturbation yields a positive error.
        let mut off = perfect.clone();
        off[0] += 0.1;
        prop_assert!(rmse_nonlog(&off, &actual) > 0.0);
    }

    #[test]
    fn rand_goodness_prefers_cheap_over_expensive_in_aggregate(
        n in 4usize..20,
        seed in 0u64..100,
    ) {
        // Half the pool one decade cheaper: it must receive most picks.
        let mu_c: Vec<f64> = (0..n).map(|i| if i < n / 2 { 0.0 } else { 1.0 }).collect();
        let sg: Vec<f64> = vec![0.1; n];
        let ctx = SelectionContext {
            mu_cost: &mu_c,
            sigma_cost: &sg,
            mu_mem: &mu_c,
            sigma_mem: &sg,
            mem_limit_log: None,
        };
        let strategy = StrategyKind::RandGoodness { base: 10.0 }.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let cheap_picks = (0..200)
            .filter(|_| strategy.select(&ctx, &mut rng).unwrap() < n / 2)
            .count();
        prop_assert!(cheap_picks > 120, "cheap picked {} of 200", cheap_picks);
    }
}
