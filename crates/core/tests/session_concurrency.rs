//! Concurrency smoke test for the `SessionStore`: N threads hammer
//! distinct session ids spread across shards; every session's final
//! trajectory must equal the single-threaded reference run bit for bit.
//!
//! Per-session determinism is the session core's purity contract; this
//! suite checks the sharded store adds no cross-talk — per-shard locking
//! serializes each session's steps, and sessions never share state
//! (the warm cache is deliberately unused here: warm starts couple
//! sessions by design, so they are exercised in the store's unit tests
//! instead).
//!
//! Set `AL_TEST_THREADS` to add a thread count to the sweep (CI runs the
//! suite twice, with `AL_TEST_THREADS=1` and unset = the default sweep),
//! mirroring the `AMR_TEST_THREADS` pattern of
//! `crates/amr/tests/parallel_sweeps.rs`.

// Integration tests run outside #[cfg(test)]; tests may panic and compare
// exact copied floats.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use al_amr_sim::SimulationConfig;
use al_core::{
    AlOptions, Decision, Observation, SessionConfig, SessionStore, StrategyKind, Trajectory,
};
use al_dataset::{Dataset, Partition, Sample};
use al_gp::FitOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Deterministic synthetic dataset (twin of `procedure::test_util`).
fn synth_dataset(n: usize) -> Dataset {
    let ps = [4u32, 8, 16, 32];
    let mxs = [8usize, 16, 24, 32];
    let mls = [3u8, 4, 5, 6];
    let samples: Vec<Sample> = (0..n)
        .map(|i| {
            let config = SimulationConfig {
                p: ps[i % 4],
                mx: mxs[(i / 4) % 4],
                maxlevel: mls[(i / 16) % 4],
                r0: 0.2 + 0.3 * ((i % 7) as f64 / 6.0),
                rhoin: 0.02 + 0.48 * ((i % 5) as f64 / 4.0),
            };
            let work = 4f64.powi(config.maxlevel as i32 - 3)
                * (config.mx as f64 / 8.0).powi(2)
                * (1.0 + config.r0);
            let cost = 0.01 * work * (1.0 + 0.02 * config.p as f64);
            let memory = 0.05 * work * 8.0 / config.p as f64 + 0.01;
            Sample {
                config,
                wall_seconds: al_units::Seconds::new(cost * 3600.0 / config.p as f64),
                cost_node_hours: al_units::NodeHours::new(cost),
                memory_mb: al_units::Megabytes::new(memory),
            }
        })
        .collect();
    Dataset::new(samples)
}

/// Extra thread count from the environment (`AL_TEST_THREADS`); CI
/// exercises 1 and unset.
fn env_threads() -> Option<usize> {
    std::env::var("AL_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
}

/// Thread counts under test: {1, 2, 4} plus the environment's.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    if let Some(t) = env_threads().filter(|&t| t >= 1) {
        counts.push(t);
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

const N_SESSIONS: u64 = 8;
const N_SHARDS: usize = 3; // coprime with N_SESSIONS: shards get uneven load

fn session_config(dataset: &Dataset, id: u64) -> SessionConfig {
    let mut rng = StdRng::seed_from_u64(100 + id);
    let p = Partition::random(dataset.len(), 3, 12, &mut rng);
    let kind = if id.is_multiple_of(2) {
        StrategyKind::RandGoodness { base: 10.0 }
    } else {
        StrategyKind::Rgma { base: 10.0 }
    };
    let opts = AlOptions {
        initial_fit: FitOptions {
            n_restarts: 0,
            max_iters: 15,
            ..FitOptions::default()
        },
        refit: FitOptions {
            n_restarts: 0,
            max_iters: 5,
            ..FitOptions::default()
        },
        max_iterations: Some(6),
        mem_limit_log: Some(dataset.memory_limit_log(0.7)),
        seed: 1000 + id,
        ..AlOptions::default()
    };
    SessionConfig::from_partition(dataset, &p, kind, &opts)
}

/// Drive every session to completion through a store, with `n_threads`
/// workers stealing one *step* at a time — many threads hit the same
/// store concurrently, and session ids map onto shards unevenly.
fn run_store(dataset: &Dataset, n_threads: usize) -> Vec<Trajectory> {
    let store = SessionStore::new(N_SHARDS);
    for id in 0..N_SESSIONS {
        store.create(id, session_config(dataset, id), None).unwrap();
    }

    // Work-stealing over session ids: each claim advances one session by
    // one observation, so steps of different sessions interleave freely
    // across threads (within a session, the store serializes). A session's
    // claim slot is 0 = free, 1 = claimed, 2 = stopped.
    let claims: Vec<AtomicUsize> = (0..N_SESSIONS).map(|_| AtomicUsize::new(0)).collect();
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..n_threads {
            let store = &store;
            let claims = &claims;
            let cursor = &cursor;
            scope.spawn(move |_| loop {
                if claims.iter().all(|c| c.load(Ordering::Acquire) == 2) {
                    break;
                }
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let id = (k as u64) % N_SESSIONS;
                // One thread at a time may own a session's outstanding
                // query; the claim flag arbitrates.
                if claims[id as usize]
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_err()
                {
                    continue;
                }
                match store.decision(id).unwrap().query() {
                    Some(q) => {
                        let obs = Observation::from_dataset(dataset, q.dataset_index);
                        store.observe(id, &obs).unwrap();
                        claims[id as usize].store(0, Ordering::Release);
                    }
                    None => {
                        claims[id as usize].store(2, Ordering::Release);
                    }
                }
            });
        }
    })
    .unwrap();

    (0..N_SESSIONS)
        .map(|id| store.finish(id).unwrap())
        .collect()
}

/// Single-threaded reference: each session driven straight through the
/// store, one after another.
fn run_reference(dataset: &Dataset) -> Vec<Trajectory> {
    let store = SessionStore::new(N_SHARDS);
    (0..N_SESSIONS)
        .map(|id| {
            let mut decision = store.create(id, session_config(dataset, id), None).unwrap();
            while let Decision::Query(q) = decision {
                let obs = Observation::from_dataset(dataset, q.dataset_index);
                decision = store.observe(id, &obs).unwrap();
            }
            store.finish(id).unwrap()
        })
        .collect()
}

#[test]
fn hammered_store_reproduces_single_threaded_trajectories() {
    let dataset = synth_dataset(36);
    let reference = run_reference(&dataset);
    assert_eq!(reference.len(), N_SESSIONS as usize);
    for t in &reference {
        assert!(!t.records.is_empty());
    }
    for n_threads in thread_counts() {
        let got = run_store(&dataset, n_threads);
        assert_eq!(
            got, reference,
            "trajectories diverged with {n_threads} threads"
        );
    }
}
