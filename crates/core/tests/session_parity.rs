//! Replay/parity suite for the session core (DESIGN §12).
//!
//! Two claims are enforced here:
//!
//! 1. **Parity.** `run_trajectory` is now a thin driver over
//!    `session::step`. `legacy_run_trajectory` below is a hand-rolled
//!    replica of the pre-split loop body (the same pattern as the
//!    hand-rolled serial stepper in `crates/amr/tests/parallel_sweeps.rs`)
//!    driving `GpModel` directly; for RGMA and baseline strategies, both
//!    entry points must produce byte-identical trajectory CSVs and the
//!    same `StopReason` from the same seed.
//! 2. **Replay determinism.** `step` is a pure transition function:
//!    stepping a cloned `SessionState` snapshot twice with the same
//!    observation yields bitwise-identical successors (compared through
//!    `SessionState::digest`, since the RNG intentionally has no
//!    `PartialEq`), and a snapshot driven to completion reproduces the
//!    original trajectory exactly.

// Integration tests run outside #[cfg(test)]; tests may panic and compare
// exact copied floats.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp
)]

use al_amr_sim::SimulationConfig;
use al_core::metrics::{self, CumulativeTracker};
use al_core::stopping::{StabilizationDetector, StopReason, VectorStabilization};
use al_core::trajectory::IterationRecord;
use al_core::{
    io, run_trajectory, AlOptions, Decision, Observation, SelectionContext, SessionConfig,
    SessionState, StrategyKind, Trajectory,
};
use al_dataset::{Dataset, Partition, Sample};
use al_gp::{FitOptions, GpModel};
use al_units::{Megabytes, NodeHours};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic synthetic dataset (twin of `procedure::test_util`, which
/// is crate-private).
fn synth_dataset(n: usize) -> Dataset {
    let ps = [4u32, 8, 16, 32];
    let mxs = [8usize, 16, 24, 32];
    let mls = [3u8, 4, 5, 6];
    let samples: Vec<Sample> = (0..n)
        .map(|i| {
            let config = SimulationConfig {
                p: ps[i % 4],
                mx: mxs[(i / 4) % 4],
                maxlevel: mls[(i / 16) % 4],
                r0: 0.2 + 0.3 * ((i % 7) as f64 / 6.0),
                rhoin: 0.02 + 0.48 * ((i % 5) as f64 / 4.0),
            };
            let work = 4f64.powi(config.maxlevel as i32 - 3)
                * (config.mx as f64 / 8.0).powi(2)
                * (1.0 + config.r0);
            let cost = 0.01 * work * (1.0 + 0.02 * config.p as f64);
            let memory = 0.05 * work * 8.0 / config.p as f64 + 0.01;
            Sample {
                config,
                wall_seconds: al_units::Seconds::new(cost * 3600.0 / config.p as f64),
                cost_node_hours: al_units::NodeHours::new(cost),
                memory_mb: al_units::Megabytes::new(memory),
            }
        })
        .collect();
    Dataset::new(samples)
}

/// Hand-rolled replica of the pre-split `run_trajectory` loop body,
/// driving the GP models and selection strategy directly. Kept verbatim
/// from the legacy implementation so the session core has a fixed
/// reference to be measured against.
fn legacy_run_trajectory(
    dataset: &Dataset,
    partition: &Partition,
    kind: StrategyKind,
    opts: &AlOptions,
) -> Trajectory {
    let strategy = kind.build();
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let x_init = dataset.features_scaled(&partition.init);
    let mut rows: Vec<f64> = x_init.as_slice().to_vec();
    let mut n_train = partition.init.len();
    let mut y_cost = dataset.log_cost(&partition.init);
    let mut y_mem = dataset.log_memory(&partition.init);
    let train_x = |rows: &Vec<f64>, n: usize| al_linalg::Matrix::from_vec(n, 5, rows.clone());

    let mut gp_cost = GpModel::new(
        opts.kernel.build(opts.init_length_scale),
        opts.noise_variance,
    );
    let mut gp_mem = GpModel::new(
        opts.kernel.build(opts.init_length_scale),
        opts.noise_variance,
    );
    gp_cost
        .fit_optimized(&train_x(&rows, n_train), &y_cost, &opts.initial_fit)
        .unwrap();
    gp_mem
        .fit_optimized(&train_x(&rows, n_train), &y_mem, &opts.initial_fit)
        .unwrap();

    let x_test = dataset.features_scaled(&partition.test);
    let test_cost_raw = dataset.raw_cost(&partition.test);
    let test_mem_raw = dataset.raw_memory(&partition.test);
    let test_rmse = |gp_cost: &GpModel, gp_mem: &GpModel| -> (f64, f64) {
        let pc = gp_cost.predict(&x_test).unwrap();
        let pm = gp_mem.predict(&x_test).unwrap();
        (
            metrics::rmse_nonlog(&pc.mean, &test_cost_raw),
            metrics::rmse_nonlog(&pm.mean, &test_mem_raw),
        )
    };
    let (initial_rmse_cost, initial_rmse_mem) = test_rmse(&gp_cost, &gp_mem);

    let mut active: Vec<usize> = partition.active.clone();
    let mem_limit_raw = opts.mem_limit_log.map(|l| l.to_megabytes());
    let mut tracker = CumulativeTracker::default();
    let mut detector = opts
        .stabilization
        .map(|(w, tol)| StabilizationDetector::new(w, tol));
    let mut hp_detector = opts
        .hyperparam_stabilization
        .map(|(w, tol)| VectorStabilization::new(w, tol));

    let mut records = Vec::with_capacity(active.len());
    let max_iterations = opts.max_iterations.unwrap_or(usize::MAX);
    let mut iteration = 0usize;

    let stop_reason = loop {
        if active.is_empty() {
            break StopReason::ActiveExhausted;
        }
        if iteration >= max_iterations {
            break StopReason::MaxIterations;
        }

        let x_active = dataset.features_scaled(&active);
        let pred_cost = gp_cost.predict(&x_active).unwrap();
        let pred_mem = gp_mem.predict(&x_active).unwrap();
        let mut mu_c = pred_cost.mean;
        let mut sg_c = pred_cost.std;
        let mut mu_m = pred_mem.mean;
        let mut sg_m = pred_mem.std;

        let mut picked: Vec<usize> = Vec::with_capacity(opts.batch_size);
        let mut refused = false;
        while picked.len() < opts.batch_size
            && !active.is_empty()
            && iteration + picked.len() < max_iterations
        {
            let ctx = SelectionContext {
                mu_cost: &mu_c,
                sigma_cost: &sg_c,
                mu_mem: &mu_m,
                sigma_mem: &sg_m,
                mem_limit_log: opts.mem_limit_log,
            };
            match strategy.select(&ctx, &mut rng) {
                Some(k) => {
                    picked.push(active.remove(k));
                    mu_c.remove(k);
                    sg_c.remove(k);
                    mu_m.remove(k);
                    sg_m.remove(k);
                }
                None => {
                    refused = true;
                    break;
                }
            }
        }
        if picked.is_empty() {
            break StopReason::AllCandidatesRefused;
        }

        let crossed_optimize_boundary =
            (iteration + picked.len()) / opts.optimize_every > iteration / opts.optimize_every;

        let mut acquired: Vec<(usize, NodeHours, Megabytes, NodeHours, NodeHours, NodeHours)> =
            Vec::new();
        for &dataset_index in &picked {
            let sample = dataset.sample(dataset_index);
            let cost = sample.cost_node_hours;
            let memory = sample.memory_mb;
            let regret = tracker.record(cost, memory, mem_limit_raw);
            rows.extend_from_slice(&dataset.scaled_row(dataset_index));
            n_train += 1;
            y_cost.extend(dataset.log_cost(&[dataset_index]));
            y_mem.extend(dataset.log_memory(&[dataset_index]));
            if opts.incremental && !crossed_optimize_boundary {
                let row = dataset.scaled_row(dataset_index);
                gp_cost
                    .augment(&row, dataset.log_cost(&[dataset_index])[0])
                    .unwrap();
                gp_mem
                    .augment(&row, dataset.log_memory(&[dataset_index])[0])
                    .unwrap();
            }
            acquired.push((
                dataset_index,
                cost,
                memory,
                regret,
                tracker.cumulative_cost(),
                tracker.cumulative_regret(),
            ));
        }

        if crossed_optimize_boundary {
            let x = train_x(&rows, n_train);
            gp_cost.fit_optimized(&x, &y_cost, &opts.refit).unwrap();
            gp_mem.fit_optimized(&x, &y_mem, &opts.refit).unwrap();
        } else if !opts.incremental {
            let x = train_x(&rows, n_train);
            gp_cost.fit(&x, &y_cost).unwrap();
            gp_mem.fit(&x, &y_mem).unwrap();
        }

        let (rmse_cost, rmse_mem) = test_rmse(&gp_cost, &gp_mem);
        for (offset, (dataset_index, cost, memory, regret, cc, cr)) in
            acquired.into_iter().enumerate()
        {
            records.push(IterationRecord {
                iteration: iteration + offset,
                dataset_index,
                cost,
                memory,
                regret,
                cumulative_cost: cc,
                cumulative_regret: cr,
                rmse_cost,
                rmse_mem,
            });
        }
        iteration += picked.len();

        if refused {
            break StopReason::AllCandidatesRefused;
        }
        if let Some(detector) = detector.as_mut() {
            if detector.push(rmse_cost) {
                break StopReason::PredictionsStabilized;
            }
        }
        if let Some(hp) = hp_detector.as_mut() {
            if hp.push(&gp_cost.hyperparams()) {
                break StopReason::HyperparamsStabilized;
            }
        }
    };

    Trajectory {
        strategy: kind.label().to_string(),
        n_init: partition.init.len(),
        initial_rmse_cost,
        initial_rmse_mem,
        records,
        stop_reason,
    }
}

fn fast_opts() -> AlOptions {
    AlOptions {
        initial_fit: FitOptions {
            n_restarts: 1,
            max_iters: 30,
            ..FitOptions::default()
        },
        refit: FitOptions {
            n_restarts: 0,
            max_iters: 10,
            ..FitOptions::default()
        },
        optimize_every: 8,
        ..AlOptions::default()
    }
}

fn partition(dataset: &Dataset, n_init: usize, seed: u64) -> Partition {
    let mut rng = StdRng::seed_from_u64(seed);
    Partition::random(dataset.len(), n_init, dataset.len() / 3, &mut rng)
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("al_parity_{name}_{}.csv", std::process::id()));
    p
}

/// Assert the session-driven and legacy trajectories agree as values AND
/// as serialized bytes.
fn assert_byte_identical(name: &str, session: &Trajectory, legacy: &Trajectory) {
    assert_eq!(session, legacy, "{name}: trajectory values diverged");
    assert_eq!(
        session.stop_reason, legacy.stop_reason,
        "{name}: stop reasons diverged"
    );
    let (pa, pb) = (
        tmp(&format!("{name}_session")),
        tmp(&format!("{name}_legacy")),
    );
    io::write_trajectory_csv(session, &pa).unwrap();
    io::write_trajectory_csv(legacy, &pb).unwrap();
    let (ba, bb) = (std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    std::fs::remove_file(&pa).ok();
    std::fs::remove_file(&pb).ok();
    assert!(ba == bb, "{name}: serialized CSV bytes diverged");
}

#[test]
fn rgma_session_matches_legacy_loop_byte_for_byte() {
    let d = synth_dataset(72);
    let p = partition(&d, 12, 5);
    let opts = AlOptions {
        mem_limit_log: Some(d.memory_limit_log(0.7)),
        seed: 17,
        ..fast_opts()
    };
    let kind = StrategyKind::Rgma { base: 10.0 };
    let session = run_trajectory(&d, &p, kind, &opts).unwrap();
    let legacy = legacy_run_trajectory(&d, &p, kind, &opts);
    assert_byte_identical("rgma", &session, &legacy);
    assert!(!session.records.is_empty());
}

#[test]
fn baseline_session_matches_legacy_loop_byte_for_byte() {
    let d = synth_dataset(48);
    let p = partition(&d, 4, 6);
    // RandGoodness consumes RNG draws every selection — the strongest
    // check that the session preserves the legacy draw order exactly.
    let opts = AlOptions {
        seed: 23,
        ..fast_opts()
    };
    let kind = StrategyKind::RandGoodness { base: 10.0 };
    let session = run_trajectory(&d, &p, kind, &opts).unwrap();
    let legacy = legacy_run_trajectory(&d, &p, kind, &opts);
    assert_byte_identical("baseline", &session, &legacy);
    assert_eq!(session.stop_reason, StopReason::ActiveExhausted);
}

#[test]
fn batched_and_incremental_paths_match_legacy() {
    let d = synth_dataset(48);
    let p = partition(&d, 6, 21);
    for (name, opts) in [
        (
            "batch3",
            AlOptions {
                batch_size: 3,
                seed: 31,
                ..fast_opts()
            },
        ),
        (
            "incremental",
            AlOptions {
                incremental: true,
                max_iterations: Some(20),
                seed: 32,
                ..fast_opts()
            },
        ),
        (
            "batch_mid_cap",
            AlOptions {
                batch_size: 4,
                max_iterations: Some(6),
                seed: 33,
                ..fast_opts()
            },
        ),
    ] {
        let kind = StrategyKind::MinPred;
        let session = run_trajectory(&d, &p, kind, &opts).unwrap();
        let legacy = legacy_run_trajectory(&d, &p, kind, &opts);
        assert_byte_identical(name, &session, &legacy);
    }
}

#[test]
fn early_stop_reasons_match_legacy() {
    let d = synth_dataset(60);
    let p = partition(&d, 10, 8);
    for (name, opts, expect) in [
        (
            "stabilized",
            AlOptions {
                stabilization: Some((3, 10.0)),
                seed: 41,
                ..fast_opts()
            },
            StopReason::PredictionsStabilized,
        ),
        (
            "hyperparams",
            AlOptions {
                hyperparam_stabilization: Some((2, 1.0)),
                seed: 42,
                ..fast_opts()
            },
            StopReason::HyperparamsStabilized,
        ),
        (
            "max_iter",
            AlOptions {
                max_iterations: Some(5),
                seed: 43,
                ..fast_opts()
            },
            StopReason::MaxIterations,
        ),
    ] {
        let session = run_trajectory(&d, &p, StrategyKind::RandUniform, &opts).unwrap();
        let legacy = legacy_run_trajectory(&d, &p, StrategyKind::RandUniform, &opts);
        assert_eq!(session.stop_reason, expect, "{name}");
        assert_byte_identical(name, &session, &legacy);
    }
}

#[test]
fn step_is_replay_deterministic_from_any_snapshot() {
    let d = synth_dataset(48);
    let p = partition(&d, 4, 9);
    let opts = AlOptions {
        mem_limit_log: Some(d.memory_limit_log(0.7)),
        max_iterations: Some(10),
        seed: 51,
        ..fast_opts()
    };
    let config = SessionConfig::from_partition(&d, &p, StrategyKind::Rgma { base: 10.0 }, &opts);
    let (mut state, mut decision) = SessionState::start(config).unwrap();
    let mut checked = 0;
    while let Decision::Query(q) = decision {
        let obs = Observation::from_dataset(&d, q.dataset_index);
        // Same snapshot + same observation, applied twice: the successors
        // must be bitwise identical.
        let (s1, d1) = state.clone().step(&obs).unwrap();
        let (s2, d2) = state.clone().step(&obs).unwrap();
        assert_eq!(d1, d2, "decisions diverged at iteration {checked}");
        assert_eq!(
            s1.digest(),
            s2.digest(),
            "successor states diverged at iteration {checked}"
        );
        checked += 1;
        (state, decision) = (s1, d1);
    }
    assert!(checked >= 5, "exercised too few steps ({checked})");
}

#[test]
fn cloned_snapshot_driven_to_completion_reproduces_the_trajectory() {
    let d = synth_dataset(36);
    let p = partition(&d, 3, 12);
    let opts = AlOptions {
        seed: 61,
        ..fast_opts()
    };
    let kind = StrategyKind::RandGoodness { base: 10.0 };
    let config = SessionConfig::from_partition(&d, &p, kind, &opts);
    let (mut state, mut decision) = SessionState::start(config).unwrap();

    // Take a snapshot a few steps in, then race both copies to the end.
    for _ in 0..3 {
        let q = decision.query().expect("pool is large enough");
        let obs = Observation::from_dataset(&d, q.dataset_index);
        (state, decision) = state.step(&obs).unwrap();
    }
    let snapshot = state.clone();
    let snapshot_decision = decision;

    let drive = |mut state: SessionState, mut decision: Decision| -> Trajectory {
        while let Decision::Query(q) = decision {
            let obs = Observation::from_dataset(&d, q.dataset_index);
            (state, decision) = state.step(&obs).unwrap();
        }
        state.into_trajectory()
    };
    let a = drive(state, decision);
    let b = drive(snapshot, snapshot_decision);
    assert_eq!(a, b, "replayed snapshot diverged from the original run");
    assert_eq!(a, legacy_run_trajectory(&d, &p, kind, &opts));
}
