//! The in-memory dataset: samples plus the fitted feature scaler, with
//! views shaped for GP training (scaled features, log responses) and for
//! metric computation (raw responses).

use crate::sample::Sample;
use crate::transform::{log10_response, FeatureScaler};
use al_linalg::Matrix;
use al_units::LogMegabytes;

/// Optional per-feature pre-transform applied *before* min–max scaling.
///
/// The paper (Section V-D) suggests modeling the node count through its
/// exponent so that `2^3` processors sit equidistant from `2^2` and `2^4`:
/// enabling `log2_p` replaces feature 0 (`p`) with `log2(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureMap {
    /// Replace `p` with `log2(p)` before scaling.
    pub log2_p: bool,
}

impl FeatureMap {
    /// Apply the mapping to a raw feature vector.
    pub fn apply(&self, raw: &[f64; 5]) -> [f64; 5] {
        let mut out = *raw;
        if self.log2_p {
            debug_assert!(out[0] > 0.0, "node count must be positive");
            out[0] = out[0].log2();
        }
        out
    }
}

/// An immutable collection of measurements with a feature scaler fitted on
/// the whole collection (the paper scales features over the full dataset
/// before partitioning).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    samples: Vec<Sample>,
    map: FeatureMap,
    scaler: FeatureScaler,
}

impl Dataset {
    /// Wrap samples, fitting the min–max feature scaler.
    ///
    /// Panics on an empty sample list or non-positive responses (the log
    /// transform requires positivity).
    pub fn new(samples: Vec<Sample>) -> Self {
        Self::with_map(samples, FeatureMap::default())
    }

    /// Like [`Dataset::new`] but with a per-feature pre-transform (e.g.
    /// `log2(p)` spacing of the node-count axis).
    pub fn with_map(samples: Vec<Sample>, map: FeatureMap) -> Self {
        assert!(!samples.is_empty(), "dataset cannot be empty");
        for s in &samples {
            assert!(
                s.cost_node_hours.value() > 0.0
                    && s.memory_mb.value() > 0.0
                    && s.wall_seconds.value() > 0.0,
                "responses must be positive"
            );
        }
        let rows: Vec<[f64; 5]> = samples.iter().map(|s| map.apply(&s.features())).collect();
        let scaler = FeatureScaler::fit(&rows);
        Dataset {
            samples,
            map,
            scaler,
        }
    }

    /// The feature pre-transform in effect.
    pub fn feature_map(&self) -> FeatureMap {
        self.map
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false (constructor rejects empty datasets).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow a sample.
    pub fn sample(&self, i: usize) -> &Sample {
        &self.samples[i]
    }

    /// Borrow all samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The fitted feature scaler.
    pub fn scaler(&self) -> &FeatureScaler {
        &self.scaler
    }

    /// Design matrix of unit-cube-scaled (and pre-transformed) features
    /// for the given sample indices (one row per index, in order).
    pub fn features_scaled(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * 5);
        for &i in indices {
            data.extend_from_slice(&self.scaled_row(i));
        }
        Matrix::from_vec(indices.len(), 5, data)
    }

    /// The scaled feature row of one sample.
    pub fn scaled_row(&self, index: usize) -> [f64; 5] {
        self.scaler
            .transform(&self.map.apply(&self.samples[index].features()))
    }

    /// Raw cost responses as bare node-hour magnitudes for the given
    /// indices — the numeric-kernel view the GP and metrics consume.
    pub fn raw_cost(&self, indices: &[usize]) -> Vec<f64> {
        indices
            .iter()
            .map(|&i| self.samples[i].cost_node_hours.value())
            .collect()
    }

    /// Raw memory responses as bare MB magnitudes for the given indices.
    pub fn raw_memory(&self, indices: &[usize]) -> Vec<f64> {
        indices
            .iter()
            .map(|&i| self.samples[i].memory_mb.value())
            .collect()
    }

    /// `log10` cost responses — what the cost GP trains on.
    pub fn log_cost(&self, indices: &[usize]) -> Vec<f64> {
        indices
            .iter()
            .map(|&i| log10_response(self.samples[i].cost_node_hours.value()))
            .collect()
    }

    /// `log10` memory responses — what the memory GP trains on.
    pub fn log_memory(&self, indices: &[usize]) -> Vec<f64> {
        indices
            .iter()
            .map(|&i| log10_response(self.samples[i].memory_mb.value()))
            .collect()
    }

    /// The paper's memory limit: the `quantile`-fraction of the largest
    /// log-transformed memory response, returned in log10 MB. The paper
    /// uses 0.95 ("95% of the largest log-transformed memory usage").
    pub fn memory_limit_log(&self, quantile: f64) -> LogMegabytes {
        let max_log = self
            .samples
            .iter()
            .map(|s| log10_response(s.memory_mb.value()))
            .fold(f64::NEG_INFINITY, f64::max);
        LogMegabytes::new(max_log * quantile)
    }

    /// Alternative limit definition: the `q`-quantile of the memory
    /// *distribution* (log10 MB), so exactly `1−q` of the jobs violate it.
    ///
    /// Our machine model's memory tail is shorter than Edison's (the
    /// paper's limit left a sizeable violating fraction); this definition
    /// pins that fraction directly, which the regret experiments need.
    pub fn memory_limit_log_percentile(&self, q: f64) -> LogMegabytes {
        let mems: Vec<f64> = self.samples.iter().map(|s| s.memory_mb.value()).collect();
        LogMegabytes::new(log10_response(al_linalg::stats::quantile(&mems, q)))
    }

    /// Fraction of samples whose memory meets or exceeds a log-space limit.
    pub fn violating_fraction(&self, limit_log: LogMegabytes) -> f64 {
        let limit = limit_log.to_megabytes();
        self.samples.iter().filter(|s| s.memory_mb >= limit).count() as f64
            / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use al_amr_sim::SimulationConfig;
    use al_units::{Megabytes, NodeHours, Seconds};

    pub(crate) fn synthetic(n: usize) -> Dataset {
        let samples: Vec<Sample> = (0..n)
            .map(|i| {
                let t = i as f64 / n.max(2) as f64;
                Sample {
                    config: SimulationConfig {
                        p: 4 + (i % 4) as u32 * 4,
                        mx: 8 + (i % 3) * 8,
                        maxlevel: 3 + (i % 4) as u8,
                        r0: 0.2 + 0.3 * t,
                        rhoin: 0.02 + 0.4 * t,
                    },
                    wall_seconds: Seconds::new(2.0 + 100.0 * t),
                    cost_node_hours: NodeHours::new(0.01 + 5.0 * t * t),
                    memory_mb: Megabytes::new(0.05 + 20.0 * t),
                }
            })
            .collect();
        Dataset::new(samples)
    }

    #[test]
    fn features_scaled_lie_in_unit_cube() {
        let d = synthetic(20);
        let idx: Vec<usize> = (0..d.len()).collect();
        let x = d.features_scaled(&idx);
        assert_eq!(x.shape(), (20, 5));
        for i in 0..x.rows() {
            for v in x.row(i) {
                assert!((0.0..=1.0).contains(v), "{v}");
            }
        }
    }

    #[test]
    fn log_views_match_raw_views() {
        let d = synthetic(10);
        let idx = vec![0, 3, 7];
        let raw = d.raw_cost(&idx);
        let logv = d.log_cost(&idx);
        for (r, l) in raw.iter().zip(&logv) {
            assert!((l - r.log10()).abs() < 1e-12);
        }
        let rawm = d.raw_memory(&idx);
        let logm = d.log_memory(&idx);
        for (r, l) in rawm.iter().zip(&logm) {
            assert!((l - r.log10()).abs() < 1e-12);
        }
    }

    #[test]
    fn index_order_is_respected() {
        let d = synthetic(10);
        let a = d.raw_cost(&[2, 5]);
        let b = d.raw_cost(&[5, 2]);
        assert_eq!(a[0], b[1]);
        assert_eq!(a[1], b[0]);
    }

    #[test]
    fn memory_limit_is_fraction_of_max_log() {
        let d = synthetic(10);
        let max_log = d
            .samples()
            .iter()
            .map(|s| s.memory_mb.value().log10())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((d.memory_limit_log(0.95).value() - 0.95 * max_log).abs() < 1e-12);
        assert_eq!(d.memory_limit_log(1.0).value(), max_log);
    }

    #[test]
    fn percentile_limit_pins_the_violating_fraction() {
        let d = synthetic(20);
        let limit = d.memory_limit_log_percentile(0.9);
        let frac = d.violating_fraction(limit);
        // quantile interpolation: ~10% at or above the 90th percentile.
        assert!((0.05..=0.2).contains(&frac), "fraction {frac}");
        // A limit above the maximum leaves zero violators.
        assert_eq!(d.violating_fraction(d.memory_limit_log(1.0) + 0.1), 0.0);
        // A limit below the minimum catches everything.
        assert_eq!(
            d.violating_fraction(al_units::LogMegabytes::new(-10.0)),
            1.0
        );
    }

    #[test]
    fn log2_p_map_respaces_the_node_axis() {
        let base = synthetic(16);
        let mapped = Dataset::with_map(base.samples().to_vec(), FeatureMap { log2_p: true });
        assert!(mapped.feature_map().log2_p);
        assert!(!base.feature_map().log2_p);
        // The synthetic p values are 4, 8, 12, 16: min–max scaling after
        // the log2 map places each p at (log2 p − 2) / (log2 16 − 2).
        for i in 0..mapped.len() {
            let p = mapped.sample(i).config.p as f64;
            let scaled = mapped.scaled_row(i)[0];
            let expected = (p.log2() - 2.0) / 2.0;
            assert!(
                (scaled - expected).abs() < 1e-12,
                "p={p}: scaled {scaled} vs {expected}"
            );
        }
        // In the linear mapping, p=8 sits at (8-4)/(16-4) = 1/3, while the
        // log2 axis places it at 0.5 — the respacing the paper proposes.
        let i8 = (0..base.len())
            .find(|&i| base.sample(i).config.p == 8)
            .unwrap();
        assert!((base.scaled_row(i8)[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((mapped.scaled_row(i8)[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feature_map_only_touches_p() {
        let map = FeatureMap { log2_p: true };
        let mapped = map.apply(&[16.0, 24.0, 5.0, 0.3, 0.1]);
        assert_eq!(mapped, [4.0, 24.0, 5.0, 0.3, 0.1]);
        let identity = FeatureMap::default();
        assert_eq!(
            identity.apply(&[16.0, 24.0, 5.0, 0.3, 0.1]),
            [16.0, 24.0, 5.0, 0.3, 0.1]
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_rejected() {
        Dataset::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_response_rejected() {
        let mut s = *synthetic(2).sample(0);
        s.cost_node_hours = NodeHours::new(0.0);
        Dataset::new(vec![s]);
    }
}
