//! Parallel dataset generation: run one AMR simulation per job across a
//! pool of worker threads (the local stand-in for the paper's >1K SLURM
//! jobs on Edison).
//!
//! One of the three `spawn_approved` fan-outs under alint L6 (DESIGN
//! §9): jobs are an ordered list, each worker writes into its job's own
//! index-addressed slot, and results are returned in job order — the
//! regenerated `data/dataset.csv` is byte-identical for any
//! `n_threads`.

use crate::sample::Sample;
use al_amr_sim::{run_simulation, AmrError, MachineModel, SimulationConfig, SolverProfile};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Options for [`generate_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct GenerateOptions {
    /// Solver accuracy/horizon profile.
    pub profile: SolverProfile,
    /// Machine model translating work into responses.
    pub machine: MachineModel,
    /// Worker threads (0 = one per available core).
    pub n_threads: usize,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        GenerateOptions {
            profile: SolverProfile::paper(),
            machine: MachineModel::default(),
            n_threads: 0,
        }
    }
}

/// Run every `(config, repeat)` job and return samples in job order, or
/// the first [`AmrError`] any simulation reported — including
/// [`AmrError::Truncated`] for a run that stopped short of its horizon,
/// so a partial burst can never be recorded as a completed measurement.
///
/// Work is distributed dynamically via an atomic cursor so the expensive
/// tail (deep `maxlevel`, large `mx`) does not serialize behind one thread.
/// Results are deterministic regardless of thread count because each job's
/// noise seed depends only on `(config, repeat)`.
pub fn generate_parallel(
    jobs: &[(SimulationConfig, u32)],
    opts: &GenerateOptions,
) -> Result<Vec<Sample>, AmrError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let n_threads = if opts.n_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        opts.n_threads
    }
    .min(jobs.len());

    let cursor = AtomicUsize::new(0);
    let mut per_thread: Vec<Result<Vec<(usize, Sample)>, AmrError>> = Vec::new();

    let scope_result = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let cursor = &cursor;
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<(usize, Sample)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let (config, repeat) = jobs[i];
                    let outcome = run_simulation(&config, opts.profile, &opts.machine, repeat)?;
                    local.push((i, Sample::from(outcome)));
                }
                Ok(local)
            }));
        }
        for h in handles {
            match h.join() {
                Ok(local) => per_thread.push(local),
                // Re-raise the worker's panic with its original payload
                // instead of masking it behind a second panic here.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }

    let mut pairs: Vec<(usize, Sample)> = Vec::with_capacity(jobs.len());
    for local in per_thread {
        pairs.extend(local?);
    }
    // The cursor hands every index to exactly one worker, so after all
    // workers returned Ok the pairs cover the jobs exactly once.
    debug_assert_eq!(pairs.len(), jobs.len());
    pairs.sort_by_key(|(i, _)| *i);
    Ok(pairs.into_iter().map(|(_, sample)| sample).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SweepGrid;

    fn smoke_opts(n_threads: usize) -> GenerateOptions {
        GenerateOptions {
            profile: SolverProfile::smoke(),
            machine: MachineModel::default(),
            n_threads,
        }
    }

    #[test]
    fn empty_job_list_yields_empty_dataset() {
        assert!(generate_parallel(&[], &smoke_opts(2)).unwrap().is_empty());
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let jobs = SweepGrid::small().draw_jobs(6, 2, 3);
        let serial = generate_parallel(&jobs, &smoke_opts(1)).unwrap();
        let parallel = generate_parallel(&jobs, &smoke_opts(4)).unwrap();
        assert_eq!(serial.len(), 8);
        assert_eq!(serial, parallel, "thread count must not change results");
    }

    #[test]
    fn samples_align_with_jobs() {
        let jobs = SweepGrid::small().draw_jobs(4, 1, 9);
        let samples = generate_parallel(&jobs, &smoke_opts(2)).unwrap();
        for ((config, _), sample) in jobs.iter().zip(&samples) {
            assert_eq!(sample.config, *config);
            assert!(sample.cost_node_hours.value() > 0.0);
        }
    }

    #[test]
    fn truncated_simulation_fails_generation() {
        let jobs = SweepGrid::small().draw_jobs(3, 0, 7);
        // A horizon no two steps can reach turns every job into a
        // truncated burst, which must surface as an error rather than a
        // silently-short dataset.
        let opts = GenerateOptions {
            profile: SolverProfile {
                t_final: 1.0,
                max_steps: 2,
                ..SolverProfile::smoke()
            },
            ..smoke_opts(2)
        };
        let err = generate_parallel(&jobs, &opts).unwrap_err();
        assert!(
            matches!(err, AmrError::Truncated { .. }),
            "expected truncation error, got {err:?}"
        );
    }

    #[test]
    fn repeats_differ_only_by_noise() {
        let grid = SweepGrid::small();
        let config = grid.all_configs()[0];
        let jobs = vec![(config, 0u32), (config, 1u32)];
        let samples = generate_parallel(&jobs, &smoke_opts(2)).unwrap();
        assert_ne!(samples[0].cost_node_hours, samples[1].cost_node_hours);
        // Noise is small: within a factor of 2.
        let ratio = samples[0].cost_node_hours / samples[1].cost_node_hours;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }
}
