//! The sweep grid: all 1920 feature combinations the paper sampled from,
//! and the stratified draw of the 600-sample dataset.

use al_amr_sim::SimulationConfig;
use al_linalg::rng::weighted_index;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Sampled values per feature. The cross product has
/// `4 · 4 · 4 · 5 · 6 = 1920` combinations, matching the paper's total.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// Node counts.
    pub p: Vec<u32>,
    /// Patch sizes.
    pub mx: Vec<usize>,
    /// Maximum refinement levels.
    pub maxlevel: Vec<u8>,
    /// Bubble sizes.
    pub r0: Vec<f64>,
    /// Bubble densities.
    pub rhoin: Vec<f64>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid {
            p: vec![4, 8, 16, 32],
            mx: vec![8, 16, 24, 32],
            maxlevel: vec![3, 4, 5, 6],
            r0: vec![0.2, 0.275, 0.35, 0.425, 0.5],
            rhoin: vec![0.02, 0.05, 0.1, 0.2, 0.35, 0.5],
        }
    }
}

impl SweepGrid {
    /// A reduced grid (`2·2·2·2·2 = 32` combos) for tests and smoke runs.
    pub fn small() -> Self {
        SweepGrid {
            p: vec![4, 16],
            mx: vec![8, 16],
            maxlevel: vec![3, 4],
            r0: vec![0.2, 0.4],
            rhoin: vec![0.05, 0.3],
        }
    }

    /// Total number of combinations.
    pub fn n_combinations(&self) -> usize {
        self.p.len() * self.mx.len() * self.maxlevel.len() * self.r0.len() * self.rhoin.len()
    }

    /// Enumerate every configuration in deterministic order.
    pub fn all_configs(&self) -> Vec<SimulationConfig> {
        let mut out = Vec::with_capacity(self.n_combinations());
        for &p in &self.p {
            for &mx in &self.mx {
                for &maxlevel in &self.maxlevel {
                    for &r0 in &self.r0 {
                        for &rhoin in &self.rhoin {
                            out.push(SimulationConfig {
                                p,
                                mx,
                                maxlevel,
                                r0,
                                rhoin,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Relative selection weight of a configuration; the most expensive
    /// corner (`maxlevel` and `mx` high) is thinned, mirroring the paper's
    /// "more sparsely sampling the expensive parameter regimes" so the
    /// dataset's cost distribution is not dominated by huge jobs.
    pub fn selection_weight(&self, config: &SimulationConfig) -> f64 {
        let ml_rank = self
            .maxlevel
            .iter()
            .position(|&v| v == config.maxlevel)
            .unwrap_or(0) as f64
            / (self.maxlevel.len().max(2) - 1) as f64;
        let mx_rank = self.mx.iter().position(|&v| v == config.mx).unwrap_or(0) as f64
            / (self.mx.len().max(2) - 1) as f64;
        // Weight decays from 1.0 for the cheapest corner to ~0.2 for the
        // most expensive one.
        (1.0 - 0.55 * ml_rank) * (1.0 - 0.45 * mx_rank)
    }

    /// Draw the dataset's job list: `n_unique` distinct configurations by
    /// weighted sampling without replacement, plus `n_repeats` repeated
    /// measurements of randomly chosen selected configurations (the paper:
    /// 525 + 75 = 600). Returns `(config, repeat_index)` pairs; repeats get
    /// indices 1, 2, ... so their machine noise differs.
    pub fn draw_jobs(
        &self,
        n_unique: usize,
        n_repeats: usize,
        seed: u64,
    ) -> Vec<(SimulationConfig, u32)> {
        let all = self.all_configs();
        assert!(
            n_unique <= all.len(),
            "cannot draw {n_unique} unique configs from {}",
            all.len()
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights: Vec<f64> = all.iter().map(|c| self.selection_weight(c)).collect();
        let mut chosen: Vec<usize> = Vec::with_capacity(n_unique);
        for _ in 0..n_unique {
            // `weighted_index` returns None only when every remaining
            // weight is zero (a degenerate selection_weight). Fall back to
            // the first not-yet-chosen config so the draw still completes
            // with `n_unique` distinct configurations.
            let idx = weighted_index(&mut rng, &weights)
                .or_else(|| (0..all.len()).find(|i| !chosen.contains(i)))
                .unwrap_or(0);
            chosen.push(idx);
            weights[idx] = 0.0; // without replacement
        }
        let mut jobs: Vec<(SimulationConfig, u32)> =
            chosen.iter().map(|&i| (all[i], 0u32)).collect();

        // Repeats: pick among the chosen configs; track per-config counts
        // so a config measured three times gets repeat indices 0, 1, 2.
        let mut repeat_count = vec![0u32; chosen.len()];
        for _ in 0..n_repeats {
            let k = rng.random_range(0..chosen.len());
            repeat_count[k] += 1;
            jobs.push((all[chosen[k]], repeat_count[k]));
        }
        jobs
    }
}

/// Convenience for tests: a deterministic uniform random draw of `n`
/// configurations (with replacement) from the grid.
pub fn random_configs<R: Rng + ?Sized>(
    grid: &SweepGrid,
    n: usize,
    rng: &mut R,
) -> Vec<SimulationConfig> {
    (0..n)
        .map(|_| SimulationConfig {
            p: grid.p[rng.random_range(0..grid.p.len())],
            mx: grid.mx[rng.random_range(0..grid.mx.len())],
            maxlevel: grid.maxlevel[rng.random_range(0..grid.maxlevel.len())],
            r0: grid.r0[rng.random_range(0..grid.r0.len())],
            rhoin: grid.rhoin[rng.random_range(0..grid.rhoin.len())],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_matches_paper_combination_count() {
        assert_eq!(SweepGrid::default().n_combinations(), 1920);
        assert_eq!(SweepGrid::default().all_configs().len(), 1920);
    }

    #[test]
    fn grid_covers_table_one_ranges() {
        let g = SweepGrid::default();
        assert_eq!(*g.p.first().unwrap(), 4);
        assert_eq!(*g.p.last().unwrap(), 32);
        assert_eq!(*g.mx.first().unwrap(), 8);
        assert_eq!(*g.mx.last().unwrap(), 32);
        assert_eq!(*g.maxlevel.first().unwrap(), 3);
        assert_eq!(*g.maxlevel.last().unwrap(), 6);
        assert_eq!(*g.r0.first().unwrap(), 0.2);
        assert_eq!(*g.r0.last().unwrap(), 0.5);
        assert_eq!(*g.rhoin.first().unwrap(), 0.02);
        assert_eq!(*g.rhoin.last().unwrap(), 0.5);
    }

    #[test]
    fn weights_thin_the_expensive_corner() {
        let g = SweepGrid::default();
        let cheap = SimulationConfig {
            p: 4,
            mx: 8,
            maxlevel: 3,
            r0: 0.2,
            rhoin: 0.02,
        };
        let dear = SimulationConfig {
            p: 4,
            mx: 32,
            maxlevel: 6,
            r0: 0.2,
            rhoin: 0.02,
        };
        assert!(g.selection_weight(&cheap) > 2.0 * g.selection_weight(&dear));
        assert!(g.selection_weight(&dear) > 0.0);
    }

    #[test]
    fn draw_jobs_counts_and_uniqueness() {
        let g = SweepGrid::default();
        let jobs = g.draw_jobs(525, 75, 7);
        assert_eq!(jobs.len(), 600);
        // The first 525 are unique configurations at repeat index 0.
        let uniques = &jobs[..525];
        assert!(uniques.iter().all(|(_, r)| *r == 0));
        for a in 0..525 {
            for b in (a + 1)..525 {
                assert_ne!(uniques[a].0, uniques[b].0, "duplicate unique config");
            }
        }
        // Repeats reference selected configs with indices >= 1.
        for (cfg, r) in &jobs[525..] {
            assert!(*r >= 1);
            assert!(uniques.iter().any(|(u, _)| u == cfg));
        }
    }

    #[test]
    fn draw_jobs_is_deterministic_per_seed() {
        let g = SweepGrid::small();
        assert_eq!(g.draw_jobs(10, 3, 1), g.draw_jobs(10, 3, 1));
        assert_ne!(g.draw_jobs(10, 3, 1), g.draw_jobs(10, 3, 2));
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn draw_jobs_rejects_oversized_unique_count() {
        SweepGrid::small().draw_jobs(100, 0, 1);
    }

    #[test]
    fn draw_thins_expensive_configs_in_aggregate() {
        let g = SweepGrid::default();
        let jobs = g.draw_jobs(525, 0, 11);
        let expensive = jobs
            .iter()
            .filter(|(c, _)| c.maxlevel == 6 && c.mx == 32)
            .count();
        let cheap = jobs
            .iter()
            .filter(|(c, _)| c.maxlevel == 3 && c.mx == 8)
            .count();
        assert!(
            cheap > expensive,
            "cheap corner {cheap} should outnumber expensive corner {expensive}"
        );
    }

    #[test]
    fn random_configs_stay_on_grid() {
        let g = SweepGrid::small();
        let mut rng = StdRng::seed_from_u64(3);
        for c in random_configs(&g, 50, &mut rng) {
            assert!(g.p.contains(&c.p));
            assert!(g.mx.contains(&c.mx));
            assert!(g.maxlevel.contains(&c.maxlevel));
            assert!(g.r0.contains(&c.r0));
            assert!(g.rhoin.contains(&c.rhoin));
        }
    }
}
