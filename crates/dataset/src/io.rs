//! CSV persistence for datasets.
//!
//! The format is a plain header + rows of `Display`-formatted `f64`s
//! (Rust's shortest-roundtrip float formatting), so write→read is lossless.

use crate::dataset::Dataset;
use crate::sample::Sample;
use al_amr_sim::SimulationConfig;
use al_units::{Megabytes, NodeHours, Seconds};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Column header written and expected by this module.
pub const HEADER: &str = "p,mx,maxlevel,r0,rhoin,wall_seconds,cost_node_hours,memory_mb";

/// Errors from dataset persistence.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file's structure did not match the expected CSV schema.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Write samples as CSV.
pub fn write_csv(samples: &[Sample], path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{HEADER}")?;
    for s in samples {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{}",
            s.config.p,
            s.config.mx,
            s.config.maxlevel,
            s.config.r0,
            s.config.rhoin,
            s.wall_seconds,
            s.cost_node_hours,
            s.memory_mb
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Read samples from CSV (as written by [`write_csv`]).
pub fn read_csv(path: &Path) -> Result<Vec<Sample>, IoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut samples = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 {
            if line.trim() != HEADER {
                return Err(IoError::Parse {
                    line: 1,
                    message: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(IoError::Parse {
                line: lineno + 1,
                message: format!("expected 8 fields, got {}", fields.len()),
            });
        }
        let parse_f = |idx: usize| -> Result<f64, IoError> {
            fields[idx].trim().parse().map_err(|e| IoError::Parse {
                line: lineno + 1,
                message: format!("field {idx}: {e}"),
            })
        };
        let parse_u = |idx: usize| -> Result<u64, IoError> {
            fields[idx].trim().parse().map_err(|e| IoError::Parse {
                line: lineno + 1,
                message: format!("field {idx}: {e}"),
            })
        };
        samples.push(Sample {
            config: SimulationConfig {
                p: parse_u(0)? as u32,
                mx: parse_u(1)? as usize,
                maxlevel: parse_u(2)? as u8,
                r0: parse_f(3)?,
                rhoin: parse_f(4)?,
            },
            wall_seconds: Seconds::new(parse_f(5)?),
            cost_node_hours: NodeHours::new(parse_f(6)?),
            memory_mb: Megabytes::new(parse_f(7)?),
        });
    }
    Ok(samples)
}

/// Load a dataset from CSV, or build it with `generate` and cache it at
/// `path` when the file does not exist yet. This is how the experiment
/// binaries share one expensive generation run.
pub fn load_or_generate(
    path: &Path,
    generate: impl FnOnce() -> Vec<Sample>,
) -> Result<Dataset, IoError> {
    if path.exists() {
        let samples = read_csv(path)?;
        if !samples.is_empty() {
            return Ok(Dataset::new(samples));
        }
    }
    let samples = generate();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    write_csv(&samples, path)?;
    Ok(Dataset::new(samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: usize) -> Sample {
        Sample {
            config: SimulationConfig {
                p: 4 * (i as u32 + 1),
                mx: 8,
                maxlevel: 3,
                r0: 0.2 + 0.017 * i as f64,
                rhoin: 0.02 * (i + 1) as f64,
            },
            wall_seconds: Seconds::new(1.5 + i as f64 * std::f64::consts::PI),
            cost_node_hours: NodeHours::new(0.002 * (i + 1) as f64),
            memory_mb: Megabytes::new(0.05 / (i + 1) as f64),
        }
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("al_dataset_io_{name}_{}.csv", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_is_lossless() {
        let path = tmpfile("roundtrip");
        let samples: Vec<Sample> = (0..5).map(sample).collect();
        write_csv(&samples, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(samples, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_bad_header() {
        let path = tmpfile("badheader");
        std::fs::write(&path, "a,b,c\n1,2,3\n").unwrap();
        assert!(matches!(
            read_csv(&path),
            Err(IoError::Parse { line: 1, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_short_rows_and_bad_numbers() {
        let path = tmpfile("badrow");
        std::fs::write(&path, format!("{HEADER}\n1,2,3\n")).unwrap();
        assert!(matches!(
            read_csv(&path),
            Err(IoError::Parse { line: 2, .. })
        ));

        std::fs::write(&path, format!("{HEADER}\n4,8,3,0.2,abc,1.0,0.1,0.5\n")).unwrap();
        let err = read_csv(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_skips_blank_lines() {
        let path = tmpfile("blank");
        std::fs::write(&path, format!("{HEADER}\n4,8,3,0.2,0.05,1.0,0.1,0.5\n\n")).unwrap();
        assert_eq!(read_csv(&path).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_or_generate_caches() {
        let path = tmpfile("cache");
        std::fs::remove_file(&path).ok();
        let mut calls = 0;
        let d1 = load_or_generate(&path, || {
            calls += 1;
            (0..3).map(sample).collect()
        })
        .unwrap();
        assert_eq!(calls, 1);
        assert_eq!(d1.len(), 3);
        // Second load hits the cache.
        let d2 = load_or_generate(&path, || {
            panic!("generator must not run when the cache exists")
        })
        .unwrap();
        assert_eq!(d1, d2);
        std::fs::remove_file(&path).ok();
    }
}
