// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
#![warn(missing_docs)]

//! Dataset pipeline: the paper's 1920-combination parameter sweep, the
//! 600-sample dataset drawn from it (525 unique configurations + 75
//! repeats), response transforms (log10), feature scaling to the unit
//! cube, Init/Active/Test partitioning and CSV persistence.
//!
//! The offline AL simulator (crate `al-core`) consults a [`Dataset`] as its
//! "database of precomputed performance samples", exactly as the paper's
//! analysis framework does.

pub mod dataset;
pub mod generate;
pub mod grid;
pub mod io;
pub mod partition;
pub mod sample;
pub mod summary;
pub mod transform;

pub use dataset::{Dataset, FeatureMap};
pub use generate::{generate_parallel, GenerateOptions};
pub use grid::SweepGrid;
pub use partition::Partition;
pub use sample::Sample;
pub use summary::TableSummary;
pub use transform::FeatureScaler;
