//! Random partitioning of a dataset into Initial / Active / Test subsets
//! (paper Section IV): shuffle, reserve `n_test` samples for error
//! estimation, split the rest into `n_init` pre-AL training samples and
//! the Active pool AL selects from one at a time.

use al_linalg::rng::permutation;
use rand::Rng;

/// Index sets into a dataset.
///
/// # Examples
///
/// ```
/// use al_dataset::Partition;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let p = Partition::random(600, 50, 200, &mut rng);
/// assert_eq!((p.init.len(), p.active.len(), p.test.len()), (50, 350, 200));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Samples used for the initial model fit (experimenter-chosen phase).
    pub init: Vec<usize>,
    /// Samples available for one-at-a-time AL selection.
    pub active: Vec<usize>,
    /// Held-out samples used exclusively for RMSE estimation.
    pub test: Vec<usize>,
}

impl Partition {
    /// Randomly partition `n` samples: `n_test` to Test, `n_init` to
    /// Initial, the remainder to Active.
    ///
    /// Panics unless `n_init >= 1` (the models need at least one training
    /// point) and `n_init + n_test < n` (the Active pool must be non-empty).
    pub fn random<R: Rng + ?Sized>(n: usize, n_init: usize, n_test: usize, rng: &mut R) -> Self {
        assert!(n_init >= 1, "need at least one initial sample");
        assert!(
            n_init + n_test < n,
            "n_init ({n_init}) + n_test ({n_test}) must leave room for the Active pool in {n}"
        );
        let perm = permutation(rng, n);
        let test = perm[..n_test].to_vec();
        let init = perm[n_test..n_test + n_init].to_vec();
        let active = perm[n_test + n_init..].to_vec();
        Partition { init, active, test }
    }

    /// Paper defaults: `n_test = 200` of 600 samples, with the given
    /// `n_init ∈ {1, 50, 100}`.
    pub fn paper_default<R: Rng + ?Sized>(n: usize, n_init: usize, rng: &mut R) -> Self {
        Self::random(n, n_init, n.min(600) / 3, rng)
    }

    /// Total indexed samples.
    pub fn len(&self) -> usize {
        self.init.len() + self.active.len() + self.test.len()
    }

    /// True when no samples are indexed (never produced by constructors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    #[test]
    fn partition_is_disjoint_and_complete() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Partition::random(600, 50, 200, &mut rng);
        assert_eq!(p.init.len(), 50);
        assert_eq!(p.test.len(), 200);
        assert_eq!(p.active.len(), 350);
        assert_eq!(p.len(), 600);
        assert!(!p.is_empty());
        let all: BTreeSet<usize> = p
            .init
            .iter()
            .chain(&p.active)
            .chain(&p.test)
            .copied()
            .collect();
        assert_eq!(all.len(), 600, "indices are disjoint");
        assert_eq!(*all.iter().max().unwrap(), 599);
    }

    #[test]
    fn minimal_init_partition() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = Partition::random(600, 1, 200, &mut rng);
        assert_eq!(p.init.len(), 1);
        assert_eq!(p.active.len(), 399);
    }

    #[test]
    fn paper_default_reserves_a_third_for_test() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Partition::paper_default(600, 100, &mut rng);
        assert_eq!(p.test.len(), 200);
        assert_eq!(p.init.len(), 100);
        assert_eq!(p.active.len(), 300);
    }

    #[test]
    fn different_seeds_give_different_shuffles() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            Partition::random(100, 10, 30, &mut a),
            Partition::random(100, 10, 30, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "at least one initial")]
    fn zero_init_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        Partition::random(100, 0, 30, &mut rng);
    }

    #[test]
    #[should_panic(expected = "Active pool")]
    fn oversized_split_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        Partition::random(100, 70, 30, &mut rng);
    }
}
