//! One row of the dataset: a configuration plus its measured responses.

use al_amr_sim::{SimulationConfig, SimulationOutcome};
use al_units::{Megabytes, NodeHours, Seconds};

/// A completed measurement: the paper's `(x, c, m)` triple plus wall-clock
/// time (Table I lists all three responses), each in its unit type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Input configuration (the 5 features).
    pub config: SimulationConfig,
    /// Wall-clock time.
    pub wall_seconds: Seconds,
    /// Cost in node-hours — the `c` response.
    pub cost_node_hours: NodeHours,
    /// MaxRSS per process — the `m` response.
    pub memory_mb: Megabytes,
}

impl Sample {
    /// Raw (unscaled) feature vector `[p, mx, maxlevel, r0, rhoin]`.
    pub fn features(&self) -> [f64; 5] {
        self.config.features()
    }
}

impl From<SimulationOutcome> for Sample {
    fn from(o: SimulationOutcome) -> Self {
        Sample {
            config: o.config,
            wall_seconds: o.wall_seconds,
            cost_node_hours: o.cost_node_hours,
            memory_mb: o.memory_mb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_delegate_to_config() {
        let s = Sample {
            config: SimulationConfig {
                p: 16,
                mx: 24,
                maxlevel: 4,
                r0: 0.35,
                rhoin: 0.2,
            },
            wall_seconds: Seconds::new(10.0),
            cost_node_hours: NodeHours::new(0.04),
            memory_mb: Megabytes::new(1.5),
        };
        assert_eq!(s.features(), [16.0, 24.0, 4.0, 0.35, 0.2]);
    }
}
