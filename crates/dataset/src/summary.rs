//! Descriptive dataset summary — regenerates the paper's Table I
//! ("Parameters of the AMR shock-bubble simulation dataset").

use crate::dataset::Dataset;
use al_linalg::stats::Summary;

/// Per-column five-number summaries of features and responses.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSummary {
    /// `(column name, summary)` in the paper's row order.
    pub rows: Vec<(String, Summary)>,
}

impl TableSummary {
    /// Compute the summary of a dataset.
    pub fn of(dataset: &Dataset) -> Self {
        let col = |f: &dyn Fn(&crate::sample::Sample) -> f64| -> Vec<f64> {
            dataset.samples().iter().map(f).collect()
        };
        let rows = vec![
            (
                "Feature: p, # of nodes".to_string(),
                Summary::of(&col(&|s| s.config.p as f64)),
            ),
            (
                "Feature: mx, box size".to_string(),
                Summary::of(&col(&|s| s.config.mx as f64)),
            ),
            (
                "Feature: maxlevel, max refinement level".to_string(),
                Summary::of(&col(&|s| s.config.maxlevel as f64)),
            ),
            (
                "Feature: r0, bubble size".to_string(),
                Summary::of(&col(&|s| s.config.r0)),
            ),
            (
                "Feature: rhoin, bubble density".to_string(),
                Summary::of(&col(&|s| s.config.rhoin)),
            ),
            (
                "Response: wall clock time, seconds".to_string(),
                Summary::of(&col(&|s| s.wall_seconds.value())),
            ),
            (
                "Response: cost, node-hours".to_string(),
                Summary::of(&col(&|s| s.cost_node_hours.value())),
            ),
            (
                "Response: memory, MB".to_string(),
                Summary::of(&col(&|s| s.memory_mb.value())),
            ),
        ];
        TableSummary { rows }
    }

    /// Format as an aligned text table with the paper's columns
    /// (min / median / mean / max).
    pub fn format(&self) -> String {
        let mut out = String::new();
        let name_width = self.rows.iter().map(|(n, _)| n.len()).max().unwrap_or(10);
        out.push_str(&format!(
            "{:<name_width$}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "", "min", "median", "mean", "max"
        ));
        for (name, s) in &self.rows {
            out.push_str(&format!(
                "{name:<name_width$}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}\n",
                s.min, s.median, s.mean, s.max
            ));
        }
        out
    }

    /// The ratio of the most to the least expensive job (the paper reports
    /// `5.4 × 10³` for its dataset).
    pub fn cost_dynamic_range(&self) -> f64 {
        self.rows
            .iter()
            .find(|(n, _)| n.contains("cost"))
            .map(|(_, s)| s.max / s.min)
            .unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::sample::Sample;
    use al_amr_sim::SimulationConfig;

    fn small_dataset() -> Dataset {
        let samples: Vec<Sample> = (0..8)
            .map(|i| Sample {
                config: SimulationConfig {
                    p: 4 << (i % 3),
                    mx: 8 * (1 + i % 4),
                    maxlevel: 3 + (i % 4) as u8,
                    r0: 0.2 + 0.04 * i as f64,
                    rhoin: 0.05 * (i + 1) as f64,
                },
                wall_seconds: al_units::Seconds::new(2.0 * (i + 1) as f64),
                cost_node_hours: al_units::NodeHours::new(0.01 * (i + 1) as f64 * (i + 1) as f64),
                memory_mb: al_units::Megabytes::new(0.5 * (i + 1) as f64),
            })
            .collect();
        Dataset::new(samples)
    }

    #[test]
    fn summary_has_paper_row_order() {
        let t = TableSummary::of(&small_dataset());
        assert_eq!(t.rows.len(), 8);
        assert!(t.rows[0].0.contains("p,"));
        assert!(t.rows[4].0.contains("rhoin"));
        assert!(t.rows[6].0.contains("cost"));
    }

    #[test]
    fn summary_values_match_columns() {
        let d = small_dataset();
        let t = TableSummary::of(&d);
        let cost = &t.rows[6].1;
        assert!((cost.min - 0.01).abs() < 1e-12);
        assert!((cost.max - 0.64).abs() < 1e-12);
    }

    #[test]
    fn format_contains_headers_and_rows() {
        let s = TableSummary::of(&small_dataset()).format();
        assert!(s.contains("median"));
        assert!(s.contains("Feature: p"));
        assert!(s.contains("Response: memory"));
        assert_eq!(s.lines().count(), 9);
    }

    #[test]
    fn dynamic_range_is_max_over_min_cost() {
        let t = TableSummary::of(&small_dataset());
        assert!((t.cost_dynamic_range() - 64.0).abs() < 1e-9);
    }
}
