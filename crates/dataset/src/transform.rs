//! Response and feature transforms (paper Section IV-A): `log10` on the
//! cost/memory responses and min–max scaling of all features to the unit
//! cube `[0, 1]^5`.

/// `log10` of a positive response.
pub fn log10_response(v: f64) -> f64 {
    assert!(v > 0.0, "responses must be positive before log transform");
    v.log10()
}

/// Inverse of [`log10_response`]: exponentiation back to natural units.
/// Always positive — the paper notes this eliminates nonsensical negative
/// predictions for near-zero runtimes.
pub fn unlog10_response(v: f64) -> f64 {
    10f64.powf(v)
}

/// Min–max scaler for feature vectors, fitted on a dataset and applied to
/// every query point so GP length scales are comparable across dimensions.
///
/// # Examples
///
/// ```
/// use al_dataset::FeatureScaler;
///
/// let rows = [[4.0, 8.0, 3.0, 0.2, 0.02], [32.0, 32.0, 6.0, 0.5, 0.5]];
/// let scaler = FeatureScaler::fit(&rows);
/// assert_eq!(scaler.transform(&rows[0]), [0.0; 5]);
/// assert_eq!(scaler.transform(&rows[1]), [1.0; 5]);
/// let mid = scaler.transform(&[18.0, 20.0, 4.5, 0.35, 0.26]);
/// assert!(mid.iter().all(|v| (0.0..=1.0).contains(v)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureScaler {
    mins: Vec<f64>,
    spans: Vec<f64>,
}

impl FeatureScaler {
    /// Fit the scaler on rows of raw feature vectors.
    ///
    /// Panics on empty input. A constant feature (zero span) maps to 0.5.
    pub fn fit(rows: &[[f64; 5]]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no data");
        let d = rows[0].len();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for row in rows {
            for k in 0..d {
                mins[k] = mins[k].min(row[k]);
                maxs[k] = maxs[k].max(row[k]);
            }
        }
        let spans = mins.iter().zip(&maxs).map(|(lo, hi)| hi - lo).collect();
        FeatureScaler { mins, spans }
    }

    /// Scale one raw feature vector into the unit cube.
    pub fn transform(&self, row: &[f64; 5]) -> [f64; 5] {
        let mut out = [0.0; 5];
        for k in 0..5 {
            out[k] = if self.spans[k] > 0.0 {
                (row[k] - self.mins[k]) / self.spans[k]
            } else {
                0.5
            };
        }
        out
    }

    /// Invert the scaling (unit cube → raw features).
    pub fn inverse(&self, row: &[f64; 5]) -> [f64; 5] {
        let mut out = [0.0; 5];
        for k in 0..5 {
            out[k] = if self.spans[k] > 0.0 {
                row[k] * self.spans[k] + self.mins[k]
            } else {
                self.mins[k]
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_roundtrip() {
        for v in [1e-3, 0.25, 1.0, 11.85, 4262.7] {
            assert!((unlog10_response(log10_response(v)) - v).abs() < 1e-9 * v);
        }
        assert_eq!(log10_response(100.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_rejects_non_positive() {
        log10_response(0.0);
    }

    #[test]
    fn scaler_maps_extremes_to_unit_interval() {
        let rows = [
            [4.0, 8.0, 3.0, 0.2, 0.02],
            [32.0, 32.0, 6.0, 0.5, 0.5],
            [8.0, 16.0, 5.0, 0.3, 0.1],
        ];
        let s = FeatureScaler::fit(&rows);
        assert_eq!(s.transform(&rows[0]), [0.0; 5]);
        assert_eq!(s.transform(&rows[1]), [1.0; 5]);
        let mid = s.transform(&rows[2]);
        assert!(mid.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn scaler_inverse_roundtrips() {
        let rows = [[4.0, 8.0, 3.0, 0.2, 0.02], [32.0, 32.0, 6.0, 0.5, 0.5]];
        let s = FeatureScaler::fit(&rows);
        let raw = [16.0, 24.0, 4.0, 0.35, 0.2];
        let back = s.inverse(&s.transform(&raw));
        for k in 0..5 {
            assert!((back[k] - raw[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_maps_to_half() {
        let rows = [[4.0, 8.0, 3.0, 0.2, 0.1], [8.0, 8.0, 4.0, 0.3, 0.1]];
        let s = FeatureScaler::fit(&rows);
        let t = s.transform(&[6.0, 8.0, 3.5, 0.25, 0.1]);
        assert_eq!(t[1], 0.5, "constant mx feature");
        assert_eq!(t[4], 0.5, "constant rhoin feature");
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn fit_rejects_empty() {
        FeatureScaler::fit(&[]);
    }
}
