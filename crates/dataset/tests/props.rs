//! Property-based tests for the dataset pipeline.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic, compare exact copied
// floats, and index loops for readability.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_amr_sim::SimulationConfig;
use al_dataset::io;
use al_dataset::{Dataset, FeatureScaler, Partition, Sample, SweepGrid};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_strategy() -> impl Strategy<Value = Sample> {
    (
        (1u32..64, 4usize..64, 1u8..8),
        (0.05f64..1.0, 0.01f64..1.0),
        (0.001f64..1e4, 0.001f64..1e4, 0.001f64..100.0),
    )
        .prop_map(
            |((p, mx, maxlevel), (r0, rhoin), (wall, cost, mem))| Sample {
                config: SimulationConfig {
                    p,
                    mx,
                    maxlevel,
                    r0,
                    rhoin,
                },
                wall_seconds: al_units::Seconds::new(wall),
                cost_node_hours: al_units::NodeHours::new(cost),
                memory_mb: al_units::Megabytes::new(mem),
            },
        )
}

proptest! {
    #[test]
    fn scaler_roundtrips_arbitrary_rows(
        rows in proptest::collection::vec(
            prop::array::uniform5(-100.0f64..100.0), 2..20)
    ) {
        let scaler = FeatureScaler::fit(&rows);
        for row in &rows {
            let t = scaler.transform(row);
            for v in t {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
            let back = scaler.inverse(&t);
            for k in 0..5 {
                prop_assert!((back[k] - row[k]).abs() < 1e-6 * (1.0 + row[k].abs()));
            }
        }
    }

    #[test]
    fn partitions_are_disjoint_for_any_valid_sizes(
        n in 10usize..200,
        init_frac in 0.01f64..0.5,
        test_frac in 0.01f64..0.4,
        seed in 0u64..1000,
    ) {
        let n_init = ((n as f64 * init_frac) as usize).max(1);
        let n_test = (n as f64 * test_frac) as usize;
        prop_assume!(n_init + n_test < n);
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Partition::random(n, n_init, n_test, &mut rng);
        prop_assert_eq!(p.len(), n);
        let mut all: Vec<usize> = p.init.iter().chain(&p.active).chain(&p.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n);
    }

    #[test]
    fn csv_roundtrip_is_lossless_for_arbitrary_samples(
        samples in proptest::collection::vec(sample_strategy(), 1..20),
        tag in 0u32..1_000_000,
    ) {
        let mut path = std::env::temp_dir();
        path.push(format!("al_props_{}_{}.csv", std::process::id(), tag));
        io::write_csv(&samples, &path).unwrap();
        let back = io::read_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(samples, back);
    }

    #[test]
    fn dataset_views_are_consistent(samples in proptest::collection::vec(sample_strategy(), 2..20)) {
        let d = Dataset::new(samples.clone());
        let idx: Vec<usize> = (0..d.len()).collect();
        let raw = d.raw_cost(&idx);
        let logv = d.log_cost(&idx);
        for (r, l) in raw.iter().zip(&logv) {
            prop_assert!((10f64.powf(*l) - r).abs() < 1e-9 * r);
        }
        // Scaled features in the unit cube.
        let x = d.features_scaled(&idx);
        for i in 0..x.rows() {
            for v in x.row(i) {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(v));
            }
        }
    }

    #[test]
    fn draw_jobs_always_returns_requested_counts(
        n_unique in 1usize..30,
        n_repeats in 0usize..10,
        seed in 0u64..100,
    ) {
        let grid = SweepGrid::small();
        prop_assume!(n_unique <= grid.n_combinations());
        let jobs = grid.draw_jobs(n_unique, n_repeats, seed);
        prop_assert_eq!(jobs.len(), n_unique + n_repeats);
        // Unique prefix has distinct configs.
        for a in 0..n_unique {
            for b in (a + 1)..n_unique {
                prop_assert_ne!(jobs[a].0, jobs[b].0);
            }
        }
    }

    #[test]
    fn selection_weights_are_positive_and_bounded(seed in 0u64..50) {
        let grid = SweepGrid::default();
        let mut rng = StdRng::seed_from_u64(seed);
        for c in al_dataset::grid::random_configs(&grid, 20, &mut rng) {
            let w = grid.selection_weight(&c);
            prop_assert!(w > 0.0 && w <= 1.0, "weight {}", w);
        }
    }
}
