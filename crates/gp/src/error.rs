//! Error type for GP fitting and prediction.

use al_linalg::LinalgError;
use std::fmt;

/// Errors produced by GP model construction, fitting or prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// Underlying linear algebra failed (singular kernel matrix, shape bugs).
    Linalg(LinalgError),
    /// The model has not been fit yet but a posterior quantity was requested.
    NotFitted,
    /// Training inputs were inconsistent (e.g. `X` rows vs `y` length).
    InvalidTrainingData {
        /// Number of rows in the design matrix.
        n_x: usize,
        /// Number of responses supplied.
        n_y: usize,
    },
    /// A hyperparameter vector of the wrong length was supplied.
    BadParamLength {
        /// Expected number of parameters.
        expected: usize,
        /// Supplied number of parameters.
        got: usize,
    },
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            GpError::NotFitted => write!(f, "model must be fit before prediction"),
            GpError::InvalidTrainingData { n_x, n_y } => {
                write!(f, "X has {n_x} rows but y has {n_y} entries")
            }
            GpError::BadParamLength { expected, got } => {
                write!(f, "expected {expected} hyperparameters, got {got}")
            }
        }
    }
}

impl std::error::Error for GpError {}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: GpError = LinalgError::Empty("x").into();
        assert!(e.to_string().contains("linear algebra"));
        assert!(GpError::NotFitted.to_string().contains("fit"));
        let e = GpError::InvalidTrainingData { n_x: 3, n_y: 4 };
        assert!(e.to_string().contains('3'));
        let e = GpError::BadParamLength {
            expected: 2,
            got: 5,
        };
        assert!(e.to_string().contains('5'));
    }
}
