//! Gaussian process regression model (paper Section III).
//!
//! A [`GpModel`] owns a kernel (amplitude + length scales) plus the
//! observation-noise variance `σ_n²`, together forming the hyperparameter
//! triple `(l, σ_f², σ_n²)` of paper Eq. 9. Fitting factors the noisy kernel
//! matrix `K_y = K + σ_n² I` (Eq. 3); prediction returns the posterior mean
//! and standard deviation at arbitrary points (Eq. 2); the log marginal
//! likelihood (Eq. 8) and its analytic gradient drive hyperparameter
//! optimization.

use crate::error::GpError;
use crate::kernel::Kernel;
use crate::optimize::{self, FitOptions};
use al_linalg::{ops, Cholesky, Matrix};
use al_parallel::{chunk_ranges, chunk_ranges_weighted, WorkerPool};

/// Fewest rows a parallel chunk may hold; smaller problems run inline.
const MIN_ROWS_PER_CHUNK: usize = 8;

/// Posterior predictive summary at a batch of query points.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Posterior means `μ_*`.
    pub mean: Vec<f64>,
    /// Posterior standard deviations `σ_*` (of the latent function, i.e.
    /// without observation noise — matching scikit-learn's `return_std`).
    pub std: Vec<f64>,
}

#[derive(Debug, Clone)]
struct Fitted {
    x: Matrix,
    y_centered: Vec<f64>,
    y_mean: f64,
    chol: Cholesky,
    /// `α = K_y⁻¹ (y − ȳ)`.
    alpha: Vec<f64>,
    lml: f64,
}

/// Gaussian process regressor with a pluggable stationary kernel.
///
/// # Examples
///
/// ```
/// use al_gp::{FitOptions, GpModel, KernelKind};
/// use al_linalg::Matrix;
///
/// // Five observations of a smooth 1-D function.
/// let x = Matrix::from_vec(5, 1, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
/// let y: Vec<f64> = x.as_slice().iter().map(|v| (3.0 * v).sin()).collect();
///
/// let mut gp = GpModel::new(KernelKind::Rbf.build(0.3), 1e-5);
/// gp.fit_optimized(&x, &y, &FitOptions::default()).unwrap();
///
/// let (mean, std) = gp.predict_one(&[0.4]).unwrap();
/// assert!((mean - (1.2f64).sin()).abs() < 0.05);
/// assert!(std < 0.2, "interpolation region is confident");
/// ```
#[derive(Clone)]
pub struct GpModel {
    kernel: Box<dyn Kernel>,
    /// `log σ_n²`.
    log_noise: f64,
    /// When true (default), the training targets are centered before
    /// fitting and the mean is added back at prediction time.
    normalize_y: bool,
    /// Worker pool for the kernel-matrix and batch-prediction hot paths.
    /// Schedule-only: every path is bitwise identical for any count.
    pool: WorkerPool,
    fitted: Option<Fitted>,
}

impl std::fmt::Debug for GpModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpModel")
            .field("kernel", &self.kernel.name())
            .field("params", &self.kernel.params())
            .field("log_noise", &self.log_noise)
            .field("n_threads", &self.pool.n_workers())
            .field("fitted", &self.fitted.is_some())
            .finish()
    }
}

impl GpModel {
    /// Create an unfitted model from a kernel and a natural-space noise
    /// variance `σ_n²`.
    pub fn new(kernel: Box<dyn Kernel>, noise_variance: f64) -> Self {
        assert!(noise_variance > 0.0);
        GpModel {
            kernel,
            log_noise: noise_variance.ln(),
            normalize_y: true,
            pool: WorkerPool::new(1),
            fitted: None,
        }
    }

    /// Disable target centering (fit the raw responses).
    pub fn without_normalization(mut self) -> Self {
        self.normalize_y = false;
        self
    }

    /// Set the worker-thread count for the parallel kernel-matrix and
    /// batch-prediction paths (`0` = all cores, `1` = serial — the
    /// `SolverProfile::n_threads` convention). A schedule knob only:
    /// results are bitwise identical for any value.
    /// [`GpModel::fit_optimized`] applies [`FitOptions::n_threads`]
    /// automatically.
    pub fn set_n_threads(&mut self, n_threads: usize) {
        self.pool = WorkerPool::new(n_threads);
    }

    /// Resolved worker count used by the parallel paths.
    pub fn n_threads(&self) -> usize {
        self.pool.n_workers()
    }

    /// Natural-space noise variance `σ_n²`.
    pub fn noise_variance(&self) -> f64 {
        self.log_noise.exp()
    }

    /// Kernel in use.
    pub fn kernel(&self) -> &dyn Kernel {
        self.kernel.as_ref()
    }

    /// Full hyperparameter vector in log space:
    /// `[kernel params..., log σ_n²]`.
    pub fn hyperparams(&self) -> Vec<f64> {
        let mut p = self.kernel.params();
        p.push(self.log_noise);
        p
    }

    /// Replace the full hyperparameter vector (log space). Invalidates any
    /// previous fit; call [`GpModel::fit`] again afterwards.
    pub fn set_hyperparams(&mut self, p: &[f64]) -> Result<(), GpError> {
        let nk = self.kernel.n_params();
        if p.len() != nk + 1 {
            return Err(GpError::BadParamLength {
                expected: nk + 1,
                got: p.len(),
            });
        }
        self.kernel.set_params(&p[..nk])?;
        self.log_noise = p[nk];
        self.fitted = None;
        Ok(())
    }

    /// Number of log-space hyperparameters (kernel params + noise).
    pub fn n_hyperparams(&self) -> usize {
        self.kernel.n_params() + 1
    }

    /// Number of training points in the current fit (0 when unfitted).
    pub fn n_train(&self) -> usize {
        self.fitted.as_ref().map_or(0, |f| f.x.rows())
    }

    /// Fit the model to `(x, y)` with the *current* hyperparameters.
    ///
    /// This is the inner operation of the AL loop's retraining step; use
    /// [`GpModel::fit_optimized`] to also maximize the marginal likelihood.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), GpError> {
        if x.rows() != y.len() {
            return Err(GpError::InvalidTrainingData {
                n_x: x.rows(),
                n_y: y.len(),
            });
        }
        if x.rows() == 0 {
            return Err(GpError::Linalg(al_linalg::LinalgError::Empty(
                "training set",
            )));
        }
        // Non-finite training data would silently poison the kernel matrix
        // and every downstream posterior; fail loudly in debug builds.
        debug_assert!(
            x.as_slice().iter().all(|v| v.is_finite()),
            "GP design matrix contains non-finite entries"
        );
        debug_assert!(
            y.iter().all(|v| v.is_finite()),
            "GP responses contain non-finite entries"
        );
        let y_mean = if self.normalize_y {
            al_linalg::stats::mean(y)
        } else {
            0.0
        };
        let y_centered: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        let ky = self.noisy_kernel_matrix(x);
        let chol = Cholesky::with_jitter(&ky, 1e-10, 1e-2)?;
        let alpha = chol.solve(&y_centered)?;

        let n = x.rows() as f64;
        let lml = -0.5 * (ops::dot(&y_centered, &alpha) + chol.log_det())
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln();

        self.fitted = Some(Fitted {
            x: x.clone(),
            y_centered,
            y_mean,
            chol,
            alpha,
            lml,
        });
        Ok(())
    }

    /// Incrementally absorb one new observation into the current fit in
    /// `O(n²)` (bordered-Cholesky update) instead of refitting from
    /// scratch (`O(n³)`) — the natural operation for an AL loop acquiring
    /// one sample per iteration.
    ///
    /// The centering offset `ȳ` is kept frozen from the last full
    /// [`GpModel::fit`]; call `fit`/[`GpModel::fit_optimized`]
    /// periodically to refresh it (the AL procedure does this on its
    /// hyperparameter-optimization cadence). Falls back to a full refit
    /// internally when the bordered matrix is numerically not SPD.
    pub fn augment(&mut self, x_new: &[f64], y_new: f64) -> Result<(), GpError> {
        let fitted = self.fitted.as_mut().ok_or(GpError::NotFitted)?;
        if x_new.len() != fitted.x.cols() {
            return Err(GpError::Linalg(al_linalg::LinalgError::ShapeMismatch {
                op: "augment",
                lhs: fitted.x.shape(),
                rhs: (1, x_new.len()),
            }));
        }
        let n = fitted.x.rows();
        let mut k_vec = vec![0.0; n];
        for (i, k) in k_vec.iter_mut().enumerate() {
            *k = self.kernel.value(x_new, fitted.x.row(i));
        }
        let diag = self.kernel.diag_value() + self.log_noise.exp();

        // Rebuild the training set regardless of which path we take.
        let x_row = Matrix::from_vec(1, x_new.len(), x_new.to_vec());
        let x_next = fitted.x.vstack(&x_row)?;
        let mut y_centered = fitted.y_centered.clone();
        y_centered.push(y_new - fitted.y_mean);

        let mut chol = fitted.chol.clone();
        if chol.extend(&k_vec, diag).is_err() {
            // Numerically degenerate border (e.g. duplicate point): fall
            // back to a full jittered refit of the whole set. `fit` also
            // refreshes the centering mean, which is fine — both centerings
            // describe the same posterior.
            let y_raw: Vec<f64> = y_centered.iter().map(|v| v + fitted.y_mean).collect();
            return self.fit(&x_next, &y_raw);
        }
        let alpha = chol.solve(&y_centered)?;
        let n_new = (n + 1) as f64;
        let lml = -0.5 * (ops::dot(&y_centered, &alpha) + chol.log_det())
            - 0.5 * n_new * (2.0 * std::f64::consts::PI).ln();

        *fitted = Fitted {
            x: x_next,
            y_centered,
            y_mean: fitted.y_mean,
            chol,
            alpha,
            lml,
        };
        Ok(())
    }

    /// Fit with hyperparameter optimization: maximize the LML (Eq. 9) by
    /// multi-start Adam in log space, warm-starting from the current
    /// hyperparameters, then refit at the optimum.
    pub fn fit_optimized(
        &mut self,
        x: &Matrix,
        y: &[f64],
        opts: &FitOptions,
    ) -> Result<(), GpError> {
        if x.rows() != y.len() {
            return Err(GpError::InvalidTrainingData {
                n_x: x.rows(),
                n_y: y.len(),
            });
        }
        self.set_n_threads(opts.n_threads);
        // With a single observation the LML surface is degenerate; just fit.
        if x.rows() < 2 {
            return self.fit(x, y);
        }
        let best = optimize::maximize_lml(self, x, y, opts);
        if let Some(params) = best {
            self.set_hyperparams(&params)?;
        }
        self.fit(x, y)
    }

    /// The log marginal likelihood of the current fit (Eq. 8, including the
    /// `−n/2 log 2π` constant).
    pub fn lml(&self) -> Result<f64, GpError> {
        Ok(self.fitted.as_ref().ok_or(GpError::NotFitted)?.lml)
    }

    /// Analytic gradient of the LML with respect to every log-space
    /// hyperparameter `[kernel params..., log σ_n²]`.
    ///
    /// Uses the standard identity
    /// `∂LML/∂θ = ½ tr((ααᵀ − K_y⁻¹) ∂K_y/∂θ)`.
    pub fn lml_gradient(&self) -> Result<Vec<f64>, GpError> {
        let fitted = self.fitted.as_ref().ok_or(GpError::NotFitted)?;
        let n = fitted.x.rows();
        let nk = self.kernel.n_params();
        let k_inv = fitted.chol.inverse()?;
        let alpha = &fitted.alpha;

        let mut grad = vec![0.0; nk + 1];
        let mut kgrad = vec![0.0; nk];
        for i in 0..n {
            let xi = fitted.x.row(i);
            // Diagonal term (weight 1).
            let cii = alpha[i] * alpha[i] - k_inv[(i, i)];
            self.kernel.gradient(xi, xi, &mut kgrad);
            for (g, kg) in grad[..nk].iter_mut().zip(&kgrad) {
                *g += 0.5 * cii * kg;
            }
            // Off-diagonal terms (weight 2, symmetry).
            for j in (i + 1)..n {
                let cij = alpha[i] * alpha[j] - k_inv[(i, j)];
                self.kernel.gradient(xi, fitted.x.row(j), &mut kgrad);
                for (g, kg) in grad[..nk].iter_mut().zip(&kgrad) {
                    *g += cij * kg;
                }
            }
        }
        // Noise: ∂K_y/∂log σ_n² = σ_n² I.
        let sn2 = self.noise_variance();
        let trace_term: f64 = (0..n).map(|i| alpha[i] * alpha[i] - k_inv[(i, i)]).sum();
        grad[nk] = 0.5 * sn2 * trace_term;
        Ok(grad)
    }

    /// Posterior mean and standard deviation at each row of `xs` (Eq. 2–3).
    pub fn predict(&self, xs: &Matrix) -> Result<Prediction, GpError> {
        let fitted = self.fitted.as_ref().ok_or(GpError::NotFitted)?;
        if xs.cols() != fitted.x.cols() {
            return Err(GpError::Linalg(al_linalg::LinalgError::ShapeMismatch {
                op: "predict",
                lhs: fitted.x.shape(),
                rhs: xs.shape(),
            }));
        }
        debug_assert!(
            xs.as_slice().iter().all(|v| v.is_finite()),
            "GP query points contain non-finite entries"
        );
        let n = fitted.x.rows();
        let m = xs.rows();
        // Each query row is computed independently into its own (μ, σ)
        // slot, so chunking the rows across workers cannot change a bit;
        // errors surface in chunk (= query) order, matching the serial
        // loop's first failure.
        let mut slots: Vec<(f64, f64)> = vec![(0.0, 0.0); m];
        let ranges = chunk_ranges(m, self.pool.n_workers(), MIN_ROWS_PER_CHUNK);
        let statuses = self.pool.chunked_map(
            &mut slots,
            &ranges,
            1,
            |range, chunk| -> Result<(), GpError> {
                let mut kstar = vec![0.0; n];
                for (local, q) in range.enumerate() {
                    let xq = xs.row(q);
                    for (i, k) in kstar.iter_mut().enumerate() {
                        *k = self.kernel.value(xq, fitted.x.row(i));
                    }
                    let mu = fitted.y_mean + ops::dot(&kstar, &fitted.alpha);
                    // σ² = k(x*,x*) − ‖L⁻¹ k*‖², clamped at 0 against rounding.
                    let v = fitted.chol.solve_lower(&kstar)?;
                    let var = (self.kernel.diag_value() - ops::dot(&v, &v)).max(0.0);
                    chunk[local] = (mu, var.sqrt());
                }
                Ok(())
            },
        );
        for status in statuses {
            status?;
        }
        let (mean, std) = slots.into_iter().unzip();
        Ok(Prediction { mean, std })
    }

    /// Full joint posterior at the rows of `xs`: mean vector and the
    /// `m × m` posterior covariance of the latent function.
    ///
    /// Needed for correlated-uncertainty queries and posterior sampling
    /// (e.g. Thompson-style selection); [`GpModel::predict`] returns only
    /// the diagonal.
    pub fn predict_full(&self, xs: &Matrix) -> Result<(Vec<f64>, Matrix), GpError> {
        let fitted = self.fitted.as_ref().ok_or(GpError::NotFitted)?;
        if xs.cols() != fitted.x.cols() {
            return Err(GpError::Linalg(al_linalg::LinalgError::ShapeMismatch {
                op: "predict_full",
                lhs: fitted.x.shape(),
                rhs: xs.shape(),
            }));
        }
        let n = fitted.x.rows();
        let m = xs.rows();
        // Row q of vt is L⁻¹ k*(x_q) — stored row-major (the transpose of
        // the classic V) so each query owns one contiguous stripe: workers
        // fill disjoint stripes, and the covariance dots below stream two
        // contiguous rows instead of two stride-m columns. Posterior cov =
        // K** − VᵀV. Per-chunk means come back in chunk order, so their
        // concatenation is the serial mean vector; so is the first error.
        let mut vt = vec![0.0f64; m * n];
        let ranges = chunk_ranges(m, self.pool.n_workers(), MIN_ROWS_PER_CHUNK);
        let chunk_means = self.pool.chunked_map(
            &mut vt,
            &ranges,
            n.max(1),
            |range, stripe| -> Result<Vec<f64>, GpError> {
                let mut kstar = vec![0.0; n];
                let mut means = Vec::with_capacity(range.len());
                for (local, q) in range.enumerate() {
                    let xq = xs.row(q);
                    for (i, k) in kstar.iter_mut().enumerate() {
                        *k = self.kernel.value(xq, fitted.x.row(i));
                    }
                    means.push(fitted.y_mean + ops::dot(&kstar, &fitted.alpha));
                    let col = fitted.chol.solve_lower(&kstar)?;
                    stripe[local * n..(local + 1) * n].copy_from_slice(&col);
                }
                Ok(means)
            },
        );
        let mut mean = Vec::with_capacity(m);
        for chunk in chunk_means {
            mean.extend(chunk?);
        }
        let mut cov = Matrix::zeros(m, m);
        for a in 0..m {
            for b in a..m {
                let prior = self.kernel.value(xs.row(a), xs.row(b));
                let reduction = ops::dot(&vt[a * n..(a + 1) * n], &vt[b * n..(b + 1) * n]);
                let c = prior - reduction;
                cov[(a, b)] = c;
                cov[(b, a)] = c;
            }
        }
        Ok((mean, cov))
    }

    /// Draw one sample of the latent function at the rows of `xs` from the
    /// joint posterior: `f = μ + L_cov z`, `z ~ N(0, I)`.
    pub fn sample_posterior<R: rand::Rng + ?Sized>(
        &self,
        xs: &Matrix,
        rng: &mut R,
    ) -> Result<Vec<f64>, GpError> {
        let (mean, cov) = self.predict_full(xs)?;
        let chol = Cholesky::with_jitter(&cov, 1e-10, 1e-2)?;
        let m = mean.len();
        let z: Vec<f64> = (0..m)
            .map(|_| al_linalg::rng::standard_normal(rng))
            .collect();
        let lz = chol.l().matvec(&z)?;
        Ok(mean.iter().zip(&lz).map(|(mu, d)| mu + d).collect())
    }

    /// Posterior mean/std at a single point.
    pub fn predict_one(&self, x: &[f64]) -> Result<(f64, f64), GpError> {
        let m = Matrix::from_vec(1, x.len(), x.to_vec());
        let p = self.predict(&m)?;
        Ok((p.mean[0], p.std[0]))
    }

    /// Evaluate the LML (and optionally keep the fit) at given
    /// hyperparameters for the provided data — the optimizer's objective.
    /// Returns `None` when the kernel matrix cannot be factored.
    pub(crate) fn lml_at(
        &mut self,
        params: &[f64],
        x: &Matrix,
        y: &[f64],
    ) -> Option<(f64, Vec<f64>)> {
        if self.set_hyperparams(params).is_err() {
            return None;
        }
        if self.fit(x, y).is_err() {
            return None;
        }
        let lml = self.lml().ok()?;
        let grad = self.lml_gradient().ok()?;
        if !lml.is_finite() || grad.iter().any(|g| !g.is_finite()) {
            return None;
        }
        Some((lml, grad))
    }

    /// The noisy training covariance `K_y = K + σ_n² I` over the rows of
    /// `x` (Eq. 3) — the matrix [`GpModel::fit`] factors. Public so the
    /// perf harness can measure its thread scaling in isolation.
    pub fn noisy_kernel_matrix(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let mut k = Matrix::zeros(n, n);
        let diag = self.kernel.diag_value() + self.noise_variance();
        // Each worker owns a disjoint band of rows and fills that band's
        // diagonal + upper triangle; row i costs n − i kernel evaluations,
        // so the bands are weighted triangularly. Every entry is a single
        // independent kernel evaluation, so the schedule cannot change any
        // bit. The coordinator mirrors the lower triangle afterwards.
        let ranges = chunk_ranges_weighted(n, self.pool.n_workers(), MIN_ROWS_PER_CHUNK, |i| {
            (n - i) as u64
        });
        self.pool
            .chunked_map(k.as_mut_slice(), &ranges, n.max(1), |range, band| {
                for (local, i) in range.enumerate() {
                    let row = &mut band[local * n..(local + 1) * n];
                    let xi = x.row(i);
                    row[i] = diag;
                    for (j, slot) in row.iter_mut().enumerate().skip(i + 1) {
                        *slot = self.kernel.value(xi, x.row(j));
                    }
                }
            });
        for i in 0..n {
            for j in (i + 1)..n {
                k[(j, i)] = k[(i, j)];
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::RbfKernel;

    fn toy_model() -> GpModel {
        GpModel::new(Box::new(RbfKernel::new(1.0, 1.0)), 1e-4)
    }

    /// 1-D training set y = sin(2x) on [0, 3].
    fn sine_data(n: usize) -> (Matrix, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| 3.0 * i as f64 / (n - 1) as f64).collect();
        let y: Vec<f64> = xs.iter().map(|x| (2.0 * x).sin()).collect();
        (Matrix::from_vec(n, 1, xs), y)
    }

    #[test]
    fn unfitted_model_refuses_posterior_queries() {
        let m = toy_model();
        assert!(matches!(m.lml(), Err(GpError::NotFitted)));
        assert!(matches!(m.predict_one(&[0.0]), Err(GpError::NotFitted)));
        assert!(matches!(m.lml_gradient(), Err(GpError::NotFitted)));
    }

    #[test]
    fn fit_validates_shapes() {
        let mut m = toy_model();
        let x = Matrix::zeros(3, 1);
        assert!(matches!(
            m.fit(&x, &[1.0, 2.0]),
            Err(GpError::InvalidTrainingData { .. })
        ));
        assert!(m.fit(&Matrix::zeros(0, 1), &[]).is_err());
    }

    #[test]
    fn interpolates_training_points_with_small_noise() {
        let (x, y) = sine_data(12);
        let mut m = toy_model();
        m.fit(&x, &y).unwrap();
        for (i, &yi) in y.iter().enumerate() {
            let (mu, sigma) = m.predict_one(x.row(i)).unwrap();
            assert!((mu - yi).abs() < 1e-2, "point {i}: {mu} vs {yi}");
            assert!(sigma < 0.05, "σ at training point {i} = {sigma}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (x, y) = sine_data(8);
        let mut m = toy_model();
        m.fit(&x, &y).unwrap();
        let (_, sigma_in) = m.predict_one(&[1.5]).unwrap();
        let (_, sigma_out) = m.predict_one(&[10.0]).unwrap();
        assert!(sigma_out > sigma_in);
        // Far from all data the posterior reverts to the prior std.
        assert!((sigma_out - 1.0).abs() < 1e-3);
    }

    #[test]
    fn prediction_mean_reverts_to_training_mean_far_away() {
        let (x, mut y) = sine_data(8);
        for v in &mut y {
            *v += 5.0;
        }
        let mut m = toy_model();
        m.fit(&x, &y).unwrap();
        let (mu, _) = m.predict_one(&[100.0]).unwrap();
        let ybar = al_linalg::stats::mean(&y);
        assert!((mu - ybar).abs() < 1e-6);
    }

    #[test]
    fn lml_gradient_matches_finite_differences() {
        let (x, y) = sine_data(7);
        let mut m = toy_model();
        m.fit(&x, &y).unwrap();
        let p0 = m.hyperparams();
        let grad = m.lml_gradient().unwrap();
        let h = 1e-6;
        for i in 0..p0.len() {
            let mut pp = p0.clone();
            pp[i] += h;
            m.set_hyperparams(&pp).unwrap();
            m.fit(&x, &y).unwrap();
            let up = m.lml().unwrap();
            pp[i] -= 2.0 * h;
            m.set_hyperparams(&pp).unwrap();
            m.fit(&x, &y).unwrap();
            let dn = m.lml().unwrap();
            let fd = (up - dn) / (2.0 * h);
            assert!(
                (fd - grad[i]).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {i}: fd={fd} analytic={}",
                grad[i]
            );
            m.set_hyperparams(&p0).unwrap();
            m.fit(&x, &y).unwrap();
        }
    }

    #[test]
    fn hyperparams_roundtrip() {
        let mut m = toy_model();
        assert_eq!(m.n_hyperparams(), 3);
        let p = vec![0.1, -0.4, (1e-3f64).ln()];
        m.set_hyperparams(&p).unwrap();
        assert_eq!(m.hyperparams(), p);
        assert!((m.noise_variance() - 1e-3).abs() < 1e-12);
        assert!(m.set_hyperparams(&[0.0]).is_err());
    }

    #[test]
    fn set_hyperparams_invalidates_fit() {
        let (x, y) = sine_data(5);
        let mut m = toy_model();
        m.fit(&x, &y).unwrap();
        assert_eq!(m.n_train(), 5);
        m.set_hyperparams(&[0.0, 0.0, -9.0]).unwrap();
        assert!(matches!(m.predict_one(&[0.0]), Err(GpError::NotFitted)));
        assert_eq!(m.n_train(), 0);
    }

    #[test]
    fn predict_rejects_dimension_mismatch() {
        let (x, y) = sine_data(5);
        let mut m = toy_model();
        m.fit(&x, &y).unwrap();
        let bad = Matrix::zeros(1, 2);
        assert!(m.predict(&bad).is_err());
    }

    #[test]
    fn without_normalization_fits_raw_targets() {
        let (x, mut y) = sine_data(8);
        for v in &mut y {
            *v += 100.0;
        }
        let mut m = toy_model().without_normalization();
        m.fit(&x, &y).unwrap();
        // Far from data the un-normalized GP reverts to zero, not the mean.
        let (mu, _) = m.predict_one(&[100.0]).unwrap();
        assert!(mu.abs() < 1e-6);
    }

    #[test]
    fn duplicate_training_points_survive_via_jitter() {
        // Two identical inputs with slightly different noisy observations.
        let x = Matrix::from_vec(3, 1, vec![0.5, 0.5, 1.0]);
        let y = vec![1.0, 1.02, 2.0];
        let mut m = GpModel::new(Box::new(RbfKernel::new(1.0, 1.0)), 1e-6);
        m.fit(&x, &y).unwrap();
        let (mu, _) = m.predict_one(&[0.5]).unwrap();
        assert!((mu - 1.01).abs() < 0.05);
    }

    #[test]
    fn more_data_never_hurts_training_fit() {
        // LML per point improves (or at least the model remains fittable)
        // as the training set grows on a smooth function.
        let mut m = toy_model();
        for n in [4usize, 8, 16] {
            let (x, y) = sine_data(n);
            m.fit(&x, &y).unwrap();
            assert!(m.lml().unwrap().is_finite());
        }
    }

    #[test]
    fn augment_matches_full_refit() {
        let (x, y) = sine_data(9);
        // Fit on the first 8 points, augment with the 9th.
        let x8 = x.select_rows(&(0..8).collect::<Vec<_>>());
        let mut incremental = toy_model().without_normalization();
        incremental.fit(&x8, &y[..8]).unwrap();
        incremental.augment(x.row(8), y[8]).unwrap();

        let mut fresh = toy_model().without_normalization();
        fresh.fit(&x, &y).unwrap();

        assert_eq!(incremental.n_train(), 9);
        assert!(
            (incremental.lml().unwrap() - fresh.lml().unwrap()).abs() < 1e-9,
            "LML: {} vs {}",
            incremental.lml().unwrap(),
            fresh.lml().unwrap()
        );
        for q in [0.1, 1.4, 2.9] {
            let (mi, si) = incremental.predict_one(&[q]).unwrap();
            let (mf, sf) = fresh.predict_one(&[q]).unwrap();
            assert!((mi - mf).abs() < 1e-9, "mean at {q}");
            assert!((si - sf).abs() < 1e-9, "std at {q}");
        }
    }

    #[test]
    fn augment_chain_stays_consistent() {
        let (x, y) = sine_data(12);
        let x4 = x.select_rows(&(0..4).collect::<Vec<_>>());
        let mut m = toy_model().without_normalization();
        m.fit(&x4, &y[..4]).unwrap();
        for (i, &yi) in y.iter().enumerate().skip(4) {
            m.augment(x.row(i), yi).unwrap();
        }
        let mut fresh = toy_model().without_normalization();
        fresh.fit(&x, &y).unwrap();
        let (mi, si) = m.predict_one(&[1.7]).unwrap();
        let (mf, sf) = fresh.predict_one(&[1.7]).unwrap();
        assert!((mi - mf).abs() < 1e-8);
        assert!((si - sf).abs() < 1e-8);
    }

    #[test]
    fn augment_matches_full_refit_randomized_sweep() {
        // The session core's incremental path leans on `augment` for every
        // between-refit update, so pin the O(n²) bordered update to the
        // O(n³) refit across the shapes sessions actually produce: input
        // dims {1, 2, 5} × kernel families × augment chains up to 8.
        use crate::kernel::KernelKind;
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let n0 = 6usize;
        for dim in [1usize, 2, 5] {
            for kind in [KernelKind::Rbf, KernelKind::Matern52] {
                for chain in 1..=8usize {
                    let n = n0 + chain;
                    let data: Vec<f64> = (0..n * dim).map(|_| rng.random_range(0.0..3.0)).collect();
                    let x = Matrix::from_vec(n, dim, data);
                    let y: Vec<f64> = (0..n)
                        .map(|i| {
                            x.row(i).iter().map(|v| (1.3 * v).sin()).sum::<f64>()
                                + 0.05 * rng.random_range(-1.0..1.0)
                        })
                        .collect();

                    let x0 = x.select_rows(&(0..n0).collect::<Vec<_>>());
                    let mut inc = GpModel::new(kind.build(0.8), 1e-4).without_normalization();
                    inc.fit(&x0, &y[..n0]).unwrap();
                    for (i, &yi) in y.iter().enumerate().skip(n0) {
                        inc.augment(x.row(i), yi).unwrap();
                    }
                    let mut fresh = GpModel::new(kind.build(0.8), 1e-4).without_normalization();
                    fresh.fit(&x, &y).unwrap();

                    assert_eq!(inc.n_train(), n);
                    let (li, lf) = (inc.lml().unwrap(), fresh.lml().unwrap());
                    assert!(
                        (li - lf).abs() < 1e-8 * (1.0 + lf.abs()),
                        "LML dim={dim} kernel={} chain={chain}: {li} vs {lf}",
                        kind.label()
                    );
                    for probe in 0..3 {
                        let q: Vec<f64> = (0..dim).map(|_| rng.random_range(0.0..3.0)).collect();
                        let (mi, si) = inc.predict_one(&q).unwrap();
                        let (mf, sf) = fresh.predict_one(&q).unwrap();
                        assert!(
                            (mi - mf).abs() < 1e-8,
                            "mean dim={dim} kernel={} chain={chain} probe={probe}",
                            kind.label()
                        );
                        assert!(
                            (si - sf).abs() < 1e-8,
                            "std dim={dim} kernel={} chain={chain} probe={probe}",
                            kind.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn augment_duplicate_point_falls_back_gracefully() {
        // Augmenting with an exact duplicate makes the bordered matrix
        // nearly singular; the fallback refit must keep the model usable.
        let (x, y) = sine_data(6);
        let mut m = GpModel::new(Box::new(RbfKernel::new(1.0, 1.0)), 1e-9);
        m.fit(&x, &y).unwrap();
        m.augment(x.row(2), y[2] + 1e-6).unwrap();
        assert_eq!(m.n_train(), 7);
        let (mu, _) = m.predict_one(x.row(2)).unwrap();
        assert!((mu - y[2]).abs() < 1e-2);
    }

    #[test]
    fn augment_requires_fit_and_matching_dims() {
        let mut m = toy_model();
        assert!(matches!(m.augment(&[0.0], 1.0), Err(GpError::NotFitted)));
        let (x, y) = sine_data(5);
        m.fit(&x, &y).unwrap();
        assert!(m.augment(&[0.0, 1.0], 1.0).is_err());
    }

    #[test]
    fn predict_full_diagonal_matches_predict() {
        let (x, y) = sine_data(10);
        let mut m = toy_model();
        m.fit(&x, &y).unwrap();
        let xq = Matrix::from_vec(3, 1, vec![0.3, 1.1, 2.7]);
        let p = m.predict(&xq).unwrap();
        let (mean, cov) = m.predict_full(&xq).unwrap();
        for i in 0..3 {
            assert!((mean[i] - p.mean[i]).abs() < 1e-12);
            assert!((cov[(i, i)].max(0.0).sqrt() - p.std[i]).abs() < 1e-9);
        }
        // Covariance is symmetric with nonnegative-ish diagonal.
        assert!(cov.is_symmetric(1e-12));
        // Nearby points are strongly correlated.
        let xq = Matrix::from_vec(2, 1, vec![5.0, 5.01]);
        let (_, cov) = m.predict_full(&xq).unwrap();
        let corr = cov[(0, 1)] / (cov[(0, 0)] * cov[(1, 1)]).sqrt();
        assert!(corr > 0.99, "correlation {corr}");
    }

    #[test]
    fn posterior_samples_track_mean_and_spread() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (x, y) = sine_data(10);
        let mut m = toy_model();
        m.fit(&x, &y).unwrap();
        let xq = Matrix::from_vec(2, 1, vec![1.0, 10.0]); // in-data, far away
        let p = m.predict(&xq).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let draws: Vec<Vec<f64>> = (0..300)
            .map(|_| m.sample_posterior(&xq, &mut rng).unwrap())
            .collect();
        for q in 0..2 {
            let vals: Vec<f64> = draws.iter().map(|d| d[q]).collect();
            let mean = al_linalg::stats::mean(&vals);
            let std = al_linalg::stats::std_dev(&vals);
            assert!(
                (mean - p.mean[q]).abs() < 0.2,
                "q{q}: {mean} vs {}",
                p.mean[q]
            );
            assert!(
                (std - p.std[q]).abs() < 0.15 * (1.0 + p.std[q]),
                "q{q}: sample std {std} vs posterior {}",
                p.std[q]
            );
        }
        // The in-data point has far less spread than the far point.
        let near: Vec<f64> = draws.iter().map(|d| d[0]).collect();
        let far: Vec<f64> = draws.iter().map(|d| d[1]).collect();
        assert!(al_linalg::stats::std_dev(&near) < al_linalg::stats::std_dev(&far));
    }

    #[test]
    fn predict_full_rejects_unfitted_and_mismatched() {
        let m = toy_model();
        assert!(m.predict_full(&Matrix::zeros(1, 1)).is_err());
        let (x, y) = sine_data(5);
        let mut m = toy_model();
        m.fit(&x, &y).unwrap();
        assert!(m.predict_full(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn debug_format_mentions_kernel() {
        let m = toy_model();
        let s = format!("{m:?}");
        assert!(s.contains("RBF"));
    }
}
