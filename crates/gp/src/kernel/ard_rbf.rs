//! Anisotropic (ARD) squared-exponential kernel — one length scale per input
//! dimension, listed in the paper's future work (Section VI).

use super::Kernel;
use crate::error::GpError;

/// `k(a, b) = σ_f² · exp(−½ Σ_k ((a_k−b_k)/l_k)²)` with log-space parameters
/// `[log σ_f², log l_1, ..., log l_d]`.
#[derive(Debug, Clone)]
pub struct ArdRbfKernel {
    log_sigma_f2: f64,
    log_lengths: Vec<f64>,
}

impl ArdRbfKernel {
    /// Create from natural-space amplitude and per-dimension length scales.
    pub fn new(sigma_f2: f64, length_scales: &[f64]) -> Self {
        assert!(sigma_f2 > 0.0);
        assert!(!length_scales.is_empty());
        assert!(length_scales.iter().all(|&l| l > 0.0));
        ArdRbfKernel {
            log_sigma_f2: sigma_f2.ln(),
            log_lengths: length_scales.iter().map(|l| l.ln()).collect(),
        }
    }

    /// Input dimensionality this kernel was built for.
    pub fn dim(&self) -> usize {
        self.log_lengths.len()
    }

    /// Natural-space length scales.
    pub fn length_scales(&self) -> Vec<f64> {
        self.log_lengths.iter().map(|l| l.exp()).collect()
    }

    fn sigma_f2(&self) -> f64 {
        self.log_sigma_f2.exp()
    }

    /// Scaled squared distance `Σ ((a_k−b_k)/l_k)²`.
    fn scaled_sq_dist(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.log_lengths.len());
        a.iter()
            .zip(b)
            .zip(&self.log_lengths)
            .map(|((x, y), ll)| {
                let d = (x - y) / ll.exp();
                d * d
            })
            .sum()
    }
}

impl Kernel for ArdRbfKernel {
    fn name(&self) -> &'static str {
        "ARD-RBF"
    }

    fn n_params(&self) -> usize {
        1 + self.log_lengths.len()
    }

    fn params(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.n_params());
        p.push(self.log_sigma_f2);
        p.extend_from_slice(&self.log_lengths);
        p
    }

    fn set_params(&mut self, p: &[f64]) -> Result<(), GpError> {
        if p.len() != self.n_params() {
            return Err(GpError::BadParamLength {
                expected: self.n_params(),
                got: p.len(),
            });
        }
        self.log_sigma_f2 = p[0];
        self.log_lengths.copy_from_slice(&p[1..]);
        Ok(())
    }

    #[inline]
    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        self.sigma_f2() * (-0.5 * self.scaled_sq_dist(a, b)).exp()
    }

    fn gradient(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        let k = self.value(a, b);
        out[0] = k;
        // ∂k/∂log l_j = k · ((a_j−b_j)/l_j)².
        for (j, ll) in self.log_lengths.iter().enumerate() {
            let d = (a[j] - b[j]) / ll.exp();
            out[1 + j] = k * d * d;
        }
    }

    fn diag_value(&self) -> f64 {
        self.sigma_f2()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::check_gradient;
    use crate::kernel::RbfKernel;

    #[test]
    fn reduces_to_isotropic_with_equal_scales() {
        let ard = ArdRbfKernel::new(1.4, &[0.7, 0.7, 0.7]);
        let iso = RbfKernel::new(1.4, 0.7);
        let a = [0.1, 0.5, 0.9];
        let b = [0.3, 0.2, 0.8];
        assert!((ard.value(&a, &b) - iso.value(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn per_dimension_scales_mask_irrelevant_dims() {
        // A huge length scale on dim 1 makes differences there irrelevant.
        let ard = ArdRbfKernel::new(1.0, &[0.5, 1e6]);
        let near = ard.value(&[0.0, 0.0], &[0.0, 100.0]);
        assert!((near - 1.0).abs() < 1e-6);
        let far = ard.value(&[0.0, 0.0], &[1.0, 0.0]);
        assert!(far < 0.2);
    }

    #[test]
    fn params_roundtrip_and_validation() {
        let mut k = ArdRbfKernel::new(1.0, &[1.0, 2.0]);
        assert_eq!(k.n_params(), 3);
        let p = vec![0.2, -0.3, 0.4];
        k.set_params(&p).unwrap();
        assert_eq!(k.params(), p);
        assert!(k.set_params(&[0.0]).is_err());
        assert_eq!(k.dim(), 2);
        let ls = k.length_scales();
        assert!((ls[0] - (-0.3f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut k = ArdRbfKernel::new(2.0, &[0.4, 1.2, 0.9]);
        check_gradient(&mut k, &[0.1, 0.9, 0.4], &[0.7, 0.2, 0.3]);
        check_gradient(&mut k, &[0.5, 0.5, 0.5], &[0.5, 0.5, 0.5]);
    }
}
