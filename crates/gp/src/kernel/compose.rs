//! Kernel combinators: sums and products of kernels, and a white-noise
//! component — the "kernel engineering" surface scikit-learn 0.18's
//! revised GP module introduced (which the paper's implementation relied
//! on). Valid covariance functions are closed under `+` and `×`, and the
//! log-space chain rule makes the combined gradients trivial.

use super::Kernel;
use crate::error::GpError;
use al_linalg::ops::sq_dist;

/// Sum of two kernels: `k(a,b) = k₁(a,b) + k₂(a,b)`.
///
/// Parameters are the concatenation `[params(k₁), params(k₂)]`.
#[derive(Clone)]
pub struct SumKernel {
    left: Box<dyn Kernel>,
    right: Box<dyn Kernel>,
}

/// Product of two kernels: `k(a,b) = k₁(a,b) · k₂(a,b)`.
///
/// Parameters are the concatenation `[params(k₁), params(k₂)]`.
#[derive(Clone)]
pub struct ProductKernel {
    left: Box<dyn Kernel>,
    right: Box<dyn Kernel>,
}

/// White-noise kernel: `k(a,b) = σ_w² · 1[a = b]` (exact coincidence).
///
/// Useful as a summand when heteroscedastic jitter should be learned as
/// part of the kernel rather than via the model's `σ_n²`.
#[derive(Debug, Clone)]
pub struct WhiteKernel {
    log_sigma2: f64,
}

impl SumKernel {
    /// Combine two kernels additively.
    pub fn new(left: Box<dyn Kernel>, right: Box<dyn Kernel>) -> Self {
        SumKernel { left, right }
    }
}

impl ProductKernel {
    /// Combine two kernels multiplicatively.
    pub fn new(left: Box<dyn Kernel>, right: Box<dyn Kernel>) -> Self {
        ProductKernel { left, right }
    }
}

impl WhiteKernel {
    /// Create with natural-space variance `σ_w²`.
    pub fn new(sigma2: f64) -> Self {
        assert!(sigma2 > 0.0);
        WhiteKernel {
            log_sigma2: sigma2.ln(),
        }
    }
}

impl Kernel for SumKernel {
    fn name(&self) -> &'static str {
        "Sum"
    }

    fn n_params(&self) -> usize {
        self.left.n_params() + self.right.n_params()
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.left.params();
        p.extend(self.right.params());
        p
    }

    fn set_params(&mut self, p: &[f64]) -> Result<(), GpError> {
        if p.len() != self.n_params() {
            return Err(GpError::BadParamLength {
                expected: self.n_params(),
                got: p.len(),
            });
        }
        let nl = self.left.n_params();
        self.left.set_params(&p[..nl])?;
        self.right.set_params(&p[nl..])
    }

    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        self.left.value(a, b) + self.right.value(a, b)
    }

    fn gradient(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        let nl = self.left.n_params();
        self.left.gradient(a, b, &mut out[..nl]);
        self.right.gradient(a, b, &mut out[nl..]);
    }

    fn diag_value(&self) -> f64 {
        self.left.diag_value() + self.right.diag_value()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

impl Kernel for ProductKernel {
    fn name(&self) -> &'static str {
        "Product"
    }

    fn n_params(&self) -> usize {
        self.left.n_params() + self.right.n_params()
    }

    fn params(&self) -> Vec<f64> {
        let mut p = self.left.params();
        p.extend(self.right.params());
        p
    }

    fn set_params(&mut self, p: &[f64]) -> Result<(), GpError> {
        if p.len() != self.n_params() {
            return Err(GpError::BadParamLength {
                expected: self.n_params(),
                got: p.len(),
            });
        }
        let nl = self.left.n_params();
        self.left.set_params(&p[..nl])?;
        self.right.set_params(&p[nl..])
    }

    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        self.left.value(a, b) * self.right.value(a, b)
    }

    fn gradient(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        // Product rule: ∂(k₁k₂)/∂θ₁ = k₂ ∂k₁/∂θ₁, and symmetrically.
        let nl = self.left.n_params();
        let vl = self.left.value(a, b);
        let vr = self.right.value(a, b);
        self.left.gradient(a, b, &mut out[..nl]);
        for g in &mut out[..nl] {
            *g *= vr;
        }
        self.right.gradient(a, b, &mut out[nl..]);
        for g in &mut out[nl..] {
            *g *= vl;
        }
    }

    fn diag_value(&self) -> f64 {
        self.left.diag_value() * self.right.diag_value()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

impl Kernel for WhiteKernel {
    fn name(&self) -> &'static str {
        "White"
    }

    fn n_params(&self) -> usize {
        1
    }

    fn params(&self) -> Vec<f64> {
        vec![self.log_sigma2]
    }

    fn set_params(&mut self, p: &[f64]) -> Result<(), GpError> {
        if p.len() != 1 {
            return Err(GpError::BadParamLength {
                expected: 1,
                got: p.len(),
            });
        }
        self.log_sigma2 = p[0];
        Ok(())
    }

    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        // White noise fires only when the two points are bitwise equal —
        // the standard semantics for this kernel, so an exact comparison
        // of the distance against zero is the intended test.
        #[allow(clippy::float_cmp)] // alint: allow(L2)
        if sq_dist(a, b) == 0.0 {
            self.log_sigma2.exp()
        } else {
            0.0
        }
    }

    fn gradient(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        out[0] = self.value(a, b);
    }

    fn diag_value(&self) -> f64 {
        self.log_sigma2.exp()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{check_gradient, Matern32Kernel, RbfKernel};

    fn sum() -> SumKernel {
        SumKernel::new(
            Box::new(RbfKernel::new(1.5, 0.7)),
            Box::new(Matern32Kernel::new(0.8, 1.2)),
        )
    }

    fn product() -> ProductKernel {
        ProductKernel::new(
            Box::new(RbfKernel::new(1.5, 0.7)),
            Box::new(Matern32Kernel::new(0.8, 1.2)),
        )
    }

    #[test]
    fn sum_adds_values_and_diags() {
        let k = sum();
        let a = [0.1, 0.9];
        let b = [0.4, 0.3];
        let expect =
            RbfKernel::new(1.5, 0.7).value(&a, &b) + Matern32Kernel::new(0.8, 1.2).value(&a, &b);
        assert!((k.value(&a, &b) - expect).abs() < 1e-12);
        assert!((k.diag_value() - 2.3).abs() < 1e-12);
        assert_eq!(k.n_params(), 4);
    }

    #[test]
    fn product_multiplies_values_and_diags() {
        let k = product();
        let a = [0.1, 0.9];
        let b = [0.4, 0.3];
        let expect =
            RbfKernel::new(1.5, 0.7).value(&a, &b) * Matern32Kernel::new(0.8, 1.2).value(&a, &b);
        assert!((k.value(&a, &b) - expect).abs() < 1e-12);
        assert!((k.diag_value() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn composite_gradients_match_finite_differences() {
        let mut k = sum();
        check_gradient(&mut k, &[0.1, 0.9], &[0.7, 0.2]);
        let mut k = product();
        check_gradient(&mut k, &[0.1, 0.9], &[0.7, 0.2]);
    }

    #[test]
    fn composite_params_concatenate_and_roundtrip() {
        let mut k = sum();
        let p = vec![0.1, -0.2, 0.3, -0.4];
        k.set_params(&p).unwrap();
        assert_eq!(k.params(), p);
        assert!(k.set_params(&[0.0]).is_err());
    }

    #[test]
    fn white_kernel_is_a_delta() {
        let w = WhiteKernel::new(0.25);
        let a = [0.3, 0.3];
        assert!((w.value(&a, &a) - 0.25).abs() < 1e-12);
        assert_eq!(w.value(&a, &[0.3, 0.3001]), 0.0);
        assert!((w.diag_value() - 0.25).abs() < 1e-12);
        let mut g = [0.0];
        w.gradient(&a, &a, &mut g);
        assert!((g[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rbf_plus_white_fits_noisy_data() {
        use crate::{FitOptions, GpModel};
        use al_linalg::Matrix;
        // Learn the noise level through the kernel instead of σ_n².
        let n = 20;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| (4.0 * x).sin() + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let x = Matrix::from_vec(n, 1, xs);
        let kernel = SumKernel::new(
            Box::new(RbfKernel::new(1.0, 0.3)),
            Box::new(WhiteKernel::new(0.01)),
        );
        let mut gp = GpModel::new(Box::new(kernel), 1e-6);
        gp.fit_optimized(&x, &y, &FitOptions::default()).unwrap();
        let (mu, _) = gp.predict_one(&[0.52]).unwrap();
        assert!((mu - (4.0f64 * 0.52).sin()).abs() < 0.15, "mu = {mu}");
    }

    #[test]
    fn nested_composition_works() {
        // (RBF + White) · Matern — params = 2 + 1 + 2.
        let k = ProductKernel::new(
            Box::new(SumKernel::new(
                Box::new(RbfKernel::new(1.0, 0.5)),
                Box::new(WhiteKernel::new(0.1)),
            )),
            Box::new(Matern32Kernel::new(1.0, 1.0)),
        );
        assert_eq!(k.n_params(), 5);
        let mut k = k;
        check_gradient(&mut k, &[0.2], &[0.8]);
    }
}
