//! Matérn kernels with ν = 3/2 and ν = 5/2 — the controllable-smoothness
//! family the paper cites from treed-GP work and lists as future work.

use super::Kernel;
use crate::error::GpError;
use al_linalg::ops::sq_dist;

/// Matérn ν = 3/2: `k = σ_f² (1 + s) e^{−s}` with `s = √3 ‖a−b‖ / l`.
/// Log-space parameters `[log σ_f², log l]`.
#[derive(Debug, Clone)]
pub struct Matern32Kernel {
    log_sigma_f2: f64,
    log_length: f64,
}

/// Matérn ν = 5/2: `k = σ_f² (1 + s + s²/3) e^{−s}` with `s = √5 ‖a−b‖ / l`.
/// Log-space parameters `[log σ_f², log l]`.
#[derive(Debug, Clone)]
pub struct Matern52Kernel {
    log_sigma_f2: f64,
    log_length: f64,
}

impl Matern32Kernel {
    /// Create from natural-space amplitude and length scale.
    pub fn new(sigma_f2: f64, length_scale: f64) -> Self {
        assert!(sigma_f2 > 0.0 && length_scale > 0.0);
        Matern32Kernel {
            log_sigma_f2: sigma_f2.ln(),
            log_length: length_scale.ln(),
        }
    }
}

impl Matern52Kernel {
    /// Create from natural-space amplitude and length scale.
    pub fn new(sigma_f2: f64, length_scale: f64) -> Self {
        assert!(sigma_f2 > 0.0 && length_scale > 0.0);
        Matern52Kernel {
            log_sigma_f2: sigma_f2.ln(),
            log_length: length_scale.ln(),
        }
    }
}

impl Kernel for Matern32Kernel {
    fn name(&self) -> &'static str {
        "Matern-3/2"
    }

    fn n_params(&self) -> usize {
        2
    }

    fn params(&self) -> Vec<f64> {
        vec![self.log_sigma_f2, self.log_length]
    }

    fn set_params(&mut self, p: &[f64]) -> Result<(), GpError> {
        if p.len() != 2 {
            return Err(GpError::BadParamLength {
                expected: 2,
                got: p.len(),
            });
        }
        self.log_sigma_f2 = p[0];
        self.log_length = p[1];
        Ok(())
    }

    #[inline]
    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = sq_dist(a, b).sqrt();
        let s = 3f64.sqrt() * r / self.log_length.exp();
        self.log_sigma_f2.exp() * (1.0 + s) * (-s).exp()
    }

    fn gradient(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        let r = sq_dist(a, b).sqrt();
        let s = 3f64.sqrt() * r / self.log_length.exp();
        let e = (-s).exp();
        let sf2 = self.log_sigma_f2.exp();
        out[0] = sf2 * (1.0 + s) * e;
        // dk/ds = −σ_f² s e^{−s}; ds/d(log l) = −s ⇒ dk/d(log l) = σ_f² s² e^{−s}.
        out[1] = sf2 * s * s * e;
    }

    fn diag_value(&self) -> f64 {
        self.log_sigma_f2.exp()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

impl Kernel for Matern52Kernel {
    fn name(&self) -> &'static str {
        "Matern-5/2"
    }

    fn n_params(&self) -> usize {
        2
    }

    fn params(&self) -> Vec<f64> {
        vec![self.log_sigma_f2, self.log_length]
    }

    fn set_params(&mut self, p: &[f64]) -> Result<(), GpError> {
        if p.len() != 2 {
            return Err(GpError::BadParamLength {
                expected: 2,
                got: p.len(),
            });
        }
        self.log_sigma_f2 = p[0];
        self.log_length = p[1];
        Ok(())
    }

    #[inline]
    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        let r = sq_dist(a, b).sqrt();
        let s = 5f64.sqrt() * r / self.log_length.exp();
        self.log_sigma_f2.exp() * (1.0 + s + s * s / 3.0) * (-s).exp()
    }

    fn gradient(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        let r = sq_dist(a, b).sqrt();
        let s = 5f64.sqrt() * r / self.log_length.exp();
        let e = (-s).exp();
        let sf2 = self.log_sigma_f2.exp();
        out[0] = sf2 * (1.0 + s + s * s / 3.0) * e;
        // dk/ds = −σ_f² (s/3)(1+s) e^{−s}; ds/d(log l) = −s
        // ⇒ dk/d(log l) = σ_f² (s²/3)(1+s) e^{−s}.
        out[1] = sf2 * (s * s / 3.0) * (1.0 + s) * e;
    }

    fn diag_value(&self) -> f64 {
        self.log_sigma_f2.exp()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::check_gradient;
    use crate::kernel::RbfKernel;

    #[test]
    fn diag_is_amplitude() {
        let x = [0.2, 0.8];
        let k32 = Matern32Kernel::new(3.0, 1.1);
        assert!((k32.value(&x, &x) - 3.0).abs() < 1e-12);
        let k52 = Matern52Kernel::new(2.0, 1.1);
        assert!((k52.value(&x, &x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn smoothness_ordering_at_moderate_distance() {
        // At the same length scale, higher ν decays like the RBF; 3/2 has
        // heavier tails than 5/2 which has heavier tails than RBF at
        // moderate-to-large distances.
        let a = [0.0];
        let b = [2.0];
        let v32 = Matern32Kernel::new(1.0, 1.0).value(&a, &b);
        let v52 = Matern52Kernel::new(1.0, 1.0).value(&a, &b);
        let vrbf = RbfKernel::new(1.0, 1.0).value(&a, &b);
        assert!(v32 > v52, "{v32} vs {v52}");
        assert!(v52 > vrbf, "{v52} vs {vrbf}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut k32 = Matern32Kernel::new(1.6, 0.8);
        check_gradient(&mut k32, &[0.1, 0.9], &[0.7, 0.2]);
        let mut k52 = Matern52Kernel::new(0.9, 1.4);
        check_gradient(&mut k52, &[0.1, 0.9], &[0.7, 0.2]);
    }

    #[test]
    fn gradient_vanishes_at_zero_distance_for_length_scale() {
        let k = Matern52Kernel::new(1.0, 1.0);
        let mut g = [0.0; 2];
        k.gradient(&[0.5], &[0.5], &mut g);
        assert!((g[0] - 1.0).abs() < 1e-12); // ∂k/∂log σ_f² = k = σ_f²
        assert_eq!(g[1], 0.0);
    }

    #[test]
    fn params_roundtrip() {
        let mut k = Matern32Kernel::new(1.0, 1.0);
        k.set_params(&[0.3, -0.2]).unwrap();
        assert_eq!(k.params(), vec![0.3, -0.2]);
        assert!(k.set_params(&[0.0, 0.0, 0.0]).is_err());

        let mut k = Matern52Kernel::new(1.0, 1.0);
        k.set_params(&[0.1, 0.2]).unwrap();
        assert_eq!(k.params(), vec![0.1, 0.2]);
        assert!(k.set_params(&[]).is_err());
    }

    #[test]
    fn monotone_decay() {
        let k = Matern32Kernel::new(1.0, 1.0);
        let mut prev = f64::INFINITY;
        for i in 0..10 {
            let v = k.value(&[0.0], &[i as f64 * 0.5]);
            assert!(v < prev || i == 0);
            prev = v;
        }
    }
}
