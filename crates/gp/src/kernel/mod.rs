//! Covariance functions (kernels) and their log-space gradients.
//!
//! All hyperparameters live in **log space** — positivity is then free and
//! LML gradient ascent is unconstrained apart from box bounds. For every
//! kernel the first parameter is `log σ_f²` (the amplitude of paper Eq. 7);
//! the remaining parameters are log length scales.
//!
//! The observation noise `σ_n²` is *not* part of the kernel: [`crate::GpModel`]
//! owns it as an extra hyperparameter, matching the paper's
//! `(l, σ_f², σ_n²)` triple.

mod ard_rbf;
mod compose;
mod matern;
mod rational_quadratic;
mod rbf;

pub use ard_rbf::ArdRbfKernel;
pub use compose::{ProductKernel, SumKernel, WhiteKernel};
pub use matern::{Matern32Kernel, Matern52Kernel};
pub use rational_quadratic::RationalQuadraticKernel;
pub use rbf::RbfKernel;

use crate::error::GpError;

/// A stationary covariance function with analytic log-space gradients.
pub trait Kernel: Send + Sync {
    /// Human-readable kernel name (for reports and ablation tables).
    fn name(&self) -> &'static str;

    /// Number of log-space hyperparameters.
    fn n_params(&self) -> usize;

    /// Current hyperparameters in log space, `[log σ_f², log l, ...]`.
    fn params(&self) -> Vec<f64>;

    /// Replace the hyperparameters (log space). Length must match
    /// [`Kernel::n_params`].
    fn set_params(&mut self, p: &[f64]) -> Result<(), GpError>;

    /// Covariance `k(a, b)`.
    fn value(&self, a: &[f64], b: &[f64]) -> f64;

    /// Gradient `∂k(a,b)/∂p_i` for every log-space parameter, written into
    /// `out` (length [`Kernel::n_params`]).
    fn gradient(&self, a: &[f64], b: &[f64], out: &mut [f64]);

    /// `k(x, x)` — for stationary kernels this is the amplitude `σ_f²`.
    fn diag_value(&self) -> f64;

    /// Clone into a boxed trait object (kernels are small value types).
    fn clone_box(&self) -> Box<dyn Kernel>;
}

impl Clone for Box<dyn Kernel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Kernel families selectable at runtime (used by the kernel ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Isotropic squared exponential (paper Eq. 7, the default).
    Rbf,
    /// Squared exponential with one length scale per input dimension.
    ArdRbf {
        /// Input dimensionality.
        dim: usize,
    },
    /// Matérn ν = 3/2.
    Matern32,
    /// Matérn ν = 5/2.
    Matern52,
    /// Rational quadratic (scale mixture of RBFs), initial `α = 1`.
    RationalQuadratic,
}

impl KernelKind {
    /// Construct the kernel with unit amplitude and the given initial
    /// length scale.
    pub fn build(self, length_scale: f64) -> Box<dyn Kernel> {
        match self {
            KernelKind::Rbf => Box::new(RbfKernel::new(1.0, length_scale)),
            KernelKind::ArdRbf { dim } => {
                Box::new(ArdRbfKernel::new(1.0, &vec![length_scale; dim]))
            }
            KernelKind::Matern32 => Box::new(Matern32Kernel::new(1.0, length_scale)),
            KernelKind::Matern52 => Box::new(Matern52Kernel::new(1.0, length_scale)),
            KernelKind::RationalQuadratic => {
                Box::new(RationalQuadraticKernel::new(1.0, length_scale, 1.0))
            }
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Rbf => "RBF",
            KernelKind::ArdRbf { .. } => "ARD-RBF",
            KernelKind::Matern32 => "Matern-3/2",
            KernelKind::Matern52 => "Matern-5/2",
            KernelKind::RationalQuadratic => "RationalQuadratic",
        }
    }
}

/// Finite-difference check helper shared by the kernel unit tests.
#[cfg(test)]
pub(crate) fn check_gradient(kernel: &mut dyn Kernel, a: &[f64], b: &[f64]) {
    let p0 = kernel.params();
    let mut analytic = vec![0.0; kernel.n_params()];
    kernel.gradient(a, b, &mut analytic);
    let h = 1e-6;
    for i in 0..p0.len() {
        let mut pp = p0.clone();
        pp[i] += h;
        kernel.set_params(&pp).unwrap();
        let up = kernel.value(a, b);
        pp[i] -= 2.0 * h;
        kernel.set_params(&pp).unwrap();
        let dn = kernel.value(a, b);
        kernel.set_params(&p0).unwrap();
        let fd = (up - dn) / (2.0 * h);
        assert!(
            (fd - analytic[i]).abs() < 1e-6 * (1.0 + fd.abs()),
            "param {i}: fd={fd} analytic={}",
            analytic[i]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_matching_kernel() {
        assert_eq!(KernelKind::Rbf.build(1.0).name(), "RBF");
        assert_eq!(KernelKind::ArdRbf { dim: 3 }.build(1.0).name(), "ARD-RBF");
        assert_eq!(KernelKind::Matern32.build(1.0).name(), "Matern-3/2");
        assert_eq!(KernelKind::Matern52.build(1.0).name(), "Matern-5/2");
        assert_eq!(KernelKind::ArdRbf { dim: 3 }.build(1.0).n_params(), 4);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KernelKind::Rbf.label(), "RBF");
        assert_eq!(KernelKind::Matern52.label(), "Matern-5/2");
    }

    #[test]
    fn boxed_kernel_clones() {
        let k = KernelKind::Rbf.build(2.0);
        let c = k.clone();
        assert_eq!(k.params(), c.params());
    }
}
