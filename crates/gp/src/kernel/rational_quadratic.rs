//! Rational quadratic kernel — an infinite scale-mixture of RBF kernels,
//! useful when the response varies on several length scales at once (as
//! AMR cost does: smooth in the physical parameters, near-geometric in
//! `maxlevel`).

use super::Kernel;
use crate::error::GpError;
use al_linalg::ops::sq_dist;

/// `k(a,b) = σ_f² (1 + ‖a−b‖²/(2αl²))^(−α)` with log-space parameters
/// `[log σ_f², log l, log α]`. As `α → ∞` this converges to the RBF.
#[derive(Debug, Clone)]
pub struct RationalQuadraticKernel {
    log_sigma_f2: f64,
    log_length: f64,
    log_alpha: f64,
}

impl RationalQuadraticKernel {
    /// Create from natural-space amplitude, length scale and mixture
    /// parameter `α` (all positive).
    pub fn new(sigma_f2: f64, length_scale: f64, alpha: f64) -> Self {
        assert!(sigma_f2 > 0.0 && length_scale > 0.0 && alpha > 0.0);
        RationalQuadraticKernel {
            log_sigma_f2: sigma_f2.ln(),
            log_length: length_scale.ln(),
            log_alpha: alpha.ln(),
        }
    }
}

impl Kernel for RationalQuadraticKernel {
    fn name(&self) -> &'static str {
        "RationalQuadratic"
    }

    fn n_params(&self) -> usize {
        3
    }

    fn params(&self) -> Vec<f64> {
        vec![self.log_sigma_f2, self.log_length, self.log_alpha]
    }

    fn set_params(&mut self, p: &[f64]) -> Result<(), GpError> {
        if p.len() != 3 {
            return Err(GpError::BadParamLength {
                expected: 3,
                got: p.len(),
            });
        }
        self.log_sigma_f2 = p[0];
        self.log_length = p[1];
        self.log_alpha = p[2];
        Ok(())
    }

    #[inline]
    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2 = sq_dist(a, b);
        let l2 = (2.0 * self.log_length).exp();
        let alpha = self.log_alpha.exp();
        let base = 1.0 + d2 / (2.0 * alpha * l2);
        self.log_sigma_f2.exp() * base.powf(-alpha)
    }

    fn gradient(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        let d2 = sq_dist(a, b);
        let l2 = (2.0 * self.log_length).exp();
        let alpha = self.log_alpha.exp();
        let u = d2 / (2.0 * alpha * l2);
        let base = 1.0 + u;
        let k = self.log_sigma_f2.exp() * base.powf(-alpha);
        // ∂k/∂log σ_f² = k.
        out[0] = k;
        // ∂k/∂log l = k · d²/(l² base)   (chain rule through u ∝ l⁻²).
        out[1] = k * d2 / (l2 * base);
        // ∂k/∂log α = k·α·(u/base − ln base)   (both α-dependencies).
        out[2] = k * alpha * (u / base - base.ln());
    }

    fn diag_value(&self) -> f64 {
        self.log_sigma_f2.exp()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{check_gradient, RbfKernel};

    #[test]
    fn diag_is_amplitude_and_values_decay() {
        let k = RationalQuadraticKernel::new(2.0, 0.5, 1.0);
        let x = [0.3];
        assert!((k.value(&x, &x) - 2.0).abs() < 1e-12);
        assert!(k.value(&[0.0], &[0.5]) > k.value(&[0.0], &[1.5]));
        assert!(k.value(&[0.0], &[10.0]) > 0.0, "heavy polynomial tail");
    }

    #[test]
    fn large_alpha_approaches_rbf() {
        let rq = RationalQuadraticKernel::new(1.0, 0.7, 1e6);
        let rbf = RbfKernel::new(1.0, 0.7);
        for d in [0.1, 0.5, 1.0, 2.0] {
            let a = [0.0];
            let b = [d];
            assert!(
                (rq.value(&a, &b) - rbf.value(&a, &b)).abs() < 1e-4,
                "d = {d}"
            );
        }
    }

    #[test]
    fn small_alpha_has_heavier_tails_than_rbf() {
        let rq = RationalQuadraticKernel::new(1.0, 0.7, 0.5);
        let rbf = RbfKernel::new(1.0, 0.7);
        assert!(rq.value(&[0.0], &[3.0]) > 10.0 * rbf.value(&[0.0], &[3.0]));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut k = RationalQuadraticKernel::new(1.6, 0.6, 1.3);
        check_gradient(&mut k, &[0.1, 0.9], &[0.7, 0.2]);
        check_gradient(&mut k, &[0.5, 0.5], &[0.5, 0.5]);
        let mut k = RationalQuadraticKernel::new(0.8, 1.4, 0.3);
        check_gradient(&mut k, &[0.0], &[2.0]);
    }

    #[test]
    fn params_roundtrip() {
        let mut k = RationalQuadraticKernel::new(1.0, 1.0, 1.0);
        k.set_params(&[0.1, -0.2, 0.5]).unwrap();
        assert_eq!(k.params(), vec![0.1, -0.2, 0.5]);
        assert!(k.set_params(&[0.0, 0.0]).is_err());
        assert_eq!(k.name(), "RationalQuadratic");
    }
}
