//! Isotropic squared-exponential (RBF) kernel — the paper's Eq. 7.

use super::Kernel;
use crate::error::GpError;
use al_linalg::ops::sq_dist;

/// `k(a, b) = σ_f² · exp(−‖a−b‖² / (2 l²))` with log-space parameters
/// `[log σ_f², log l]`.
#[derive(Debug, Clone)]
pub struct RbfKernel {
    log_sigma_f2: f64,
    log_length: f64,
}

impl RbfKernel {
    /// Create from natural-space amplitude `σ_f²` and length scale `l`
    /// (both must be positive).
    pub fn new(sigma_f2: f64, length_scale: f64) -> Self {
        assert!(sigma_f2 > 0.0 && length_scale > 0.0);
        RbfKernel {
            log_sigma_f2: sigma_f2.ln(),
            log_length: length_scale.ln(),
        }
    }

    /// Amplitude `σ_f²` in natural space.
    pub fn sigma_f2(&self) -> f64 {
        self.log_sigma_f2.exp()
    }

    /// Length scale `l` in natural space.
    pub fn length_scale(&self) -> f64 {
        self.log_length.exp()
    }
}

impl Kernel for RbfKernel {
    fn name(&self) -> &'static str {
        "RBF"
    }

    fn n_params(&self) -> usize {
        2
    }

    fn params(&self) -> Vec<f64> {
        vec![self.log_sigma_f2, self.log_length]
    }

    fn set_params(&mut self, p: &[f64]) -> Result<(), GpError> {
        if p.len() != 2 {
            return Err(GpError::BadParamLength {
                expected: 2,
                got: p.len(),
            });
        }
        self.log_sigma_f2 = p[0];
        self.log_length = p[1];
        Ok(())
    }

    #[inline]
    fn value(&self, a: &[f64], b: &[f64]) -> f64 {
        let l2 = (2.0 * self.log_length).exp();
        self.sigma_f2() * (-0.5 * sq_dist(a, b) / l2).exp()
    }

    fn gradient(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        let d2 = sq_dist(a, b);
        let l2 = (2.0 * self.log_length).exp();
        let k = self.sigma_f2() * (-0.5 * d2 / l2).exp();
        // ∂k/∂log σ_f² = k; ∂k/∂log l = k · d²/l².
        out[0] = k;
        out[1] = k * d2 / l2;
    }

    fn diag_value(&self) -> f64 {
        self.sigma_f2()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::check_gradient;

    #[test]
    fn value_at_zero_distance_is_amplitude() {
        let k = RbfKernel::new(2.5, 0.7);
        let x = [0.3, 0.4];
        assert!((k.value(&x, &x) - 2.5).abs() < 1e-12);
        assert!((k.diag_value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn value_decays_with_distance() {
        let k = RbfKernel::new(1.0, 1.0);
        let v1 = k.value(&[0.0], &[1.0]);
        let v2 = k.value(&[0.0], &[2.0]);
        assert!(v1 > v2);
        assert!((v1 - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn longer_length_scale_means_slower_decay() {
        let short = RbfKernel::new(1.0, 0.5);
        let long = RbfKernel::new(1.0, 5.0);
        assert!(long.value(&[0.0], &[1.0]) > short.value(&[0.0], &[1.0]));
    }

    #[test]
    fn params_roundtrip() {
        let mut k = RbfKernel::new(1.0, 1.0);
        k.set_params(&[0.5f64.ln(), 2.0f64.ln()]).unwrap();
        assert!((k.sigma_f2() - 0.5).abs() < 1e-12);
        assert!((k.length_scale() - 2.0).abs() < 1e-12);
        assert!(k.set_params(&[1.0]).is_err());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut k = RbfKernel::new(1.7, 0.6);
        check_gradient(&mut k, &[0.1, 0.9, 0.4], &[0.7, 0.2, 0.3]);
        check_gradient(&mut k, &[0.5], &[0.5]);
    }

    #[test]
    fn symmetric() {
        let k = RbfKernel::new(1.3, 0.8);
        let a = [0.1, 0.2];
        let b = [0.9, 0.4];
        assert_eq!(k.value(&a, &b), k.value(&b, &a));
    }
}
