// Tests compare exactly-copied floats; the cfg(test) compile allows that
// while the regular compile still lints library code.
#![cfg_attr(test, allow(clippy::float_cmp))]
#![warn(missing_docs)]

//! Gaussian process regression for incremental performance modeling.
//!
//! Implements the mathematical constructs of the paper's Section III:
//! posterior mean/variance prediction (Eqs. 2–6), the squared-exponential
//! covariance (Eq. 7) plus the ARD and Matérn alternatives called out as
//! future work, the log marginal likelihood (Eq. 8) with analytic gradients,
//! and hyperparameter selection by LML maximization (Eq. 9) with multi-start
//! gradient ascent and warm starting.
//!
//! The active-learning loop (crate `al-core`) trains two of these models per
//! trajectory — one on cost responses, one on memory responses — and refits
//! them after every acquired sample, warm-started from the previous optimum.

pub mod error;
pub mod gp;
pub mod kernel;
pub mod local;
pub mod optimize;

pub use error::GpError;
pub use gp::{GpModel, Prediction};
pub use kernel::{ArdRbfKernel, Kernel, KernelKind, Matern32Kernel, Matern52Kernel, RbfKernel};
pub use local::LocalGpModel;
pub use optimize::FitOptions;
