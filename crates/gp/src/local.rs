//! Local (partitioned) GP models — the paper's final future-work item
//! ("train multiple local performance models simultaneously") and the
//! treed/local-GP line of work it cites: split the input space along one
//! axis into regions, fit an independent GP per region, route queries.
//!
//! Independent local models sidestep GPR's stationarity assumption (one
//! covariance structure for the whole space) and cut the cubic fitting
//! cost, at the price of discontinuities at region boundaries.

use crate::error::GpError;
use crate::gp::{GpModel, Prediction};
use crate::optimize::FitOptions;
use al_linalg::Matrix;
use al_parallel::{chunk_ranges, WorkerPool};

/// A one-axis partition of GP models.
#[derive(Debug, Clone)]
pub struct LocalGpModel {
    template: GpModel,
    axis: usize,
    requested_regions: usize,
    /// Internal boundaries (length = regions − 1), ascending.
    boundaries: Vec<f64>,
    models: Vec<GpModel>,
    /// Pool for the region-level prediction fan-out. The regions are the
    /// parallel axis here, so the per-region models run serial inside it.
    pool: WorkerPool,
}

/// Fewest training points a region may hold; sparser partitions collapse
/// into fewer regions.
const MIN_POINTS_PER_REGION: usize = 4;

impl LocalGpModel {
    /// Create an unfitted partitioned model: `template` supplies the
    /// kernel/noise configuration for every region, `axis` the feature to
    /// split on, `n_regions` the requested region count.
    pub fn new(template: GpModel, axis: usize, n_regions: usize) -> Self {
        assert!(n_regions >= 1, "need at least one region");
        LocalGpModel {
            template,
            axis,
            requested_regions: n_regions,
            boundaries: Vec::new(),
            models: Vec::new(),
            pool: WorkerPool::new(1),
        }
    }

    /// Number of regions actually in use (0 before fitting; may be fewer
    /// than requested when data is scarce).
    pub fn n_regions(&self) -> usize {
        self.models.len()
    }

    /// Region boundaries along the split axis.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Index of the region a point belongs to.
    pub fn region_of(&self, x: &[f64]) -> usize {
        let v = x[self.axis];
        self.boundaries.iter().take_while(|&&b| v >= b).count()
    }

    /// Fit: split the training rows into equal-count slabs along the axis
    /// (at most `n_regions`, fewer if any slab would drop below the
    /// minimum size), then fit one GP per slab with LML optimization.
    pub fn fit_optimized(
        &mut self,
        x: &Matrix,
        y: &[f64],
        opts: &FitOptions,
    ) -> Result<(), GpError> {
        if x.rows() != y.len() {
            return Err(GpError::InvalidTrainingData {
                n_x: x.rows(),
                n_y: y.len(),
            });
        }
        let n = x.rows();
        if n == 0 {
            return Err(GpError::Linalg(al_linalg::LinalgError::Empty(
                "training set",
            )));
        }
        let regions = self
            .requested_regions
            .min((n / MIN_POINTS_PER_REGION).max(1));

        // Equal-count boundaries from the sorted axis values. Duplicate
        // boundary values would create empty slabs, so deduplicate.
        let mut axis_vals: Vec<f64> = (0..n).map(|i| x.row(i)[self.axis]).collect();
        if axis_vals.iter().any(|v| v.is_nan()) {
            // A NaN split feature cannot be ordered into slabs; report it
            // as bad training data instead of panicking mid-sort.
            return Err(GpError::InvalidTrainingData {
                n_x: x.rows(),
                n_y: y.len(),
            });
        }
        axis_vals.sort_by(|a, b| a.total_cmp(b));
        let mut boundaries = Vec::new();
        for r in 1..regions {
            let b = axis_vals[r * n / regions];
            if boundaries.last().is_none_or(|&last| b > last) && b > axis_vals[0] {
                boundaries.push(b);
            }
        }
        self.boundaries = boundaries;

        // Scatter rows into regions.
        let k = self.boundaries.len() + 1;
        let mut rows: Vec<Vec<f64>> = vec![Vec::new(); k];
        let mut ys: Vec<Vec<f64>> = vec![Vec::new(); k];
        for (i, &yi) in y.iter().enumerate().take(n) {
            let r = self.region_of(x.row(i));
            rows[r].extend_from_slice(x.row(i));
            ys[r].push(yi);
        }

        // Threads fan out over regions (below, in `predict`), so each
        // region's model runs its own kernels serially — nesting both
        // levels would oversubscribe the pool.
        self.pool = WorkerPool::new(opts.n_threads);
        let region_opts = FitOptions {
            n_threads: 1,
            ..opts.clone()
        };

        self.models.clear();
        for (data, yr) in rows.into_iter().zip(ys) {
            let m = data.len() / x.cols();
            debug_assert!(m > 0, "equal-count split leaves no empty region");
            let xr = Matrix::from_vec(m, x.cols(), data);
            let mut model = self.template.clone();
            model.fit_optimized(&xr, &yr, &region_opts)?;
            self.models.push(model);
        }
        Ok(())
    }

    /// Predict by routing each query row to its region's model.
    ///
    /// Rows are bucketed by region and each region's model predicts its
    /// bucket in one batched call, so per-query overhead (a 1×d matrix
    /// allocation and a fresh kernel-vector buffer per row in the
    /// pointwise path) is paid once per region instead of once per
    /// candidate — the difference between routing 10⁵ grid points and
    /// crawling them. Each row's numbers are bitwise identical to
    /// [`LocalGpModel::predict_one`]: batching only regroups the loop,
    /// the per-row arithmetic is unchanged.
    ///
    /// Regions are independent, so they fan out across the pool set by
    /// [`LocalGpModel::fit_optimized`]: each worker predicts its regions
    /// into index-addressed slots (reusing one scratch matrix per chunk
    /// instead of allocating per bucket), and the coordinator scatters the
    /// slots back in region order — bitwise identical for any thread
    /// count.
    pub fn predict(&self, xs: &Matrix) -> Result<Prediction, GpError> {
        if self.models.is_empty() {
            return Err(GpError::NotFitted);
        }
        let m = xs.rows();
        let k = self.models.len();
        let mut region_rows: Vec<Vec<usize>> = vec![Vec::new(); k];
        for q in 0..m {
            region_rows[self.region_of(xs.row(q))].push(q);
        }
        let mut region_preds: Vec<Option<Prediction>> = vec![None; k];
        let ranges = chunk_ranges(k, self.pool.n_workers(), 1);
        let statuses = self.pool.chunked_map(
            &mut region_preds,
            &ranges,
            1,
            |range, slots| -> Result<(), GpError> {
                let mut scratch = Matrix::zeros(0, xs.cols());
                for (local, r) in range.enumerate() {
                    let rows = &region_rows[r];
                    if rows.is_empty() {
                        continue;
                    }
                    xs.select_rows_into(rows, &mut scratch);
                    slots[local] = Some(self.models[r].predict(&scratch)?);
                }
                Ok(())
            },
        );
        for status in statuses {
            status?;
        }
        let mut mean = vec![0.0; m];
        let mut std = vec![0.0; m];
        for (rows, pred) in region_rows.iter().zip(&region_preds) {
            let Some(p) = pred else { continue };
            for (slot, (mu, sigma)) in rows.iter().zip(p.mean.iter().zip(&p.std)) {
                mean[*slot] = *mu;
                std[*slot] = *sigma;
            }
        }
        Ok(Prediction { mean, std })
    }

    /// Posterior mean/std at one point.
    pub fn predict_one(&self, x: &[f64]) -> Result<(f64, f64), GpError> {
        if self.models.is_empty() {
            return Err(GpError::NotFitted);
        }
        self.models[self.region_of(x)].predict_one(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::RbfKernel;

    fn template() -> GpModel {
        GpModel::new(Box::new(RbfKernel::new(1.0, 0.5)), 1e-4)
    }

    /// Piecewise response with a hard break at x = 0.5 — hostile to a
    /// stationary global GP, easy for a two-region local model.
    fn piecewise_data(n: usize) -> (Matrix, Vec<f64>) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 0.5 { x } else { 10.0 + (8.0 * x).sin() })
            .collect();
        (Matrix::from_vec(n, 1, xs), y)
    }

    #[test]
    fn unfitted_model_refuses_queries() {
        let m = LocalGpModel::new(template(), 0, 2);
        assert!(matches!(m.predict_one(&[0.5]), Err(GpError::NotFitted)));
        assert_eq!(m.n_regions(), 0);
    }

    #[test]
    fn regions_split_by_equal_counts() {
        let (x, y) = piecewise_data(24);
        let mut m = LocalGpModel::new(template(), 0, 3);
        m.fit_optimized(&x, &y, &FitOptions::warm_start_only())
            .unwrap();
        assert_eq!(m.n_regions(), 3);
        assert_eq!(m.boundaries().len(), 2);
        assert_eq!(m.region_of(&[0.0]), 0);
        assert_eq!(m.region_of(&[0.99]), 2);
    }

    #[test]
    fn local_model_beats_global_on_discontinuity() {
        let (x, y) = piecewise_data(40);
        let opts = FitOptions {
            n_restarts: 1,
            ..FitOptions::default()
        };
        let mut global = template();
        global.fit_optimized(&x, &y, &opts).unwrap();
        let mut local = LocalGpModel::new(template(), 0, 2);
        local.fit_optimized(&x, &y, &opts).unwrap();

        // Evaluate on off-grid points away from the break.
        let probes: Vec<f64> = (0..20)
            .map(|i| 0.025 + 0.95 * i as f64 / 19.0)
            .filter(|&x| (x - 0.5).abs() > 0.06)
            .collect();
        let truth = |x: f64| if x < 0.5 { x } else { 10.0 + (8.0 * x).sin() };
        let err = |pred: &dyn Fn(&[f64]) -> f64| -> f64 {
            probes
                .iter()
                .map(|&p| (pred(&[p]) - truth(p)).abs())
                .sum::<f64>()
                / probes.len() as f64
        };
        let global_err = err(&|p| global.predict_one(p).unwrap().0);
        let local_err = err(&|p| local.predict_one(p).unwrap().0);
        assert!(
            local_err < 0.5 * global_err,
            "local {local_err} vs global {global_err}"
        );
    }

    #[test]
    fn sparse_data_collapses_regions() {
        let (x, y) = piecewise_data(6);
        let mut m = LocalGpModel::new(template(), 0, 4);
        m.fit_optimized(&x, &y, &FitOptions::warm_start_only())
            .unwrap();
        assert_eq!(m.n_regions(), 1, "6 points cannot sustain 4 regions");
    }

    #[test]
    fn duplicate_axis_values_do_not_create_empty_regions() {
        // All x equal: only one region can exist.
        let x = Matrix::from_vec(8, 1, vec![0.5; 8]);
        let y: Vec<f64> = (0..8).map(|i| i as f64 * 0.01).collect();
        let mut m = LocalGpModel::new(template(), 0, 2);
        m.fit_optimized(&x, &y, &FitOptions::warm_start_only())
            .unwrap();
        assert_eq!(m.n_regions(), 1);
        assert!(m.predict_one(&[0.5]).is_ok());
    }

    #[test]
    fn batch_predict_matches_pointwise() {
        let (x, y) = piecewise_data(20);
        let mut m = LocalGpModel::new(template(), 0, 2);
        m.fit_optimized(&x, &y, &FitOptions::warm_start_only())
            .unwrap();
        let q = Matrix::from_vec(3, 1, vec![0.1, 0.5, 0.9]);
        let batch = m.predict(&q).unwrap();
        for i in 0..3 {
            let (mu, sigma) = m.predict_one(q.row(i)).unwrap();
            assert_eq!(batch.mean[i], mu);
            assert_eq!(batch.std[i], sigma);
        }
    }

    #[test]
    fn batch_predict_handles_empty_region_buckets() {
        // Every query lands in the upper region; the lower region's batch
        // is empty and must be skipped without disturbing output order.
        let (x, y) = piecewise_data(20);
        let mut m = LocalGpModel::new(template(), 0, 2);
        m.fit_optimized(&x, &y, &FitOptions::warm_start_only())
            .unwrap();
        let q = Matrix::from_vec(3, 1, vec![0.95, 0.7, 0.8]);
        assert!(q.row(0)[0] > m.boundaries()[0]);
        let batch = m.predict(&q).unwrap();
        for i in 0..3 {
            let (mu, sigma) = m.predict_one(q.row(i)).unwrap();
            assert_eq!(batch.mean[i], mu);
            assert_eq!(batch.std[i], sigma);
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut m = LocalGpModel::new(template(), 0, 2);
        let x = Matrix::zeros(3, 1);
        assert!(matches!(
            m.fit_optimized(&x, &[1.0], &FitOptions::warm_start_only()),
            Err(GpError::InvalidTrainingData { .. })
        ));
    }
}
