//! Hyperparameter selection by log-marginal-likelihood maximization
//! (paper Eq. 9).
//!
//! The primary optimizer is Adam on the analytic LML gradient in log space,
//! with box bounds and multi-start: one start is always the model's current
//! hyperparameters (the paper's "use old model's parameters as a starting
//! point" warm start), the rest are drawn uniformly from the bounds.
//! A derivative-free Nelder–Mead simplex is provided as a cross-check and
//! for ablations.

use crate::gp::GpModel;
use al_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options controlling [`GpModel::fit_optimized`](crate::GpModel::fit_optimized).
#[derive(Debug, Clone)]
pub struct FitOptions {
    /// Number of random restarts *in addition to* the warm start from the
    /// current hyperparameters.
    pub n_restarts: usize,
    /// Adam iterations per start.
    pub max_iters: usize,
    /// Adam learning rate (log-space units).
    pub learning_rate: f64,
    /// Box bounds applied to every log-space hyperparameter.
    pub bounds: (f64, f64),
    /// Seed for restart sampling, so trajectories are reproducible.
    pub seed: u64,
    /// Worker threads for the parallel kernel-matrix and prediction paths
    /// (the `SolverProfile::n_threads` convention: `0` = all available
    /// cores, `1` = serial). Purely a schedule knob — results are bitwise
    /// identical for any value (DESIGN §13).
    pub n_threads: usize,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            n_restarts: 2,
            max_iters: 60,
            learning_rate: 0.08,
            // exp(±8) spans amplitudes/length scales from ~3e-4 to ~3e3,
            // ample for unit-cube features and log10 responses.
            bounds: (-8.0, 8.0),
            seed: 0,
            n_threads: 1,
        }
    }
}

impl FitOptions {
    /// A cheap profile for the inner AL loop: warm start only, few steps.
    /// This is what Algorithm 1's per-iteration retraining uses.
    pub fn warm_start_only() -> Self {
        FitOptions {
            n_restarts: 0,
            max_iters: 25,
            ..FitOptions::default()
        }
    }
}

/// Maximize the LML of `model` on `(x, y)`; returns the best hyperparameter
/// vector found, or `None` when no start produced a usable fit.
pub(crate) fn maximize_lml(
    model: &mut GpModel,
    x: &Matrix,
    y: &[f64],
    opts: &FitOptions,
) -> Option<Vec<f64>> {
    let dim = model.n_hyperparams();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut starts: Vec<Vec<f64>> = Vec::with_capacity(opts.n_restarts + 1);
    starts.push(model.hyperparams());
    for _ in 0..opts.n_restarts {
        starts.push(
            (0..dim)
                .map(|_| rng.random_range(opts.bounds.0..opts.bounds.1))
                .collect(),
        );
    }

    let mut best: Option<(f64, Vec<f64>)> = None;
    for start in starts {
        let mut objective = |p: &[f64]| model.lml_at(p, x, y);
        if let Some((val, params)) = adam_maximize(
            &mut objective,
            &start,
            opts.bounds,
            opts.max_iters,
            opts.learning_rate,
        ) {
            if best.as_ref().is_none_or(|(bv, _)| val > *bv) {
                best = Some((val, params));
            }
        }
    }
    best.map(|(_, p)| p)
}

/// Objective for the maximizers: returns `(value, gradient)` or `None` at
/// infeasible points.
pub type Objective<'a> = dyn FnMut(&[f64]) -> Option<(f64, Vec<f64>)> + 'a;

/// Adam gradient ascent with box bounds.
///
/// `objective` returns `(value, gradient)` or `None` at infeasible points
/// (e.g. when the kernel matrix fails to factor); infeasible steps are
/// rolled back by halving the learning rate. Returns the best feasible
/// `(value, point)` seen, or `None` if even the start is infeasible.
pub fn adam_maximize(
    objective: &mut Objective<'_>,
    start: &[f64],
    bounds: (f64, f64),
    max_iters: usize,
    learning_rate: f64,
) -> Option<(f64, Vec<f64>)> {
    let clamp = |p: &mut Vec<f64>| {
        for v in p.iter_mut() {
            *v = v.clamp(bounds.0, bounds.1);
        }
    };
    let mut p: Vec<f64> = start.to_vec();
    clamp(&mut p);
    let (mut value, mut grad) = objective(&p)?;
    let mut best = (value, p.clone());

    let dim = p.len();
    let mut m = vec![0.0; dim];
    let mut v = vec![0.0; dim];
    let (b1, b2, eps) = (0.9, 0.999, 1e-8);
    let mut lr = learning_rate;

    for t in 1..=max_iters {
        for i in 0..dim {
            m[i] = b1 * m[i] + (1.0 - b1) * grad[i];
            v[i] = b2 * v[i] + (1.0 - b2) * grad[i] * grad[i];
        }
        let mh = 1.0 - b1.powi(t as i32);
        let vh = 1.0 - b2.powi(t as i32);
        let mut candidate = p.clone();
        for i in 0..dim {
            // Ascent: step along +gradient.
            candidate[i] += lr * (m[i] / mh) / ((v[i] / vh).sqrt() + eps);
        }
        clamp(&mut candidate);
        match objective(&candidate) {
            Some((val, g)) => {
                p = candidate;
                value = val;
                grad = g;
                if value > best.0 {
                    best = (value, p.clone());
                }
            }
            None => {
                // Infeasible: shrink the step and keep the old iterate.
                lr *= 0.5;
                if lr < 1e-6 {
                    break;
                }
            }
        }
        // Converged when the gradient is tiny.
        if grad.iter().map(|g| g * g).sum::<f64>().sqrt() < 1e-7 {
            break;
        }
    }
    let _ = value;
    Some(best)
}

/// Whether a simplex objective value is the `−∞` "evaluation failed"
/// sentinel. The sentinel propagates exactly (no arithmetic touches it),
/// so an equality test is the intended check.
#[allow(clippy::float_cmp)] // alint: allow(L2)
fn is_failed_eval(f: f64) -> bool {
    f == f64::NEG_INFINITY
}

/// Derivative-free Nelder–Mead simplex maximization with box bounds.
///
/// Used as a cross-check on the gradient path and by the kernel ablation
/// (Matérn gradients are easy to get subtly wrong). Infeasible points
/// evaluate to `−∞`.
pub fn nelder_mead_maximize(
    objective: &mut dyn FnMut(&[f64]) -> Option<f64>,
    start: &[f64],
    bounds: (f64, f64),
    max_iters: usize,
) -> Option<(f64, Vec<f64>)> {
    let dim = start.len();
    let eval = |obj: &mut dyn FnMut(&[f64]) -> Option<f64>, p: &[f64]| -> f64 {
        let clamped: Vec<f64> = p.iter().map(|v| v.clamp(bounds.0, bounds.1)).collect();
        obj(&clamped).unwrap_or(f64::NEG_INFINITY)
    };

    // Initial simplex: start plus a perturbation of each coordinate.
    let mut simplex: Vec<(f64, Vec<f64>)> = Vec::with_capacity(dim + 1);
    let f0 = eval(objective, start);
    simplex.push((f0, start.to_vec()));
    for i in 0..dim {
        let mut p = start.to_vec();
        p[i] += 0.5;
        let f = eval(objective, &p);
        simplex.push((f, p));
    }
    if simplex.iter().all(|(f, _)| is_failed_eval(*f)) {
        return None;
    }

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    for _ in 0..max_iters {
        // Sort descending (we maximize).
        simplex.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let best = simplex[0].0;
        let worst = simplex[dim].0;
        if best.is_finite() && worst.is_finite() && (best - worst).abs() < 1e-10 {
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; dim];
        for (_, p) in &simplex[..dim] {
            for (c, v) in centroid.iter_mut().zip(p) {
                *c += v / dim as f64;
            }
        }
        let worst_p = simplex[dim].1.clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst_p)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = eval(objective, &reflect);
        if fr > simplex[0].0 {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&worst_p)
                .map(|(c, w)| c + gamma * (c - w))
                .collect();
            let fe = eval(objective, &expand);
            simplex[dim] = if fe > fr { (fe, expand) } else { (fr, reflect) };
        } else if fr > simplex[dim - 1].0 {
            simplex[dim] = (fr, reflect);
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst_p)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = eval(objective, &contract);
            if fc > simplex[dim].0 {
                simplex[dim] = (fc, contract);
            } else {
                // Shrink towards the best vertex.
                let best_p = simplex[0].1.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = best_p
                        .iter()
                        .zip(&entry.1)
                        .map(|(b, p)| b + sigma * (p - b))
                        .collect();
                    let fs = eval(objective, &shrunk);
                    *entry = (fs, shrunk);
                }
            }
        }
    }
    simplex.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let (f, p) = simplex.swap_remove(0);
    if is_failed_eval(f) {
        None
    } else {
        let clamped: Vec<f64> = p.iter().map(|v| v.clamp(bounds.0, bounds.1)).collect();
        Some((f, clamped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::RbfKernel;
    use crate::GpModel;

    /// Concave quadratic with maximum at (1, -2).
    fn quad(p: &[f64]) -> (f64, Vec<f64>) {
        let (x, y) = (p[0], p[1]);
        let f = -((x - 1.0).powi(2)) - 2.0 * (y + 2.0).powi(2);
        let g = vec![-2.0 * (x - 1.0), -4.0 * (y + 2.0)];
        (f, g)
    }

    #[test]
    fn adam_finds_quadratic_maximum() {
        let mut obj = |p: &[f64]| Some(quad(p));
        let (f, p) = adam_maximize(&mut obj, &[0.0, 0.0], (-10.0, 10.0), 800, 0.1).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-2, "{p:?}");
        assert!((p[1] + 2.0).abs() < 1e-2, "{p:?}");
        assert!(f > -1e-3);
    }

    #[test]
    fn adam_respects_bounds() {
        let mut obj = |p: &[f64]| Some(quad(p));
        let (_, p) = adam_maximize(&mut obj, &[0.0, 0.0], (-0.5, 0.5), 300, 0.1).unwrap();
        assert!(p.iter().all(|v| (-0.5..=0.5).contains(v)));
        assert!((p[0] - 0.5).abs() < 1e-6); // pinned at the bound nearest 1.0
    }

    #[test]
    fn adam_handles_infeasible_start() {
        let mut obj = |_: &[f64]| -> Option<(f64, Vec<f64>)> { None };
        assert!(adam_maximize(&mut obj, &[0.0], (-1.0, 1.0), 10, 0.1).is_none());
    }

    #[test]
    fn adam_survives_infeasible_regions() {
        // Objective infeasible for x > 0.5; optimum inside feasible region
        // at x = 0.4 after clamping.
        let mut obj = |p: &[f64]| {
            if p[0] > 0.5 {
                None
            } else {
                Some((-(p[0] - 0.4).powi(2), vec![-2.0 * (p[0] - 0.4)]))
            }
        };
        let (_, p) = adam_maximize(&mut obj, &[0.0], (-1.0, 1.0), 500, 0.05).unwrap();
        assert!((p[0] - 0.4).abs() < 0.05, "{p:?}");
    }

    #[test]
    fn nelder_mead_finds_quadratic_maximum() {
        let mut obj = |p: &[f64]| Some(quad(p).0);
        let (f, p) = nelder_mead_maximize(&mut obj, &[0.0, 0.0], (-10.0, 10.0), 500).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-3, "{p:?}");
        assert!((p[1] + 2.0).abs() < 1e-3, "{p:?}");
        assert!(f > -1e-5);
    }

    #[test]
    fn nelder_mead_all_infeasible_returns_none() {
        let mut obj = |_: &[f64]| -> Option<f64> { None };
        assert!(nelder_mead_maximize(&mut obj, &[0.0, 0.0], (-1.0, 1.0), 50).is_none());
    }

    #[test]
    fn fit_optimized_improves_lml_over_default_params() {
        // Data generated with a short length scale; the default l=1 start is
        // wrong and optimization must improve the LML.
        let n = 20;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let y: Vec<f64> = xs.iter().map(|x| (20.0 * x).sin()).collect();
        let x = Matrix::from_vec(n, 1, xs);

        let mut base = GpModel::new(Box::new(RbfKernel::new(1.0, 1.0)), 1e-4);
        base.fit(&x, &y).unwrap();
        let lml_default = base.lml().unwrap();

        let mut opt = GpModel::new(Box::new(RbfKernel::new(1.0, 1.0)), 1e-4);
        opt.fit_optimized(&x, &y, &FitOptions::default()).unwrap();
        let lml_opt = opt.lml().unwrap();
        assert!(
            lml_opt > lml_default + 1.0,
            "optimized {lml_opt} vs default {lml_default}"
        );
        // The learned length scale should be much shorter than 1.
        let l = opt.kernel().params()[1].exp();
        assert!(l < 0.5, "length scale {l}");
    }

    #[test]
    fn warm_start_profile_is_cheaper_but_valid() {
        let opts = FitOptions::warm_start_only();
        assert_eq!(opts.n_restarts, 0);
        let n = 10;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
        let y: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        let x = Matrix::from_vec(n, 1, xs);
        let mut m = GpModel::new(Box::new(RbfKernel::new(1.0, 1.0)), 1e-4);
        m.fit_optimized(&x, &y, &opts).unwrap();
        let (mu, _) = m.predict_one(&[0.5]).unwrap();
        assert!((mu - 1.0).abs() < 0.1);
    }

    #[test]
    fn single_point_fit_skips_optimization() {
        let x = Matrix::from_vec(1, 1, vec![0.5]);
        let y = vec![2.0];
        let mut m = GpModel::new(Box::new(RbfKernel::new(1.0, 1.0)), 1e-4);
        m.fit_optimized(&x, &y, &FitOptions::default()).unwrap();
        let (mu, _) = m.predict_one(&[0.5]).unwrap();
        assert!((mu - 2.0).abs() < 1e-3);
    }
}
