//! Bitwise determinism of the parallel GP kernels (DESIGN §13).
//!
//! Every parallel path in `al-gp` — the noisy kernel matrix, the batch
//! `predict`/`predict_full` cross-kernel blocks, and the `LocalGpModel`
//! region fan-out — writes into index-addressed slots with ordered
//! reduction, so the thread count must never change a single bit. This
//! suite fits and predicts the same problems at several thread counts and
//! compares every output with `f64::to_bits`.
//!
//! CI sweeps `AL_TEST_THREADS` to pin specific counts (the session-core
//! determinism jobs run the same sweep); locally the suite covers
//! {1, 2, 4} plus all-cores (0) regardless.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_gp::{FitOptions, GpModel, KernelKind, LocalGpModel, Prediction};
use al_linalg::Matrix;

/// Thread counts to sweep: {1, 2, 4, all-cores}, plus `AL_TEST_THREADS`
/// when set (the CI determinism jobs pin it per matrix entry).
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4, 0];
    if let Ok(v) = std::env::var("AL_TEST_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if !counts.contains(&n) {
                counts.push(n);
            }
        }
    }
    counts
}

/// Deterministic smooth training set: d-dimensional low-discrepancy-ish
/// points with a sinusoidal response.
fn training_data(n: usize, dim: usize) -> (Matrix, Vec<f64>) {
    let data: Vec<f64> = (0..n * dim)
        .map(|i| (((i * 2654435761) % 1000) as f64) / 1000.0 * 3.0)
        .collect();
    let x = Matrix::from_vec(n, dim, data);
    let y: Vec<f64> = (0..n)
        .map(|i| x.row(i).iter().map(|v| (1.7 * v).sin()).sum::<f64>())
        .collect();
    (x, y)
}

fn query_grid(m: usize, dim: usize) -> Matrix {
    let data: Vec<f64> = (0..m * dim)
        .map(|i| (((i * 40503) % 997) as f64) / 997.0 * 3.0)
        .collect();
    Matrix::from_vec(m, dim, data)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str, threads: usize) {
    assert_eq!(a.len(), b.len(), "{what}: length at {threads} threads");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}] diverges at {threads} threads: {x} vs {y}"
        );
    }
}

fn assert_predictions_bits_eq(a: &Prediction, b: &Prediction, what: &str, threads: usize) {
    assert_bits_eq(&a.mean, &b.mean, &format!("{what}.mean"), threads);
    assert_bits_eq(&a.std, &b.std, &format!("{what}.std"), threads);
}

fn fitted_model(threads: usize, n: usize, dim: usize) -> GpModel {
    let (x, y) = training_data(n, dim);
    let mut m = GpModel::new(KernelKind::Rbf.build(0.8), 1e-4);
    let opts = FitOptions {
        n_restarts: 1,
        max_iters: 20,
        n_threads: threads,
        ..FitOptions::default()
    };
    m.fit_optimized(&x, &y, &opts).unwrap();
    m
}

#[test]
fn fit_is_bitwise_identical_across_thread_counts() {
    // The kernel matrix feeds the Cholesky factor, the LML, and the
    // optimizer trajectory; if any thread count changed a bit anywhere,
    // the optimized hyperparameters would diverge.
    let reference = fitted_model(1, 60, 3);
    for threads in thread_counts() {
        let m = fitted_model(threads, 60, 3);
        assert_bits_eq(
            &m.hyperparams(),
            &reference.hyperparams(),
            "hyperparams",
            threads,
        );
        assert_eq!(
            m.lml().unwrap().to_bits(),
            reference.lml().unwrap().to_bits(),
            "LML diverges at {threads} threads"
        );
    }
}

#[test]
fn predict_is_bitwise_identical_across_thread_counts() {
    let xq = query_grid(97, 3);
    let mut reference = fitted_model(1, 60, 3);
    let expected = reference.predict(&xq).unwrap();
    for threads in thread_counts() {
        reference.set_n_threads(threads);
        let p = reference.predict(&xq).unwrap();
        assert_predictions_bits_eq(&p, &expected, "predict", threads);
    }
}

#[test]
fn predict_full_is_bitwise_identical_across_thread_counts() {
    let xq = query_grid(41, 3);
    let mut reference = fitted_model(1, 60, 3);
    let (mean1, cov1) = reference.predict_full(&xq).unwrap();
    for threads in thread_counts() {
        reference.set_n_threads(threads);
        let (mean, cov) = reference.predict_full(&xq).unwrap();
        assert_bits_eq(&mean, &mean1, "predict_full.mean", threads);
        assert_bits_eq(cov.as_slice(), cov1.as_slice(), "predict_full.cov", threads);
    }
}

#[test]
fn local_predict_is_bitwise_identical_across_thread_counts() {
    let (x, y) = training_data(80, 1);
    let xq = query_grid(203, 1);
    let fit_at = |threads: usize| {
        let mut m = LocalGpModel::new(GpModel::new(KernelKind::Rbf.build(0.5), 1e-4), 0, 4);
        let opts = FitOptions {
            n_threads: threads,
            ..FitOptions::warm_start_only()
        };
        m.fit_optimized(&x, &y, &opts).unwrap();
        m
    };
    let reference = fit_at(1).predict(&xq).unwrap();
    for threads in thread_counts() {
        let m = fit_at(threads);
        let p = m.predict(&xq).unwrap();
        assert_predictions_bits_eq(&p, &reference, "local predict", threads);
    }
}
