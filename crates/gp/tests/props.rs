//! Property-based tests for kernels and GP posteriors.

// Integration tests run outside #[cfg(test)], so the in-tests carve-outs
// from clippy.toml don't reach them; tests may panic, compare exact copied
// floats, and index loops for readability.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::needless_range_loop
)]

use al_gp::{GpModel, KernelKind};
use al_linalg::Matrix;
use proptest::prelude::*;

fn kernel_kinds() -> impl Strategy<Value = KernelKind> {
    prop_oneof![
        Just(KernelKind::Rbf),
        Just(KernelKind::ArdRbf { dim: 3 }),
        Just(KernelKind::Matern32),
        Just(KernelKind::Matern52),
        Just(KernelKind::RationalQuadratic),
    ]
}

fn point3() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0f64..2.0, 3)
}

proptest! {
    #[test]
    fn kernels_are_symmetric(kind in kernel_kinds(), a in point3(), b in point3()) {
        let k = kind.build(0.7);
        let kab = k.value(&a, &b);
        let kba = k.value(&b, &a);
        prop_assert!((kab - kba).abs() < 1e-12);
    }

    #[test]
    fn kernel_diagonal_dominates(kind in kernel_kinds(), a in point3(), b in point3()) {
        // For monotone stationary kernels, k(x, x) >= k(x, y) >= 0.
        let k = kind.build(0.7);
        let kab = k.value(&a, &b);
        prop_assert!(kab >= 0.0);
        prop_assert!(k.diag_value() + 1e-12 >= kab);
    }

    #[test]
    fn kernel_gradients_match_finite_differences(
        kind in kernel_kinds(),
        a in point3(),
        b in point3(),
        log_amp in -1.0f64..1.0,
        log_len in -1.0f64..0.5,
    ) {
        let mut k = kind.build(0.7);
        let mut params = k.params();
        params[0] = log_amp;
        for p in params.iter_mut().skip(1) {
            *p = log_len;
        }
        k.set_params(&params).unwrap();

        let mut analytic = vec![0.0; k.n_params()];
        k.gradient(&a, &b, &mut analytic);
        let h = 1e-6;
        for i in 0..params.len() {
            let mut pp = params.clone();
            pp[i] += h;
            k.set_params(&pp).unwrap();
            let up = k.value(&a, &b);
            pp[i] -= 2.0 * h;
            k.set_params(&pp).unwrap();
            let dn = k.value(&a, &b);
            k.set_params(&params).unwrap();
            let fd = (up - dn) / (2.0 * h);
            prop_assert!(
                (fd - analytic[i]).abs() < 1e-5 * (1.0 + fd.abs()),
                "kind {:?} param {}: fd {} vs analytic {}", kind, i, fd, analytic[i]
            );
        }
    }

    #[test]
    fn posterior_variance_never_exceeds_prior(
        kind in kernel_kinds(),
        xs in proptest::collection::vec(-2.0f64..2.0, 4..10),
        q in -3.0f64..3.0,
    ) {
        let n = xs.len();
        let y: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let x = Matrix::from_vec(n, 1, xs);
        let kern = match kind {
            KernelKind::ArdRbf { .. } => KernelKind::ArdRbf { dim: 1 },
            other => other,
        };
        let mut gp = GpModel::new(kern.build(0.5), 1e-4);
        gp.fit(&x, &y).unwrap();
        let (_, sigma) = gp.predict_one(&[q]).unwrap();
        // Prior std is sqrt(diag) = 1 for unit amplitude.
        prop_assert!(sigma <= 1.0 + 1e-9, "posterior σ {} exceeds prior", sigma);
    }

    #[test]
    fn posterior_mean_interpolates_with_tiny_noise(
        xs in proptest::collection::vec(0.0f64..5.0, 3..8),
    ) {
        // Deduplicate: coincident points with different targets cannot be
        // interpolated.
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup_by(|a, b| (*a - *b).abs() < 0.2);
        prop_assume!(xs.len() >= 3);
        let n = xs.len();
        let y: Vec<f64> = xs.iter().map(|x| (0.8 * x).cos()).collect();
        let x = Matrix::from_vec(n, 1, xs.clone());
        let mut gp = GpModel::new(KernelKind::Rbf.build(1.0), 1e-6);
        gp.fit(&x, &y).unwrap();
        for (xi, yi) in xs.iter().zip(&y) {
            let (mu, _) = gp.predict_one(&[*xi]).unwrap();
            prop_assert!((mu - yi).abs() < 0.05, "at {}: {} vs {}", xi, mu, yi);
        }
    }

    #[test]
    fn lml_gradient_is_finite_for_random_hyperparams(
        log_amp in -2.0f64..2.0,
        log_len in -2.0f64..1.0,
        log_noise in -8.0f64..-1.0,
    ) {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.4).collect();
        let y: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let x = Matrix::from_vec(8, 1, xs);
        let mut gp = GpModel::new(KernelKind::Rbf.build(1.0), 1e-3);
        gp.set_hyperparams(&[log_amp, log_len, log_noise]).unwrap();
        gp.fit(&x, &y).unwrap();
        let grad = gp.lml_gradient().unwrap();
        prop_assert!(grad.iter().all(|g| g.is_finite()));
        prop_assert!(gp.lml().unwrap().is_finite());
    }

    #[test]
    fn predictions_are_deterministic(kind in kernel_kinds()) {
        let xs: Vec<f64> = (0..6).map(|i| i as f64 * 0.5).collect();
        let y: Vec<f64> = xs.iter().map(|x| x.cos()).collect();
        let x = Matrix::from_vec(6, 1, xs);
        let kern = match kind {
            KernelKind::ArdRbf { .. } => KernelKind::ArdRbf { dim: 1 },
            other => other,
        };
        let mut gp1 = GpModel::new(kern.build(0.6), 1e-4);
        gp1.fit(&x, &y).unwrap();
        let mut gp2 = GpModel::new(kern.build(0.6), 1e-4);
        gp2.fit(&x, &y).unwrap();
        prop_assert_eq!(gp1.predict_one(&[1.3]).unwrap(), gp2.predict_one(&[1.3]).unwrap());
    }
}
